//! Ablation bench: hash table vs direct address table for duplicate
//! removal of off-processor accesses (paper Section 3.2, Figure 8).
//!
//! The paper: "Using a direct address table saves search time for
//! checking duplicated data accesses, but takes memory space
//! proportional to the number of mesh grid points."  This bench measures
//! the time side of that trade at scatter-phase access patterns (~4
//! particles per cell touching clustered ghost vertices).

use criterion::{criterion_group, criterion_main, Criterion};
use pic_core::{DirectTableAccumulator, GhostAccumulator, HashTableAccumulator};
use pic_field::BlockLayout;
use std::hint::black_box;

/// Ghost accesses of a smeared particle subdomain: `n` accesses spread
/// over a band of `cells` distinct vertices (duplication factor
/// `n / cells`).
fn access_pattern(n: usize, cells: usize, nx: u32) -> Vec<(u32, u32)> {
    (0..n)
        .map(|i| {
            let c = ((i as u64 * 2654435761) % cells as u64) as u32;
            (c % nx, c / nx)
        })
        .collect()
}

fn bench_dedup(c: &mut Criterion) {
    let (nx, ny) = (512usize, 256usize);
    let layout = BlockLayout::new_2d(nx, ny, 16, 8);
    // 4096 particles x 4 vertices, hitting 4096 distinct ghost vertices
    let accesses = access_pattern(16_384, 4096, nx as u32);

    let mut g = c.benchmark_group("ghost_dedup_16k_accesses");
    g.bench_function("hash_table", |b| {
        let mut acc = HashTableAccumulator::new(nx);
        b.iter(|| {
            for &(x, y) in &accesses {
                acc.add(black_box(x), black_box(y), [1.0, 0.5, 0.25]);
            }
            acc.drain_by_owner(&layout).len()
        })
    });
    g.bench_function("direct_table", |b| {
        let mut acc = DirectTableAccumulator::new(nx, ny);
        b.iter(|| {
            for &(x, y) in &accesses {
                acc.add(black_box(x), black_box(y), [1.0, 0.5, 0.25]);
            }
            acc.drain_by_owner(&layout).len()
        })
    });
    g.finish();
}

fn bench_dedup_duplication_sweep(c: &mut Criterion) {
    // how the win scales with the duplication factor
    let (nx, ny) = (512usize, 256usize);
    let layout = BlockLayout::new_2d(nx, ny, 16, 8);
    let mut g = c.benchmark_group("ghost_dedup_duplication");
    for distinct in [512usize, 4096, 16_384] {
        let accesses = access_pattern(16_384, distinct, nx as u32);
        g.bench_function(format!("hash_distinct{distinct}"), |b| {
            let mut acc = HashTableAccumulator::new(nx);
            b.iter(|| {
                for &(x, y) in &accesses {
                    acc.add(x, y, [1.0, 0.5, 0.25]);
                }
                acc.drain_by_owner(&layout).len()
            })
        });
        g.bench_function(format!("direct_distinct{distinct}"), |b| {
            let mut acc = DirectTableAccumulator::new(nx, ny);
            b.iter(|| {
                for &(x, y) in &accesses {
                    acc.add(x, y, [1.0, 0.5, 0.25]);
                }
                acc.drain_by_owner(&layout).len()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_dedup, bench_dedup_duplication_sweep);
criterion_main!(benches);
