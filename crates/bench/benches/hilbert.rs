//! Kernel bench: space-filling-curve conversion throughput.
//!
//! Particle indexing runs once per particle per redistribution, so the
//! raw curve conversion rate bounds how cheap redistribution can be.

use criterion::{criterion_group, criterion_main, Criterion};
use pic_index::hilbert2d::{d2xy, xy2d};
use pic_index::{Hilbert3d, IndexScheme};
use std::hint::black_box;

fn bench_raw_curve(c: &mut Criterion) {
    let mut g = c.benchmark_group("raw_curve");
    g.bench_function("hilbert2d_xy2d_order10", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..1024u64 {
                acc ^= xy2d(10, black_box(i), black_box(1023 - i));
            }
            acc
        })
    });
    g.bench_function("hilbert2d_d2xy_order10", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for d in 0..1024u64 {
                let (x, y) = d2xy(10, black_box(d * 97));
                acc ^= x ^ y;
            }
            acc
        })
    });
    g.bench_function("hilbert3d_index_order7", |b| {
        let h = Hilbert3d::new(7);
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..1024u64 {
                acc ^= h.index(black_box(i % 128), black_box((i * 7) % 128), black_box(3));
            }
            acc
        })
    });
    g.finish();
}

fn bench_indexer_lookup(c: &mut Criterion) {
    let mut g = c.benchmark_group("indexer_lookup_128x64");
    for scheme in IndexScheme::ALL {
        let ix = scheme.build(128, 64);
        g.bench_function(scheme.label(), |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for i in 0..4096usize {
                    acc ^= ix.index(black_box(i % 128), black_box((i / 128) % 64));
                }
                acc
            })
        });
    }
    g.finish();
}

fn bench_indexer_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("indexer_build");
    g.sample_size(20);
    for (nx, ny) in [(128usize, 64usize), (512, 256)] {
        g.bench_function(format!("hilbert_{nx}x{ny}"), |b| {
            b.iter(|| IndexScheme::Hilbert.build(black_box(nx), black_box(ny)))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_raw_curve,
    bench_indexer_lookup,
    bench_indexer_build
);
criterion_main!(benches);
