//! Ablation bench: locality metric computation across indexing schemes,
//! plus the alignment-report kernel the experiment logs use.
//!
//! These run per experiment (not per iteration), but on big meshes the
//! range statistics are `O(cells)` per rank; this keeps them cheap
//! enough to log every run.

use criterion::{criterion_group, criterion_main, Criterion};
use pic_index::{neighbor_jump_stats, range_bbox_stats, IndexScheme};
use pic_partition::alignment_report;
use std::hint::black_box;

fn bench_locality_metrics(c: &mut Criterion) {
    let mut g = c.benchmark_group("locality_metrics_128x64");
    g.sample_size(20);
    for scheme in IndexScheme::ALL {
        let ix = scheme.build(128, 64);
        g.bench_function(format!("jumps_{}", scheme.label()), |b| {
            b.iter(|| black_box(neighbor_jump_stats(ix.as_ref())))
        });
        g.bench_function(format!("ranges_{}", scheme.label()), |b| {
            b.iter(|| black_box(range_bbox_stats(ix.as_ref(), 32)))
        });
    }
    g.finish();
}

fn bench_alignment_report(c: &mut Criterion) {
    let n = 8192;
    let xs: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37) % 128.0).collect();
    let ys: Vec<f64> = (0..n).map(|i| (i as f64 * 0.61) % 64.0).collect();
    let own = pic_field::Rect {
        x0: 32,
        y0: 16,
        w: 16,
        h: 16,
    };
    c.bench_function("alignment_report_8k_particles", |b| {
        b.iter(|| {
            black_box(alignment_report(
                black_box(&xs),
                black_box(&ys),
                1.0,
                1.0,
                128,
                64,
                &own,
            ))
        })
    });
}

criterion_group!(benches, bench_locality_metrics, bench_alignment_report);
criterion_main!(benches);
