//! Kernel bench: wall-clock cost of the PIC phases on this host.
//!
//! Modeled time drives the reproduced figures; this bench keeps the
//! *implementation* honest by measuring the real per-iteration cost of
//! the sequential physics kernels and a full parallel machine step.

use criterion::{criterion_group, criterion_main, Criterion};
use pic_core::{ParallelPicSim, SequentialPicSim, SimConfig};
use pic_machine::MachineConfig;
use pic_particles::ParticleDistribution;
use pic_partition::PolicyKind;
use std::hint::black_box;

fn small_cfg() -> SimConfig {
    SimConfig {
        nx: 64,
        ny: 32,
        particles: 8192,
        distribution: ParticleDistribution::IrregularCenter,
        machine: MachineConfig::cm5(8),
        policy: PolicyKind::Static,
        ..SimConfig::paper_default()
    }
}

fn bench_sequential_step(c: &mut Criterion) {
    let mut g = c.benchmark_group("sequential_step");
    g.sample_size(30);
    let mut sim = SequentialPicSim::new(small_cfg());
    g.bench_function("64x32_8k_particles", |b| {
        b.iter(|| {
            sim.step();
            black_box(sim.particles().len())
        })
    });
    g.finish();
}

fn bench_parallel_step(c: &mut Criterion) {
    let mut g = c.benchmark_group("parallel_step");
    g.sample_size(30);
    let mut sim = ParallelPicSim::new(small_cfg());
    g.bench_function("64x32_8k_8ranks", |b| {
        b.iter(|| black_box(sim.step().time_s))
    });
    let mut paper = ParallelPicSim::new(SimConfig::paper_default());
    g.bench_function("paper_128x64_32k_32ranks", |b| {
        b.iter(|| black_box(paper.step().time_s))
    });
    g.finish();
}

fn bench_redistribution(c: &mut Criterion) {
    let mut g = c.benchmark_group("redistribution");
    g.sample_size(20);
    let mut sim = ParallelPicSim::new(small_cfg());
    g.bench_function("redistribute_64x32_8k", |b| {
        b.iter(|| {
            sim.step();
            black_box(sim.redistribute_now())
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_sequential_step,
    bench_parallel_step,
    bench_redistribution
);
criterion_main!(benches);
