//! Ablation bench: bucket incremental sorting vs from-scratch sorting.
//!
//! Paper Figure 11's claim: "Particle redistribution achieves better
//! results by using the incremental sorting algorithm than by using the
//! distribution algorithm at each step."  Incremental movement means the
//! key array is nearly sorted at each redistribution; the bucket sorter
//! exploits that, a full sort cannot.

use criterion::{criterion_group, criterion_main, Criterion};
use pic_partition::{sorted_order, BucketIncrementalSorter};
use std::hint::black_box;

/// A nearly sorted key array: sorted, then each key perturbed slightly —
/// the state of a rank's keys a few iterations after the last sort.
fn nearly_sorted(n: usize, displacement: u64) -> Vec<u64> {
    (0..n as u64)
        .map(|i| {
            let wobble = (i * 2654435761) % (2 * displacement + 1);
            (i * 16).saturating_add(wobble)
        })
        .collect()
}

fn shuffled(n: usize) -> Vec<u64> {
    (0..n as u64)
        .map(|i| (i * 2654435761) % (n as u64 * 16))
        .collect()
}

fn bench_incremental_vs_full(c: &mut Criterion) {
    let n = 32_768;
    let mut g = c.benchmark_group("redistribution_sort_32k");

    for displacement in [8u64, 64, 512] {
        let keys = nearly_sorted(n, displacement);
        let mut sorter = BucketIncrementalSorter::new(16);
        let pre = sorted_order(&keys);
        let sorted: Vec<u64> = pre.iter().map(|&i| keys[i]).collect();
        sorter.rebuild(&sorted);
        g.bench_function(format!("bucket_incremental_disp{displacement}"), |b| {
            b.iter(|| sorter.sort_incremental(black_box(&keys)))
        });
    }

    let keys = nearly_sorted(n, 64);
    g.bench_function("full_sorted_order_nearly_sorted", |b| {
        b.iter(|| sorted_order(black_box(&keys)))
    });
    let keys = shuffled(n);
    g.bench_function("full_sorted_order_shuffled", |b| {
        b.iter(|| sorted_order(black_box(&keys)))
    });
    g.finish();
}

fn bench_bucket_count_sensitivity(c: &mut Criterion) {
    // the paper's L parameter: more buckets = cheaper per-bucket sorts
    // but more classification; measure the sweet spot
    let n = 32_768;
    let keys = nearly_sorted(n, 64);
    let mut g = c.benchmark_group("bucket_count_32k");
    for l in [1usize, 4, 16, 64, 256] {
        let mut sorter = BucketIncrementalSorter::new(l);
        let pre = sorted_order(&keys);
        let sorted: Vec<u64> = pre.iter().map(|&i| keys[i]).collect();
        sorter.rebuild(&sorted);
        g.bench_function(format!("L{l}"), |b| {
            b.iter(|| sorter.sort_incremental(black_box(&keys)))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_incremental_vs_full,
    bench_bucket_count_sensitivity
);
criterion_main!(benches);
