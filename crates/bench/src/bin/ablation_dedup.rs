//! Ablation: duplicate-removal table choice inside the full simulation
//! (paper Section 3.2 / Figure 8).
//!
//! The criterion bench `dedup` measures the isolated kernels; this
//! harness confirms the modeled end-to-end difference: the direct
//! address table trades O(m) memory for cheaper per-access cost, which
//! shows up in the scatter phase's compute time but leaves the
//! communication volume identical (dedup semantics are equal).

use pic_bench::{iters_from_args, paper_cfg, write_csv};
use pic_core::{DedupKind, ParallelPicSim};
use pic_index::IndexScheme;
use pic_particles::ParticleDistribution;
use pic_partition::PolicyKind;

fn main() {
    let iters = iters_from_args(100);
    println!("Dedup ablation: hash vs direct address table, {iters} iterations\n");
    println!(
        "{:<10} {:>14} {:>14} {:>16}",
        "table", "scatter (s)", "total (s)", "scatter bytes"
    );
    let mut rows = Vec::new();
    for dedup in [DedupKind::Hash, DedupKind::Direct] {
        let mut cfg = paper_cfg(
            128,
            64,
            32_768,
            32,
            ParticleDistribution::IrregularCenter,
            IndexScheme::Hilbert,
            PolicyKind::Static,
        );
        cfg.dedup = dedup;
        let mut sim = ParallelPicSim::new(cfg);
        let report = sim.run(iters);
        let scatter_bytes: u64 = report
            .iterations
            .iter()
            .map(|r| r.scatter_max_bytes_sent)
            .sum();
        let total = report.total_s;
        let scatter_s = report.breakdown.scatter_s;
        let label = match dedup {
            DedupKind::Hash => "hash",
            DedupKind::Direct => "direct",
        };
        println!(
            "{:<10} {:>14.3} {:>14.3} {:>16}",
            label, scatter_s, total, scatter_bytes
        );
        rows.push(format!("{label},{scatter_s:.5},{total:.5},{scatter_bytes}"));
    }
    write_csv(
        "ablation_dedup.csv",
        "table,scatter_s,total_s,scatter_bytes_sum",
        &rows,
    );
    println!("\n(identical bytes — same dedup semantics; direct table cheaper in compute)");
}
