//! Ablation: machine-constant sensitivity (paper Section 6.3, final
//! remark).
//!
//! "Clearly, the CM-5 (without vector units) is not representative of a
//! typical parallel machine, because the ratio of unit computation to
//! unit communication is small.  These efficiencies would be much
//! smaller for a machine with more powerful nodes relative to the
//! communication network.  Maintaining similar efficiencies on such a
//! machine would require a larger number of particles per processor."
//!
//! We sweep particles-per-processor on the CM-5 preset and on a
//! modern-cluster preset (fast nodes, relatively slower network) and
//! print the efficiency curves: the modern machine needs a much larger
//! grain to reach the same efficiency.

use pic_bench::{iters_from_args, sequential_modeled_time, write_csv};
use pic_core::{ParallelPicSim, SimConfig};
use pic_index::IndexScheme;
use pic_machine::MachineConfig;
use pic_particles::ParticleDistribution;
use pic_partition::PolicyKind;

fn main() {
    let iters = iters_from_args(100);
    let p = 32;
    println!(
        "Machine ablation: efficiency vs particles-per-processor, p = {p}, {iters} iterations\n"
    );
    println!(
        "{:<12} {:>10} {:>12} {:>12}",
        "machine", "n/p", "total (s)", "efficiency"
    );
    let mut rows = Vec::new();
    for (name, machine) in [
        ("cm5", MachineConfig::cm5(p)),
        ("modern", MachineConfig::modern(p)),
    ] {
        for npp in [256usize, 1024, 4096, 16_384] {
            let cfg = SimConfig {
                nx: 128,
                ny: 64,
                particles: npp * p,
                distribution: ParticleDistribution::Uniform,
                scheme: IndexScheme::Hilbert,
                policy: PolicyKind::DynamicSar,
                machine,
                ..SimConfig::paper_default()
            };
            let t_seq = sequential_modeled_time(&cfg, iters);
            let mut sim = ParallelPicSim::new(cfg);
            let t_p = sim.run(iters).total_s;
            let eff = t_seq / (p as f64 * t_p);
            println!("{:<12} {:>10} {:>12.4} {:>12.3}", name, npp, t_p, eff);
            rows.push(format!("{name},{npp},{t_p:.6},{eff:.4}"));
        }
        println!();
    }
    write_csv(
        "ablation_machine.csv",
        "machine,particles_per_proc,total_s,efficiency",
        &rows,
    );
    println!("(the modern machine should need ~an order of magnitude more particles");
    println!(" per processor to match the CM-5's efficiency, as the paper predicts)");
}
