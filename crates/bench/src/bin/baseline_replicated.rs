//! Baseline: replicated mesh (Lubeck & Faber) vs the paper's distributed
//! independent partitioning, as the processor count grows.
//!
//! Reproduces the motivating claim of paper Section 3: the replicated-
//! grid direct Lagrangian method "is an efficient algorithm for small
//! hypercubes.  However, for large hypercubes the communication due to
//! global operations on mesh grid array dominates the run time" — its
//! per-iteration communication is O(m) regardless of particle placement,
//! while the distributed scheme's communication tracks the (small)
//! subdomain overlap.

use pic_bench::{iters_from_args, paper_cfg, write_csv};
use pic_core::{ParallelPicSim, ReplicatedGridPicSim};
use pic_index::IndexScheme;
use pic_particles::ParticleDistribution;
use pic_partition::PolicyKind;

fn main() {
    let iters = iters_from_args(50);
    println!(
        "Replicated-grid baseline vs distributed independent partitioning\n\
         (irregular, 128x64 mesh, 32768 particles, {iters} iterations, modeled s)\n"
    );
    println!(
        "{:>6} {:>16} {:>16} {:>14} {:>14}",
        "p", "replicated", "distributed", "repl comm %", "dist comm %"
    );
    let mut rows = Vec::new();
    for p in [2usize, 8, 32, 128] {
        let cfg = paper_cfg(
            128,
            64,
            32_768,
            p,
            ParticleDistribution::IrregularCenter,
            IndexScheme::Hilbert,
            PolicyKind::DynamicSar,
        );
        let mut rep = ReplicatedGridPicSim::new(cfg.clone());
        let (rep_total, rep_comp) = rep.run(iters);
        let mut dist = ParallelPicSim::new(cfg);
        let report = dist.run(iters);
        let rep_comm_pct = 100.0 * (rep_total - rep_comp) / rep_total;
        let dist_comm_pct = 100.0 * report.overhead_s / report.total_s;
        println!(
            "{:>6} {:>16.2} {:>16.2} {:>13.1}% {:>13.1}%",
            p, rep_total, report.total_s, rep_comm_pct, dist_comm_pct
        );
        rows.push(format!(
            "{p},{rep_total:.4},{:.4},{rep_comm_pct:.2},{dist_comm_pct:.2}",
            report.total_s
        ));
    }
    write_csv(
        "baseline_replicated.csv",
        "p,replicated_total_s,distributed_total_s,replicated_comm_pct,distributed_comm_pct",
        &rows,
    );
    println!("\n(replicated wins or ties at small p, then its O(m) global sums");
    println!(" flatten the speedup while the distributed scheme keeps scaling)");
}
