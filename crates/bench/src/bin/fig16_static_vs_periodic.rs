//! Figure 16: total execution time for 2000 iterations on 32 nodes,
//! static vs periodic redistribution (periods 200, 100, 50, 25, 10, 5),
//! for three (mesh, particles) sizes with the irregular distribution.
//!
//! Paper claim to reproduce: "all the periodic redistribution methods
//! significantly outperform static ones", with the best period depending
//! on the configuration.

use pic_bench::{iters_from_args, paper_cfg, write_csv};
use pic_core::ParallelPicSim;
use pic_index::IndexScheme;
use pic_particles::ParticleDistribution;
use pic_partition::PolicyKind;

fn main() {
    let iters = iters_from_args(2000);
    let sizes = [
        (128usize, 64usize, 32_768usize),
        (256, 128, 65_536),
        (256, 128, 131_072),
    ];
    let policies = [
        PolicyKind::Static,
        PolicyKind::Periodic(200),
        PolicyKind::Periodic(100),
        PolicyKind::Periodic(50),
        PolicyKind::Periodic(25),
        PolicyKind::Periodic(10),
        PolicyKind::Periodic(5),
    ];

    println!("Figure 16: total execution time for {iters} iterations on 32 nodes (modeled s)\n");
    print!("{:<22}", "policy");
    for (nx, ny, n) in sizes {
        print!("{:>18}", format!("{nx}x{ny}/{}k", n / 1024));
    }
    println!();

    let mut rows = Vec::new();
    let mut totals = vec![Vec::new(); policies.len()];
    for (pi, policy) in policies.iter().enumerate() {
        print!("{:<22}", policy.label());
        for (nx, ny, n) in sizes {
            let cfg = paper_cfg(
                nx,
                ny,
                n,
                32,
                ParticleDistribution::IrregularCenter,
                IndexScheme::Hilbert,
                *policy,
            );
            let mut sim = ParallelPicSim::new(cfg);
            let report = sim.run(iters);
            print!("{:>18.2}", report.total_s);
            totals[pi].push(report.total_s);
        }
        println!();
    }
    for (pi, policy) in policies.iter().enumerate() {
        rows.push(format!(
            "{},{}",
            policy.label(),
            totals[pi]
                .iter()
                .map(|t| format!("{t:.3}"))
                .collect::<Vec<_>>()
                .join(",")
        ));
    }
    write_csv(
        "fig16_static_vs_periodic.csv",
        "policy,t_128x64_32k,t_256x128_64k,t_256x128_128k",
        &rows,
    );

    // the paper's headline check
    let static_best = totals[0].clone();
    let periodic_best: Vec<f64> = (0..sizes.len())
        .map(|c| {
            (1..policies.len())
                .map(|p| totals[p][c])
                .fold(f64::INFINITY, f64::min)
        })
        .collect();
    println!();
    for (c, (nx, ny, n)) in sizes.iter().enumerate() {
        println!(
            "{}x{}/{}k: periodic best {:.2} vs static {:.2} ({:.1}% saved)",
            nx,
            ny,
            n / 1024,
            periodic_best[c],
            static_best[c],
            100.0 * (1.0 - periodic_best[c] / static_best[c])
        );
    }
}
