//! Figure 17: execution time of each iteration (irregular distribution,
//! 128x64 mesh, 32768 particles, 32 processors) under static and
//! periodic redistribution.
//!
//! Shape to reproduce: the static curve climbs steadily as the
//! Lagrangian particle subdomains smear; periodic curves are sawtooths
//! that reset at every redistribution.

use pic_bench::{iters_from_args, paper_cfg, series_summary, write_csv};
use pic_core::ParallelPicSim;
use pic_index::IndexScheme;
use pic_particles::ParticleDistribution;
use pic_partition::PolicyKind;

fn main() {
    let iters = iters_from_args(2000);
    let policies = [
        PolicyKind::Static,
        PolicyKind::Periodic(100),
        PolicyKind::Periodic(25),
        PolicyKind::Periodic(5),
    ];
    let mut series: Vec<Vec<f64>> = Vec::new();
    for policy in policies {
        let cfg = paper_cfg(
            128,
            64,
            32_768,
            32,
            ParticleDistribution::IrregularCenter,
            IndexScheme::Hilbert,
            policy,
        );
        let mut sim = ParallelPicSim::new(cfg);
        series.push((0..iters).map(|_| sim.step().time_s).collect());
    }

    let rows: Vec<String> = (0..iters)
        .map(|i| {
            let vals: Vec<String> = series.iter().map(|s| format!("{:.6}", s[i])).collect();
            format!("{},{}", i + 1, vals.join(","))
        })
        .collect();
    write_csv(
        "fig17_iteration_time.csv",
        "iter,static,periodic100,periodic25,periodic5",
        &rows,
    );

    println!("Figure 17: per-iteration execution time (modeled ms)\n");
    println!(
        "{:<16} {:>12} {:>12} {:>10} {:>10} {:>10} {:>10}",
        "policy", "first 5%", "last 5%", "p50", "p95", "peak", "rise"
    );
    for (policy, s) in policies.iter().zip(&series) {
        let sum = series_summary(s);
        println!(
            "{:<16} {:>12.3} {:>12.3} {:>10.3} {:>10.3} {:>10.3} {:>9.1}%",
            policy.label(),
            sum.head * 1e3,
            sum.tail * 1e3,
            sum.p50 * 1e3,
            sum.p95 * 1e3,
            sum.peak * 1e3,
            sum.rise_pct()
        );
    }
    println!("\n(static must rise; periodic stays near its post-redistribution floor)\n");
    println!(
        "{}",
        pic_bench::render_chart(
            &[("static", &series[0]), ("periodic(25)", &series[2]),],
            72,
            14,
        )
    );
}
