//! Figure 18: maximum amount of data sent and received by any processor
//! in the scatter phase, per iteration (irregular, 128x64, 32768
//! particles, 32 processors).
//!
//! Shape to reproduce: without redistribution the ghost-point volume
//! keeps growing; with periodic redistribution it drops back after every
//! redistribution.

use pic_bench::{iters_from_args, paper_cfg, series_summary_u64, write_csv};
use pic_core::ParallelPicSim;
use pic_index::IndexScheme;
use pic_particles::ParticleDistribution;
use pic_partition::PolicyKind;

fn main() {
    let iters = iters_from_args(2000);
    let policies = [PolicyKind::Static, PolicyKind::Periodic(25)];
    let mut sent: Vec<Vec<u64>> = Vec::new();
    let mut recv: Vec<Vec<u64>> = Vec::new();
    for policy in policies {
        let cfg = paper_cfg(
            128,
            64,
            32_768,
            32,
            ParticleDistribution::IrregularCenter,
            IndexScheme::Hilbert,
            policy,
        );
        let mut sim = ParallelPicSim::new(cfg);
        let mut s = Vec::with_capacity(iters);
        let mut r = Vec::with_capacity(iters);
        for _ in 0..iters {
            let rec = sim.step();
            s.push(rec.scatter_max_bytes_sent);
            r.push(rec.scatter_max_bytes_recv);
        }
        sent.push(s);
        recv.push(r);
    }

    let rows: Vec<String> = (0..iters)
        .map(|i| {
            format!(
                "{},{},{},{},{}",
                i + 1,
                sent[0][i],
                recv[0][i],
                sent[1][i],
                recv[1][i]
            )
        })
        .collect();
    write_csv(
        "fig18_scatter_data.csv",
        "iter,static_sent,static_recv,periodic25_sent,periodic25_recv",
        &rows,
    );

    println!("Figure 18: max scatter-phase bytes sent/received by any processor\n");
    println!(
        "{:<14} {:>14} {:>14} {:>12} {:>12} {:>14} {:>14}",
        "policy",
        "sent first 5%",
        "sent last 5%",
        "sent p50",
        "sent p95",
        "recv first 5%",
        "recv last 5%"
    );
    for (k, policy) in policies.iter().enumerate() {
        let s = series_summary_u64(&sent[k]);
        let r = series_summary_u64(&recv[k]);
        println!(
            "{:<14} {:>14.0} {:>14.0} {:>12.0} {:>12.0} {:>14.0} {:>14.0}",
            policy.label(),
            s.head,
            s.tail,
            s.p50,
            s.p95,
            r.head,
            r.tail,
        );
    }
    println!("\n(periodic redistribution keeps both flat; static grows)\n");
    let to_f = |v: &[u64]| -> Vec<f64> { v.iter().map(|&b| b as f64).collect() };
    let static_sent = to_f(&sent[0]);
    let periodic_sent = to_f(&sent[1]);
    println!(
        "{}",
        pic_bench::render_chart(
            &[
                ("static sent", &static_sent),
                ("periodic(25) sent", &periodic_sent)
            ],
            72,
            14,
        )
    );
}
