//! Figure 19: maximum number of messages sent and received by any
//! processor in the scatter phase, per iteration (irregular, 128x64,
//! 32768 particles, 32 processors).
//!
//! Shape to reproduce: as particle subdomains smear they overlap more
//! ranks' mesh blocks, so the per-iteration message count climbs toward
//! its `p - 1` bound; redistribution pulls it back to the few genuine
//! neighbours.

use pic_bench::{iters_from_args, paper_cfg, series_summary_u64, write_csv};
use pic_core::ParallelPicSim;
use pic_index::IndexScheme;
use pic_particles::ParticleDistribution;
use pic_partition::PolicyKind;

fn main() {
    let iters = iters_from_args(2000);
    let policies = [PolicyKind::Static, PolicyKind::Periodic(25)];
    let mut sent: Vec<Vec<u64>> = Vec::new();
    let mut recv: Vec<Vec<u64>> = Vec::new();
    for policy in policies {
        let cfg = paper_cfg(
            128,
            64,
            32_768,
            32,
            ParticleDistribution::IrregularCenter,
            IndexScheme::Hilbert,
            policy,
        );
        let mut sim = ParallelPicSim::new(cfg);
        let mut s = Vec::with_capacity(iters);
        let mut r = Vec::with_capacity(iters);
        for _ in 0..iters {
            let rec = sim.step();
            s.push(rec.scatter_max_msgs_sent);
            r.push(rec.scatter_max_msgs_recv);
        }
        sent.push(s);
        recv.push(r);
    }

    let rows: Vec<String> = (0..iters)
        .map(|i| {
            format!(
                "{},{},{},{},{}",
                i + 1,
                sent[0][i],
                recv[0][i],
                sent[1][i],
                recv[1][i]
            )
        })
        .collect();
    write_csv(
        "fig19_scatter_messages.csv",
        "iter,static_sent,static_recv,periodic25_sent,periodic25_recv",
        &rows,
    );

    println!("Figure 19: max scatter-phase messages sent/received by any processor\n");
    println!(
        "{:<14} {:>12} {:>12} {:>10} {:>10} {:>12} {:>12}",
        "policy", "sent start", "sent end", "sent p50", "sent p95", "recv start", "recv end"
    );
    for (k, policy) in policies.iter().enumerate() {
        let s = series_summary_u64(&sent[k]);
        let r = series_summary_u64(&recv[k]);
        println!(
            "{:<14} {:>12.1} {:>12.1} {:>10.1} {:>10.1} {:>12.1} {:>12.1}",
            policy.label(),
            s.head,
            s.tail,
            s.p50,
            s.p95,
            r.head,
            r.tail,
        );
    }
    println!("\n(the hard bound is p - 1 = 31 messages; static should approach it)");
}
