//! Figure 20: periodic vs dynamic redistribution over 200 iterations —
//! total time (execution + redistribution) as a function of the period,
//! with the dynamic Stop-At-Rise policy as the tuning-free reference.
//!
//! Paper claim to reproduce: "The performance of dynamic redistribution
//! is close to the periodic redistribution with the best period",
//! without any pre-runtime analysis.

use pic_bench::{iters_from_args, paper_cfg, write_csv};
use pic_core::ParallelPicSim;
use pic_index::IndexScheme;
use pic_particles::ParticleDistribution;
use pic_partition::PolicyKind;

fn main() {
    let iters = iters_from_args(200);
    let periods = [5usize, 10, 15, 20, 25, 40, 50, 100, 200];

    let run = |policy: PolicyKind| {
        let cfg = paper_cfg(
            128,
            64,
            32_768,
            32,
            ParticleDistribution::IrregularCenter,
            IndexScheme::Hilbert,
            policy,
        );
        let mut sim = ParallelPicSim::new(cfg);
        let report = sim.run(iters);
        (
            report.total_s,
            report.redistribute_total_s,
            report.redistributions,
        )
    };

    println!("Figure 20: periodic vs dynamic redistribution, {iters} iterations (modeled s)\n");
    println!(
        "{:<16} {:>10} {:>12} {:>12} {:>9}",
        "policy", "total", "execution", "redistrib.", "#redist"
    );
    let mut rows = Vec::new();
    let mut best_periodic = f64::INFINITY;
    for k in periods {
        let (total, redist, count) = run(PolicyKind::Periodic(k));
        best_periodic = best_periodic.min(total);
        println!(
            "{:<16} {:>10.2} {:>12.2} {:>12.2} {:>9}",
            format!("periodic({k})"),
            total,
            total - redist,
            redist,
            count
        );
        rows.push(format!("periodic({k}),{total:.4},{redist:.4},{count}"));
    }
    let (dyn_total, dyn_redist, dyn_count) = run(PolicyKind::DynamicSar);
    println!(
        "{:<16} {:>10.2} {:>12.2} {:>12.2} {:>9}",
        "dynamic",
        dyn_total,
        dyn_total - dyn_redist,
        dyn_redist,
        dyn_count
    );
    rows.push(format!(
        "dynamic,{dyn_total:.4},{dyn_redist:.4},{dyn_count}"
    ));
    let (stat_total, _, _) = run(PolicyKind::Static);
    println!("{:<16} {:>10.2}", "static", stat_total);
    rows.push(format!("static,{stat_total:.4},0,0"));
    write_csv(
        "fig20_dynamic_policy.csv",
        "policy,total_s,redistribute_s,redistributions",
        &rows,
    );

    println!(
        "\ndynamic is {:.1}% off the best periodic ({best_periodic:.2} s) with zero tuning",
        100.0 * (dyn_total / best_periodic - 1.0)
    );
}
