//! Figure 21: overhead (execution time minus computation time) of 200
//! iterations for the uniform distribution, Hilbert vs snakelike
//! indexing, across processor counts.
//!
//! Shapes to reproduce: Hilbert overhead <= snakelike in (almost) every
//! configuration; overhead stays flat or falls as processors increase
//! for a fixed problem; redistribution is a minor share of the overhead.

use pic_bench::run_overhead;
use pic_particles::ParticleDistribution;

fn main() {
    run_overhead(
        ParticleDistribution::Uniform,
        "fig21_overhead_uniform.csv",
        "Figure 21",
    );
}
