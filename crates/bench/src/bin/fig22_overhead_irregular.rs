//! Figure 22: overhead (execution time minus computation time) of 200
//! iterations for the irregular distribution — the harder case, where
//! equal particle counts force particle subdomains away from their mesh
//! blocks (paper Figure 5(c)).
//!
//! Shapes to reproduce: overheads exceed the uniform case; Hilbert still
//! beats snakelike except possibly when particles-per-processor is very
//! small (the paper calls out 32K on 128 processors).

use pic_bench::run_overhead;
use pic_particles::ParticleDistribution;

fn main() {
    run_overhead(
        ParticleDistribution::IrregularCenter,
        "fig22_overhead_irregular.csv",
        "Figure 22",
    );
}
