//! Hot-path performance baseline: the committed, CI-gated numbers every
//! performance-sensitive PR is measured against.
//!
//! Runs a fixed 8-rank threaded workload (128×64 mesh, 32 768 particles,
//! Hilbert indexing, periodic redistribution) and emits
//! `BENCH_hot_path.json` with:
//!
//! * end-to-end p50/p95 wall-clock per iteration and per phase
//!   (scatter / field-solve / gather / push / redistribute);
//! * heap allocations per steady-state iteration (counted by a global
//!   counting allocator, rank threads included);
//! * off-rank bytes exchanged per iteration;
//! * a key-sort microbench: the historical `(key, index)` comparison
//!   sort vs the radix path on a bounded Hilbert key domain.
//!
//! Modes:
//!
//! * default — measure and (re)write `BENCH_hot_path.json`, preserving
//!   any committed `before_*` section, plus `results/hot_path_baseline.csv`;
//! * `--before FILE` — embed FILE's live metrics as the `before_*`
//!   section of the freshly written baseline (used once, when the
//!   overhaul lands, to record the pre-overhaul numbers);
//! * `--check FILE` — CI gate: measure, compare against FILE, exit
//!   non-zero if the key-sort speedup is below 2× or any p95 regresses
//!   more than 25% past the committed baseline.  Does not rewrite the
//!   baseline.
//!
//! Set `PIC_HOST_THREADS` to pin the host worker count for reproducible
//! numbers on shared CI runners.
//!
//! Usage: `hot_path_baseline [--iters N | --quick] [--before FILE | --check FILE]`

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use pic_bench::{iters_from_args, paper_cfg, write_csv};
use pic_core::ThreadedPicSim;
use pic_index::IndexScheme;
use pic_machine::{MemoryRecorder, MetricsReport, PhaseKind, SharedRecorder, TraceEvent};
use pic_particles::ParticleDistribution;
use pic_partition::{radix_sorted_order_into, sorted_order_comparison, PolicyKind, RadixScratch};

/// Allocation-counting wrapper around the system allocator; the whole
/// process (rank threads included) shares the counter.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation to `System`; the counter increments
// are the only addition and have no effect on the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const RANKS: usize = 8;
const REPEATS: usize = 3;
const KEYSORT_N: usize = 1 << 16;
const KEYSORT_DOMAIN: u64 = 128 * 64; // keys < cells, the PIC invariant
const KEYSORT_REPEATS: usize = 5;
/// Phases gated individually by `--check`.
const GATED_PHASES: [PhaseKind; 5] = [
    PhaseKind::Scatter,
    PhaseKind::FieldSolve,
    PhaseKind::Gather,
    PhaseKind::Push,
    PhaseKind::Redistribute,
];
/// Regression tolerance of the CI gate: p95 may grow by at most 25%.
const TOLERANCE: f64 = 1.25;
/// Phase p95s below this floor (seconds) are noise, not gated.
const PHASE_NOISE_FLOOR_S: f64 = 0.0002;
/// Required key-sort microbench advantage of radix over comparison.
const MIN_KEYSORT_SPEEDUP: f64 = 2.0;

/// One full threaded run: per-iteration wall times, the trace events,
/// and the steady-state allocation count per iteration.
struct RunSample {
    iter_s: Vec<f64>,
    events: Vec<TraceEvent>,
    allocs_per_iter: f64,
}

fn run_once(iters: usize) -> RunSample {
    let cfg = paper_cfg(
        128,
        64,
        32_768,
        RANKS,
        ParticleDistribution::Uniform,
        IndexScheme::Hilbert,
        PolicyKind::Periodic(5),
    );
    let shared = SharedRecorder::new(MemoryRecorder::new());
    let mut sim = ThreadedPicSim::try_new_traced(cfg, None, Some(Box::new(shared.clone())))
        .expect("fault-free construction");
    let warmup = (iters / 4).clamp(1, 5);
    let mut iter_s = Vec::with_capacity(iters);
    let mut allocs_at_warmup = 0u64;
    for i in 0..iters {
        if i == warmup {
            allocs_at_warmup = ALLOCS.load(Ordering::Relaxed);
        }
        let t = Instant::now();
        sim.try_step().expect("fault-free iteration");
        iter_s.push(t.elapsed().as_secs_f64());
    }
    let steady_allocs = ALLOCS.load(Ordering::Relaxed) - allocs_at_warmup;
    RunSample {
        iter_s,
        events: shared.with(|rec| rec.take()),
        allocs_per_iter: steady_allocs as f64 / (iters - warmup) as f64,
    }
}

/// Min-of-N wall seconds for `f`.
fn best_of<F: FnMut()>(n: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..n {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// The key-sort microbench: comparison vs radix on a bounded key domain
/// with many duplicates (the redistribution workload).
fn keysort_micro() -> (f64, f64) {
    let keys: Vec<u64> = (0..KEYSORT_N as u64)
        .map(|i| (i.wrapping_mul(2_654_435_761)) % KEYSORT_DOMAIN)
        .collect();
    let comparison_s = best_of(KEYSORT_REPEATS, || {
        std::hint::black_box(sorted_order_comparison(std::hint::black_box(&keys)));
    });
    let mut order = Vec::new();
    let mut scratch = RadixScratch::default();
    let radix_s = best_of(KEYSORT_REPEATS, || {
        radix_sorted_order_into(std::hint::black_box(&keys), &mut order, &mut scratch);
        std::hint::black_box(&order);
    });
    (comparison_s, radix_s)
}

/// Scan `text` for `"key": <number>` and parse the number.  Enough JSON
/// parsing for our own flat, uniquely keyed baseline files.
fn json_num(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Render flat `(key, value)` pairs as a stable, human-diffable JSON
/// object.
fn render_json(pairs: &[(String, f64)]) -> String {
    let mut out = String::from("{\n");
    for (i, (k, v)) in pairs.iter().enumerate() {
        let sep = if i + 1 == pairs.len() { "" } else { "," };
        // integers print without a fraction so committed diffs stay clean
        if v.fract() == 0.0 && v.abs() < 1e15 {
            out.push_str(&format!("  \"{k}\": {}{sep}\n", *v as i64));
        } else {
            out.push_str(&format!("  \"{k}\": {v:.6}{sep}\n"));
        }
    }
    out.push_str("}\n");
    out
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|p| args.get(p + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let before_file = flag_value(&args, "--before");
    let check_file = flag_value(&args, "--check");
    let iters = iters_from_args(60);

    println!(
        "hot_path_baseline: {RANKS}-rank threaded workload, {iters} iterations, \
         best of {REPEATS} repeats\n"
    );

    // --- key-sort microbench -------------------------------------------
    let (cmp_s, radix_s) = keysort_micro();
    let speedup = cmp_s / radix_s;
    println!(
        "key sort ({KEYSORT_N} keys < {KEYSORT_DOMAIN}): comparison {:.3} ms, \
         radix {:.3} ms, speedup {speedup:.2}x",
        cmp_s * 1e3,
        radix_s * 1e3
    );

    // --- end-to-end workload -------------------------------------------
    let mut best: Option<RunSample> = None;
    for _ in 0..REPEATS {
        let sample = run_once(iters);
        let total: f64 = sample.iter_s.iter().sum();
        if best
            .as_ref()
            .map(|b| total < b.iter_s.iter().sum::<f64>())
            .unwrap_or(true)
        {
            best = Some(sample);
        }
    }
    let best = best.expect("at least one repeat");
    let report = MetricsReport::from_events(&best.events);
    let total_bytes: u64 = best
        .events
        .iter()
        .filter_map(TraceEvent::superstep)
        .map(|e| e.total_bytes)
        .sum();
    let bytes_per_iter = total_bytes as f64 / iters as f64;

    let mut live: Vec<(String, f64)> = vec![
        ("ranks".into(), RANKS as f64),
        ("iters".into(), iters as f64),
        ("keysort_n".into(), KEYSORT_N as f64),
        ("keysort_comparison_ms".into(), cmp_s * 1e3),
        ("keysort_radix_ms".into(), radix_s * 1e3),
        ("keysort_speedup".into(), speedup),
        (
            "iter_p50_ms".into(),
            pic_machine::trace::percentile(&best.iter_s, 0.50) * 1e3,
        ),
        (
            "iter_p95_ms".into(),
            pic_machine::trace::percentile(&best.iter_s, 0.95) * 1e3,
        ),
        (
            "iter_mean_ms".into(),
            best.iter_s.iter().sum::<f64>() / iters as f64 * 1e3,
        ),
        ("allocs_per_iter".into(), best.allocs_per_iter),
        ("bytes_per_iter".into(), bytes_per_iter),
    ];
    for phase in GATED_PHASES {
        if let Some(m) = report.phases().iter().find(|m| m.phase == phase) {
            live.push((format!("phase_{}_p50_ms", phase.label()), m.p50_s * 1e3));
            live.push((format!("phase_{}_p95_ms", phase.label()), m.p95_s * 1e3));
        }
    }

    println!("\n{}", report.render());
    for (k, v) in &live {
        println!("{k:<28} {v:>14.4}");
    }

    // --- CI gate mode --------------------------------------------------
    if let Some(path) = check_file {
        let baseline = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let mut failures = Vec::new();
        if speedup < MIN_KEYSORT_SPEEDUP {
            failures.push(format!(
                "key-sort speedup {speedup:.2}x below required {MIN_KEYSORT_SPEEDUP:.1}x"
            ));
        }
        let mut gate = |key: &str, live_ms: f64, floor_s: f64| {
            if let Some(base_ms) = json_num(&baseline, key) {
                if base_ms >= floor_s * 1e3 && live_ms > base_ms * TOLERANCE {
                    failures.push(format!(
                        "{key}: {live_ms:.3} ms vs baseline {base_ms:.3} ms \
                         (> {TOLERANCE}x tolerance)"
                    ));
                }
            }
        };
        let live_val = |key: &str| {
            live.iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| *v)
                .unwrap_or(0.0)
        };
        gate("iter_p95_ms", live_val("iter_p95_ms"), 0.0);
        for phase in GATED_PHASES {
            let key = format!("phase_{}_p95_ms", phase.label());
            gate(&key, live_val(&key), PHASE_NOISE_FLOOR_S);
        }
        if failures.is_empty() {
            println!("\nperf gate vs {path}: PASS");
            return;
        }
        eprintln!("\nperf gate vs {path}: FAIL");
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }

    // --- write the baseline --------------------------------------------
    let out_path = "BENCH_hot_path.json";
    let mut pairs = live.clone();
    if let Some(path) = before_file {
        // record FILE's live metrics as the before_* section
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read before file {path}: {e}"));
        for (k, _) in &live {
            if let Some(v) = json_num(&text, k) {
                pairs.push((format!("before_{k}"), v));
            }
        }
    } else if let Ok(existing) = std::fs::read_to_string(out_path) {
        // keep the committed before_* section across re-runs
        for (k, _) in &live {
            let bk = format!("before_{k}");
            if let Some(v) = json_num(&existing, &bk) {
                pairs.push((bk, v));
            }
        }
    }
    std::fs::write(out_path, render_json(&pairs)).expect("write BENCH_hot_path.json");
    eprintln!("wrote {out_path}");
    write_csv(
        "hot_path_baseline.csv",
        "metric,value",
        &pairs
            .iter()
            .map(|(k, v)| format!("{k},{v:.6}"))
            .collect::<Vec<_>>(),
    );
}
