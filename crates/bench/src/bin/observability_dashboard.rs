//! Observability artifact generator: one 8-rank run, every exporter.
//!
//! Three seeded runs of the same irregular 8-rank workload produce the
//! committed `results/` artifacts of the metrics subsystem:
//!
//! * **Run A** — modeled machine under the paper's stop-at-rise
//!   (`DynamicSar`) policy, recorder + metrics registry installed:
//!   - `sar_audit.csv` — every [`pic_machine::trace::PolicyDecisionEvent`],
//!     one row per iteration: the full Eq. 1 audit trail;
//!   - `comm_matrix.csv` — rank-pair messages/bytes, sender and
//!     receiver tallies side by side;
//!   - `metrics_snapshot.prom` — the Prometheus text exposition of the
//!     final registry state;
//! * **Runs B/C** — the same phase program (measurement-independent
//!   `Periodic` policy) on the modeled and the real-threads executor:
//!   - `model_error.csv` — the measured-vs-modeled per-phase report
//!     (paper Section 4, Figures 17–19);
//! * `dashboard.html` — the self-contained HTML/SVG dashboard over Run
//!   A's trace plus the model-error table.
//!
//! Usage: `observability_dashboard [--iters N | --quick]`

use pic_bench::{render_dashboard, write_csv};
use pic_core::{model_error_report, ModelErrorReport, SimConfig};
use pic_index::IndexScheme;
use pic_machine::{MachineConfig, MemoryRecorder, SharedMetrics, SharedRecorder, TraceEvent};
use pic_particles::ParticleDistribution;
use pic_partition::PolicyKind;

const RANKS: usize = 8;

fn cfg(policy: PolicyKind) -> SimConfig {
    SimConfig {
        nx: 64,
        ny: 32,
        particles: 8192,
        machine: MachineConfig::cm5(RANKS),
        distribution: ParticleDistribution::IrregularCenter,
        scheme: IndexScheme::Hilbert,
        policy,
        seed: 7,
        ..SimConfig::small_test()
    }
}

/// Run `iters` observed iterations; return the trace and the registry.
fn observed_run<E: pic_machine::SpmdEngine<pic_core::RankState>>(
    cfg: SimConfig,
    iters: usize,
) -> (Vec<TraceEvent>, SharedMetrics) {
    let recorder = SharedRecorder::new(MemoryRecorder::new());
    let metrics = SharedMetrics::new(cfg.machine.ranks);
    let mut sim = pic_core::GenericPicSim::<E>::try_new_observed(
        cfg,
        None,
        Some(Box::new(recorder.clone())),
        Some(metrics.clone()),
    )
    .expect("fault-free setup");
    for _ in 0..iters {
        sim.try_step().expect("fault-free iteration");
    }
    (recorder.with(|r| r.events().to_vec()), metrics)
}

fn sar_audit_rows(events: &[TraceEvent]) -> Vec<String> {
    events
        .iter()
        .filter_map(TraceEvent::policy_decision)
        .map(|d| {
            format!(
                "{},{:.9},{:.9},{:.9},{:.9},{:.9},{}",
                d.iter,
                d.time_s,
                d.observed_s,
                d.baseline_s,
                d.projected_loss_s,
                d.threshold_s,
                d.fired
            )
        })
        .collect()
}

fn model_validation(iters: usize) -> ModelErrorReport {
    // same measurement-independent phase program on both executors,
    // so the traces pair superstep for superstep
    let periodic = cfg(PolicyKind::Periodic(10));
    let (modeled, _) =
        observed_run::<pic_machine::Machine<pic_core::RankState>>(periodic.clone(), iters);
    let (measured, _) =
        observed_run::<pic_machine::ThreadedMachine<pic_core::RankState>>(periodic, iters);
    model_error_report(&modeled, &measured)
}

fn main() {
    let iters = pic_bench::iters_from_args(60);
    println!("Observability dashboard: {RANKS}-rank irregular workload, {iters} iterations\n");

    // Run A: the audited stop-at-rise run
    let (events, metrics) = observed_run::<pic_machine::Machine<pic_core::RankState>>(
        cfg(PolicyKind::DynamicSar),
        iters,
    );
    let reg = metrics.snapshot();
    write_csv(
        "sar_audit.csv",
        "iter,time_s,observed_s,baseline_s,projected_loss_s,threshold_s,fired",
        &sar_audit_rows(&events),
    );
    write_csv(
        "comm_matrix.csv",
        pic_machine::CommMatrix::CSV_HEADER,
        &reg.comm().csv_rows(),
    );
    std::fs::write("results/metrics_snapshot.prom", reg.prometheus_text())
        .expect("write results/metrics_snapshot.prom");
    eprintln!("wrote results/metrics_snapshot.prom");
    let fired = reg.counter("pic_policy_fired_total");
    println!(
        "stop-at-rise fired {fired} time(s) over {iters} iterations; \
         comm matrix carries {} B total",
        reg.comm().total_sent_bytes()
    );
    assert!(
        reg.comm().is_conserved(),
        "sender/receiver tallies disagree"
    );

    // Runs B/C: model validation across executors
    let report = model_validation(iters);
    println!("\n{}", report.render());
    write_csv(
        "model_error.csv",
        ModelErrorReport::CSV_HEADER,
        &report.csv_rows(),
    );

    // the one-file dashboard over everything above
    let html = render_dashboard(
        &format!("PIC observability — {RANKS} ranks, {iters} iterations, stop-at-rise"),
        &events,
        &reg,
        Some(&report),
    );
    std::fs::write("results/dashboard.html", html).expect("write results/dashboard.html");
    eprintln!("wrote results/dashboard.html");
}
