//! Observability acceptance benchmark: the cost of tracing a real
//! 4-rank threaded run, plus the exported artifacts.
//!
//! Runs the same `ThreadedPicSim` workload twice — recorder off, then
//! recorder on (JSON-lines file + in-memory buffer fan-out) — and
//! reports the wall-clock overhead of tracing, which must stay under
//! 5%: the whole point of the span layer is that it only aggregates
//! per-superstep counters the executors already maintain, on the
//! driving thread, never inside a rank thread.
//!
//! Artifacts written under `results/`:
//!
//! * `observability_overhead.csv` — the recorder-off/on comparison;
//! * `trace_4rank.jsonl` — the raw JSON-lines event stream;
//! * `chrome_trace_4rank.json` — load in `chrome://tracing` / Perfetto;
//! * `observability_phase_metrics.csv` — per-phase p50/p95/max table.
//!
//! Usage: `observability_overhead [--iters N | --quick]`

use std::time::Instant;

use pic_bench::{iters_from_args, write_csv};
use pic_core::{SimConfig, ThreadedPicSim};
use pic_machine::trace::chrome_trace;
use pic_machine::{
    JsonLinesRecorder, MachineConfig, MemoryRecorder, MetricsReport, MultiRecorder, Recorder,
    SharedRecorder, TraceEvent,
};
use pic_partition::PolicyKind;

const RANKS: usize = 4;
const REPEATS: usize = 3;

fn bench_cfg() -> SimConfig {
    SimConfig {
        machine: MachineConfig::cm5(RANKS),
        // enough per-iteration work that the run measures the simulation,
        // not thread spawns: event volume scales with supersteps (a few
        // dozen events per iteration), not with particles
        particles: 32_768,
        policy: PolicyKind::Periodic(10),
        ..SimConfig::small_test()
    }
}

/// Wall seconds for one full construct-and-run, with `recorder`
/// installed from setup onward.
fn run_once(iters: usize, recorder: Option<Box<dyn Recorder>>) -> f64 {
    let start = Instant::now();
    let mut sim = ThreadedPicSim::try_new_traced(bench_cfg(), None, recorder)
        .expect("fault-free construction");
    for _ in 0..iters {
        sim.try_step().expect("fault-free iteration");
    }
    if let Some(rec) = sim.recorder_mut() {
        rec.flush();
    }
    start.elapsed().as_secs_f64()
}

fn main() {
    let iters = iters_from_args(40);
    println!(
        "Observability overhead: {RANKS}-rank threaded run, {iters} iterations, \
         best of {REPEATS} repeats\n"
    );

    // recorder off: the plain run
    let off_s = (0..REPEATS)
        .map(|_| run_once(iters, None))
        .fold(f64::INFINITY, f64::min);

    // recorder on: JSON-lines file + in-memory buffer, re-created per
    // repeat so every run pays the full setup; the last repeat's events
    // feed the exporters
    let mut on_s = f64::INFINITY;
    let mut shared = SharedRecorder::new(MemoryRecorder::new());
    for _ in 0..REPEATS {
        std::fs::create_dir_all("results").expect("create results dir");
        let file = JsonLinesRecorder::create("results/trace_4rank.jsonl")
            .expect("create results/trace_4rank.jsonl");
        shared = SharedRecorder::new(MemoryRecorder::new());
        let rec = MultiRecorder::new()
            .with(Box::new(file))
            .with(Box::new(shared.clone()));
        on_s = on_s.min(run_once(iters, Some(Box::new(rec))));
    }
    let events: Vec<TraceEvent> = shared.with(|rec| rec.take());

    let overhead_pct = 100.0 * (on_s / off_s - 1.0);
    println!("{:<22} {:>10.4} s", "recorder off", off_s);
    println!("{:<22} {:>10.4} s", "recorder on", on_s);
    println!(
        "{:<22} {:>9.2} %  (acceptance: < 5%)",
        "overhead", overhead_pct
    );
    println!("{:<22} {:>10}", "events captured", events.len());
    write_csv(
        "observability_overhead.csv",
        "ranks,iters,repeats,recorder_off_s,recorder_on_s,overhead_pct",
        &[format!(
            "{RANKS},{iters},{REPEATS},{off_s:.6},{on_s:.6},{overhead_pct:.3}"
        )],
    );

    // Chrome trace: one complete event per rank-span, instants for the
    // driver events; load the file in chrome://tracing or Perfetto
    std::fs::write("results/chrome_trace_4rank.json", chrome_trace(&events))
        .expect("write chrome trace");
    eprintln!("wrote results/chrome_trace_4rank.json");

    // per-phase latency distribution, the observability layer's own view
    let report = MetricsReport::from_events(&events);
    println!("\n{}", report.render());
    write_csv(
        "observability_phase_metrics.csv",
        MetricsReport::CSV_HEADER,
        &report.csv_rows(),
    );
}
