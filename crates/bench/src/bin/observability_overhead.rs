//! Observability acceptance benchmark: the cost of tracing and metrics
//! on a real 4-rank threaded run, plus the exported artifacts.
//!
//! Runs the same `ThreadedPicSim` workload three times — everything off,
//! recorder on (JSON-lines file + in-memory buffer fan-out), then
//! recorder *and* metrics registry on — and reports the wall-clock
//! overhead of each, which must stay under 5%: the whole point of the
//! observability layer is that it only aggregates per-superstep counters
//! the executors already maintain, on the driving thread, never inside a
//! rank thread (the registry is locked once per superstep, never per
//! message).
//!
//! Artifacts written under `results/`:
//!
//! * `observability_overhead.csv` — the off/trace/trace+metrics comparison;
//! * `trace_4rank.jsonl` — the raw JSON-lines event stream;
//! * `chrome_trace_4rank.json` — load in `chrome://tracing` / Perfetto;
//! * `observability_phase_metrics.csv` — per-phase p50/p95/max table.
//!
//! Usage: `observability_overhead [--iters N | --quick] [--check]`
//!
//! With `--check` the process exits nonzero when the trace+metrics
//! overhead reaches 5%, which is how CI's `perf-smoke` job gates the
//! observability layer's cost.

use std::time::Instant;

use pic_bench::{iters_from_args, write_csv};
use pic_core::{SimConfig, ThreadedPicSim};
use pic_machine::trace::chrome_trace;
use pic_machine::{
    JsonLinesRecorder, MachineConfig, MemoryRecorder, MetricsReport, MultiRecorder, Recorder,
    SharedMetrics, SharedRecorder, TraceEvent,
};
use pic_partition::PolicyKind;

const RANKS: usize = 4;
const REPEATS: usize = 7;

fn bench_cfg() -> SimConfig {
    SimConfig {
        machine: MachineConfig::cm5(RANKS),
        // enough per-iteration work that the run measures the simulation,
        // not thread spawns: event volume scales with supersteps (a few
        // dozen events per iteration), not with particles
        particles: 32_768,
        policy: PolicyKind::Periodic(10),
        ..SimConfig::small_test()
    }
}

/// Wall seconds for one full construct-and-run, with `recorder` and
/// `metrics` installed from setup onward.
fn run_once(
    iters: usize,
    recorder: Option<Box<dyn Recorder>>,
    metrics: Option<SharedMetrics>,
) -> f64 {
    let start = Instant::now();
    let mut sim = ThreadedPicSim::try_new_observed(bench_cfg(), None, recorder, metrics)
        .expect("fault-free construction");
    for _ in 0..iters {
        sim.try_step().expect("fault-free iteration");
    }
    if let Some(rec) = sim.recorder_mut() {
        rec.flush();
    }
    start.elapsed().as_secs_f64()
}

fn main() {
    let iters = iters_from_args(80);
    let check = std::env::args().any(|a| a == "--check");
    println!(
        "Observability overhead: {RANKS}-rank threaded run, {iters} iterations, \
         median of {REPEATS} interleaved repeats\n"
    );

    // The three legs are interleaved within each repeat — off, recorder,
    // recorder+metrics back to back — so slow drift on the host (thermal,
    // a background compile) biases all three legs of a repeat equally.
    // Each repeat yields one overhead *ratio* per leg; the gate statistic
    // is the MINIMUM ratio over the repeats: scheduler preemption on an
    // oversubscribed host only ever adds time, so the least-disturbed
    // repeat is the cleanest measurement of the systematic cost, while a
    // real regression lifts every repeat and survives the min.
    std::fs::create_dir_all("results").expect("create results dir");
    let mut off_runs = Vec::with_capacity(REPEATS);
    let mut trace_ratios = Vec::with_capacity(REPEATS);
    let mut metrics_ratios = Vec::with_capacity(REPEATS);
    let mut shared = SharedRecorder::new(MemoryRecorder::new());
    for _ in 0..REPEATS {
        let off = run_once(iters, None, None);
        off_runs.push(off);

        // recorder leg: JSON-lines file + in-memory buffer, re-created
        // per repeat so every run pays the full setup; the last repeat's
        // events feed the exporters
        let file = JsonLinesRecorder::create("results/trace_4rank.jsonl")
            .expect("create results/trace_4rank.jsonl");
        shared = SharedRecorder::new(MemoryRecorder::new());
        let rec = MultiRecorder::new()
            .with(Box::new(file))
            .with(Box::new(shared.clone()));
        trace_ratios.push(run_once(iters, Some(Box::new(rec)), None) / off);

        // recorder + metrics registry: the full observability stack
        let file = JsonLinesRecorder::create("results/trace_4rank.jsonl")
            .expect("create results/trace_4rank.jsonl");
        let rec = MultiRecorder::new()
            .with(Box::new(file))
            .with(Box::new(SharedRecorder::new(MemoryRecorder::new())));
        let reg = SharedMetrics::new(RANKS);
        metrics_ratios.push(run_once(iters, Some(Box::new(rec)), Some(reg)) / off);
    }
    let events: Vec<TraceEvent> = shared.with(|rec| rec.take());

    let floor = |v: &[f64]| v.iter().copied().fold(f64::INFINITY, f64::min);
    let off_s = floor(&off_runs);
    let trace_s = off_s * floor(&trace_ratios);
    let metrics_s = off_s * floor(&metrics_ratios);
    let trace_pct = 100.0 * (floor(&trace_ratios) - 1.0);
    let metrics_pct = 100.0 * (floor(&metrics_ratios) - 1.0);
    println!("{:<22} {:>10.4} s", "everything off", off_s);
    println!("{:<22} {:>10.4} s", "recorder on", trace_s);
    println!("{:<22} {:>10.4} s", "recorder + metrics", metrics_s);
    println!("{:<22} {:>9.2} %", "trace overhead", trace_pct);
    println!(
        "{:<22} {:>9.2} %  (acceptance: < 5%)",
        "trace+metrics overhead", metrics_pct
    );
    println!("{:<22} {:>10}", "events captured", events.len());
    write_csv(
        "observability_overhead.csv",
        "ranks,iters,repeats,off_s,trace_s,trace_metrics_s,trace_overhead_pct,metrics_overhead_pct",
        &[format!(
            "{RANKS},{iters},{REPEATS},{off_s:.6},{trace_s:.6},{metrics_s:.6},\
             {trace_pct:.3},{metrics_pct:.3}"
        )],
    );

    // Chrome trace: one complete event per rank-span, counters for the
    // load curves, instants for the driver events; load the file in
    // chrome://tracing or Perfetto
    std::fs::write("results/chrome_trace_4rank.json", chrome_trace(&events))
        .expect("write chrome trace");
    eprintln!("wrote results/chrome_trace_4rank.json");

    // per-phase latency distribution, the observability layer's own view
    let report = MetricsReport::from_events(&events);
    println!("\n{}", report.render());
    write_csv(
        "observability_phase_metrics.csv",
        MetricsReport::CSV_HEADER,
        &report.csv_rows(),
    );

    if check && metrics_pct >= 5.0 {
        eprintln!("FAIL: trace+metrics overhead {metrics_pct:.2}% >= 5%");
        std::process::exit(1);
    }
}
