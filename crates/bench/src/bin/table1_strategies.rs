//! Table 1: computation load and communication patterns of the three
//! domain partitioning strategies under both particle movement methods.
//!
//! The paper's Table 1 is analytic; this harness reproduces it and backs
//! the two implementable corners with measurements:
//!
//! * **grid partitioning + direct Eulerian** — particles migrate to the
//!   rank owning their cell: field solve stays balanced, particle load
//!   drifts with the density, communication is local;
//! * **independent partitioning + direct Lagrangian** — the paper's
//!   choice: both loads balanced, communication proportional to the
//!   subdomain misalignment, repaired by redistribution.

use pic_bench::{iters_from_args, paper_cfg, write_csv};
use pic_core::{MovementMethod, ParallelPicSim};
use pic_index::IndexScheme;
use pic_particles::ParticleDistribution;
use pic_partition::PolicyKind;

fn main() {
    let iters = iters_from_args(100);

    println!("Table 1 (analytic, from the paper):\n");
    println!(
        "{:<14} {:<12} {:<14} {:<14} {:<22}",
        "movement", "partition", "field balance", "ptcl balance", "communication"
    );
    for (mv, part, fb, pb, comm) in [
        (
            "Eulerian",
            "grid",
            "balanced",
            "unbalanced",
            "local (boundaries)",
        ),
        (
            "Eulerian",
            "particle",
            "unbalanced",
            "unbalanced",
            "local (boundaries)",
        ),
        (
            "Eulerian",
            "independent",
            "balanced",
            "unbalanced",
            "non-local (subdomain diff)",
        ),
        (
            "Lagrangian",
            "grid",
            "balanced",
            "unbalanced",
            "non-local (subdomain diff)",
        ),
        (
            "Lagrangian",
            "particle",
            "unbalanced",
            "balanced",
            "non-local (subdomain diff)",
        ),
        (
            "Lagrangian",
            "independent",
            "balanced",
            "balanced",
            "non-local (subdomain diff)",
        ),
    ] {
        println!("{mv:<14} {part:<12} {fb:<14} {pb:<14} {comm:<22}");
    }

    println!("\nmeasured ({iters} iterations, irregular, 128x64, 32768 particles, 32 ranks):\n");
    println!(
        "{:<34} {:>12} {:>12} {:>12} {:>12}",
        "configuration", "min ptcls", "max ptcls", "imbalance", "total (s)"
    );
    let mut rows = Vec::new();
    for (label, movement, policy) in [
        (
            "grid partitioning + Eulerian",
            MovementMethod::Eulerian,
            PolicyKind::Static,
        ),
        (
            "independent + Lagrangian (static)",
            MovementMethod::Lagrangian,
            PolicyKind::Static,
        ),
        (
            "independent + Lagrangian (dynamic)",
            MovementMethod::Lagrangian,
            PolicyKind::DynamicSar,
        ),
    ] {
        let mut cfg = paper_cfg(
            128,
            64,
            32_768,
            32,
            ParticleDistribution::IrregularCenter,
            IndexScheme::Hilbert,
            policy,
        );
        cfg.movement = movement;
        let mut sim = ParallelPicSim::new(cfg);
        let report = sim.run(iters);
        let counts = sim.particle_counts();
        let (min, max) = (*counts.iter().min().unwrap(), *counts.iter().max().unwrap());
        let imbalance = max as f64 / (32_768.0 / 32.0);
        println!(
            "{:<34} {:>12} {:>12} {:>11.2}x {:>12.2}",
            label, min, max, imbalance, report.total_s
        );
        rows.push(format!(
            "{label},{min},{max},{imbalance:.4},{:.4}",
            report.total_s
        ));
    }
    write_csv(
        "table1_strategies.csv",
        "configuration,min_particles,max_particles,imbalance,total_s",
        &rows,
    );
    println!("\n(Eulerian: balanced fields but particle load tracks the density blob;");
    println!(" Lagrangian independent: both balanced, and dynamic repair wins on time)");
}
