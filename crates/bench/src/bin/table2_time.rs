//! Table 2: computational time (modeled seconds) of 200 iterations,
//! {uniform, irregular} x four (mesh, particles) sizes x {Hilbert,
//! snakelike} x {32, 64, 128} processors, dynamic redistribution.
//!
//! Shapes to reproduce: times roughly halve as the processor count
//! doubles; Hilbert <= snakelike everywhere except possibly the smallest
//! particles-per-processor case; absolute numbers land in the paper's
//! tens-to-hundreds-of-seconds range under the CM-5 cost model.

use pic_bench::{iters_from_args, paper_cfg, write_csv, TABLE2_PROCS, TABLE2_SIZES};
use pic_core::ParallelPicSim;
use pic_index::IndexScheme;
use pic_particles::ParticleDistribution;
use pic_partition::PolicyKind;

fn main() {
    let iters = iters_from_args(200);
    println!("Table 2: computational time of {iters} iterations (modeled s)\n");
    println!(
        "{:<11} {:<10} {:>8} {:<9} {:>10} {:>10} {:>10}",
        "distrib", "mesh", "partcls", "indexing", "p=32", "p=64", "p=128"
    );
    let mut rows = Vec::new();
    for dist in [
        ParticleDistribution::Uniform,
        ParticleDistribution::IrregularCenter,
    ] {
        for (nx, ny, n) in TABLE2_SIZES {
            for scheme in [IndexScheme::Hilbert, IndexScheme::Snake] {
                let mut times = Vec::new();
                for p in TABLE2_PROCS {
                    let cfg = paper_cfg(nx, ny, n, p, dist, scheme, PolicyKind::DynamicSar);
                    let mut sim = ParallelPicSim::new(cfg);
                    times.push(sim.run(iters).total_s);
                }
                println!(
                    "{:<11} {:<10} {:>8} {:<9} {:>10.2} {:>10.2} {:>10.2}",
                    dist.label(),
                    format!("{nx}x{ny}"),
                    n,
                    scheme.label(),
                    times[0],
                    times[1],
                    times[2]
                );
                rows.push(format!(
                    "{},{}x{},{},{},{:.3},{:.3},{:.3}",
                    dist.label(),
                    nx,
                    ny,
                    n,
                    scheme.label(),
                    times[0],
                    times[1],
                    times[2]
                ));
            }
        }
        println!();
    }
    write_csv(
        "table2_time.csv",
        "distribution,mesh,particles,indexing,t_p32,t_p64,t_p128",
        &rows,
    );
    println!("paper anchors (CM-5, measured): uniform 256x128/32768 p=32 -> 72.47 s;");
    println!("uniform 512x256/131072 p=32 -> 292.55 s; irregular within a few % of uniform.");
}
