//! Table 3: efficiency of the Hilbert indexing scheme —
//! `E = T_seq / (p * T_p)` over the Table 2 grid.
//!
//! Shape to reproduce: efficiency stays roughly constant when the number
//! of particles per processor is fixed (e.g. 32K/32p vs 64K/64p), i.e.
//! the indexing scheme scales; larger per-processor grain gives higher
//! efficiency.

use pic_bench::{
    iters_from_args, paper_cfg, sequential_modeled_time, write_csv, TABLE2_PROCS, TABLE2_SIZES,
};
use pic_core::ParallelPicSim;
use pic_index::IndexScheme;
use pic_particles::ParticleDistribution;
use pic_partition::PolicyKind;

fn main() {
    let iters = iters_from_args(200);
    println!("Table 3: efficiency of the Hilbert indexing scheme ({iters} iterations)\n");
    println!(
        "{:<11} {:<10} {:>8} {:>8} {:>8} {:>8}",
        "distrib", "mesh", "partcls", "p=32", "p=64", "p=128"
    );
    let mut rows = Vec::new();
    for dist in [
        ParticleDistribution::Uniform,
        ParticleDistribution::IrregularCenter,
    ] {
        for (nx, ny, n) in TABLE2_SIZES {
            let mut effs = Vec::new();
            for p in TABLE2_PROCS {
                let cfg = paper_cfg(
                    nx,
                    ny,
                    n,
                    p,
                    dist,
                    IndexScheme::Hilbert,
                    PolicyKind::DynamicSar,
                );
                let t_seq = sequential_modeled_time(&cfg, iters);
                let mut sim = ParallelPicSim::new(cfg);
                let t_p = sim.run(iters).total_s;
                effs.push(t_seq / (p as f64 * t_p));
            }
            println!(
                "{:<11} {:<10} {:>8} {:>8.3} {:>8.3} {:>8.3}",
                dist.label(),
                format!("{nx}x{ny}"),
                n,
                effs[0],
                effs[1],
                effs[2]
            );
            rows.push(format!(
                "{},{}x{},{},{:.4},{:.4},{:.4}",
                dist.label(),
                nx,
                ny,
                n,
                effs[0],
                effs[1],
                effs[2]
            ));
        }
        println!();
    }
    write_csv(
        "table3_efficiency.csv",
        "distribution,mesh,particles,eff_p32,eff_p64,eff_p128",
        &rows,
    );
    println!("scaling check: efficiency at (32K, p=32) should be close to (64K, p=64),");
    println!("and (64K@512x256, p=64) close to (128K, p=128) — fixed grain per processor.");
}
