//! Wall-clock comparison of the two executors running the identical
//! simulation: the modeled BSP machine (host-parallel rank loops,
//! `ExecMode::Rayon`) versus the real-threads executor (one OS thread
//! per rank, genuine message passing).
//!
//! Three things worth reading off the table:
//!
//! * **validation** — both executors must report identical particle
//!   spreads (`max/min n_r`); the physics is executor-independent;
//! * **host cost of real message passing** — the threaded executor pays
//!   for thread spawns, channel sends and scheduler pressure every
//!   superstep, where the modeled machine just loops over ranks;
//! * **model vs reality** — the modeled seconds (τ/μ/δ) against the
//!   threaded executor's wall seconds show how the abstract CM-5 cost
//!   model scales relative to an actual shared-memory host.
//!
//! Usage: `threaded_vs_modeled [iterations] [ranks...]`

use std::time::Instant;

use pic_bench::write_csv;
use pic_core::state::RankState;
use pic_core::{GenericPicSim, SimConfig};
use pic_machine::{Machine, MachineConfig, SpmdEngine, ThreadedMachine};
use pic_partition::PolicyKind;

struct Row {
    executor: &'static str,
    ranks: usize,
    wall_s: f64,
    reported_s: f64,
    max_particles: usize,
    min_particles: usize,
}

fn bench_cfg(ranks: usize) -> SimConfig {
    SimConfig {
        machine: MachineConfig::cm5(ranks),
        particles: 4096,
        // periodic policy: keeps the two executors' redistribution
        // schedules identical, so the workloads match step for step
        policy: PolicyKind::Periodic(10),
        ..SimConfig::small_test()
    }
}

fn run_one<E: SpmdEngine<RankState>>(executor: &'static str, ranks: usize, iters: usize) -> Row {
    let start = Instant::now();
    let mut sim: GenericPicSim<E> = GenericPicSim::new(bench_cfg(ranks));
    let report = sim.run(iters);
    let wall_s = start.elapsed().as_secs_f64();
    let counts = sim.particle_counts();
    let last = report
        .iterations
        .last()
        .expect("ran at least one iteration");
    assert_eq!(
        counts.iter().sum::<usize>(),
        sim.config().particles,
        "particle conservation"
    );
    Row {
        executor,
        ranks,
        wall_s,
        reported_s: report.total_s,
        max_particles: last.max_particles,
        min_particles: last.min_particles,
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let iters: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(20);
    let rank_list: Vec<usize> = {
        let rest: Vec<usize> = args.filter_map(|a| a.parse().ok()).collect();
        if rest.is_empty() {
            vec![2, 4, 8]
        } else {
            rest
        }
    };

    println!("Executor comparison: modeled BSP machine vs real-threads, {iters} iterations\n");
    println!(
        "{:<10} {:>6} {:>12} {:>14} {:>10} {:>10}",
        "executor", "p", "wall (s)", "reported (s)", "max n_r", "min n_r"
    );
    let mut rows = Vec::new();
    for &p in &rank_list {
        let modeled = run_one::<Machine<RankState>>("modeled", p, iters);
        let threaded = run_one::<ThreadedMachine<RankState>>("threaded", p, iters);
        assert_eq!(
            (modeled.max_particles, modeled.min_particles),
            (threaded.max_particles, threaded.min_particles),
            "executors disagree on particle spread at p={p}"
        );
        for r in [&modeled, &threaded] {
            println!(
                "{:<10} {:>6} {:>12.4} {:>14.4} {:>10} {:>10}",
                r.executor, r.ranks, r.wall_s, r.reported_s, r.max_particles, r.min_particles
            );
            rows.push(format!(
                "{},{},{:.6},{:.6},{},{}",
                r.executor, r.ranks, r.wall_s, r.reported_s, r.max_particles, r.min_particles
            ));
        }
    }
    write_csv(
        "threaded_vs_modeled.csv",
        "executor,ranks,wall_s,reported_s,max_particles,min_particles",
        &rows,
    );
    println!();
    println!("(\"reported\" is modeled tau/mu/delta seconds for the modeled executor and");
    println!(" accumulated wall seconds for the threaded one; wall is end-to-end host time)");
}
