//! Terminal line charts for the figure harnesses.
//!
//! The paper's Figures 17–19 are per-iteration time series; rendering
//! them directly in the terminal makes the reproduced *shapes* (static
//! climbing, periodic sawtooths) visible without leaving the harness.

/// Render one or more series as an ASCII chart of `width x height`
/// characters.  Series are downsampled by averaging into `width` buckets
/// and share a common y scale; each series draws with its own glyph.
pub fn render_chart(series: &[(&str, &[f64])], width: usize, height: usize) -> String {
    assert!(width >= 8 && height >= 2, "chart too small");
    assert!(!series.is_empty(), "no series");
    let glyphs = ['*', 'o', '+', 'x', '#', '@'];

    // bucket each series down to `width` points
    let bucketed: Vec<(usize, Vec<f64>)> = series
        .iter()
        .enumerate()
        .map(|(si, (_, data))| {
            let mut out = Vec::with_capacity(width);
            if data.is_empty() {
                return (si, out);
            }
            for b in 0..width {
                let lo = b * data.len() / width;
                let hi = ((b + 1) * data.len() / width).max(lo + 1).min(data.len());
                let mean = data[lo..hi].iter().sum::<f64>() / (hi - lo) as f64;
                out.push(mean);
            }
            (si, out)
        })
        .collect();

    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for (_, pts) in &bucketed {
        for &v in pts {
            min = min.min(v);
            max = max.max(v);
        }
    }
    if !min.is_finite() || (max - min).abs() < 1e-300 {
        max = min + 1.0;
    }

    let mut canvas = vec![vec![' '; width]; height];
    for (si, pts) in &bucketed {
        let glyph = glyphs[si % glyphs.len()];
        for (x, &v) in pts.iter().enumerate() {
            let frac = (v - min) / (max - min);
            let y = ((1.0 - frac) * (height - 1) as f64).round() as usize;
            canvas[y.min(height - 1)][x] = glyph;
        }
    }

    let mut out = String::new();
    out.push_str(&format!("{max:>12.4}  ┐\n"));
    for row in &canvas {
        out.push_str("              │");
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!("{min:>12.4}  ┘\n"));
    out.push_str("               ");
    for (si, (name, _)) in series.iter().enumerate() {
        out.push_str(&format!("{} {}   ", glyphs[si % glyphs.len()], name));
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rising_series_occupies_the_diagonal() {
        let data: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let chart = render_chart(&[("rise", &data)], 20, 10);
        let lines: Vec<&str> = chart.lines().collect();
        // first canvas row (top) has the glyph near the right edge
        let top = lines[1];
        let bottom = lines[10];
        assert!(top.rfind('*').unwrap() > bottom.rfind('*').unwrap());
    }

    #[test]
    fn two_series_use_distinct_glyphs() {
        let a: Vec<f64> = vec![1.0; 50];
        let b: Vec<f64> = vec![2.0; 50];
        let chart = render_chart(&[("a", &a), ("b", &b)], 20, 6);
        assert!(chart.contains('*'));
        assert!(chart.contains('o'));
        assert!(chart.contains("* a"));
        assert!(chart.contains("o b"));
    }

    #[test]
    fn constant_series_does_not_divide_by_zero() {
        let a: Vec<f64> = vec![3.0; 10];
        let chart = render_chart(&[("flat", &a)], 10, 4);
        assert!(chart.contains('*'));
    }

    #[test]
    #[should_panic(expected = "chart too small")]
    fn tiny_chart_rejected() {
        render_chart(&[("x", &[1.0])], 2, 1);
    }
}
