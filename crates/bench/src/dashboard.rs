//! Self-contained HTML/SVG observability dashboard.
//!
//! The second exporter of the metrics subsystem (the first is
//! [`pic_machine::MetricsRegistry::prometheus_text`]): one hand-rolled
//! HTML file with inline SVG — no JavaScript, no external assets — that
//! a reviewer can open straight from `results/` to see what a run did:
//!
//! 1. **Load imbalance over time** — per-iteration `max/mean` particle
//!    imbalance factor from the [`RankLoadEvent`] stream, with vertical
//!    markers on the iterations where a redistribution ran;
//! 2. **Communication matrix heatmap** — sender-side bytes per rank
//!    pair from the [`pic_machine::CommMatrix`];
//! 3. **SAR decision timeline** — every [`PolicyDecisionEvent`]:
//!    projected loss vs the redistribution-cost threshold, fired
//!    decisions highlighted;
//! 4. **Model-error table** — the per-phase measured-vs-modeled rows of
//!    a [`pic_core::ModelErrorReport`], when one is supplied.

use pic_core::ModelErrorReport;
use pic_machine::trace::{PolicyDecisionEvent, RankLoadEvent};
use pic_machine::{MetricsRegistry, TraceEvent};

/// Chart geometry shared by the SVG panels.
const W: f64 = 640.0;
const H: f64 = 220.0;
const PAD: f64 = 42.0;

fn fmt(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1e4 || v.abs() < 1e-3 {
        format!("{v:.2e}")
    } else {
        format!("{v:.3}")
    }
}

/// Map `v` in `[lo, hi]` to an x pixel inside the plot area.
fn px(v: f64, lo: f64, hi: f64) -> f64 {
    let span = if hi > lo { hi - lo } else { 1.0 };
    PAD + (v - lo) / span * (W - 2.0 * PAD)
}

/// Map `v` in `[lo, hi]` to a y pixel (SVG y grows downward).
fn py(v: f64, lo: f64, hi: f64) -> f64 {
    let span = if hi > lo { hi - lo } else { 1.0 };
    H - PAD - (v - lo) / span * (H - 2.0 * PAD)
}

/// Shared frame: axes, y-range labels, x-range labels, panel title.
fn frame(title: &str, x_lo: f64, x_hi: f64, y_lo: f64, y_hi: f64) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "<text x=\"{PAD}\" y=\"16\" class=\"t\">{title}</text>"
    ));
    s.push_str(&format!(
        "<line x1=\"{PAD}\" y1=\"{0}\" x2=\"{1}\" y2=\"{0}\" class=\"ax\"/>",
        H - PAD,
        W - PAD
    ));
    s.push_str(&format!(
        "<line x1=\"{PAD}\" y1=\"{PAD}\" x2=\"{PAD}\" y2=\"{}\" class=\"ax\"/>",
        H - PAD
    ));
    s.push_str(&format!(
        "<text x=\"{}\" y=\"{}\" class=\"l\" text-anchor=\"end\">{}</text>",
        PAD - 4.0,
        PAD + 4.0,
        fmt(y_hi)
    ));
    s.push_str(&format!(
        "<text x=\"{}\" y=\"{}\" class=\"l\" text-anchor=\"end\">{}</text>",
        PAD - 4.0,
        H - PAD + 4.0,
        fmt(y_lo)
    ));
    s.push_str(&format!(
        "<text x=\"{PAD}\" y=\"{}\" class=\"l\">{}</text>",
        H - PAD + 16.0,
        fmt(x_lo)
    ));
    s.push_str(&format!(
        "<text x=\"{}\" y=\"{}\" class=\"l\" text-anchor=\"end\">{}</text>",
        W - PAD,
        H - PAD + 16.0,
        fmt(x_hi)
    ));
    s
}

/// SVG panel 1: imbalance factor over iterations + redistribution marks.
fn imbalance_panel(loads: &[&RankLoadEvent], redists: &[u64]) -> String {
    let series: Vec<(f64, f64)> = loads
        .iter()
        .map(|l| {
            let max = l.counts.iter().copied().max().unwrap_or(0) as f64;
            let mean = l.counts.iter().sum::<u64>() as f64 / l.counts.len().max(1) as f64;
            let imb = if mean > 0.0 { max / mean } else { 1.0 };
            (l.iter as f64, imb)
        })
        .collect();
    if series.is_empty() {
        return "<p>(no rank-load events in the trace)</p>".to_string();
    }
    let x_hi = series.last().unwrap().0.max(1.0);
    let y_hi = series.iter().map(|&(_, v)| v).fold(1.0f64, f64::max) * 1.05;
    let mut svg = format!("<svg viewBox=\"0 0 {W} {H}\" class=\"panel\">");
    svg.push_str(&frame(
        "load imbalance (max/mean particles) per iteration",
        0.0,
        x_hi,
        1.0,
        y_hi,
    ));
    for &iter in redists {
        let x = px(iter as f64, 0.0, x_hi);
        svg.push_str(&format!(
            "<line x1=\"{x:.1}\" y1=\"{PAD}\" x2=\"{x:.1}\" y2=\"{:.1}\" class=\"mark\"/>",
            H - PAD
        ));
    }
    let pts: Vec<String> = series
        .iter()
        .map(|&(x, y)| format!("{:.1},{:.1}", px(x, 0.0, x_hi), py(y, 1.0, y_hi)))
        .collect();
    svg.push_str(&format!(
        "<polyline points=\"{}\" class=\"line\"/>",
        pts.join(" ")
    ));
    svg.push_str("</svg>");
    svg
}

/// SVG panel 2: rank-pair heatmap of sender-side bytes.
fn comm_heatmap(reg: &MetricsRegistry) -> String {
    let comm = reg.comm();
    let p = comm.ranks();
    if p == 0 {
        return "<p>(empty communication matrix)</p>".to_string();
    }
    let peak = comm.max_pair_bytes().max(1) as f64;
    let side = 360.0;
    let cell = side / p as f64;
    let mut svg = format!(
        "<svg viewBox=\"0 0 {} {}\" class=\"panel\">",
        side + 90.0,
        side + 40.0
    );
    svg.push_str(&format!(
        "<text x=\"0\" y=\"16\" class=\"t\">communication matrix: bytes sent, src row &#8594; dst column \
         (peak {} B)</text>",
        comm.max_pair_bytes()
    ));
    for from in 0..p {
        for to in 0..p {
            let (_, bytes) = comm.sent(from, to);
            // perceptual-ish ramp: white → deep red on a sqrt scale so
            // halo traffic doesn't vanish next to redistribution bursts
            let f = (bytes as f64 / peak).sqrt();
            let ch = (255.0 - 205.0 * f) as u8;
            svg.push_str(&format!(
                "<rect x=\"{:.1}\" y=\"{:.1}\" width=\"{:.1}\" height=\"{:.1}\" \
                 fill=\"rgb(255,{ch},{ch})\"><title>{from}&#8594;{to}: {bytes} B</title></rect>",
                to as f64 * cell,
                24.0 + from as f64 * cell,
                cell,
                cell,
            ));
        }
        svg.push_str(&format!(
            "<text x=\"{:.1}\" y=\"{:.1}\" class=\"l\">{from}</text>",
            side + 6.0,
            24.0 + (from as f64 + 0.7) * cell
        ));
    }
    svg.push_str("</svg>");
    svg
}

/// SVG panel 3: SAR decision timeline — projected loss vs threshold.
fn sar_panel(decisions: &[&PolicyDecisionEvent]) -> String {
    let finite: Vec<&&PolicyDecisionEvent> = decisions
        .iter()
        .filter(|d| d.projected_loss_s.is_finite() && d.threshold_s.is_finite())
        .collect();
    if finite.is_empty() {
        return "<p>(no policy decisions with a time criterion in the trace)</p>".to_string();
    }
    let x_hi = finite.iter().map(|d| d.iter as f64).fold(1.0f64, f64::max);
    let y_hi = finite
        .iter()
        .flat_map(|d| [d.projected_loss_s, d.threshold_s])
        .fold(0.0f64, f64::max)
        .max(1e-12)
        * 1.05;
    let mut svg = format!("<svg viewBox=\"0 0 {W} {H}\" class=\"panel\">");
    svg.push_str(&frame(
        "stop-at-rise: projected loss (line) vs redistribution cost (dashed); dots = fired",
        0.0,
        x_hi,
        0.0,
        y_hi,
    ));
    let loss: Vec<String> = finite
        .iter()
        .map(|d| {
            format!(
                "{:.1},{:.1}",
                px(d.iter as f64, 0.0, x_hi),
                py(d.projected_loss_s, 0.0, y_hi)
            )
        })
        .collect();
    svg.push_str(&format!(
        "<polyline points=\"{}\" class=\"line\"/>",
        loss.join(" ")
    ));
    let thresh: Vec<String> = finite
        .iter()
        .map(|d| {
            format!(
                "{:.1},{:.1}",
                px(d.iter as f64, 0.0, x_hi),
                py(d.threshold_s, 0.0, y_hi)
            )
        })
        .collect();
    svg.push_str(&format!(
        "<polyline points=\"{}\" class=\"dash\"/>",
        thresh.join(" ")
    ));
    for d in finite.iter().filter(|d| d.fired) {
        svg.push_str(&format!(
            "<circle cx=\"{:.1}\" cy=\"{:.1}\" r=\"4\" class=\"fire\"><title>fired at iter {}</title></circle>",
            px(d.iter as f64, 0.0, x_hi),
            py(d.projected_loss_s, 0.0, y_hi),
            d.iter
        ));
    }
    svg.push_str("</svg>");
    svg
}

/// HTML table of the per-phase model error rows.
fn model_table(report: &ModelErrorReport) -> String {
    let mut html = format!(
        "<p>fitted scale {:.3e} s/s over {} paired supersteps; overall error {:.1}%{}</p>\
         <table><tr><th>phase</th><th>steps</th><th>modeled s</th><th>measured s</th>\
         <th>scaled model s</th><th>error %</th></tr>",
        report.scale,
        report.paired_steps,
        report.overall_error_pct,
        if report.unpaired_steps > 0 {
            format!(" ({} unpaired steps excluded)", report.unpaired_steps)
        } else {
            String::new()
        }
    );
    for r in &report.rows {
        html.push_str(&format!(
            "<tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{:.1}</td></tr>",
            r.phase.label(),
            r.steps,
            fmt(r.modeled_s),
            fmt(r.measured_s),
            fmt(r.scaled_modeled_s),
            r.error_pct
        ));
    }
    html.push_str("</table>");
    html
}

/// Render the full dashboard from a trace, a registry snapshot, and an
/// optional model-validation report.
pub fn render_dashboard(
    title: &str,
    events: &[TraceEvent],
    reg: &MetricsRegistry,
    model: Option<&ModelErrorReport>,
) -> String {
    let loads: Vec<&RankLoadEvent> = events.iter().filter_map(TraceEvent::rank_load).collect();
    let decisions: Vec<&PolicyDecisionEvent> = events
        .iter()
        .filter_map(TraceEvent::policy_decision)
        .collect();
    let redists: Vec<u64> = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Redistribution(r) if r.iter > 0 => Some(r.iter),
            _ => None,
        })
        .collect();

    let mut html = String::new();
    html.push_str("<!DOCTYPE html><html><head><meta charset=\"utf-8\">");
    html.push_str(&format!("<title>{title}</title><style>"));
    html.push_str(
        "body{font:14px/1.45 system-ui,sans-serif;margin:24px;max-width:720px}\
         h2{margin:28px 0 8px}\
         svg.panel{width:100%;height:auto;background:#fafafa;border:1px solid #ddd}\
         .t{font-size:12px;font-weight:600}.l{font-size:10px;fill:#555}\
         .ax{stroke:#999;stroke-width:1}\
         .line{fill:none;stroke:#1565c0;stroke-width:1.5}\
         .dash{fill:none;stroke:#777;stroke-width:1;stroke-dasharray:5 3}\
         .mark{stroke:#2e7d32;stroke-width:1;stroke-dasharray:2 2}\
         .fire{fill:#c62828}\
         table{border-collapse:collapse}td,th{border:1px solid #ccc;padding:3px 9px;text-align:right}\
         th:first-child,td:first-child{text-align:left}",
    );
    html.push_str("</style></head><body>");
    html.push_str(&format!("<h1>{title}</h1>"));
    html.push_str(&format!(
        "<p>{} iterations, {} redistributions, {} policy decisions, {} faults</p>",
        reg.counter("pic_iterations_total"),
        reg.counter("pic_redistributions_total"),
        reg.counter("pic_policy_decisions_total"),
        reg.counter("pic_faults_total"),
    ));

    html.push_str("<h2>Load imbalance</h2>");
    html.push_str(&imbalance_panel(&loads, &redists));
    html.push_str("<h2>Communication matrix</h2>");
    html.push_str(&comm_heatmap(reg));
    html.push_str("<h2>Redistribution policy timeline</h2>");
    html.push_str(&sar_panel(&decisions));
    if let Some(report) = model {
        html.push_str("<h2>Model validation</h2>");
        html.push_str(&model_table(report));
    }
    html.push_str("</body></html>");
    html
}

#[cfg(test)]
mod tests {
    use super::*;
    use pic_machine::PhaseKind;

    fn load(iter: u64, counts: Vec<u64>) -> TraceEvent {
        TraceEvent::RankLoad(RankLoadEvent {
            iter,
            time_s: iter as f64,
            counts,
        })
    }

    fn decision(iter: u64, loss: f64, threshold: f64, fired: bool) -> TraceEvent {
        TraceEvent::PolicyDecision(PolicyDecisionEvent {
            iter,
            time_s: iter as f64,
            observed_s: 1.0,
            baseline_s: 0.5,
            projected_loss_s: loss,
            threshold_s: threshold,
            fired,
        })
    }

    #[test]
    fn dashboard_contains_all_panels() {
        let mut reg = MetricsRegistry::new(2);
        reg.comm_mut().record_send(0, 1, 3, 300);
        reg.comm_mut().record_recv(1, 0, 3, 300);
        reg.inc("pic_iterations_total", 2);
        let events = vec![
            load(1, vec![10, 20]),
            decision(1, 0.1, 1.0, false),
            load(2, vec![15, 15]),
            decision(2, 2.0, 1.0, true),
        ];
        let modeled = vec![TraceEvent::Superstep(pic_machine::SuperstepEvent {
            phase: PhaseKind::Scatter,
            superstep: 0,
            epoch: 0,
            start_s: 0.0,
            elapsed_s: 1.0,
            max_compute_s: 0.0,
            max_comm_s: 0.0,
            total_msgs: 0,
            total_bytes: 0,
            collective: false,
        })];
        let measured = modeled.clone();
        let report = pic_core::model_error_report(&modeled, &measured);
        let html = render_dashboard("test run", &events, &reg, Some(&report));
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.contains("load imbalance"));
        assert!(html.contains("communication matrix"));
        assert!(html.contains("stop-at-rise"));
        assert!(html.contains("Model validation"));
        assert!(html.contains("scatter"));
        // fired decision renders as a dot
        assert!(html.contains("class=\"fire\""));
        // balanced tags (cheap well-formedness check)
        assert_eq!(html.matches("<svg").count(), html.matches("</svg>").count());
        assert_eq!(
            html.matches("<table").count(),
            html.matches("</table>").count()
        );
    }

    #[test]
    fn dashboard_degrades_without_events() {
        let reg = MetricsRegistry::new(1);
        let html = render_dashboard("empty", &[], &reg, None);
        assert!(html.contains("no rank-load events"));
        assert!(html.contains("no policy decisions"));
        assert!(!html.contains("Model validation"));
    }
}
