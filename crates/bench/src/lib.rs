//! # pic-bench — the experiment harness
//!
//! One binary per table/figure of the paper's evaluation (Section 6),
//! plus Criterion kernel benches.  Each binary prints the same
//! rows/series the paper reports and writes a CSV under `results/`.
//!
//! | binary | paper artifact |
//! |---|---|
//! | `table1_strategies` | Table 1 — partitioning strategy analysis |
//! | `fig16_static_vs_periodic` | Figure 16 — total time, static vs periodic |
//! | `fig17_iteration_time` | Figure 17 — per-iteration execution time |
//! | `fig18_scatter_data` | Figure 18 — max scatter bytes sent/received |
//! | `fig19_scatter_messages` | Figure 19 — max scatter message counts |
//! | `fig20_dynamic_policy` | Figure 20 — periodic vs dynamic |
//! | `table2_time` | Table 2 — 200-iteration times |
//! | `table3_efficiency` | Table 3 — Hilbert efficiency |
//! | `fig21_overhead_uniform` | Figure 21 — overhead, uniform |
//! | `fig22_overhead_irregular` | Figure 22 — overhead, irregular |
//! | `baseline_replicated` | Section 3 — Lubeck & Faber replicated mesh vs distributed |
//! | `ablation_machine` | Section 6.3 remark — machine-constant sensitivity |
//! | `ablation_dedup` | Section 3.2 / Figure 8 — hash vs direct dedup table |
//! | `observability_overhead` | tracing/metrics cost gate + Chrome trace export |
//! | `observability_dashboard` | comm matrix, SAR audit log, model error, HTML dashboard |
//!
//! All binaries accept `--iters N` to override the iteration count and
//! `--quick` for a fast smoke configuration; defaults match the paper.

#![warn(missing_docs)]

pub mod chart;
pub mod dashboard;

use std::fs;
use std::io::Write as _;
use std::path::Path;

pub use chart::render_chart;
pub use dashboard::render_dashboard;

use pic_core::SimConfig;
use pic_index::IndexScheme;
use pic_machine::MachineConfig;
use pic_particles::ParticleDistribution;
use pic_partition::PolicyKind;

/// Build a paper-style configuration.
pub fn paper_cfg(
    nx: usize,
    ny: usize,
    particles: usize,
    p: usize,
    distribution: ParticleDistribution,
    scheme: IndexScheme,
    policy: PolicyKind,
) -> SimConfig {
    SimConfig {
        nx,
        ny,
        particles,
        distribution,
        scheme,
        policy,
        machine: MachineConfig::cm5(p),
        ..SimConfig::paper_default()
    }
}

/// Parse `--iters N` / `--quick` from the command line.
///
/// `full` is the paper's iteration count; `--quick` divides it by 10
/// (minimum 20).
pub fn iters_from_args(full: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    if let Some(pos) = args.iter().position(|a| a == "--iters") {
        match args.get(pos + 1).map(|s| s.parse::<usize>()) {
            Some(Ok(n)) if n > 0 => return n,
            _ => {
                eprintln!("--iters needs a positive integer");
                std::process::exit(2);
            }
        }
    }
    if args.iter().any(|a| a == "--quick") {
        return (full / 10).max(20);
    }
    full
}

/// Write a CSV file under `results/`, creating the directory as needed.
///
/// # Panics
/// Panics if the file cannot be written (harness binaries want loud
/// failures).
pub fn write_csv(name: &str, header: &str, rows: &[String]) {
    let dir = Path::new("results");
    fs::create_dir_all(dir).expect("create results dir");
    let path = dir.join(name);
    let mut f = fs::File::create(&path).expect("create csv");
    writeln!(f, "{header}").expect("write header");
    for row in rows {
        writeln!(f, "{row}").expect("write row");
    }
    eprintln!("wrote {}", path.display());
}

/// Distribution summary of one per-iteration measurement series, shared
/// by the figure binaries (head/tail windows show drift, the percentiles
/// and peak come from [`pic_machine::trace::percentile`] so the bench
/// tables agree with the observability layer's aggregation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeriesSummary {
    /// Mean of the first 5% of iterations (at least one).
    pub head: f64,
    /// Mean of the last 5% of iterations (at least one).
    pub tail: f64,
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Maximum.
    pub peak: f64,
}

impl SeriesSummary {
    /// Relative drift of the tail window over the head window, in
    /// percent (positive = the series grew).
    pub fn rise_pct(&self) -> f64 {
        if self.head == 0.0 {
            0.0
        } else {
            100.0 * (self.tail / self.head - 1.0)
        }
    }
}

/// Summarize a per-iteration series; see [`SeriesSummary`].
///
/// # Panics
/// Panics on an empty series (figure series always have ≥ 1 iteration).
pub fn series_summary(series: &[f64]) -> SeriesSummary {
    assert!(!series.is_empty(), "cannot summarize an empty series");
    let window = (series.len() / 20).max(1);
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    SeriesSummary {
        head: mean(&series[..window]),
        tail: mean(&series[series.len() - window..]),
        p50: pic_machine::trace::percentile(series, 0.50),
        p95: pic_machine::trace::percentile(series, 0.95),
        peak: series.iter().copied().fold(f64::NEG_INFINITY, f64::max),
    }
}

/// [`series_summary`] over integer counters (bytes, message counts).
///
/// # Panics
/// Panics on an empty series.
pub fn series_summary_u64(series: &[u64]) -> SeriesSummary {
    let as_f: Vec<f64> = series.iter().map(|&v| v as f64).collect();
    series_summary(&as_f)
}

/// Total modeled sequential execution time for `iters` iterations of a
/// configuration — the closed-form `T_seq` used by Table 3's efficiency
/// (one processor pays pure computation and no communication, so the op
/// counts are exact without running the big sequential simulation).
pub fn sequential_modeled_time(cfg: &SimConfig, iters: usize) -> f64 {
    let n = cfg.particles as f64;
    let m = cfg.grid_points() as f64;
    let per_iter = n
        * (4.0 * (pic_core::costs::SCATTER_VERTEX + pic_core::costs::GATHER_VERTEX)
            + pic_core::costs::PUSH_PARTICLE)
        + m * (pic_core::costs::FIELD_POINT_B + pic_core::costs::FIELD_POINT_E);
    iters as f64 * per_iter * cfg.machine.delta
}

/// Shared harness for Figures 21 (uniform) and 22 (irregular): overhead
/// (execution − computation) of 200 iterations across the Table 2 grid,
/// Hilbert vs snakelike.
pub fn run_overhead(dist: ParticleDistribution, csv_name: &str, figure: &str) {
    use pic_core::ParallelPicSim;

    let iters = iters_from_args(200);
    println!(
        "{figure}: overhead = execution - computation, {} distribution, {iters} iterations (modeled s)\n",
        dist.label()
    );
    println!(
        "{:<10} {:>8} {:<9} {:>10} {:>10} {:>10} {:>12}",
        "mesh", "partcls", "indexing", "p=32", "p=64", "p=128", "redist@128"
    );
    let mut rows = Vec::new();
    for (nx, ny, n) in TABLE2_SIZES {
        for scheme in [IndexScheme::Hilbert, IndexScheme::Snake] {
            let mut overheads = Vec::new();
            let mut redist_last = 0.0;
            for p in TABLE2_PROCS {
                let cfg = paper_cfg(nx, ny, n, p, dist, scheme, PolicyKind::DynamicSar);
                let mut sim = ParallelPicSim::new(cfg);
                let report = sim.run(iters);
                overheads.push(report.overhead_s);
                redist_last = report.redistribute_total_s;
            }
            println!(
                "{:<10} {:>8} {:<9} {:>10.2} {:>10.2} {:>10.2} {:>12.2}",
                format!("{nx}x{ny}"),
                n,
                scheme.label(),
                overheads[0],
                overheads[1],
                overheads[2],
                redist_last
            );
            rows.push(format!(
                "{}x{},{},{},{:.3},{:.3},{:.3},{:.3}",
                nx,
                ny,
                n,
                scheme.label(),
                overheads[0],
                overheads[1],
                overheads[2],
                redist_last
            ));
        }
    }
    write_csv(
        csv_name,
        "mesh,particles,indexing,ovh_p32,ovh_p64,ovh_p128,redist_p128",
        &rows,
    );
    println!(
        "\n(expect hilbert <= snake rows; redistribution well under 20% of overhead at p=128)"
    );
}

/// The Table 2 / Table 3 / Figures 21-22 configuration grid:
/// `(mesh, particles)` pairs crossed with processor counts.
pub const TABLE2_SIZES: [(usize, usize, usize); 4] = [
    (256, 128, 32_768),
    (256, 128, 65_536),
    (512, 256, 65_536),
    (512, 256, 131_072),
];

/// Processor counts of the paper's scaling study.
pub const TABLE2_PROCS: [usize; 3] = [32, 64, 128];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_time_matches_hand_computation() {
        let cfg = paper_cfg(
            256,
            128,
            32_768,
            32,
            ParticleDistribution::Uniform,
            IndexScheme::Hilbert,
            PolicyKind::Static,
        );
        // per iter: 32768 * (4*45 + 60) + 32768 * 90 = 32768 * 330
        let expect = 200.0 * (32_768.0 * 240.0 + 32_768.0 * 90.0) * 1e-6;
        let got = sequential_modeled_time(&cfg, 200);
        assert!((got - expect).abs() < 1e-9, "{got} vs {expect}");
    }

    #[test]
    fn series_summary_windows_and_percentiles() {
        let series: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = series_summary(&series);
        // 5% windows: first/last five values
        assert!((s.head - 3.0).abs() < 1e-12);
        assert!((s.tail - 98.0).abs() < 1e-12);
        assert!((s.p50 - 50.5).abs() < 1e-9);
        assert!(s.p95 > 95.0 && s.p95 < 96.0);
        assert!((s.peak - 100.0).abs() < 1e-12);
        assert!(s.rise_pct() > 3000.0);
    }

    #[test]
    fn series_summary_u64_matches_f64_path() {
        let ints = [5u64, 1, 3, 2, 4];
        let floats = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(series_summary_u64(&ints), series_summary(&floats));
    }

    #[test]
    fn paper_cfg_overrides_apply() {
        let cfg = paper_cfg(
            64,
            32,
            1000,
            8,
            ParticleDistribution::Uniform,
            IndexScheme::Snake,
            PolicyKind::Periodic(7),
        );
        assert_eq!(cfg.machine.ranks, 8);
        assert_eq!(cfg.scheme, IndexScheme::Snake);
        assert_eq!(cfg.policy, PolicyKind::Periodic(7));
        cfg.validate();
    }
}
