//! Closed-form phase bounds (paper Section 4).
//!
//! These are the paper's worst-case formulas under the two-level machine
//! model; the `model_vs_measured` integration test and the Table 1
//! harness compare them against the simulated machine's actual charges.

use pic_machine::MachineConfig;
use serde::{Deserialize, Serialize};

use crate::costs;

/// Modeled upper bounds for one iteration of the four phases.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseBounds {
    /// Scatter bound: `4 n/p T_s + (p-1) tau + u l mu`.
    pub scatter_s: f64,
    /// Field solve bound: `m/p T_f + 4 tau + 4 sqrt(m/p) l mu`.
    pub fields_s: f64,
    /// Gather bound: `4 n/p T_g + (p-1) tau + 2 u l mu`.
    pub gather_s: f64,
    /// Push: `n/p T_push` (no communication under direct Lagrangian).
    pub push_s: f64,
}

impl PhaseBounds {
    /// Total per-iteration bound (`T_ideal` in the paper).
    pub fn total_s(&self) -> f64 {
        self.scatter_s + self.fields_s + self.gather_s + self.push_s
    }
}

/// Evaluate the Section-4 bounds for `n` particles and `m` grid points on
/// the machine `mc`, with `l_grid` bytes per transferred grid value.
///
/// # Panics
/// Panics if the machine has zero ranks (impossible by construction).
pub fn ideal_bounds(mc: &MachineConfig, n: usize, m: usize, l_grid: usize) -> PhaseBounds {
    let p = mc.ranks as f64;
    assert!(p >= 1.0);
    let np = n as f64 / p;
    let mp = m as f64 / p;
    // u = min(m/p, 4 n/p): the ghost grid point bound
    let u = mp.min(4.0 * np);
    let l = l_grid as f64;
    let scatter_s =
        4.0 * np * costs::SCATTER_VERTEX * mc.delta + (p - 1.0) * mc.tau + u * l * mc.mu;
    let fields_s = mp * (costs::FIELD_POINT_B + costs::FIELD_POINT_E) * mc.delta
        + 4.0 * mc.tau
        + 4.0 * mp.sqrt() * l * mc.mu;
    let gather_s =
        4.0 * np * costs::GATHER_VERTEX * mc.delta + (p - 1.0) * mc.tau + 2.0 * u * l * mc.mu;
    let push_s = np * costs::PUSH_PARTICLE * mc.delta;
    PhaseBounds {
        scatter_s,
        fields_s,
        gather_s,
        push_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_scale_down_with_more_processors() {
        let n = 32_768;
        let m = 128 * 64;
        let b32 = ideal_bounds(&MachineConfig::cm5(32), n, m, 28);
        let b128 = ideal_bounds(&MachineConfig::cm5(128), n, m, 28);
        // compute terms shrink 4x; the startup term grows, so total
        // shrinks but less than 4x
        assert!(b128.total_s() < b32.total_s());
        assert!(b128.push_s * 3.9 < b32.push_s * 1.01);
    }

    #[test]
    fn push_has_no_communication_term() {
        let a = ideal_bounds(&MachineConfig::cm5(32), 1000, 1000, 28);
        let mut expensive_net = MachineConfig::cm5(32);
        expensive_net.tau *= 100.0;
        expensive_net.mu *= 100.0;
        let b = ideal_bounds(&expensive_net, 1000, 1000, 28);
        assert_eq!(a.push_s, b.push_s);
        assert!(b.scatter_s > a.scatter_s);
    }

    #[test]
    fn ghost_bound_switches_regime() {
        // dense particles: u capped by m/p; sparse: u capped by 4 n/p
        let mc = MachineConfig::cm5(4);
        let dense = ideal_bounds(&mc, 1_000_000, 400, 28);
        let sparse = ideal_bounds(&mc, 40, 400, 28);
        // in the sparse case the transfer term is 4*10*28*mu, tiny
        assert!(sparse.scatter_s < dense.scatter_s);
    }

    #[test]
    fn total_sums_phases() {
        let b = ideal_bounds(&MachineConfig::cm5(32), 32_768, 8192, 28);
        let sum = b.scatter_s + b.fields_s + b.gather_s + b.push_s;
        assert!((b.total_s() - sum).abs() < 1e-15);
    }
}
