//! Checkpoint/restart for the parallel PIC simulation.
//!
//! A [`Checkpoint`] captures everything the driver needs to continue a
//! run from an iteration boundary: the per-rank persistent state
//! (particles, curve keys, rank key bounds, counts, fields), the
//! redistribution policy's decision state, and the driver's cumulative
//! counters.  Transient per-iteration arrays (currents, ghost tables,
//! interpolated fields) are *not* captured — every iteration rebuilds
//! them from scratch, so a resumed run is bit-identical to an
//! uninterrupted one.
//!
//! The wire format is a small hand-rolled little-endian binary codec
//! (the vendored `serde` is a marker-trait stand-in and cannot
//! serialize): a magic/version header, a length-prefixed payload, and a
//! trailing FNV-1a checksum so torn or corrupted snapshots are rejected
//! on decode instead of resurrecting a half-written state.

use std::fmt;

use pic_field::FieldSet;
use pic_particles::Particles;
use pic_partition::PolicyState;

use crate::sim::PhaseBreakdown;
use crate::state::RankState;

/// File magic for encoded checkpoints.
pub const CHECKPOINT_MAGIC: [u8; 8] = *b"PICCKPT\0";
/// Current encoding version.
pub const CHECKPOINT_VERSION: u32 = 1;

/// Why a checkpoint could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// Fewer bytes than the header/payload/trailer demand.
    Truncated,
    /// The magic prefix is wrong — not a checkpoint.
    BadMagic,
    /// A version this build does not understand.
    UnsupportedVersion(u32),
    /// The payload checksum does not match (torn write / bit rot).
    ChecksumMismatch {
        /// Checksum recorded in the trailer.
        stored: u64,
        /// Checksum recomputed over the payload.
        computed: u64,
    },
    /// Structurally invalid payload.
    Malformed(&'static str),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Truncated => write!(f, "checkpoint truncated"),
            CheckpointError::BadMagic => write!(f, "not a checkpoint (bad magic)"),
            CheckpointError::UnsupportedVersion(v) => {
                write!(f, "unsupported checkpoint version {v}")
            }
            CheckpointError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checkpoint checksum mismatch (stored {stored:#018x}, computed {computed:#018x})"
            ),
            CheckpointError::Malformed(what) => write!(f, "malformed checkpoint: {what}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// The persistent state of one rank at an iteration boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct RankSnapshot {
    /// Rank id (sanity-checked against position on restore).
    pub rank: usize,
    /// The rank's particles (positions, momenta, species constants).
    pub particles: Particles,
    /// Curve keys, parallel to the particles.
    pub keys: Vec<u64>,
    /// Exclusive upper key bound of every rank.
    pub bounds: Vec<u64>,
    /// Per-rank particle counts from the last counts allgather.
    pub all_counts: Vec<usize>,
    /// The padded local field block.
    pub fields: FieldSet,
}

impl RankSnapshot {
    /// Capture the persistent slice of `st`.
    pub fn capture(st: &RankState) -> Self {
        Self {
            rank: st.rank,
            particles: st.particles.clone(),
            keys: st.keys.clone(),
            bounds: st.bounds.clone(),
            all_counts: st.all_counts.clone(),
            fields: st.fields.clone(),
        }
    }

    /// Write the snapshot back into a freshly constructed `st` (same
    /// rank, same rect).  The incremental sorter is rebuilt from the
    /// restored keys, which reproduces the exact bucket bounds the
    /// checkpointed sorter held (they were last rebuilt from these same
    /// keys).
    ///
    /// # Panics
    /// Panics when `st` belongs to a different rank or its field block
    /// has different dimensions (checkpoint/config mismatch).
    pub fn restore_into(&self, st: &mut RankState) {
        assert_eq!(st.rank, self.rank, "checkpoint rank mismatch");
        assert_eq!(
            (st.fields.width(), st.fields.height()),
            (self.fields.width(), self.fields.height()),
            "checkpoint field block mismatch"
        );
        st.particles = self.particles.clone();
        st.keys = self.keys.clone();
        st.bounds = self.bounds.clone();
        st.all_counts = self.all_counts.clone();
        st.fields = self.fields.clone();
        if st.keys.windows(2).all(|w| w[0] <= w[1]) {
            st.rebuild_sorter();
        }
    }
}

/// A full simulation snapshot at an iteration boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Iterations completed when the snapshot was taken.
    pub iter: u64,
    /// Modeled cost of the initial distribution.
    pub setup_s: f64,
    /// Redistributions performed so far.
    pub redistributions: u64,
    /// Total redistribution seconds so far.
    pub redistribute_total_s: f64,
    /// Cumulative per-phase time split.
    pub breakdown: PhaseBreakdown,
    /// Redistribution policy decision state.
    pub policy: PolicyState,
    /// One snapshot per rank, in rank order.
    pub ranks: Vec<RankSnapshot>,
}

impl Checkpoint {
    /// Total particles across all rank snapshots.
    pub fn total_particles(&self) -> usize {
        self.ranks.iter().map(|r| r.particles.len()).sum()
    }

    /// Serialize to the checksummed binary format.
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = Writer::default();
        payload.u64(self.iter);
        payload.f64(self.setup_s);
        payload.u64(self.redistributions);
        payload.f64(self.redistribute_total_s);
        payload.f64(self.breakdown.scatter_s);
        payload.f64(self.breakdown.field_solve_s);
        payload.f64(self.breakdown.gather_s);
        payload.f64(self.breakdown.push_s);
        payload.f64(self.breakdown.redistribute_s);
        match self.policy {
            PolicyState::Stateless => payload.u8(0),
            PolicyState::DynamicSar {
                i0,
                t0,
                redist_cost,
            } => {
                payload.u8(1);
                payload.u64(i0 as u64);
                payload.opt_f64(t0);
                payload.f64(redist_cost);
            }
        }
        payload.u64(self.ranks.len() as u64);
        for r in &self.ranks {
            payload.u64(r.rank as u64);
            payload.f64(r.particles.charge);
            payload.f64(r.particles.mass);
            payload.f64_slice(&r.particles.x);
            payload.f64_slice(&r.particles.y);
            payload.f64_slice(&r.particles.ux);
            payload.f64_slice(&r.particles.uy);
            payload.f64_slice(&r.particles.uz);
            payload.u64_slice(&r.keys);
            payload.u64_slice(&r.bounds);
            payload.u64(r.all_counts.len() as u64);
            for &c in &r.all_counts {
                payload.u64(c as u64);
            }
            payload.u64(r.fields.width() as u64);
            payload.u64(r.fields.height() as u64);
            for grid in [
                &r.fields.ex,
                &r.fields.ey,
                &r.fields.ez,
                &r.fields.bx,
                &r.fields.by,
                &r.fields.bz,
            ] {
                payload.raw_f64(grid.as_slice());
            }
        }
        let payload = payload.bytes;
        let mut out = Vec::with_capacity(payload.len() + 28);
        out.extend_from_slice(&CHECKPOINT_MAGIC);
        out.extend_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&payload);
        out.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
        out
    }

    /// Decode and verify a checkpoint produced by [`Checkpoint::encode`].
    pub fn decode(bytes: &[u8]) -> Result<Self, CheckpointError> {
        if bytes.len() < 20 {
            return Err(CheckpointError::Truncated);
        }
        if bytes[..8] != CHECKPOINT_MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        if version != CHECKPOINT_VERSION {
            return Err(CheckpointError::UnsupportedVersion(version));
        }
        let payload_len = u64::from_le_bytes(bytes[12..20].try_into().unwrap()) as usize;
        let rest = &bytes[20..];
        if rest.len() < payload_len + 8 {
            return Err(CheckpointError::Truncated);
        }
        let payload = &rest[..payload_len];
        let stored = u64::from_le_bytes(rest[payload_len..payload_len + 8].try_into().unwrap());
        let computed = fnv1a64(payload);
        if stored != computed {
            return Err(CheckpointError::ChecksumMismatch { stored, computed });
        }

        let mut r = Reader::new(payload);
        let iter = r.u64()?;
        let setup_s = r.f64()?;
        let redistributions = r.u64()?;
        let redistribute_total_s = r.f64()?;
        let breakdown = PhaseBreakdown {
            scatter_s: r.f64()?,
            field_solve_s: r.f64()?,
            gather_s: r.f64()?,
            push_s: r.f64()?,
            redistribute_s: r.f64()?,
        };
        let policy = match r.u8()? {
            0 => PolicyState::Stateless,
            1 => PolicyState::DynamicSar {
                i0: r.u64()? as usize,
                t0: r.opt_f64()?,
                redist_cost: r.f64()?,
            },
            _ => return Err(CheckpointError::Malformed("unknown policy state tag")),
        };
        let nranks = r.len()?;
        let mut ranks = Vec::with_capacity(nranks);
        for _ in 0..nranks {
            let rank = r.u64()? as usize;
            let charge = r.f64()?;
            let mass = r.f64()?;
            if mass.is_nan() || mass <= 0.0 {
                return Err(CheckpointError::Malformed("non-positive species mass"));
            }
            let mut particles = Particles::new(charge, mass);
            particles.x = r.f64_vec()?;
            particles.y = r.f64_vec()?;
            particles.ux = r.f64_vec()?;
            particles.uy = r.f64_vec()?;
            particles.uz = r.f64_vec()?;
            let n = particles.x.len();
            if [&particles.y, &particles.ux, &particles.uy, &particles.uz]
                .iter()
                .any(|v| v.len() != n)
            {
                return Err(CheckpointError::Malformed("ragged particle attributes"));
            }
            let keys = r.u64_vec()?;
            if keys.len() != n {
                return Err(CheckpointError::Malformed("key/particle count mismatch"));
            }
            let bounds = r.u64_vec()?;
            let ncounts = r.len()?;
            let mut all_counts = Vec::with_capacity(ncounts);
            for _ in 0..ncounts {
                all_counts.push(r.u64()? as usize);
            }
            let w = r.u64()? as usize;
            let h = r.u64()? as usize;
            if w == 0 || h == 0 || w.checked_mul(h).is_none() {
                return Err(CheckpointError::Malformed("bad field dimensions"));
            }
            let mut fields = FieldSet::zeros(w, h);
            for grid in [
                &mut fields.ex,
                &mut fields.ey,
                &mut fields.ez,
                &mut fields.bx,
                &mut fields.by,
                &mut fields.bz,
            ] {
                r.raw_f64_into(grid.as_mut_slice())?;
            }
            ranks.push(RankSnapshot {
                rank,
                particles,
                keys,
                bounds,
                all_counts,
                fields,
            });
        }
        if !r.at_end() {
            return Err(CheckpointError::Malformed("trailing payload bytes"));
        }
        Ok(Self {
            iter,
            setup_s,
            redistributions,
            redistribute_total_s,
            breakdown,
            policy,
            ranks,
        })
    }
}

/// 64-bit FNV-1a over `bytes`.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[derive(Default)]
struct Writer {
    bytes: Vec<u8>,
}

impl Writer {
    fn u8(&mut self, v: u8) {
        self.bytes.push(v);
    }

    fn u64(&mut self, v: u64) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn opt_f64(&mut self, v: Option<f64>) {
        match v {
            None => self.u8(0),
            Some(x) => {
                self.u8(1);
                self.f64(x);
            }
        }
    }

    fn u64_slice(&mut self, v: &[u64]) {
        self.u64(v.len() as u64);
        for &x in v {
            self.u64(x);
        }
    }

    fn f64_slice(&mut self, v: &[f64]) {
        self.u64(v.len() as u64);
        self.raw_f64(v);
    }

    /// `v` without a length prefix (the caller encodes the dimensions).
    fn raw_f64(&mut self, v: &[f64]) {
        for &x in v {
            self.f64(x);
        }
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or(CheckpointError::Truncated)?;
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn at_end(&self) -> bool {
        self.pos == self.bytes.len()
    }

    fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }

    fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, CheckpointError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn opt_f64(&mut self) -> Result<Option<f64>, CheckpointError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.f64()?)),
            _ => Err(CheckpointError::Malformed("bad Option tag")),
        }
    }

    /// A length prefix, bounded by what the remaining bytes could hold
    /// (each element is at least one byte) so a corrupt length cannot
    /// trigger a huge allocation.
    fn len(&mut self) -> Result<usize, CheckpointError> {
        let n = self.u64()? as usize;
        if n > self.bytes.len() - self.pos {
            return Err(CheckpointError::Truncated);
        }
        Ok(n)
    }

    fn u64_vec(&mut self) -> Result<Vec<u64>, CheckpointError> {
        let n = self.u64()? as usize;
        let raw = self.take(n.checked_mul(8).ok_or(CheckpointError::Truncated)?)?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    fn f64_vec(&mut self) -> Result<Vec<f64>, CheckpointError> {
        Ok(self.u64_vec()?.into_iter().map(f64::from_bits).collect())
    }

    fn raw_f64_into(&mut self, out: &mut [f64]) -> Result<(), CheckpointError> {
        let raw = self.take(out.len().checked_mul(8).ok_or(CheckpointError::Truncated)?)?;
        for (slot, c) in out.iter_mut().zip(raw.chunks_exact(8)) {
            *slot = f64::from_bits(u64::from_le_bytes(c.try_into().unwrap()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        let mut particles = Particles::new(-0.01, 1.0);
        particles.push(1.5, 2.5, 0.1, -0.2, 0.3);
        particles.push(3.5, 0.5, -0.4, 0.5, -0.6);
        let mut fields = FieldSet::zeros(4, 3);
        fields.ex.as_mut_slice()[5] = 0.125;
        fields.bz.as_mut_slice()[11] = -7.75;
        Checkpoint {
            iter: 25,
            setup_s: 0.5,
            redistributions: 3,
            redistribute_total_s: 1.25,
            breakdown: PhaseBreakdown {
                scatter_s: 1.0,
                field_solve_s: 2.0,
                gather_s: 3.0,
                push_s: 4.0,
                redistribute_s: 5.0,
            },
            policy: PolicyState::DynamicSar {
                i0: 20,
                t0: Some(0.75),
                redist_cost: 2.5,
            },
            ranks: vec![RankSnapshot {
                rank: 0,
                particles,
                keys: vec![3, 9],
                bounds: vec![100, u64::MAX],
                all_counts: vec![2, 0],
                fields,
            }],
        }
    }

    #[test]
    fn encode_decode_roundtrip_is_exact() {
        let ck = sample();
        let decoded = Checkpoint::decode(&ck.encode()).expect("roundtrip");
        assert_eq!(decoded, ck);
        assert_eq!(decoded.total_particles(), 2);
    }

    #[test]
    fn corruption_is_detected() {
        let mut bytes = sample().encode();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        assert!(matches!(
            Checkpoint::decode(&bytes),
            Err(CheckpointError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn truncation_and_bad_magic_are_rejected() {
        let bytes = sample().encode();
        assert_eq!(
            Checkpoint::decode(&bytes[..bytes.len() - 3]),
            Err(CheckpointError::Truncated)
        );
        assert_eq!(
            Checkpoint::decode(&bytes[..10]),
            Err(CheckpointError::Truncated)
        );
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert_eq!(Checkpoint::decode(&bad), Err(CheckpointError::BadMagic));
    }

    #[test]
    fn future_version_is_rejected() {
        let mut bytes = sample().encode();
        bytes[8] = 99;
        assert_eq!(
            Checkpoint::decode(&bytes),
            Err(CheckpointError::UnsupportedVersion(99))
        );
    }

    #[test]
    fn nan_and_infinity_survive_bitwise() {
        let mut ck = sample();
        ck.setup_s = f64::NAN;
        ck.redistribute_total_s = f64::NEG_INFINITY;
        let decoded = Checkpoint::decode(&ck.encode()).expect("roundtrip");
        assert!(decoded.setup_s.is_nan());
        assert_eq!(
            decoded.setup_s.to_bits(),
            ck.setup_s.to_bits(),
            "NaN payload must be preserved bit-exactly"
        );
        assert_eq!(decoded.redistribute_total_s, f64::NEG_INFINITY);
    }
}
