//! Simulation configuration.

use pic_index::IndexScheme;
use pic_machine::{ExecMode, MachineConfig};
use pic_particles::ParticleDistribution;
use pic_partition::PolicyKind;
use serde::{Deserialize, Serialize};

/// How duplicate off-processor accesses are removed in the scatter phase
/// (paper Section 3.2, Figure 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DedupKind {
    /// Hash table: memory proportional to the ghost set, extra search
    /// time per access.
    Hash,
    /// Direct address table: memory proportional to the number of mesh
    /// grid points, one indexed access.
    Direct,
}

/// Particle movement method (paper Section 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MovementMethod {
    /// Direct Lagrangian: the particle→rank assignment is fixed between
    /// redistributions (the paper's choice for scalability).
    Lagrangian,
    /// Direct Eulerian: particles migrate to the rank owning their cell
    /// after every push (grid partitioning baseline from Table 1).  The
    /// redistribution policy is ignored in this mode.
    Eulerian,
}

/// Full configuration of a parallel PIC run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimConfig {
    /// Mesh cells along x (also the vertex grid width, periodic).
    pub nx: usize,
    /// Mesh cells along y.
    pub ny: usize,
    /// Total number of particles.
    pub particles: usize,
    /// Initial particle distribution.
    pub distribution: ParticleDistribution,
    /// Indexing scheme for cells, processor blocks and particles.
    pub scheme: IndexScheme,
    /// Redistribution decision policy.
    pub policy: PolicyKind,
    /// Virtual machine parameters (ranks, tau, mu, delta).
    pub machine: MachineConfig,
    /// Particle movement method.
    pub movement: MovementMethod,
    /// Ghost-table duplicate removal implementation.
    pub dedup: DedupKind,
    /// Buckets per rank for the incremental sorter (paper's `L`).
    pub buckets_per_rank: usize,
    /// Time step (must satisfy the field solver's CFL bound).
    pub dt: f64,
    /// Cell size along x.
    pub dx: f64,
    /// Cell size along y.
    pub dy: f64,
    /// Thermal momentum spread of the loaded particles.
    pub thermal_u: f64,
    /// Per-particle charge magnitude (scaled small so self-fields stay
    /// gentle; the communication behaviour is driven by thermal motion).
    pub particle_charge: f64,
    /// RNG seed for the particle loader.
    pub seed: u64,
    /// Run the per-iteration invariant guards (global particle/charge
    /// conservation, structural key/particle sync, field finiteness).
    /// Violations surface as
    /// `SpmdError` with an `InvariantViolation` cause from
    /// [`GenericPicSim::try_step`](crate::GenericPicSim::try_step).
    pub check_invariants: bool,
}

impl SimConfig {
    /// The paper's headline configuration: irregular distribution,
    /// 128x64 mesh, 32768 particles on 32 processors (Figures 17–19),
    /// Hilbert indexing, CM-5 machine constants.
    pub fn paper_default() -> Self {
        Self {
            nx: 128,
            ny: 64,
            particles: 32_768,
            distribution: ParticleDistribution::IrregularCenter,
            scheme: IndexScheme::Hilbert,
            policy: PolicyKind::DynamicSar,
            machine: MachineConfig::cm5(32),
            movement: MovementMethod::Lagrangian,
            dedup: DedupKind::Hash,
            buckets_per_rank: 16,
            dt: 0.4,
            dx: 1.0,
            dy: 1.0,
            thermal_u: 0.5,
            particle_charge: 0.01,
            seed: 1996,
            check_invariants: true,
        }
    }

    /// A tiny configuration for unit/integration tests: 16x16 mesh,
    /// 512 particles, 4 ranks.
    pub fn small_test() -> Self {
        Self {
            nx: 16,
            ny: 16,
            particles: 512,
            machine: MachineConfig::cm5(4),
            ..Self::paper_default()
        }
    }

    /// Execution mode for the host: tests and examples run sequentially
    /// for clarity; the big sweeps use rayon.  Not serialized — it never
    /// affects results.
    pub fn exec_mode(&self) -> ExecMode {
        if self.machine.ranks >= 16 && self.particles >= 16_384 {
            ExecMode::Rayon
        } else {
            ExecMode::Sequential
        }
    }

    /// Domain length along x.
    pub fn lx(&self) -> f64 {
        self.nx as f64 * self.dx
    }

    /// Domain length along y.
    pub fn ly(&self) -> f64 {
        self.ny as f64 * self.dy
    }

    /// Total mesh grid points `m`.
    pub fn grid_points(&self) -> usize {
        self.nx * self.ny
    }

    /// Validate invariants the driver depends on.
    ///
    /// # Panics
    /// Panics on an unusable configuration.
    pub fn validate(&self) {
        assert!(self.nx >= 2 && self.ny >= 2, "mesh too small");
        assert!(self.particles > 0, "no particles");
        assert!(self.machine.ranks >= 1, "no ranks");
        assert!(
            self.particles >= self.machine.ranks,
            "fewer particles than ranks"
        );
        assert!(self.buckets_per_rank >= 1, "need at least one bucket");
        assert!(self.dt > 0.0 && self.dx > 0.0 && self.dy > 0.0);
        let p = self.machine.ranks;
        let (a, b) = pic_field::factor_near_square(p);
        let (pr, pc) = if self.nx >= self.ny { (a, b) } else { (b, a) };
        assert!(
            pr <= self.nx && pc <= self.ny,
            "{p} ranks cannot tile a {}x{} mesh",
            self.nx,
            self.ny
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_valid() {
        SimConfig::paper_default().validate();
        SimConfig::small_test().validate();
    }

    #[test]
    fn paper_default_matches_figure_17_setup() {
        let c = SimConfig::paper_default();
        assert_eq!((c.nx, c.ny), (128, 64));
        assert_eq!(c.particles, 32_768);
        assert_eq!(c.machine.ranks, 32);
        // avg 4 particles per cell, as the paper states
        assert_eq!(c.particles / (c.nx * c.ny), 4);
    }

    #[test]
    fn exec_mode_scales_with_size() {
        assert_eq!(SimConfig::small_test().exec_mode(), ExecMode::Sequential);
        assert_eq!(SimConfig::paper_default().exec_mode(), ExecMode::Rayon);
    }

    #[test]
    #[should_panic(expected = "fewer particles than ranks")]
    fn too_few_particles_rejected() {
        let mut c = SimConfig::small_test();
        c.particles = 2;
        c.validate();
    }

    #[test]
    fn domain_lengths_follow_cell_sizes() {
        let mut c = SimConfig::small_test();
        c.dx = 0.5;
        c.dy = 2.0;
        assert_eq!(c.lx(), 8.0);
        assert_eq!(c.ly(), 32.0);
        assert_eq!(c.grid_points(), 256);
    }
}
