//! Abstract op-unit costs of the PIC kernels.
//!
//! The machine charges `delta` seconds per op unit; these constants say
//! how many units each kernel step costs.  They are calibrated against
//! the paper's Table 2 anchor rows (CM-5, `delta` = 1 µs): e.g. uniform,
//! 256x128 mesh, 32768 particles, 32 processors runs 200 iterations in
//! 72.47 s in the paper; the model below gives ~68 s of computation, with
//! communication making up the remainder.  The same constants reproduce
//! the other rows within ~10%, which is as close as a reconstruction can
//! honestly claim.
//!
//! Only *ratios* between these constants affect the reproduced
//! comparisons (Hilbert vs snakelike, periodic vs dynamic); the absolute
//! scale just places the numbers in the paper's range.

/// Scatter: per particle, per vertex grid point — find the global vertex
/// index, test ownership, interpolate the weight, accumulate (paper
/// `T_s_comp`).
pub const SCATTER_VERTEX: f64 = 20.0;

/// Gather: per particle, per vertex grid point — weight lookup and
/// field accumulation for all six components (paper `T_g_comp`).
pub const GATHER_VERTEX: f64 = 25.0;

/// Push: per particle — the relativistic Boris update (paper `T_push`).
pub const PUSH_PARTICLE: f64 = 60.0;

/// Field solve: per grid point, B half-step (paper `T_f_comp` is the
/// sum of both halves).
pub const FIELD_POINT_B: f64 = 40.0;

/// Field solve: per grid point, E half-step (includes the current source
/// terms).
pub const FIELD_POINT_E: f64 = 50.0;

/// Redistribution: per particle — Hilbert indexing of its cell.
pub const INDEX_PARTICLE: f64 = 10.0;

/// Redistribution: per particle — destination classification (binary
/// search over rank bounds; multiplied by `log2 p` at the call site).
pub const CLASSIFY_STEP: f64 = 2.0;

/// Redistribution: per modeled sort comparison (bucket incremental sort
/// reports an adaptive comparison count).
pub const SORT_COMPARISON: f64 = 2.0;

/// Redistribution: per particle packed/unpacked for an exchange message.
pub const PACK_PARTICLE: f64 = 8.0;

/// Ghost table: per off-block accumulation through the hash table
/// (hashing + probe; paper Section 3.2 notes the hash table "takes
/// search time").
pub const GHOST_ADD_HASH: f64 = 3.0;

/// Ghost table: per off-block accumulation through the direct address
/// table (one indexed write; the paper's memory-for-time trade).
pub const GHOST_ADD_DIRECT: f64 = 1.0;

/// Per ghost entry applied/served on the owning rank (scatter deliver and
/// gather compute).
pub const GHOST_APPLY: f64 = 2.0;

/// Per boundary cell packed/unpacked in a halo exchange.
pub const HALO_CELL: f64 = 1.0;

/// Wire size of one particle in a redistribution message: curve key plus
/// five phase-space doubles.
pub const PARTICLE_MSG_BYTES: usize = 8 + pic_particles::soa::PARTICLE_WIRE_BYTES;

/// Wire size of one mesh grid point's scatter contribution: packed global
/// vertex index + three current components (paper `l_grid` for charge
/// scatter; we deposit full current density).
pub const GHOST_CURRENT_BYTES: usize = 4 + 24;

/// Wire size of one grid point's gather reply: packed index + E and B.
pub const GHOST_FIELD_BYTES: usize = 4 + 48;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_anchor_row_lands_near_paper() {
        // uniform, 256x128, 32768 particles, p=32: n/p = 1024, m/p = 1024.
        let n_p = 1024.0;
        let m_p = 1024.0;
        let per_iter_units = n_p * (4.0 * (SCATTER_VERTEX + GATHER_VERTEX) + PUSH_PARTICLE)
            + m_p * (FIELD_POINT_B + FIELD_POINT_E);
        let delta = 1e-6;
        let t200 = 200.0 * per_iter_units * delta;
        // paper: 72.47 s (computation + communication); computation alone
        // should land in 55..=72
        assert!((55.0..=72.0).contains(&t200), "modeled {t200} s");
    }

    #[test]
    fn table2_largest_row_lands_near_paper() {
        // uniform, 512x256, 131072 particles, p=32: n/p = 4096, m/p = 4096.
        let n_p = 4096.0;
        let m_p = 4096.0;
        let per_iter_units = n_p * (4.0 * (SCATTER_VERTEX + GATHER_VERTEX) + PUSH_PARTICLE)
            + m_p * (FIELD_POINT_B + FIELD_POINT_E);
        let t200 = 200.0 * per_iter_units * 1e-6;
        // paper: 292.55 s
        assert!((230.0..=295.0).contains(&t200), "modeled {t200} s");
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn direct_table_is_cheaper_than_hash() {
        assert!(GHOST_ADD_DIRECT < GHOST_ADD_HASH);
    }
}
