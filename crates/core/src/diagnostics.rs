//! Physics conservation diagnostics.

use serde::{Deserialize, Serialize};

use crate::state::RankState;

/// Energy split of the whole system.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyReport {
    /// Total particle kinetic energy.
    pub kinetic: f64,
    /// Total field energy over owned (interior) cells.
    pub field: f64,
}

impl EnergyReport {
    /// Kinetic plus field energy.
    pub fn total(&self) -> f64 {
        self.kinetic + self.field
    }
}

/// Compute the energy report across all rank states.  Field energy only
/// counts each rank's interior cells (ghost-ring values are copies).
pub fn energy_of(ranks: &[RankState], dx: f64, dy: f64) -> EnergyReport {
    let mut kinetic = 0.0;
    let mut field = 0.0;
    let cell = dx * dy;
    for st in ranks {
        kinetic += st.particles.kinetic_energy();
        for ly in 1..=st.rect.h {
            for lx in 1..=st.rect.w {
                let v = st.fields.at(lx, ly);
                let e2 = v[0] * v[0] + v[1] * v[1] + v[2] * v[2];
                let b2 = v[3] * v[3] + v[4] * v[4] + v[5] * v[5];
                field += 0.5 * (e2 + b2) * cell;
            }
        }
    }
    EnergyReport { kinetic, field }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use pic_field::Rect;

    #[test]
    fn energy_counts_interior_only() {
        let cfg = SimConfig::small_test();
        let mut st = RankState::new(
            0,
            Rect {
                x0: 0,
                y0: 0,
                w: 4,
                h: 4,
            },
            &cfg,
        );
        // fill everything including ghosts with Ez = 1
        st.fields.ez.fill(1.0);
        let r = energy_of(std::slice::from_ref(&st), 1.0, 1.0);
        // 16 interior cells * 0.5
        assert!((r.field - 8.0).abs() < 1e-12);
        assert_eq!(r.kinetic, 0.0);
    }

    #[test]
    fn kinetic_energy_sums_over_ranks() {
        let cfg = SimConfig::small_test();
        let rect = Rect {
            x0: 0,
            y0: 0,
            w: 4,
            h: 4,
        };
        let mut a = RankState::new(0, rect, &cfg);
        let mut b = RankState::new(1, rect, &cfg);
        a.particles.push(0.5, 0.5, 3.0, 0.0, 4.0);
        b.particles.push(0.5, 0.5, 3.0, 0.0, 4.0);
        let r = energy_of(&[a, b], 1.0, 1.0);
        let single = 26f64.sqrt() - 1.0;
        assert!((r.kinetic - 2.0 * single).abs() < 1e-12);
        assert!((r.total() - r.kinetic).abs() < 1e-12);
    }
}
