//! Electrostatic PIC variant (extension).
//!
//! The paper's lineage starts from electrostatic codes (Lubeck & Faber's
//! 2-D electrostatic problem, Section 3).  This module provides the
//! electrostatic field solve — charge deposit, periodic Poisson solve,
//! `E = -grad(phi)` — behind the same particle machinery, both as a
//! sequential reference and for physics validation: a cold plasma with a
//! sinusoidal velocity perturbation must ring at the plasma frequency,
//! exchanging kinetic and field energy.

use pic_field::poisson::{efield_from_phi, solve_poisson_periodic};
use pic_field::Grid2;
use pic_particles::push::{boris_push, gamma_of, BorisStep};
use pic_particles::{wrap_periodic, Cic, Particles};

use crate::config::SimConfig;
use crate::diagnostics::EnergyReport;

/// Sequential electrostatic PIC on a periodic 2-D grid.
pub struct ElectrostaticPicSim {
    cfg: SimConfig,
    /// Charge density (deposited each step).
    pub rho: Grid2<f64>,
    /// Electrostatic potential.
    pub phi: Grid2<f64>,
    /// Electric field x component.
    pub ex: Grid2<f64>,
    /// Electric field y component.
    pub ey: Grid2<f64>,
    particles: Particles,
    /// Jacobi sweeps allowed per field solve.
    pub max_sweeps: usize,
    /// Convergence tolerance for the Poisson solve.
    pub tol: f64,
    /// Neutralizing background charge density (immobile ions), set so the
    /// plasma is globally neutral.
    background: f64,
}

impl ElectrostaticPicSim {
    /// Build from the shared configuration (the EM-specific fields are
    /// ignored).
    pub fn new(cfg: SimConfig) -> Self {
        cfg.validate();
        let mut particles =
            cfg.distribution
                .load(cfg.particles, cfg.lx(), cfg.ly(), cfg.thermal_u, cfg.seed);
        particles.charge = -cfg.particle_charge;
        let cell = cfg.dx * cfg.dy;
        let background =
            -particles.charge * cfg.particles as f64 / (cfg.grid_points() as f64 * cell);
        Self {
            rho: Grid2::zeros(cfg.nx, cfg.ny),
            phi: Grid2::zeros(cfg.nx, cfg.ny),
            ex: Grid2::zeros(cfg.nx, cfg.ny),
            ey: Grid2::zeros(cfg.nx, cfg.ny),
            particles,
            max_sweeps: 400,
            tol: 1e-10,
            background,
            cfg,
        }
    }

    /// The particle array.
    pub fn particles(&self) -> &Particles {
        &self.particles
    }

    /// Mutable particle access (tests perturb velocities).
    pub fn particles_mut(&mut self) -> &mut Particles {
        &mut self.particles
    }

    /// Plasma frequency of the loaded population in normalized units:
    /// `omega_p^2 = n0 q^2 / m` with `n0` the mean number density.
    pub fn plasma_frequency(&self) -> f64 {
        let n0 = self.cfg.particles as f64 / (self.cfg.lx() * self.cfg.ly());
        (n0 * self.cfg.particle_charge.powi(2) / self.particles.mass).sqrt()
    }

    /// Run one electrostatic iteration: deposit rho, solve Poisson,
    /// gather E, push (B = 0).
    pub fn step(&mut self) {
        let (nx, ny) = (self.cfg.nx, self.cfg.ny);
        let (dx, dy) = (self.cfg.dx, self.cfg.dy);
        let cell = dx * dy;
        let n = self.particles.len();

        // scatter: charge deposit plus neutralizing background
        self.rho.fill(self.background);
        let q = self.particles.charge;
        for i in 0..n {
            let cic = Cic::new(self.particles.x[i], self.particles.y[i], dx, dy, nx, ny);
            for (k, (cx, cy)) in cic.corners(nx, ny).into_iter().enumerate() {
                self.rho[(cx, cy)] += q * cic.w[k] / cell;
            }
        }

        // field solve: warm-started Poisson + gradient
        solve_poisson_periodic(&mut self.phi, &self.rho, dx, dy, self.max_sweeps, self.tol);
        let (ex, ey) = efield_from_phi(&self.phi, dx, dy);
        self.ex = ex;
        self.ey = ey;

        // gather + push
        let qm = self.particles.qm();
        let dt = self.cfg.dt;
        let (lx, ly) = (self.cfg.lx(), self.cfg.ly());
        for i in 0..n {
            let cic = Cic::new(self.particles.x[i], self.particles.y[i], dx, dy, nx, ny);
            let mut e = [0.0f64; 3];
            for (k, (cx, cy)) in cic.corners(nx, ny).into_iter().enumerate() {
                e[0] += cic.w[k] * self.ex[(cx, cy)];
                e[1] += cic.w[k] * self.ey[(cx, cy)];
            }
            let u = [
                self.particles.ux[i],
                self.particles.uy[i],
                self.particles.uz[i],
            ];
            let u2 = boris_push(u, &BorisStep { e, b: [0.0; 3] }, qm, dt);
            let gamma = gamma_of(u2);
            self.particles.ux[i] = u2[0];
            self.particles.uy[i] = u2[1];
            self.particles.uz[i] = u2[2];
            self.particles.x[i] = wrap_periodic(self.particles.x[i] + u2[0] / gamma * dt, lx);
            self.particles.y[i] = wrap_periodic(self.particles.y[i] + u2[1] / gamma * dt, ly);
        }
    }

    /// Run `iterations` steps.
    pub fn run(&mut self, iterations: usize) {
        for _ in 0..iterations {
            self.step();
        }
    }

    /// Energy diagnostics: kinetic plus electrostatic field energy.
    pub fn energy(&self) -> EnergyReport {
        let cell = self.cfg.dx * self.cfg.dy;
        let field = self
            .ex
            .as_slice()
            .iter()
            .zip(self.ey.as_slice())
            .map(|(&ex, &ey)| 0.5 * (ex * ex + ey * ey) * cell)
            .sum();
        EnergyReport {
            kinetic: self.particles.kinetic_energy(),
            field,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pic_machine::MachineConfig;
    use pic_particles::ParticleDistribution;
    use pic_partition::PolicyKind;

    fn es_cfg() -> SimConfig {
        SimConfig {
            nx: 32,
            ny: 8,
            particles: 32 * 8 * 16, // 16 per cell for a quiet start
            distribution: ParticleDistribution::Uniform,
            machine: MachineConfig::cm5(1),
            policy: PolicyKind::Static,
            thermal_u: 0.0,
            particle_charge: 0.05,
            dt: 0.25,
            seed: 11,
            ..SimConfig::paper_default()
        }
    }

    /// Replace the random load with a quiet start: particles on a regular
    /// lattice, so the deposited density is exactly uniform and the only
    /// dynamics are the ones we inject.
    fn quiet_start(sim: &mut ElectrostaticPicSim, nx_p: usize, ny_p: usize) {
        let (lx, ly) = (32.0, 8.0);
        let p = sim.particles_mut();
        p.x.clear();
        p.y.clear();
        p.ux.clear();
        p.uy.clear();
        p.uz.clear();
        for j in 0..ny_p {
            for i in 0..nx_p {
                p.push(
                    (i as f64 + 0.5) * lx / nx_p as f64,
                    (j as f64 + 0.5) * ly / ny_p as f64,
                    0.0,
                    0.0,
                    0.0,
                );
            }
        }
    }

    #[test]
    fn neutral_cold_plasma_is_quiescent() {
        let mut sim = ElectrostaticPicSim::new(es_cfg());
        quiet_start(&mut sim, 128, 32); // 4096 particles, 16 per cell
        sim.run(5);
        let e = sim.energy();
        // lattice load + background: fields stay at roundoff level
        assert!(e.field < 1e-9, "field energy {}", e.field);
        assert!(e.kinetic < 1e-12, "plasma heated itself: {}", e.kinetic);
    }

    #[test]
    fn charge_deposit_is_neutral_overall() {
        let mut sim = ElectrostaticPicSim::new(es_cfg());
        sim.step();
        let total: f64 = sim.rho.as_slice().iter().sum();
        assert!(total.abs() < 1e-9, "net charge {total}");
    }

    #[test]
    fn perturbed_plasma_oscillates_at_plasma_frequency() {
        // classic Langmuir oscillation from a quiet start: give the
        // lattice electrons a sinusoidal x velocity; kinetic energy
        // K ~ cos^2(omega_p t) first vanishes at a quarter period
        let mut sim = ElectrostaticPicSim::new(es_cfg());
        quiet_start(&mut sim, 128, 32);
        let lx = 32.0;
        let v0 = 0.02;
        for i in 0..sim.particles().len() {
            let x = sim.particles().x[i];
            sim.particles_mut().ux[i] = v0 * (std::f64::consts::TAU * x / lx).sin();
        }
        let omega_p = sim.plasma_frequency();
        let dt = 0.25;
        // search inside the first 60% of one plasma period so the global
        // minimum is the *first* kinetic minimum
        let steps = ((0.6 * std::f64::consts::TAU / omega_p) / dt) as usize;
        let mut kinetic = Vec::with_capacity(steps);
        for _ in 0..steps {
            sim.step();
            kinetic.push(sim.energy().kinetic);
        }
        let min_idx = kinetic
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap();
        let t_quarter = (min_idx + 1) as f64 * dt;
        let expect = 0.5 * std::f64::consts::PI / omega_p;
        let ratio = t_quarter / expect;
        assert!(
            (0.7..1.4).contains(&ratio),
            "first kinetic minimum at t = {t_quarter:.2}, expected ~{expect:.2} (ratio {ratio:.2})"
        );
        // and the energy must actually have dipped substantially
        assert!(
            kinetic[min_idx] < 0.2 * kinetic[0],
            "no oscillation: K0 = {}, Kmin = {}",
            kinetic[0],
            kinetic[min_idx]
        );
    }

    #[test]
    fn momentum_is_conserved_without_external_fields() {
        let mut cfg = es_cfg();
        cfg.thermal_u = 0.1;
        let mut sim = ElectrostaticPicSim::new(cfg);
        let px0: f64 = sim.particles().ux.iter().sum();
        sim.run(10);
        let px1: f64 = sim.particles().ux.iter().sum();
        // self-consistent internal forces nearly cancel (exact
        // conservation does not hold for CIC+grid forces, but drift must
        // be small relative to thermal momentum content)
        let scale: f64 = sim.particles().ux.iter().map(|u| u.abs()).sum();
        assert!(
            (px1 - px0).abs() < 1e-2 * scale.max(1.0),
            "momentum drift {px0} -> {px1}"
        );
    }
}
