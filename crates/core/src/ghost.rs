//! Ghost grid point tables: duplicate removal + message coalescing.
//!
//! "For each execution loop, the same off-processor data may be accessed
//! multiple times, but only a single copy of that data can be fetched"
//! (paper Section 3.2).  With ~4 particles per cell, each off-block vertex
//! is touched by several particles; the accumulator sums contributions
//! locally so each ghost point crosses the wire exactly once.  The paper
//! compares two implementations (Figure 8): a **hash table** (memory
//! proportional to the ghost set, search time per access) and a **direct
//! address table** (memory proportional to the whole mesh, O(1) access) —
//! both are provided and the dedup ablation bench measures the trade.

use std::collections::HashMap;

use pic_field::BlockLayout;

use crate::config::DedupKind;

/// Per-owner coalesced ghost entries: `(owner rank, [(packed vertex,
/// [Jx, Jy, Jz])])`, owners ascending.
pub type OwnerEntries = Vec<(usize, Vec<(u32, [f64; 3])>)>;

/// Accumulates off-block vertex contributions, deduplicating by vertex.
pub trait GhostAccumulator {
    /// Add a contribution to the global vertex `(gx, gy)`.
    fn add(&mut self, gx: u32, gy: u32, val: [f64; 3]);

    /// Number of distinct ghost vertices accumulated.
    fn distinct(&self) -> usize;

    /// Op units charged per `add` (differs between implementations).
    fn add_cost(&self) -> f64;

    /// Drain the table into per-owner coalesced entry lists, sorted by
    /// owner rank and, within an owner, by packed vertex index
    /// (deterministic wire order).  The accumulator is left empty and
    /// reusable.
    fn drain_by_owner(&mut self, layout: &BlockLayout) -> OwnerEntries;
}

/// Hash-table deduplication.
#[derive(Debug, Default)]
pub struct HashTableAccumulator {
    nx: u32,
    table: HashMap<u32, [f64; 3]>,
}

impl HashTableAccumulator {
    /// Accumulator for an `nx`-wide mesh (indices packed as `gy*nx+gx`).
    pub fn new(nx: usize) -> Self {
        Self {
            nx: nx as u32,
            table: HashMap::new(),
        }
    }
}

impl GhostAccumulator for HashTableAccumulator {
    fn add(&mut self, gx: u32, gy: u32, val: [f64; 3]) {
        let key = gy * self.nx + gx;
        let e = self.table.entry(key).or_insert([0.0; 3]);
        e[0] += val[0];
        e[1] += val[1];
        e[2] += val[2];
    }

    fn distinct(&self) -> usize {
        self.table.len()
    }

    fn add_cost(&self) -> f64 {
        crate::costs::GHOST_ADD_HASH
    }

    fn drain_by_owner(&mut self, layout: &BlockLayout) -> OwnerEntries {
        let nx = self.nx;
        let mut entries: Vec<(u32, [f64; 3])> = self.table.drain().collect();
        entries.sort_unstable_by_key(|&(k, _)| k);
        group_by_owner(entries, nx, layout)
    }
}

/// Direct-address-table deduplication with generation stamping, so the
/// table is reused across iterations without clearing (the memory-for-time
/// trade the paper describes, plus the standard generation trick to avoid
/// the O(m) clear).
#[derive(Debug)]
pub struct DirectTableAccumulator {
    nx: u32,
    /// Per-vertex generation stamp; a stale stamp means "empty".
    stamp: Vec<u32>,
    /// Per-vertex slot into `dense` when the stamp is current.
    slot: Vec<u32>,
    /// Densely packed live entries.
    dense: Vec<(u32, [f64; 3])>,
    generation: u32,
}

impl DirectTableAccumulator {
    /// Accumulator over the whole `nx x ny` vertex grid.
    pub fn new(nx: usize, ny: usize) -> Self {
        let m = nx * ny;
        Self {
            nx: nx as u32,
            stamp: vec![0; m],
            slot: vec![0; m],
            dense: Vec::new(),
            generation: 1,
        }
    }
}

impl GhostAccumulator for DirectTableAccumulator {
    fn add(&mut self, gx: u32, gy: u32, val: [f64; 3]) {
        let key = (gy * self.nx + gx) as usize;
        if self.stamp[key] == self.generation {
            let e = &mut self.dense[self.slot[key] as usize].1;
            e[0] += val[0];
            e[1] += val[1];
            e[2] += val[2];
        } else {
            self.stamp[key] = self.generation;
            self.slot[key] = self.dense.len() as u32;
            self.dense.push((key as u32, val));
        }
    }

    fn distinct(&self) -> usize {
        self.dense.len()
    }

    fn add_cost(&self) -> f64 {
        crate::costs::GHOST_ADD_DIRECT
    }

    fn drain_by_owner(&mut self, layout: &BlockLayout) -> OwnerEntries {
        let nx = self.nx;
        let mut entries = std::mem::take(&mut self.dense);
        entries.sort_unstable_by_key(|&(k, _)| k);
        self.generation = self.generation.wrapping_add(1);
        if self.generation == 0 {
            // stamp wrap-around: reset to a clean state
            self.stamp.fill(0);
            self.generation = 1;
        }
        group_by_owner(entries, nx, layout)
    }
}

/// Group packed-index entries by owning rank, owners ascending.
fn group_by_owner(entries: Vec<(u32, [f64; 3])>, nx: u32, layout: &BlockLayout) -> OwnerEntries {
    let mut by_owner: Vec<(usize, u32, [f64; 3])> = entries
        .into_iter()
        .map(|(k, v)| {
            let (gx, gy) = ((k % nx) as usize, (k / nx) as usize);
            (layout.owner_of(gx, gy), k, v)
        })
        .collect();
    by_owner.sort_unstable_by_key(|&(o, k, _)| (o, k));
    let mut out: OwnerEntries = Vec::new();
    for (owner, k, v) in by_owner {
        match out.last_mut() {
            Some((o, list)) if *o == owner => list.push((k, v)),
            _ => out.push((owner, vec![(k, v)])),
        }
    }
    out
}

/// Build the configured accumulator.
pub fn make_accumulator(kind: DedupKind, nx: usize, ny: usize) -> Box<dyn GhostAccumulator + Send> {
    match kind {
        DedupKind::Hash => Box::new(HashTableAccumulator::new(nx)),
        DedupKind::Direct => Box::new(DirectTableAccumulator::new(nx, ny)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> BlockLayout {
        BlockLayout::new_2d(8, 8, 2, 2) // 4 ranks, 4x4 blocks
    }

    fn accumulate(acc: &mut dyn GhostAccumulator) {
        // three adds to the same vertex (1,1) -> rank 0, one to (5,5) -> rank 3
        acc.add(1, 1, [1.0, 0.0, 0.0]);
        acc.add(1, 1, [2.0, 0.5, 0.0]);
        acc.add(1, 1, [3.0, 0.0, 0.25]);
        acc.add(5, 5, [1.0, 1.0, 1.0]);
    }

    #[test]
    fn hash_table_deduplicates() {
        let mut acc = HashTableAccumulator::new(8);
        accumulate(&mut acc);
        assert_eq!(acc.distinct(), 2);
        let drained = acc.drain_by_owner(&layout());
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].0, 0);
        assert_eq!(drained[0].1, vec![(9, [6.0, 0.5, 0.25])]);
        assert_eq!(drained[1].0, 3);
    }

    #[test]
    fn direct_table_matches_hash_table() {
        let mut hash = HashTableAccumulator::new(8);
        let mut direct = DirectTableAccumulator::new(8, 8);
        accumulate(&mut hash);
        accumulate(&mut direct);
        assert_eq!(
            hash.drain_by_owner(&layout()),
            direct.drain_by_owner(&layout())
        );
    }

    #[test]
    fn direct_table_is_reusable_across_drains() {
        let mut acc = DirectTableAccumulator::new(8, 8);
        accumulate(&mut acc);
        let first = acc.drain_by_owner(&layout());
        assert_eq!(acc.distinct(), 0);
        accumulate(&mut acc);
        let second = acc.drain_by_owner(&layout());
        assert_eq!(first, second);
    }

    #[test]
    fn hash_table_is_reusable_across_drains() {
        let mut acc = HashTableAccumulator::new(8);
        accumulate(&mut acc);
        let first = acc.drain_by_owner(&layout());
        accumulate(&mut acc);
        assert_eq!(first, acc.drain_by_owner(&layout()));
    }

    #[test]
    fn entries_are_sorted_within_owner() {
        let mut acc = HashTableAccumulator::new(8);
        acc.add(3, 0, [1.0; 3]);
        acc.add(0, 0, [1.0; 3]);
        acc.add(2, 1, [1.0; 3]);
        let drained = acc.drain_by_owner(&layout());
        let keys: Vec<u32> = drained[0].1.iter().map(|e| e.0).collect();
        assert_eq!(keys, vec![0, 3, 10]);
    }

    #[test]
    fn costs_reflect_the_papers_trade() {
        let hash = HashTableAccumulator::new(8);
        let direct = DirectTableAccumulator::new(8, 8);
        assert!(direct.add_cost() < hash.add_cost());
    }

    #[test]
    fn factory_builds_both_kinds() {
        let mut h = make_accumulator(DedupKind::Hash, 8, 8);
        let mut d = make_accumulator(DedupKind::Direct, 8, 8);
        h.add(0, 0, [1.0; 3]);
        d.add(0, 0, [1.0; 3]);
        assert_eq!(h.distinct(), 1);
        assert_eq!(d.distinct(), 1);
    }
}
