//! # pic-core — the parallel particle-in-cell driver
//!
//! Ties every substrate together into the system the paper evaluates: a
//! 2½-D relativistic electromagnetic PIC code running on a virtual
//! distributed-memory machine under the **direct Lagrangian** particle
//! movement method with **independent partitioning** — the combination
//! Section 3.1 argues is the only scalable one — plus Hilbert index-based
//! dynamic particle alignment/redistribution.
//!
//! Every iteration runs the paper's four phases as BSP supersteps:
//!
//! 1. **Scatter** — particles deposit current onto the four vertex grid
//!    points of their cell; off-block contributions go through a
//!    duplicate-removing ghost table and are coalesced into one message
//!    per destination rank;
//! 2. **Field solve** — two halo exchanges + the B/E finite-difference
//!    updates on each rank's mesh block;
//! 3. **Gather** — owners push field values of the ghost points recorded
//!    during scatter back to the requesting ranks ("the communication
//!    behavior is just the inverse of the scatter phase"), then every
//!    particle interpolates E and B;
//! 4. **Push** — the relativistic Boris update; no communication, because
//!    particles never migrate between redistributions.
//!
//! Between iterations a [`pic_partition::RedistributionPolicy`] decides
//! whether to run the Hilbert index-based redistribution (bucket
//! incremental sort + order-maintaining balance).
//!
//! ```
//! use pic_core::{ParallelPicSim, SimConfig};
//!
//! let cfg = SimConfig::small_test();
//! let mut sim = ParallelPicSim::new(cfg);
//! let report = sim.run(5);
//! assert_eq!(report.iterations.len(), 5);
//! assert!(report.total_s > 0.0);
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod checkpoint;
pub mod config;
pub mod costs;
pub mod diagnostics;
pub mod electrostatic;
pub mod ghost;
pub mod messages;
pub mod phases;
pub mod recovery;
pub mod replicated;
pub mod scratch;
pub mod sequential;
pub mod sim;
pub mod state;
pub mod validation;

pub use analysis::{ideal_bounds, PhaseBounds};
pub use checkpoint::{Checkpoint, CheckpointError, RankSnapshot};
pub use config::{DedupKind, MovementMethod, SimConfig};
pub use diagnostics::EnergyReport;
pub use electrostatic::ElectrostaticPicSim;
pub use ghost::{DirectTableAccumulator, GhostAccumulator, HashTableAccumulator};
pub use recovery::{run_with_recovery, run_with_recovery_traced, RecoveryOutcome};
pub use replicated::ReplicatedGridPicSim;
pub use scratch::ScratchArena;
pub use sequential::SequentialPicSim;
pub use sim::{
    GenericPicSim, IterationRecord, ParallelPicSim, PhaseBreakdown, SimReport, ThreadedPicSim,
};
pub use state::RankState;
pub use validation::{model_error_report, ModelErrorReport, ModelErrorRow};
