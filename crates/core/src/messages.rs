//! Typed, byte-accounted message payloads of the PIC phases.
//!
//! Wire sizes model what the 1996 code would pack into CMMD messages:
//! 4-byte packed grid indices, 8-byte doubles — see [`crate::costs`].

use std::sync::Arc;

use pic_machine::Payload;

use crate::costs::{GHOST_CURRENT_BYTES, GHOST_FIELD_BYTES, PARTICLE_MSG_BYTES};

/// Scatter-phase ghost contributions: `(packed vertex index, [Jx, Jy, Jz])`
/// per off-block grid point, coalesced into one message per destination.
#[derive(Debug, Clone, PartialEq)]
pub struct GhostCurrents(pub Vec<(u32, [f64; 3])>);

impl Payload for GhostCurrents {
    fn size_bytes(&self) -> usize {
        self.0.len() * GHOST_CURRENT_BYTES
    }
}

/// Gather-phase replies: `(packed vertex index, [Ex, Ey, Ez, Bx, By, Bz])`.
#[derive(Debug, Clone, PartialEq)]
pub struct GhostFields(pub Vec<(u32, [f64; 6])>);

impl Payload for GhostFields {
    fn size_bytes(&self) -> usize {
        self.0.len() * GHOST_FIELD_BYTES
    }
}

/// Field-solve halo data: three components per boundary cell, packed in
/// the plan's deterministic cell order.
#[derive(Debug, Clone, PartialEq)]
pub struct HaloData(pub Vec<f64>);

impl Payload for HaloData {
    fn size_bytes(&self) -> usize {
        self.0.len() * 8
    }
}

/// A batch of migrating particles: curve keys plus five phase-space
/// doubles each, in sorted key order.
///
/// Zero-copy view into shared flat buffers: the sending rank packs *all*
/// outgoing particles once (grouped by destination) into one key buffer
/// and one interleaved phase-space buffer, and every per-destination
/// batch is an `Arc`-backed `[start, end)` window of those — no
/// per-destination `Vec` clones on the wire.  Cloning a batch clones two
/// `Arc`s and two indices.
#[derive(Debug, Clone)]
pub struct ParticleBatch {
    keys: Arc<Vec<u64>>,
    /// Interleaved phase space, five doubles per particle:
    /// x, y, ux, uy, uz.
    data: Arc<Vec<f64>>,
    start: usize,
    end: usize,
}

impl Default for ParticleBatch {
    fn default() -> Self {
        Self {
            keys: Arc::new(Vec::new()),
            data: Arc::new(Vec::new()),
            start: 0,
            end: 0,
        }
    }
}

impl PartialEq for ParticleBatch {
    fn eq(&self, other: &Self) -> bool {
        self.keys() == other.keys() && self.interleaved() == other.interleaved()
    }
}

impl ParticleBatch {
    /// A batch viewing particles `start..end` of shared pack buffers
    /// (`data` holds five interleaved doubles per particle).
    ///
    /// # Panics
    /// Panics if the window exceeds either buffer.
    pub fn view(keys: Arc<Vec<u64>>, data: Arc<Vec<f64>>, start: usize, end: usize) -> Self {
        assert!(start <= end && end <= keys.len(), "key window out of range");
        assert!(end * 5 <= data.len(), "data window out of range");
        Self {
            keys,
            data,
            start,
            end,
        }
    }

    /// Number of particles in the batch.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The batch's curve keys, ascending.
    pub fn keys(&self) -> &[u64] {
        &self.keys[self.start..self.end]
    }

    /// The interleaved phase-space window (five doubles per particle).
    pub fn interleaved(&self) -> &[f64] {
        &self.data[self.start * 5..self.end * 5]
    }

    /// Append one particle (test/construction convenience — a batch
    /// built by pushes owns its buffers, so this never clones shared
    /// data in practice).
    ///
    /// # Panics
    /// Panics if the batch is a strict window of larger pack buffers.
    pub fn push(&mut self, key: u64, coords: [f64; 5]) {
        assert!(
            self.start == 0 && self.end == self.keys.len(),
            "cannot push into a sliced batch view"
        );
        Arc::make_mut(&mut self.keys).push(key);
        Arc::make_mut(&mut self.data).extend_from_slice(&coords);
        self.end += 1;
    }

    /// The `i`-th particle's phase-space coordinates.
    pub fn coords(&self, i: usize) -> [f64; 5] {
        let o = (self.start + i) * 5;
        [
            self.data[o],
            self.data[o + 1],
            self.data[o + 2],
            self.data[o + 3],
            self.data[o + 4],
        ]
    }
}

impl Payload for ParticleBatch {
    fn size_bytes(&self) -> usize {
        self.len() * PARTICLE_MSG_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ghost_current_wire_size() {
        let m = GhostCurrents(vec![(0, [0.0; 3]); 10]);
        assert_eq!(m.size_bytes(), 280);
    }

    #[test]
    fn ghost_field_wire_size() {
        let m = GhostFields(vec![(0, [0.0; 6]); 10]);
        assert_eq!(m.size_bytes(), 520);
    }

    #[test]
    fn particle_batch_roundtrip() {
        let mut b = ParticleBatch::default();
        b.push(42, [1.0, 2.0, 3.0, 4.0, 5.0]);
        b.push(43, [6.0, 7.0, 8.0, 9.0, 10.0]);
        assert_eq!(b.len(), 2);
        assert_eq!(b.coords(1), [6.0, 7.0, 8.0, 9.0, 10.0]);
        assert_eq!(b.size_bytes(), 2 * 48);
    }

    #[test]
    fn empty_batch_is_free() {
        assert_eq!(ParticleBatch::default().size_bytes(), 0);
        assert!(ParticleBatch::default().is_empty());
    }

    #[test]
    fn sliced_views_share_one_buffer() {
        let keys = Arc::new(vec![1u64, 2, 3, 4]);
        let data = Arc::new((0..20).map(f64::from).collect::<Vec<f64>>());
        let a = ParticleBatch::view(keys.clone(), data.clone(), 0, 1);
        let b = ParticleBatch::view(keys.clone(), data.clone(), 1, 4);
        assert_eq!(a.keys(), &[1]);
        assert_eq!(b.keys(), &[2, 3, 4]);
        assert_eq!(b.coords(0), [5.0, 6.0, 7.0, 8.0, 9.0]);
        assert_eq!(b.size_bytes(), 3 * 48);
        // clones are window handles, not buffer copies
        let c = b.clone();
        assert_eq!(c, b);
        assert_eq!(Arc::strong_count(&keys), 4);
    }

    #[test]
    #[should_panic(expected = "cannot push into a sliced batch view")]
    fn push_into_slice_rejected() {
        let keys = Arc::new(vec![1u64, 2]);
        let data = Arc::new(vec![0.0; 10]);
        let mut b = ParticleBatch::view(keys, data, 0, 1);
        b.push(9, [0.0; 5]);
    }
}
