//! Typed, byte-accounted message payloads of the PIC phases.
//!
//! Wire sizes model what the 1996 code would pack into CMMD messages:
//! 4-byte packed grid indices, 8-byte doubles — see [`crate::costs`].

use pic_machine::Payload;

use crate::costs::{GHOST_CURRENT_BYTES, GHOST_FIELD_BYTES, PARTICLE_MSG_BYTES};

/// Scatter-phase ghost contributions: `(packed vertex index, [Jx, Jy, Jz])`
/// per off-block grid point, coalesced into one message per destination.
#[derive(Debug, Clone, PartialEq)]
pub struct GhostCurrents(pub Vec<(u32, [f64; 3])>);

impl Payload for GhostCurrents {
    fn size_bytes(&self) -> usize {
        self.0.len() * GHOST_CURRENT_BYTES
    }
}

/// Gather-phase replies: `(packed vertex index, [Ex, Ey, Ez, Bx, By, Bz])`.
#[derive(Debug, Clone, PartialEq)]
pub struct GhostFields(pub Vec<(u32, [f64; 6])>);

impl Payload for GhostFields {
    fn size_bytes(&self) -> usize {
        self.0.len() * GHOST_FIELD_BYTES
    }
}

/// Field-solve halo data: three components per boundary cell, packed in
/// the plan's deterministic cell order.
#[derive(Debug, Clone, PartialEq)]
pub struct HaloData(pub Vec<f64>);

impl Payload for HaloData {
    fn size_bytes(&self) -> usize {
        self.0.len() * 8
    }
}

/// A batch of migrating particles: curve keys plus five phase-space
/// doubles each, in sorted key order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ParticleBatch {
    /// Curve keys, ascending.
    pub keys: Vec<u64>,
    /// Phase space, five doubles per particle: x, y, ux, uy, uz.
    pub data: Vec<f64>,
}

impl ParticleBatch {
    /// Number of particles in the batch.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Append one particle.
    pub fn push(&mut self, key: u64, coords: [f64; 5]) {
        self.keys.push(key);
        self.data.extend_from_slice(&coords);
    }

    /// The `i`-th particle's phase-space coordinates.
    pub fn coords(&self, i: usize) -> [f64; 5] {
        let o = i * 5;
        [
            self.data[o],
            self.data[o + 1],
            self.data[o + 2],
            self.data[o + 3],
            self.data[o + 4],
        ]
    }
}

impl Payload for ParticleBatch {
    fn size_bytes(&self) -> usize {
        self.keys.len() * PARTICLE_MSG_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ghost_current_wire_size() {
        let m = GhostCurrents(vec![(0, [0.0; 3]); 10]);
        assert_eq!(m.size_bytes(), 280);
    }

    #[test]
    fn ghost_field_wire_size() {
        let m = GhostFields(vec![(0, [0.0; 6]); 10]);
        assert_eq!(m.size_bytes(), 520);
    }

    #[test]
    fn particle_batch_roundtrip() {
        let mut b = ParticleBatch::default();
        b.push(42, [1.0, 2.0, 3.0, 4.0, 5.0]);
        b.push(43, [6.0, 7.0, 8.0, 9.0, 10.0]);
        assert_eq!(b.len(), 2);
        assert_eq!(b.coords(1), [6.0, 7.0, 8.0, 9.0, 10.0]);
        assert_eq!(b.size_bytes(), 2 * 48);
    }

    #[test]
    fn empty_batch_is_free() {
        assert_eq!(ParticleBatch::default().size_bytes(), 0);
        assert!(ParticleBatch::default().is_empty());
    }
}
