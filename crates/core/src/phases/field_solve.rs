//! Field solve phase: two halo exchanges and the B/E updates.
//!
//! Paper Section 4: "a finite difference method is used to solve
//! Maxwell's equations on the mesh grids, each grid point needs data from
//! its four neighboring grid points.  Only the grid points on the
//! boundaries of the submesh in a processor will access data from the
//! neighboring processors."  We run two supersteps:
//!
//! 1. exchange E ghosts, update B on the interior;
//! 2. exchange B ghosts, update E on the interior (with the scatter
//!    phase's current densities as source terms).

use pic_field::Grid2;
use pic_machine::{Outbox, PhaseKind, SpmdEngine, SpmdError};

use crate::costs;
use crate::messages::HaloData;
use crate::phases::PhaseEnv;
use crate::state::RankState;

/// Pack three field components of the plan's cells in order.
fn pack(
    grids: [&Grid2<f64>; 3],
    rect: &pic_field::Rect,
    cells: &[pic_field::CellSlot],
) -> Vec<f64> {
    let mut data = Vec::with_capacity(cells.len() * 3);
    for &((sx, sy), _) in cells {
        let (lx, ly) = (sx - rect.x0 + 1, sy - rect.y0 + 1);
        for g in grids {
            data.push(g[(lx, ly)]);
        }
    }
    data
}

/// Unpack three field components into the plan's padded slots.
fn unpack(grids: [&mut Grid2<f64>; 3], cells: &[pic_field::CellSlot], data: &[f64]) {
    debug_assert_eq!(data.len(), cells.len() * 3);
    let [g0, g1, g2] = grids;
    for (k, &(_, (px, py))) in cells.iter().enumerate() {
        g0[(px, py)] = data[3 * k];
        g1[(px, py)] = data[3 * k + 1];
        g2[(px, py)] = data[3 * k + 2];
    }
}

/// Copy self-wrap ghost slots from the rank's own interior.
fn self_fill(st: &mut RankState, halo: &pic_field::HaloPlan, which: Which) {
    let copies = halo.self_copies(st.rank);
    for &((sx, sy), (px, py)) in copies {
        let (lx, ly) = (sx - st.rect.x0 + 1, sy - st.rect.y0 + 1);
        match which {
            Which::E => {
                let v = (
                    st.fields.ex[(lx, ly)],
                    st.fields.ey[(lx, ly)],
                    st.fields.ez[(lx, ly)],
                );
                st.fields.ex[(px, py)] = v.0;
                st.fields.ey[(px, py)] = v.1;
                st.fields.ez[(px, py)] = v.2;
            }
            Which::B => {
                let v = (
                    st.fields.bx[(lx, ly)],
                    st.fields.by[(lx, ly)],
                    st.fields.bz[(lx, ly)],
                );
                st.fields.bx[(px, py)] = v.0;
                st.fields.by[(px, py)] = v.1;
                st.fields.bz[(px, py)] = v.2;
            }
        }
    }
}

#[derive(Clone, Copy)]
enum Which {
    E,
    B,
}

/// Run the field solve: exchange E → update B, exchange B → update E.
pub fn run<E: SpmdEngine<RankState>>(machine: &mut E, env: &PhaseEnv) -> Result<(), SpmdError> {
    let halo = env.halo;
    let solver = *env.solver;

    // superstep 1: E ghosts out, B update on delivery
    machine.superstep(
        PhaseKind::FieldSolve,
        move |r, st, ctx, ob: &mut Outbox<HaloData>| {
            for msg in halo.sends(r) {
                ctx.charge_ops(msg.cells.len() as f64 * costs::HALO_CELL);
                let data = pack(
                    [&st.fields.ex, &st.fields.ey, &st.fields.ez],
                    &st.rect,
                    &msg.cells,
                );
                ob.send(msg.to, HaloData(data));
            }
        },
        move |r, st, ctx, inbox| {
            for (from, HaloData(data)) in inbox {
                let cells = &halo
                    .sends(from)
                    .iter()
                    .find(|m| m.to == r)
                    .unwrap_or_else(|| {
                        panic!("halo message from rank {from} to rank {r} without plan entry")
                    })
                    .cells;
                ctx.charge_ops(cells.len() as f64 * costs::HALO_CELL);
                let f = &mut st.fields;
                unpack([&mut f.ex, &mut f.ey, &mut f.ez], cells, &data);
            }
            self_fill(st, halo, Which::E);
            solver.update_b_padded(&mut st.fields);
            ctx.charge_ops(st.rect.area() as f64 * costs::FIELD_POINT_B);
        },
    )?;

    // superstep 2: B ghosts out, E update on delivery
    machine.superstep(
        PhaseKind::FieldSolve,
        move |r, st, ctx, ob: &mut Outbox<HaloData>| {
            for msg in halo.sends(r) {
                ctx.charge_ops(msg.cells.len() as f64 * costs::HALO_CELL);
                let data = pack(
                    [&st.fields.bx, &st.fields.by, &st.fields.bz],
                    &st.rect,
                    &msg.cells,
                );
                ob.send(msg.to, HaloData(data));
            }
        },
        move |r, st, ctx, inbox| {
            for (from, HaloData(data)) in inbox {
                let cells = &halo
                    .sends(from)
                    .iter()
                    .find(|m| m.to == r)
                    .unwrap_or_else(|| {
                        panic!("halo message from rank {from} to rank {r} without plan entry")
                    })
                    .cells;
                ctx.charge_ops(cells.len() as f64 * costs::HALO_CELL);
                let f = &mut st.fields;
                unpack([&mut f.bx, &mut f.by, &mut f.bz], cells, &data);
            }
            self_fill(st, halo, Which::B);
            solver.update_e_padded(&mut st.fields, &st.currents);
            ctx.charge_ops(st.rect.area() as f64 * costs::FIELD_POINT_E);
        },
    )
}
