//! Gather phase: ghost field replies and per-particle interpolation.
//!
//! "The same ghost grid points generated in the scatter phase are used
//! here to carry the necessary off-processor field data.  The
//! communication behavior is just the inverse of the scatter phase,
//! except that two fields, E and B, instead of one are the objects to be
//! transferred" (paper Section 4).  Owners *push* field values along the
//! `ghost_serving` lists recorded during scatter delivery, so no request
//! round-trip is needed; the delivery half interpolates E and B at every
//! particle.

use std::collections::HashMap;

use pic_machine::{Outbox, PhaseKind, SpmdEngine, SpmdError};
use pic_particles::Cic;

use crate::costs;
use crate::messages::GhostFields;
use crate::phases::PhaseEnv;
use crate::state::RankState;

/// Run one gather superstep.
pub fn run<E: SpmdEngine<RankState>>(machine: &mut E, env: &PhaseEnv) -> Result<(), SpmdError> {
    let (nx, ny) = (env.cfg.nx, env.cfg.ny);
    let (dx, dy) = (env.cfg.dx, env.cfg.dy);
    machine.superstep(
        PhaseKind::Gather,
        move |_r, st, ctx, ob: &mut Outbox<GhostFields>| {
            let nxu = nx as u32;
            for (requester, keys) in &st.ghost_serving {
                ctx.charge_ops(keys.len() as f64 * costs::GHOST_APPLY);
                let entries: Vec<(u32, [f64; 6])> = keys
                    .iter()
                    .map(|&key| {
                        let (gx, gy) = ((key % nxu) as usize, (key / nxu) as usize);
                        let (lx, ly) = (gx - st.rect.x0 + 1, gy - st.rect.y0 + 1);
                        (key, st.fields.at(lx, ly))
                    })
                    .collect();
                ob.send(*requester, GhostFields(entries));
            }
        },
        move |_r, st, ctx, inbox| {
            let nxu = nx as u32;
            let mut cache: HashMap<u32, [f64; 6]> = HashMap::new();
            for (_, GhostFields(entries)) in inbox {
                cache.reserve(entries.len());
                for (k, v) in entries {
                    cache.insert(k, v);
                }
            }
            let n = st.particles.len();
            st.e_at.clear();
            st.b_at.clear();
            st.e_at.reserve(n);
            st.b_at.reserve(n);
            for i in 0..n {
                let cic = Cic::new(st.particles.x[i], st.particles.y[i], dx, dy, nx, ny);
                ctx.charge_ops(4.0 * costs::GATHER_VERTEX);
                let mut e = [0.0f64; 3];
                let mut b = [0.0f64; 3];
                for (k, (cx, cy)) in cic.corners(nx, ny).into_iter().enumerate() {
                    let w = cic.w[k];
                    let vals = if st.rect.contains(cx, cy) {
                        let (lx, ly) = (cx - st.rect.x0 + 1, cy - st.rect.y0 + 1);
                        st.fields.at(lx, ly)
                    } else {
                        let key = cy as u32 * nxu + cx as u32;
                        *cache.get(&key).unwrap_or_else(|| {
                            panic!(
                                "gather: ghost vertex {key} (cell {cx},{cy}) missing \
                                 from scatter round"
                            )
                        })
                    };
                    for c in 0..3 {
                        e[c] += w * vals[c];
                        b[c] += w * vals[3 + c];
                    }
                }
                st.e_at.push(e);
                st.b_at.push(b);
            }
        },
    )
}
