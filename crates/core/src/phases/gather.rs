//! Gather phase: ghost field replies and per-particle interpolation.
//!
//! "The same ghost grid points generated in the scatter phase are used
//! here to carry the necessary off-processor field data.  The
//! communication behavior is just the inverse of the scatter phase,
//! except that two fields, E and B, instead of one are the objects to be
//! transferred" (paper Section 4).  Owners *push* field values along the
//! `ghost_serving` lists recorded during scatter delivery, so no request
//! round-trip is needed; the delivery half interpolates E and B at every
//! particle.

use pic_machine::{Outbox, PhaseKind, SpmdEngine, SpmdError};
use pic_particles::Cic;

use crate::costs;
use crate::messages::GhostFields;
use crate::phases::PhaseEnv;
use crate::state::RankState;

/// Run one gather superstep.
pub fn run<E: SpmdEngine<RankState>>(machine: &mut E, env: &PhaseEnv) -> Result<(), SpmdError> {
    let (nx, ny) = (env.cfg.nx, env.cfg.ny);
    let (dx, dy) = (env.cfg.dx, env.cfg.dy);
    machine.superstep(
        PhaseKind::Gather,
        move |_r, st, ctx, ob: &mut Outbox<GhostFields>| {
            let nxu = nx as u32;
            for (requester, keys) in &st.ghost_serving {
                ctx.charge_ops(keys.len() as f64 * costs::GHOST_APPLY);
                let entries: Vec<(u32, [f64; 6])> = keys
                    .iter()
                    .map(|&key| {
                        let (gx, gy) = ((key % nxu) as usize, (key / nxu) as usize);
                        let (lx, ly) = (gx - st.rect.x0 + 1, gy - st.rect.y0 + 1);
                        (key, st.fields.at(lx, ly))
                    })
                    .collect();
                ob.send(*requester, GhostFields(entries));
            }
        },
        move |_r, st, ctx, inbox| {
            let nxu = nx as u32;
            // the vertex cache lives in the arena: cleared every
            // iteration, table capacity kept
            let RankState {
                scratch,
                particles,
                rect,
                fields,
                e_at,
                b_at,
                ..
            } = st;
            let cache = &mut scratch.ghost_cache;
            cache.begin(nx * ny);
            for (_, GhostFields(entries)) in inbox {
                for (k, v) in entries {
                    cache.insert(k, v);
                }
            }
            // Interleave the padded field block once per delivery so the
            // per-particle loop reads one contiguous `[f64; 6]` per
            // vertex instead of six bounds-checked loads scattered over
            // six component planes.
            let pw = fields.width();
            let (ex, ey, ez) = (
                fields.ex.as_slice(),
                fields.ey.as_slice(),
                fields.ez.as_slice(),
            );
            let (bx, by, bz) = (
                fields.bx.as_slice(),
                fields.by.as_slice(),
                fields.bz.as_slice(),
            );
            let aos = &mut scratch.fields_aos;
            aos.clear();
            aos.extend((0..ex.len()).map(|i| [ex[i], ey[i], ez[i], bx[i], by[i], bz[i]]));
            let n = particles.len();
            e_at.clear();
            b_at.clear();
            e_at.reserve(n);
            b_at.reserve(n);
            for i in 0..n {
                let cic = Cic::new(particles.x[i], particles.y[i], dx, dy, nx, ny);
                ctx.charge_ops(4.0 * costs::GATHER_VERTEX);
                let mut e = [0.0f64; 3];
                let mut b = [0.0f64; 3];
                for (k, (cx, cy)) in cic.corners(nx, ny).into_iter().enumerate() {
                    let w = cic.w[k];
                    let vals = if rect.contains(cx, cy) {
                        let (lx, ly) = (cx - rect.x0 + 1, cy - rect.y0 + 1);
                        aos[ly * pw + lx]
                    } else {
                        let key = cy as u32 * nxu + cx as u32;
                        cache.get(key).unwrap_or_else(|| {
                            panic!(
                                "gather: ghost vertex {key} (cell {cx},{cy}) missing \
                                 from scatter round"
                            )
                        })
                    };
                    for c in 0..3 {
                        e[c] += w * vals[c];
                        b[c] += w * vals[3 + c];
                    }
                }
                e_at.push(e);
                b_at.push(b);
            }
        },
    )
}
