//! The four PIC phases plus redistribution, each as machine supersteps.

pub mod field_solve;
pub mod gather;
pub mod push;
pub mod redistribute;
pub mod scatter;

use pic_field::{BlockLayout, HaloPlan, MaxwellSolver};
use pic_index::CellIndexer;

use crate::config::SimConfig;

/// Shared immutable context every phase needs.
pub struct PhaseEnv<'a> {
    /// Run configuration.
    pub cfg: &'a SimConfig,
    /// Mesh BLOCK layout (SFC-ordered block→rank map).
    pub layout: &'a BlockLayout,
    /// Halo exchange plan for the field solve.
    pub halo: &'a HaloPlan,
    /// Cell indexer shared by mesh, processor and particle indexing.
    pub indexer: &'a dyn CellIndexer,
    /// Field stepper.
    pub solver: &'a MaxwellSolver,
}
