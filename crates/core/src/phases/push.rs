//! Push phase: the relativistic Boris update, plus Eulerian migration.
//!
//! Under the direct Lagrangian method "the push phase has no
//! interprocessor communication cost" (paper Section 4) — it is a pure
//! local step.  Under the direct Eulerian baseline (paper Table 1, grid
//! partitioning), particles must migrate to the rank owning their new
//! cell immediately after the move, which is implemented as an extra
//! superstep.

use pic_machine::{Outbox, PhaseKind, SpmdEngine, SpmdError};
use pic_particles::push::{boris_push, gamma_of, BorisStep};
use pic_particles::wrap_periodic;

use crate::config::MovementMethod;
use crate::costs;
use crate::messages::ParticleBatch;
use crate::phases::PhaseEnv;
use crate::state::RankState;

/// Run the push phase (and Eulerian migration when configured).
pub fn run<E: SpmdEngine<RankState>>(machine: &mut E, env: &PhaseEnv) -> Result<(), SpmdError> {
    let dt = env.cfg.dt;
    let (lx, ly) = (env.cfg.lx(), env.cfg.ly());
    machine.local_step(PhaseKind::Push, move |_r, st, ctx| {
        let qm = st.particles.qm();
        let n = st.particles.len();
        debug_assert_eq!(st.e_at.len(), n, "gather must precede push");
        for i in 0..n {
            let u = [st.particles.ux[i], st.particles.uy[i], st.particles.uz[i]];
            let fields = BorisStep {
                e: st.e_at[i],
                b: st.b_at[i],
            };
            let u2 = boris_push(u, &fields, qm, dt);
            let gamma = gamma_of(u2);
            st.particles.ux[i] = u2[0];
            st.particles.uy[i] = u2[1];
            st.particles.uz[i] = u2[2];
            st.particles.x[i] = wrap_periodic(st.particles.x[i] + u2[0] / gamma * dt, lx);
            st.particles.y[i] = wrap_periodic(st.particles.y[i] + u2[1] / gamma * dt, ly);
        }
        ctx.charge_ops(n as f64 * costs::PUSH_PARTICLE);
    })?;

    if env.cfg.movement == MovementMethod::Eulerian {
        migrate_eulerian(machine, env)?;
    }
    Ok(())
}

/// Eulerian migration: every particle moves to the rank that owns its
/// cell.  No sorting, no alignment — the communication each step is the
/// price Table 1 attributes to keeping particle storage grid-partitioned.
fn migrate_eulerian<E: SpmdEngine<RankState>>(
    machine: &mut E,
    env: &PhaseEnv,
) -> Result<(), SpmdError> {
    let (nx, ny) = (env.cfg.nx, env.cfg.ny);
    let (dx, dy) = (env.cfg.dx, env.cfg.dy);
    let layout = env.layout;
    machine.superstep(
        PhaseKind::Push,
        move |_r, st, ctx, ob: &mut Outbox<ParticleBatch>| {
            let n = st.particles.len();
            // keys are unused in Eulerian mode but the exchange
            // transports them; keep the array sized
            st.keys.resize(n, 0);
            let RankState {
                scratch, particles, ..
            } = st;
            scratch.dests.clear();
            scratch.dests.reserve(n);
            for i in 0..n {
                let (cx, cy) =
                    pic_partition::cell_of(particles.x[i], particles.y[i], dx, dy, nx, ny);
                scratch.dests.push(layout.owner_of(cx, cy));
            }
            ctx.charge_ops(n as f64 * costs::CLASSIFY_STEP);
            st.take_outgoing_packed(|dest, batch| {
                ctx.charge_ops(batch.len() as f64 * costs::PACK_PARTICLE);
                ob.send(dest, batch);
            });
        },
        move |_r, st, ctx, inbox| {
            for (_, batch) in inbox {
                ctx.charge_ops(batch.len() as f64 * costs::PACK_PARTICLE);
                st.append_batch(&batch);
            }
        },
    )
}
