//! Particle distribution and redistribution (paper Figure 12).
//!
//! The full sequence of `Particle_Redistribution`:
//!
//! 1. `Hilbert_Base_Indexing` — refresh every particle's curve key;
//! 2. (initial distribution only) local sort + sample-sort splitter
//!    selection to seed the rank key bounds;
//! 3. `Bucket_Incremental_Sorting` — classify each particle against the
//!    remembered global bounds, all-to-many exchange of off-processor
//!    particles, incremental local sort + merge;
//! 4. `Order_Maintain_Load_Balance` — equalize counts without breaking
//!    the global sorted order;
//! 5. refresh the global bounds (global concatenation of each rank's
//!    extreme key) and the local bucket boundaries.
//!
//! Returns the modeled time the redistribution cost — exactly the
//! `T_redistribution` the dynamic policy trades against rising iteration
//! times.

use pic_machine::{Outbox, PhaseKind, SpmdEngine, SpmdError};
use pic_partition::{
    assign_keys_into, classify_by_bounds_into, order_maintaining_balance, rank_bounds_from_sorted,
    regular_sample, select_splitters,
};

use crate::costs;
use crate::messages::ParticleBatch;
use crate::phases::PhaseEnv;
use crate::state::RankState;

/// Oversampling factor for the initial sample sort.
const SAMPLES_PER_RANK: usize = 32;

/// Run a (re)distribution; `initial` selects the sample-sort bootstrap.
/// Returns the modeled elapsed seconds it cost.
pub fn run<E: SpmdEngine<RankState>>(
    machine: &mut E,
    env: &PhaseEnv,
    initial: bool,
) -> Result<f64, SpmdError> {
    let t_start = machine.elapsed_s();
    let p = machine.num_ranks();
    let indexer = env.indexer;
    let (dx, dy) = (env.cfg.dx, env.cfg.dy);

    // 1. refresh keys (reusing the rank's key buffer)
    machine.local_step(PhaseKind::Redistribute, move |_r, st, ctx| {
        let mut keys = std::mem::take(&mut st.keys);
        assign_keys_into(&st.particles, indexer, dx, dy, &mut keys);
        st.keys = keys;
        ctx.charge_ops(st.len() as f64 * costs::INDEX_PARTICLE);
    })?;

    if initial {
        // bootstrap: local sort, then sample-sort splitters
        machine.local_step(PhaseKind::Redistribute, |_r, st, ctx| {
            let cmp = st.sort_local();
            ctx.charge_ops(cmp * costs::SORT_COMPARISON);
        })?;
        machine.allgatherv(
            PhaseKind::Redistribute,
            8,
            |_r, st: &RankState| regular_sample(&st.keys, SAMPLES_PER_RANK),
            move |_r, st, all: &[u64]| {
                let mut sample = all.to_vec();
                let mut bounds = select_splitters(&mut sample, p);
                bounds.push(u64::MAX);
                st.bounds = bounds;
            },
        )?;
    }

    // 2. classify against global bounds, exchange, incremental sort
    let logp = (p.max(2) as f64).log2().ceil();
    machine.superstep(
        PhaseKind::Redistribute,
        move |_r, st, ctx, ob: &mut Outbox<ParticleBatch>| {
            let mut dests = std::mem::take(&mut st.scratch.dests);
            classify_by_bounds_into(&st.keys, &st.bounds, &mut dests);
            st.scratch.dests = dests;
            ctx.charge_ops(st.len() as f64 * costs::CLASSIFY_STEP * logp);
            st.take_outgoing_packed(|dest, batch| {
                ctx.charge_ops(batch.len() as f64 * costs::PACK_PARTICLE);
                ob.send(dest, batch);
            });
        },
        |_r, st, ctx, inbox| {
            for (_, batch) in inbox {
                ctx.charge_ops(batch.len() as f64 * costs::PACK_PARTICLE);
                st.append_batch(&batch);
            }
            let cmp = st.sort_local();
            ctx.charge_ops(cmp * costs::SORT_COMPARISON);
        },
    )?;

    // 3. global concatenation of counts
    machine.allgather(
        PhaseKind::Redistribute,
        8,
        |_r, st: &RankState| st.len() as u64,
        |_r, st, all: &[u64]| {
            st.all_counts = all.iter().map(|&c| c as usize).collect();
        },
    )?;

    // 4. order-maintaining load balance
    machine.superstep(
        PhaseKind::Redistribute,
        |r, st, ctx, ob: &mut Outbox<ParticleBatch>| {
            let plan = order_maintaining_balance(&st.all_counts);
            if plan.moves[r].is_empty() {
                return;
            }
            st.scratch.dests.clear();
            st.scratch.dests.resize(st.len(), r);
            for (dest, range) in &plan.moves[r] {
                for d in &mut st.scratch.dests[range.clone()] {
                    *d = *dest;
                }
            }
            st.take_outgoing_packed(|dest, batch| {
                ctx.charge_ops(batch.len() as f64 * costs::PACK_PARTICLE);
                ob.send(dest, batch);
            });
        },
        |r, st, ctx, inbox| {
            if inbox.is_empty() {
                return;
            }
            // merge preserving global order: lower-rank chunks prepend
            // (their keys precede ours), higher-rank chunks append
            let mut merged_particles =
                pic_particles::Particles::new(st.particles.charge, st.particles.mass);
            let mut merged_keys = Vec::new();
            let total_in: usize = inbox.iter().map(|(_, b)| b.len()).sum();
            merged_particles.reserve(st.len() + total_in);
            ctx.charge_ops(total_in as f64 * costs::PACK_PARTICLE);
            let push_batch =
                |mp: &mut pic_particles::Particles, mk: &mut Vec<u64>, batch: &ParticleBatch| {
                    mk.extend_from_slice(batch.keys());
                    for c in batch.interleaved().chunks_exact(5) {
                        mp.push(c[0], c[1], c[2], c[3], c[4]);
                    }
                };
            for (from, batch) in inbox.iter().filter(|(f, _)| *f < r) {
                let _ = from;
                push_batch(&mut merged_particles, &mut merged_keys, batch);
            }
            merged_particles.append(&mut st.particles);
            merged_keys.append(&mut st.keys);
            for (from, batch) in inbox.iter().filter(|(f, _)| *f > r) {
                let _ = from;
                push_batch(&mut merged_particles, &mut merged_keys, batch);
            }
            st.particles = merged_particles;
            st.keys = merged_keys;
            debug_assert!(st.keys.windows(2).all(|w| w[0] <= w[1]));
        },
    )?;

    // 5. refresh global bounds and local bucket boundaries
    machine.allgather(
        PhaseKind::Redistribute,
        8,
        |_r, st: &RankState| st.last_key(),
        |_r, st, all: &[u64]| {
            st.bounds = rank_bounds_from_sorted(all);
        },
    )?;
    machine.local_step(PhaseKind::Redistribute, |_r, st, _ctx| {
        st.rebuild_sorter();
    })?;

    Ok(machine.elapsed_s() - t_start)
}
