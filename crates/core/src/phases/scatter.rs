//! Scatter phase: current deposition with ghost tables and coalescing.
//!
//! Paper Figure 3 (`Scatter()`): each particle adds `weight * charge`
//! contributions to its four vertex grid points.  Contributions to
//! vertices inside the rank's own block go straight into the local
//! current grids; off-block contributions are deduplicated in the ghost
//! table and coalesced into a single message per owning rank.  The
//! delivery half applies incoming ghost contributions and records who
//! sent which vertices (`ghost_serving`) — the gather phase answers along
//! exactly those lists.

use pic_machine::{Outbox, PhaseKind, SpmdEngine, SpmdError};
use pic_particles::push::gamma_of;
use pic_particles::Cic;

use crate::costs;
use crate::messages::GhostCurrents;
use crate::phases::PhaseEnv;
use crate::state::RankState;

/// Run one scatter superstep.
pub fn run<E: SpmdEngine<RankState>>(machine: &mut E, env: &PhaseEnv) -> Result<(), SpmdError> {
    let (nx, ny) = (env.cfg.nx, env.cfg.ny);
    let (dx, dy) = (env.cfg.dx, env.cfg.dy);
    let layout = env.layout;
    machine.superstep(
        PhaseKind::Scatter,
        move |_r, st, ctx, ob: &mut Outbox<GhostCurrents>| {
            st.currents.clear();
            st.ghost_serving.clear();
            let q = st.particles.charge;
            let ghost_cost = st.ghost.add_cost();
            for i in 0..st.particles.len() {
                let u = [st.particles.ux[i], st.particles.uy[i], st.particles.uz[i]];
                let gamma = gamma_of(u);
                let v = [u[0] / gamma, u[1] / gamma, u[2] / gamma];
                let cic = Cic::new(st.particles.x[i], st.particles.y[i], dx, dy, nx, ny);
                ctx.charge_ops(4.0 * costs::SCATTER_VERTEX);
                for (k, (cx, cy)) in cic.corners(nx, ny).into_iter().enumerate() {
                    let w = cic.w[k];
                    let val = [q * v[0] * w, q * v[1] * w, q * v[2] * w];
                    if st.rect.contains(cx, cy) {
                        let (lx, ly) = (cx - st.rect.x0, cy - st.rect.y0);
                        st.currents.jx[(lx, ly)] += val[0];
                        st.currents.jy[(lx, ly)] += val[1];
                        st.currents.jz[(lx, ly)] += val[2];
                    } else {
                        st.ghost.add(cx as u32, cy as u32, val);
                        ctx.charge_ops(ghost_cost);
                    }
                }
            }
            for (owner, entries) in st.ghost.drain_by_owner(layout) {
                ctx.charge_ops(entries.len() as f64 * costs::GHOST_APPLY);
                ob.send(owner, GhostCurrents(entries));
            }
        },
        move |_r, st, ctx, inbox| {
            let nxu = nx as u32;
            for (from, GhostCurrents(entries)) in inbox {
                ctx.charge_ops(entries.len() as f64 * costs::GHOST_APPLY);
                st.ghost_serving
                    .push((from, entries.iter().map(|e| e.0).collect()));
                for (key, val) in entries {
                    let (gx, gy) = ((key % nxu) as usize, (key / nxu) as usize);
                    let (lx, ly) = (gx - st.rect.x0, gy - st.rect.y0);
                    st.currents.jx[(lx, ly)] += val[0];
                    st.currents.jy[(lx, ly)] += val[1];
                    st.currents.jz[(lx, ly)] += val[2];
                }
            }
        },
    )
}
