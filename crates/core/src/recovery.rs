//! Checkpoint-based failure recovery for the simulation driver.
//!
//! [`run_with_recovery`] wraps the iterate/checkpoint/restart loop: run
//! the simulation, snapshot its state every `checkpoint_every`
//! iterations, and when an iteration fails (a rank killed by fault
//! injection, a timeout, a tripped invariant) rebuild the simulation
//! from the last snapshot and re-execute forward.  Because checkpoints
//! are taken at iteration boundaries and capture the full persistent
//! state, and because injected kills are one-shot (a consumed
//! [`FaultSpec`](pic_machine::FaultSpec) does not re-fire on the
//! re-executed iteration), the recovered run's final state is
//! bit-identical to an uninterrupted run under any
//! measurement-independent redistribution policy.
//!
//! Checkpoints are held as *encoded bytes* and decoded on restart, so
//! recovery exercises the full serialize → checksum → deserialize path
//! rather than cloning live state.

use std::sync::Arc;

use pic_machine::{
    CheckpointAction, CheckpointEvent, FaultPlan, Recorder, SpmdEngine, SpmdError, TraceEvent,
};

use crate::checkpoint::Checkpoint;
use crate::config::SimConfig;
use crate::sim::{GenericPicSim, IterationRecord};
use crate::state::RankState;

/// What [`run_with_recovery`] produced.
pub struct RecoveryOutcome<E: SpmdEngine<RankState>> {
    /// The simulation after the final iteration.
    pub sim: GenericPicSim<E>,
    /// One record per iteration `1..=iterations`.  Iterations that were
    /// re-executed after a restart appear once, with the measurements of
    /// the successful execution.
    pub records: Vec<IterationRecord>,
    /// How many times the run restarted from a checkpoint.
    pub restarts: usize,
    /// The error behind each restart, in order.
    pub failures: Vec<SpmdError>,
}

/// Run `iterations` steps with checkpoint/restart recovery.
///
/// A checkpoint is taken after the initial distribution and then after
/// every `checkpoint_every`-th completed iteration (`0` disables
/// periodic snapshots, leaving only the post-setup one).  On an
/// iteration failure the driver decodes the latest snapshot, rebuilds
/// the simulation, re-installs `plan`, and continues; after
/// `max_restarts` restarts the next failure is returned to the caller.
///
/// # Errors
/// Returns the error of the failure that exhausted `max_restarts`, or
/// of a failed initial distribution (nothing to restart from).
pub fn run_with_recovery<E: SpmdEngine<RankState>>(
    cfg: SimConfig,
    iterations: usize,
    checkpoint_every: usize,
    plan: Option<Arc<FaultPlan>>,
    max_restarts: usize,
) -> Result<RecoveryOutcome<E>, SpmdError> {
    run_with_recovery_traced(cfg, iterations, checkpoint_every, plan, max_restarts, None)
}

/// [`run_with_recovery`] with an observability [`Recorder`] installed
/// for the whole protected run.  The recorder sees everything the plain
/// recovery loop does *plus* the recovery story itself: a
/// [`CheckpointEvent`] for every snapshot saved and restored (fault
/// events are emitted by the driver at the failing iteration).  On
/// restart the recorder is carried from the dead simulation into the
/// resumed one, so the whole protected run lands in one event stream.
///
/// # Errors
/// Returns the error of the failure that exhausted `max_restarts`, or
/// of a failed initial distribution (nothing to restart from).
pub fn run_with_recovery_traced<E: SpmdEngine<RankState>>(
    cfg: SimConfig,
    iterations: usize,
    checkpoint_every: usize,
    plan: Option<Arc<FaultPlan>>,
    max_restarts: usize,
    recorder: Option<Box<dyn Recorder>>,
) -> Result<RecoveryOutcome<E>, SpmdError> {
    let mut sim = GenericPicSim::<E>::try_new_traced(cfg.clone(), plan.clone(), recorder)?;
    let mut latest = sim.checkpoint().encode();
    emit_checkpoint(&mut sim, 0, latest.len(), CheckpointAction::Saved);
    let mut records: Vec<IterationRecord> = Vec::with_capacity(iterations);
    let mut restarts = 0;
    let mut failures = Vec::new();

    while sim.iterations_done() < iterations {
        match sim.try_step() {
            Ok(rec) => {
                records.push(rec);
                let done = sim.iterations_done();
                if checkpoint_every > 0 && done.is_multiple_of(checkpoint_every) {
                    latest = sim.checkpoint().encode();
                    emit_checkpoint(&mut sim, done as u64, latest.len(), CheckpointAction::Saved);
                }
            }
            Err(err) => {
                if restarts >= max_restarts {
                    return Err(err);
                }
                restarts += 1;
                failures.push(err);
                let ck =
                    Checkpoint::decode(&latest).expect("in-memory checkpoint failed its checksum");
                // drop the records of iterations past the snapshot;
                // they will be re-executed
                records.truncate(ck.iter as usize);
                let mut fresh = GenericPicSim::<E>::resume_from(cfg.clone(), &ck);
                if let Some(p) = &plan {
                    fresh.set_fault_plan(Some(Arc::clone(p)));
                }
                // carry the event stream into the resumed simulation
                fresh.set_recorder(sim.take_recorder());
                sim = fresh;
                emit_checkpoint(&mut sim, ck.iter, latest.len(), CheckpointAction::Restored);
            }
        }
    }

    Ok(RecoveryOutcome {
        sim,
        records,
        restarts,
        failures,
    })
}

/// Emit one checkpoint event to the simulation's recorder, if any.
fn emit_checkpoint<E: SpmdEngine<RankState>>(
    sim: &mut GenericPicSim<E>,
    iter: u64,
    bytes: usize,
    action: CheckpointAction,
) {
    if let Some(rec) = sim.recorder_mut() {
        rec.record(&TraceEvent::Checkpoint(CheckpointEvent {
            iter,
            bytes: bytes as u64,
            action,
        }));
    }
}
