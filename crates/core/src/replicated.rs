//! The replicated-grid baseline (Lubeck & Faber, paper Section 3).
//!
//! "Lubeck and Faber chose to replicate the mesh grid array so that each
//! processor contains all the mesh grid data. [...] In the scatter phase,
//! the contributions of particles to the grid points are directly summed
//! into the mesh grid array in each processor and then the mesh grid
//! array is element-wise summed over all processors. [...] After the
//! field solve phase, a global concatenation operation is necessary to
//! broadcast the results of field values over all processors.  The
//! results [...] show that the direct Lagrangian method is an efficient
//! algorithm for small hypercubes.  However, for large hypercubes the
//! communication due to global operations on mesh grid array dominates
//! the run time."
//!
//! This module implements exactly that scheme on the virtual machine so
//! the motivating claim can be measured against the paper's distributed
//! approach: per-iteration communication is `O(m)` regardless of how well
//! particles are placed, so it cannot scale.

use pic_field::{CurrentSet, FieldSet, MaxwellSolver};
use pic_machine::{ExecMode, Machine, PhaseKind};
use pic_particles::push::{boris_push, gamma_of, BorisStep};
use pic_particles::{wrap_periodic, Cic, Particles};

use crate::config::SimConfig;
use crate::costs;
use crate::diagnostics::EnergyReport;

/// Rank state of the replicated-grid scheme: the *whole* mesh plus a
/// fixed particle subset.
pub struct ReplicatedState {
    /// Full-mesh fields (identical on every rank after each iteration).
    pub fields: FieldSet,
    /// Full-mesh current densities (local partial sums before the global
    /// sum, global sums after).
    pub currents: CurrentSet,
    /// The rank's fixed particle subset (direct Lagrangian).
    pub particles: Particles,
}

/// The replicated-grid parallel PIC simulation.
pub struct ReplicatedGridPicSim {
    cfg: SimConfig,
    machine: Machine<ReplicatedState>,
    solver: MaxwellSolver,
    iter: usize,
}

impl ReplicatedGridPicSim {
    /// Build the simulation; particles are split contiguously over ranks
    /// and never migrate.
    ///
    /// # Panics
    /// Panics on an invalid configuration.
    pub fn new(cfg: SimConfig) -> Self {
        cfg.validate();
        let p = cfg.machine.ranks;
        let global =
            cfg.distribution
                .load(cfg.particles, cfg.lx(), cfg.ly(), cfg.thermal_u, cfg.seed);
        let states: Vec<ReplicatedState> = (0..p)
            .map(|r| {
                let mut particles = Particles::new(-cfg.particle_charge, 1.0);
                let lo = r * cfg.particles / p;
                let hi = (r + 1) * cfg.particles / p;
                for i in lo..hi {
                    let c = global.get(i);
                    particles.push(c[0], c[1], c[2], c[3], c[4]);
                }
                ReplicatedState {
                    fields: FieldSet::zeros(cfg.nx, cfg.ny),
                    currents: CurrentSet::zeros(cfg.nx, cfg.ny),
                    particles,
                }
            })
            .collect();
        let machine = Machine::new(cfg.machine, ExecMode::Sequential, states);
        let solver = MaxwellSolver::new(cfg.dt, cfg.dx, cfg.dy);
        Self {
            cfg,
            machine,
            solver,
            iter: 0,
        }
    }

    /// Run one iteration of the Lubeck & Faber scheme.
    pub fn step(&mut self) {
        self.iter += 1;
        let (nx, ny) = (self.cfg.nx, self.cfg.ny);
        let (dx, dy) = (self.cfg.dx, self.cfg.dy);
        let m = nx * ny;
        let p = self.machine.num_ranks();

        // --- scatter: local deposit into the replicated grid ----------------
        self.machine
            .local_step(PhaseKind::Scatter, move |_r, st, ctx| {
                st.currents.clear();
                let q = st.particles.charge;
                for i in 0..st.particles.len() {
                    let u = [st.particles.ux[i], st.particles.uy[i], st.particles.uz[i]];
                    let gamma = gamma_of(u);
                    let v = [u[0] / gamma, u[1] / gamma, u[2] / gamma];
                    let cic = Cic::new(st.particles.x[i], st.particles.y[i], dx, dy, nx, ny);
                    for (k, (cx, cy)) in cic.corners(nx, ny).into_iter().enumerate() {
                        let w = cic.w[k];
                        st.currents.jx[(cx, cy)] += q * v[0] * w;
                        st.currents.jy[(cx, cy)] += q * v[1] * w;
                        st.currents.jz[(cx, cy)] += q * v[2] * w;
                    }
                }
                ctx.charge_ops(st.particles.len() as f64 * 4.0 * costs::SCATTER_VERTEX);
            });

        // --- global element-wise sum of the current arrays ------------------
        // three components, m doubles each: the O(m) global operation that
        // dominates at scale
        self.machine.allreduce_elementwise(
            PhaseKind::Scatter,
            3 * m * 8,
            |_r, st: &ReplicatedState| {
                let mut v = Vec::with_capacity(3 * m);
                v.extend_from_slice(st.currents.jx.as_slice());
                v.extend_from_slice(st.currents.jy.as_slice());
                v.extend_from_slice(st.currents.jz.as_slice());
                v
            },
            |a, b| a + b,
            |_r, st, sum: &[f64]| {
                st.currents.jx.as_mut_slice().copy_from_slice(&sum[..m]);
                st.currents
                    .jy
                    .as_mut_slice()
                    .copy_from_slice(&sum[m..2 * m]);
                st.currents.jz.as_mut_slice().copy_from_slice(&sum[2 * m..]);
            },
        );

        // --- field solve: strip-distributed, then concatenated --------------
        let strip = move |r: usize| -> (usize, usize) { (r * ny / p, (r + 1) * ny / p) };
        let solver = self.solver;
        self.machine
            .local_step(PhaseKind::FieldSolve, move |r, st, ctx| {
                let (y0, y1) = strip(r);
                solver.update_b_periodic_rows(&mut st.fields, y0, y1);
                ctx.charge_ops(((y1 - y0) * nx) as f64 * costs::FIELD_POINT_B);
            });
        self.concat_strips(strip, Which::B);
        self.machine
            .local_step(PhaseKind::FieldSolve, move |r, st, ctx| {
                let (y0, y1) = strip(r);
                let currents = st.currents.clone();
                solver.update_e_periodic_rows(&mut st.fields, &currents, y0, y1);
                ctx.charge_ops(((y1 - y0) * nx) as f64 * costs::FIELD_POINT_E);
            });
        self.concat_strips(strip, Which::E);

        // --- gather + push: fully local on the replicated mesh --------------
        let dt = self.cfg.dt;
        let (lx, ly) = (self.cfg.lx(), self.cfg.ly());
        self.machine
            .local_step(PhaseKind::Push, move |_r, st, ctx| {
                let qm = st.particles.qm();
                let n = st.particles.len();
                for i in 0..n {
                    let cic = Cic::new(st.particles.x[i], st.particles.y[i], dx, dy, nx, ny);
                    let mut e = [0.0f64; 3];
                    let mut b = [0.0f64; 3];
                    for (k, (cx, cy)) in cic.corners(nx, ny).into_iter().enumerate() {
                        let w = cic.w[k];
                        let vals = st.fields.at(cx, cy);
                        for c in 0..3 {
                            e[c] += w * vals[c];
                            b[c] += w * vals[3 + c];
                        }
                    }
                    let u = [st.particles.ux[i], st.particles.uy[i], st.particles.uz[i]];
                    let u2 = boris_push(u, &BorisStep { e, b }, qm, dt);
                    let gamma = gamma_of(u2);
                    st.particles.ux[i] = u2[0];
                    st.particles.uy[i] = u2[1];
                    st.particles.uz[i] = u2[2];
                    st.particles.x[i] = wrap_periodic(st.particles.x[i] + u2[0] / gamma * dt, lx);
                    st.particles.y[i] = wrap_periodic(st.particles.y[i] + u2[1] / gamma * dt, ly);
                }
                ctx.charge_ops(n as f64 * (4.0 * costs::GATHER_VERTEX + costs::PUSH_PARTICLE));
            });
    }

    /// Allgather the just-updated field strips so every rank holds the
    /// full, consistent mesh again (the paper's "global concatenation").
    fn concat_strips(&mut self, strip: impl Fn(usize) -> (usize, usize) + Copy, which: Which) {
        let nx = self.cfg.nx;
        let p = self.machine.num_ranks();
        self.machine.allgatherv(
            PhaseKind::FieldSolve,
            8,
            |r, st: &ReplicatedState| {
                let (y0, y1) = strip(r);
                let mut v = Vec::with_capacity((y1 - y0) * nx * 3);
                let grids = which.grids(&st.fields);
                for g in grids {
                    for y in y0..y1 {
                        for x in 0..nx {
                            v.push(g[(x, y)]);
                        }
                    }
                }
                v
            },
            move |_r, st, concat: &[f64]| {
                // concatenation is in rank order; walk it back into rows
                let mut off = 0;
                for src in 0..p {
                    let (y0, y1) = strip(src);
                    let rows = y1 - y0;
                    let mut grids = which.grids_mut(&mut st.fields);
                    for g in grids.iter_mut() {
                        for y in y0..y1 {
                            for x in 0..nx {
                                g[(x, y)] = concat[off];
                                off += 1;
                            }
                        }
                    }
                    let _ = rows;
                }
            },
        );
    }

    /// Iterations run so far.
    pub fn iterations_done(&self) -> usize {
        self.iter
    }

    /// Total modeled time.
    pub fn elapsed_s(&self) -> f64 {
        self.machine.elapsed_s()
    }

    /// Modeled computation time.
    pub fn compute_s(&self) -> f64 {
        self.machine.compute_s()
    }

    /// Run `iterations` steps; returns (total, compute) modeled seconds.
    pub fn run(&mut self, iterations: usize) -> (f64, f64) {
        for _ in 0..iterations {
            self.step();
        }
        (self.elapsed_s(), self.compute_s())
    }

    /// The virtual machine (diagnostics).
    pub fn machine(&self) -> &Machine<ReplicatedState> {
        &self.machine
    }

    /// Energy diagnostics (fields counted once — they are replicated).
    pub fn energy(&self) -> EnergyReport {
        let kinetic: f64 = self
            .machine
            .ranks()
            .iter()
            .map(|st| st.particles.kinetic_energy())
            .sum();
        let field =
            pic_field::field_energy(&self.machine.ranks()[0].fields, self.cfg.dx, self.cfg.dy);
        EnergyReport { kinetic, field }
    }

    /// Total particles across ranks.
    pub fn total_particles(&self) -> usize {
        self.machine
            .ranks()
            .iter()
            .map(|st| st.particles.len())
            .sum()
    }
}

/// Which field triple a strip concat moves.
#[derive(Clone, Copy)]
enum Which {
    E,
    B,
}

impl Which {
    fn grids<'a>(&self, f: &'a FieldSet) -> [&'a pic_field::Grid2<f64>; 3] {
        match self {
            Which::E => [&f.ex, &f.ey, &f.ez],
            Which::B => [&f.bx, &f.by, &f.bz],
        }
    }

    fn grids_mut<'a>(&self, f: &'a mut FieldSet) -> [&'a mut pic_field::Grid2<f64>; 3] {
        match self {
            Which::E => [&mut f.ex, &mut f.ey, &mut f.ez],
            Which::B => [&mut f.bx, &mut f.by, &mut f.bz],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replicated_matches_sequential_physics() {
        let cfg = SimConfig::small_test();
        let mut rep = ReplicatedGridPicSim::new(cfg.clone());
        let mut seq = crate::sequential::SequentialPicSim::new(cfg);
        for _ in 0..5 {
            rep.step();
            seq.step();
        }
        let er = rep.energy();
        let es = seq.energy();
        assert!(
            (er.kinetic - es.kinetic).abs() < 1e-6 * es.kinetic.max(1.0),
            "kinetic {} vs {}",
            er.kinetic,
            es.kinetic
        );
        assert!(
            (er.field - es.field).abs() < 1e-6 * es.field.max(1e-12),
            "field {} vs {}",
            er.field,
            es.field
        );
        assert_eq!(rep.total_particles(), 512);
    }

    #[test]
    fn all_ranks_hold_identical_fields_after_a_step() {
        let cfg = SimConfig::small_test();
        let mut rep = ReplicatedGridPicSim::new(cfg);
        rep.step();
        let first = &rep.machine().ranks()[0].fields;
        for st in &rep.machine().ranks()[1..] {
            assert_eq!(&st.fields, first, "replicas diverged");
        }
    }

    #[test]
    fn communication_is_o_m_not_o_overlap() {
        // the replicated scheme's scatter traffic is the full mesh,
        // regardless of where particles sit
        let cfg = SimConfig::small_test();
        let m = cfg.grid_points();
        let mut rep = ReplicatedGridPicSim::new(cfg);
        rep.step();
        let scatter_bytes: u64 = rep
            .machine()
            .stats()
            .phase(pic_machine::PhaseKind::Scatter)
            .map(|r| r.max_bytes_sent)
            .sum();
        assert!(
            scatter_bytes >= (3 * m * 8) as u64,
            "expected O(m) traffic, got {scatter_bytes}"
        );
    }
}
