//! Per-rank scratch arena: reusable buffers for the per-iteration hot
//! loop.
//!
//! Every phase kernel that used to allocate a fresh `Vec` per iteration
//! (permutation buffers, bucket histograms, destination classification,
//! send staging, the gather-phase ghost cache) now draws on one
//! [`ScratchArena`] owned by its [`crate::state::RankState`].  After a
//! warm-up iteration the buffers have grown to the rank's working-set
//! size and steady-state iterations of the sort/classify/permute/pack
//! kernels perform zero heap allocations (verified by the
//! counting-allocator test in `tests/alloc_free.rs`).
//!
//! The arena is *transient* state: it is never snapshotted by
//! checkpoints and never crosses the wire, so adding or resizing buffers
//! cannot perturb simulation results.

use std::sync::Arc;

use pic_partition::RadixScratch;

/// Reusable per-rank buffers; see the module docs.
#[derive(Debug, Default)]
pub struct ScratchArena {
    /// Permutation buffer of the incremental sort.
    pub order: Vec<usize>,
    /// Per-bucket key counts of the incremental sort.
    pub bucket_sizes: Vec<usize>,
    /// Radix/counting sort scratch (ping-pong buffer + histogram).
    pub radix: RadixScratch,
    /// Destination rank of every local particle (classification output).
    pub dests: Vec<usize>,
    /// Key staging for the sorted-key swap in `sort_local`.
    pub keys_tmp: Vec<u64>,
    /// Cycle markers for the in-place attribute permutation.
    pub visited: Vec<bool>,
    /// Per-destination counters/offsets of the outgoing pack.
    pub counts: Vec<usize>,
    /// Outgoing key pack: all movers, grouped by destination.  Shared
    /// with in-flight [`crate::messages::ParticleBatch`] views; reused
    /// once every receiver has dropped its window (steady state).
    pub pack_keys: Arc<Vec<u64>>,
    /// Outgoing phase-space pack, five interleaved doubles per mover.
    pub pack_data: Arc<Vec<f64>>,
    /// Gather-phase ghost field cache (vertex key -> E,B), rebuilt every
    /// iteration but keeping its table capacity.
    pub ghost_cache: GhostFieldCache,
    /// Interleaved copy of the padded field block, `[Ex,Ey,Ez,Bx,By,Bz]`
    /// per node: the gather interpolation reads one contiguous 48-byte
    /// entry per vertex instead of six bounds-checked loads scattered
    /// over six component planes.
    pub fields_aos: Vec<[f64; 6]>,
}

impl ScratchArena {
    /// A fresh, empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total bytes currently reserved across all arena buffers — the
    /// high-water mark of the rank's transient working set, since arena
    /// buffers grow but are never shrunk.  Exported as a per-rank gauge
    /// by the metrics registry.
    pub fn high_water_bytes(&self) -> u64 {
        use std::mem::size_of;
        let mut bytes = self.order.capacity() * size_of::<usize>()
            + self.bucket_sizes.capacity() * size_of::<usize>()
            + self.dests.capacity() * size_of::<usize>()
            + self.keys_tmp.capacity() * size_of::<u64>()
            + self.visited.capacity() * size_of::<bool>()
            + self.counts.capacity() * size_of::<usize>()
            + self.pack_keys.capacity() * size_of::<u64>()
            + self.pack_data.capacity() * size_of::<f64>()
            + self.fields_aos.capacity() * size_of::<[f64; 6]>();
        bytes += self.radix.idx.capacity() * size_of::<usize>()
            + self.radix.counts.capacity() * size_of::<usize>();
        bytes += self.ghost_cache.stamp.capacity() * size_of::<u32>()
            + self.ghost_cache.vals.capacity() * size_of::<[f64; 6]>();
        bytes as u64
    }
}

/// Direct-address ghost field cache with generation stamping — the same
/// memory-for-time trade the paper's Figure 8 direct table makes for the
/// scatter accumulator, applied to the gather phase's vertex lookups.  A
/// `HashMap` here puts a SipHash in the innermost interpolation loop;
/// this table answers in one stamp compare + one indexed load, and
/// "clearing" it is a generation bump, not an `O(mesh)` sweep.
#[derive(Debug, Default)]
pub struct GhostFieldCache {
    /// Per-vertex generation stamp; a stale stamp means "absent".
    stamp: Vec<u32>,
    /// Per-vertex `[Ex, Ey, Ez, Bx, By, Bz]`, valid when stamped.
    vals: Vec<[f64; 6]>,
    generation: u32,
}

impl GhostFieldCache {
    /// Start a fresh iteration over a mesh of `m` packed vertex slots:
    /// grows the table on first use (or mesh growth), then invalidates
    /// every entry by bumping the generation.
    pub fn begin(&mut self, m: usize) {
        if self.stamp.len() < m {
            self.stamp.resize(m, 0);
            self.vals.resize(m, [0.0; 6]);
        }
        self.generation = self.generation.wrapping_add(1);
        if self.generation == 0 {
            // stamp wrap-around: reset to a clean state
            self.stamp.fill(0);
            self.generation = 1;
        }
    }

    /// Record the field values of packed vertex `key`.
    #[inline]
    pub fn insert(&mut self, key: u32, val: [f64; 6]) {
        let k = key as usize;
        self.stamp[k] = self.generation;
        self.vals[k] = val;
    }

    /// Field values of packed vertex `key`, if recorded this iteration.
    #[inline]
    pub fn get(&self, key: u32) -> Option<[f64; 6]> {
        let k = key as usize;
        if self.stamp.get(k) == Some(&self.generation) {
            Some(self.vals[k])
        } else {
            None
        }
    }
}

/// Borrow an `Arc`-held buffer for refilling: reuses the existing
/// allocation when no in-flight message still references it (the steady
/// state), otherwise replaces it with a fresh one.  Returns the cleared
/// buffer; the caller puts the `Arc` back into the arena after slicing.
pub(crate) fn reuse_arc_buf<T>(slot: &mut Arc<Vec<T>>) -> &mut Vec<T> {
    if Arc::get_mut(slot).is_none() {
        *slot = Arc::new(Vec::new());
    }
    let buf = Arc::get_mut(slot).expect("slot is unique after replacement");
    buf.clear();
    buf
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arc_buffer_reused_when_unique() {
        let mut slot: Arc<Vec<u64>> = Arc::new(vec![1, 2, 3]);
        let ptr = slot.as_ptr();
        let buf = reuse_arc_buf(&mut slot);
        assert!(buf.is_empty());
        buf.extend_from_slice(&[7, 8]);
        assert_eq!(slot.as_ptr(), ptr, "unique Arc must keep its allocation");
        assert_eq!(*slot, vec![7, 8]);
    }

    #[test]
    fn arc_buffer_replaced_when_shared() {
        let mut slot: Arc<Vec<u64>> = Arc::new(vec![1, 2, 3]);
        let holder = slot.clone();
        let buf = reuse_arc_buf(&mut slot);
        buf.push(9);
        assert_eq!(*holder, vec![1, 2, 3], "in-flight view must be untouched");
        assert_eq!(*slot, vec![9]);
    }
}
