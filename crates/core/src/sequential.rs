//! Sequential reference PIC.
//!
//! A single-address-space implementation of the same physics — the role
//! David Walker's sequential code played for the paper.  It validates the
//! parallel code (same seed must give the same physics up to
//! floating-point summation order) and provides `T_sequential` for the
//! Table 3 efficiency computation.

use pic_field::{field_energy, CurrentSet, FieldSet, MaxwellSolver};
use pic_particles::push::{boris_push, gamma_of, BorisStep};
use pic_particles::{wrap_periodic, Cic, Particles};

use crate::config::SimConfig;
use crate::costs;
use crate::diagnostics::EnergyReport;

/// The sequential PIC simulation.
pub struct SequentialPicSim {
    cfg: SimConfig,
    fields: FieldSet,
    currents: CurrentSet,
    particles: Particles,
    solver: MaxwellSolver,
    /// Accumulated op units, for the modeled sequential time.
    ops: f64,
}

impl SequentialPicSim {
    /// Build from the same configuration as the parallel code (machine
    /// parameters are ignored except `delta` for the modeled time).
    pub fn new(cfg: SimConfig) -> Self {
        cfg.validate();
        let mut particles =
            cfg.distribution
                .load(cfg.particles, cfg.lx(), cfg.ly(), cfg.thermal_u, cfg.seed);
        particles.charge = -cfg.particle_charge;
        Self {
            fields: FieldSet::zeros(cfg.nx, cfg.ny),
            currents: CurrentSet::zeros(cfg.nx, cfg.ny),
            solver: MaxwellSolver::new(cfg.dt, cfg.dx, cfg.dy),
            particles,
            cfg,
            ops: 0.0,
        }
    }

    /// Run one iteration of the four phases.
    pub fn step(&mut self) {
        let (nx, ny) = (self.cfg.nx, self.cfg.ny);
        let (dx, dy) = (self.cfg.dx, self.cfg.dy);
        let n = self.particles.len();
        let q = self.particles.charge;

        // scatter
        self.currents.clear();
        for i in 0..n {
            let u = [
                self.particles.ux[i],
                self.particles.uy[i],
                self.particles.uz[i],
            ];
            let gamma = gamma_of(u);
            let v = [u[0] / gamma, u[1] / gamma, u[2] / gamma];
            let cic = Cic::new(self.particles.x[i], self.particles.y[i], dx, dy, nx, ny);
            for (k, (cx, cy)) in cic.corners(nx, ny).into_iter().enumerate() {
                let w = cic.w[k];
                self.currents.jx[(cx, cy)] += q * v[0] * w;
                self.currents.jy[(cx, cy)] += q * v[1] * w;
                self.currents.jz[(cx, cy)] += q * v[2] * w;
            }
        }
        self.ops += n as f64 * 4.0 * costs::SCATTER_VERTEX;

        // field solve
        self.solver.step_periodic(&mut self.fields, &self.currents);
        self.ops += (nx * ny) as f64 * (costs::FIELD_POINT_B + costs::FIELD_POINT_E);

        // gather + push
        let qm = self.particles.qm();
        let dt = self.cfg.dt;
        let (lx, ly) = (self.cfg.lx(), self.cfg.ly());
        for i in 0..n {
            let cic = Cic::new(self.particles.x[i], self.particles.y[i], dx, dy, nx, ny);
            let mut e = [0.0f64; 3];
            let mut b = [0.0f64; 3];
            for (k, (cx, cy)) in cic.corners(nx, ny).into_iter().enumerate() {
                let w = cic.w[k];
                let vals = self.fields.at(cx, cy);
                for c in 0..3 {
                    e[c] += w * vals[c];
                    b[c] += w * vals[3 + c];
                }
            }
            let u = [
                self.particles.ux[i],
                self.particles.uy[i],
                self.particles.uz[i],
            ];
            let u2 = boris_push(u, &BorisStep { e, b }, qm, dt);
            let gamma = gamma_of(u2);
            self.particles.ux[i] = u2[0];
            self.particles.uy[i] = u2[1];
            self.particles.uz[i] = u2[2];
            self.particles.x[i] = wrap_periodic(self.particles.x[i] + u2[0] / gamma * dt, lx);
            self.particles.y[i] = wrap_periodic(self.particles.y[i] + u2[1] / gamma * dt, ly);
        }
        self.ops += n as f64 * (4.0 * costs::GATHER_VERTEX + costs::PUSH_PARTICLE);
    }

    /// Run `iterations` steps.
    pub fn run(&mut self, iterations: usize) {
        for _ in 0..iterations {
            self.step();
        }
    }

    /// Modeled sequential execution time: accumulated op units at the
    /// machine's `delta` (one processor, no communication).
    pub fn modeled_time_s(&self) -> f64 {
        self.ops * self.cfg.machine.delta
    }

    /// The particle array (for validation against the parallel run).
    pub fn particles(&self) -> &Particles {
        &self.particles
    }

    /// The field set.
    pub fn fields(&self) -> &FieldSet {
        &self.fields
    }

    /// Energy diagnostics.
    pub fn energy(&self) -> EnergyReport {
        EnergyReport {
            kinetic: self.particles.kinetic_energy(),
            field: field_energy(&self.fields, self.cfg.dx, self.cfg.dy),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn particles_stay_in_domain() {
        let mut sim = SequentialPicSim::new(SimConfig::small_test());
        sim.run(20);
        let p = sim.particles();
        assert!(p.x.iter().all(|&x| (0.0..16.0).contains(&x)));
        assert!(p.y.iter().all(|&y| (0.0..16.0).contains(&y)));
    }

    #[test]
    fn particle_count_is_conserved() {
        let mut sim = SequentialPicSim::new(SimConfig::small_test());
        let n0 = sim.particles().len();
        sim.run(10);
        assert_eq!(sim.particles().len(), n0);
    }

    #[test]
    fn modeled_time_grows_linearly_with_iterations() {
        let mut sim = SequentialPicSim::new(SimConfig::small_test());
        sim.run(5);
        let t5 = sim.modeled_time_s();
        sim.run(5);
        let t10 = sim.modeled_time_s();
        assert!((t10 / t5 - 2.0).abs() < 1e-9);
        assert!(t5 > 0.0);
    }

    #[test]
    fn cold_plasma_stays_cold_without_fields() {
        // zero thermal spread, zero charge -> nothing moves
        let mut cfg = SimConfig::small_test();
        cfg.thermal_u = 0.0;
        cfg.particle_charge = 0.0;
        let mut sim = SequentialPicSim::new(cfg);
        let x0 = sim.particles().x.clone();
        sim.run(10);
        assert_eq!(sim.particles().x, x0);
        assert_eq!(sim.energy().kinetic, 0.0);
        assert_eq!(sim.energy().field, 0.0);
    }

    #[test]
    fn self_fields_grow_from_moving_charge() {
        // charged, warm plasma deposits current and builds fields
        let mut sim = SequentialPicSim::new(SimConfig::small_test());
        sim.run(5);
        assert!(sim.energy().field > 0.0);
    }
}
