//! The parallel PIC simulation driver.

use std::sync::Arc;

use pic_field::{HaloPlan, MaxwellSolver};
use pic_index::CellIndexer;
use pic_machine::{
    FailureCause, FaultEvent, FaultPlan, IterationEvent, Machine, PhaseKind, PolicyDecisionEvent,
    RankLoadEvent, Recorder, RedistributionEvent, RedistributionTrigger, SharedMetrics, SpmdEngine,
    SpmdError, StatsLog, SuperstepStats, ThreadedMachine, TraceEvent,
};
use pic_partition::{sfc_block_layout, PolicyDecision, RedistributionPolicy};
use serde::{Deserialize, Serialize};

use crate::checkpoint::{Checkpoint, RankSnapshot};
use crate::config::{MovementMethod, SimConfig};
use crate::diagnostics::EnergyReport;
use crate::phases::{self, PhaseEnv};
use crate::state::RankState;

/// Modeled time spent per phase, accumulated over a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PhaseBreakdown {
    /// Scatter phase seconds.
    pub scatter_s: f64,
    /// Field solve seconds.
    pub field_solve_s: f64,
    /// Gather phase seconds.
    pub gather_s: f64,
    /// Push phase seconds (includes Eulerian migration when enabled).
    pub push_s: f64,
    /// Redistribution seconds (including the initial distribution).
    pub redistribute_s: f64,
}

impl PhaseBreakdown {
    /// Component-wise difference (`self - earlier`), used to report
    /// per-run deltas from cumulative counters.
    fn since(&self, earlier: &PhaseBreakdown) -> PhaseBreakdown {
        PhaseBreakdown {
            scatter_s: self.scatter_s - earlier.scatter_s,
            field_solve_s: self.field_solve_s - earlier.field_solve_s,
            gather_s: self.gather_s - earlier.gather_s,
            push_s: self.push_s - earlier.push_s,
            redistribute_s: self.redistribute_s - earlier.redistribute_s,
        }
    }

    fn absorb(&mut self, records: &[SuperstepStats]) {
        for r in records {
            let slot = match r.phase {
                PhaseKind::Scatter => &mut self.scatter_s,
                PhaseKind::FieldSolve => &mut self.field_solve_s,
                PhaseKind::Gather => &mut self.gather_s,
                PhaseKind::Push => &mut self.push_s,
                PhaseKind::Redistribute | PhaseKind::Setup => &mut self.redistribute_s,
                PhaseKind::Other => continue,
            };
            *slot += r.elapsed_s;
        }
    }
}

/// One iteration's measurements — the rows behind Figures 17, 18 and 19.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IterationRecord {
    /// Iteration number (1-based).
    pub iter: usize,
    /// Modeled execution time of the four phases (excludes any
    /// redistribution this iteration triggered).
    pub time_s: f64,
    /// Modeled computation component (max over ranks, summed per phase).
    pub compute_s: f64,
    /// Modeled communication + idle component.
    pub comm_s: f64,
    /// Maximum bytes any rank sent in the scatter phase (Figure 18).
    pub scatter_max_bytes_sent: u64,
    /// Maximum bytes any rank received in the scatter phase.
    pub scatter_max_bytes_recv: u64,
    /// Maximum messages any rank sent in the scatter phase (Figure 19).
    pub scatter_max_msgs_sent: u64,
    /// Maximum messages any rank received in the scatter phase.
    pub scatter_max_msgs_recv: u64,
    /// Whether a redistribution ran after this iteration.
    pub redistributed: bool,
    /// Modeled cost of that redistribution (0 when none ran).
    pub redistribute_s: f64,
    /// Largest per-rank particle count at the end of the iteration.
    pub max_particles: usize,
    /// Smallest per-rank particle count.
    pub min_particles: usize,
}

/// Summary of a full run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimReport {
    /// Per-iteration records.
    pub iterations: Vec<IterationRecord>,
    /// Total modeled time including redistributions and setup.
    pub total_s: f64,
    /// Total modeled computation time.
    pub compute_s: f64,
    /// `total - compute`: the "overhead" of paper Figures 21/22
    /// (communication in scatter/solve/gather plus redistribution).
    pub overhead_s: f64,
    /// Number of redistributions performed (excluding the initial
    /// distribution).
    pub redistributions: usize,
    /// Total modeled redistribution time (excluding setup).
    pub redistribute_total_s: f64,
    /// Modeled cost of the initial distribution.
    pub setup_s: f64,
    /// Per-phase time split.
    pub breakdown: PhaseBreakdown,
}

/// The parallel PIC simulation on the modeled BSP machine (the default
/// executor: deterministic, reports modeled seconds).
pub type ParallelPicSim = GenericPicSim<Machine<RankState>>;

/// The same simulation on the real-threads executor: one OS thread per
/// rank with genuine message passing; reports wall-clock seconds.  Rank
/// states (particles, keys, bounds) are bit-identical to
/// [`ParallelPicSim`] under any measurement-independent redistribution
/// policy (e.g. `PolicyKind::Periodic`); time-based policies such as
/// `DynamicSar` read the executor's own clock and may redistribute at
/// different iterations.
pub type ThreadedPicSim = GenericPicSim<ThreadedMachine<RankState>>;

/// The parallel PIC simulation, generic over the SPMD executor.
pub struct GenericPicSim<E: SpmdEngine<RankState>> {
    cfg: SimConfig,
    machine: E,
    layout: pic_field::BlockLayout,
    halo: HaloPlan,
    indexer: Box<dyn CellIndexer>,
    solver: MaxwellSolver,
    policy: Box<dyn RedistributionPolicy>,
    iter: usize,
    setup_s: f64,
    redistributions: usize,
    redistribute_total_s: f64,
    breakdown: PhaseBreakdown,
    // snapshots of the cumulative counters at the end of the previous
    // `run()` call, so each report covers exactly one call
    consumed_s: f64,
    breakdown_consumed: PhaseBreakdown,
    redistributions_consumed: usize,
    redistribute_s_consumed: f64,
}

impl<E: SpmdEngine<RankState>> GenericPicSim<E> {
    /// Build every substrate (layout, halo plan, indexer, solver, policy,
    /// executor) without running any SPMD operation.  When
    /// `load_particles` is set, the global population is loaded and
    /// handed to ranks in contiguous chunks; a resume overwrites the
    /// rank states wholesale, so it skips the load.
    fn construct(cfg: SimConfig, load_particles: bool) -> Self {
        cfg.validate();
        let p = cfg.machine.ranks;
        let layout = sfc_block_layout(cfg.nx, cfg.ny, p, cfg.scheme);
        let halo = HaloPlan::build(&layout);
        let indexer = cfg.scheme.build(cfg.nx, cfg.ny);
        let solver = MaxwellSolver::new(cfg.dt, cfg.dx, cfg.dy);
        let policy = cfg.policy.build();

        // load the global particle population deterministically, then
        // hand contiguous chunks to ranks (as if read from a shared file)
        let states: Vec<RankState> = if load_particles {
            let global =
                cfg.distribution
                    .load(cfg.particles, cfg.lx(), cfg.ly(), cfg.thermal_u, cfg.seed);
            (0..p)
                .map(|r| {
                    let mut st = RankState::new(r, layout.local_rect(r), &cfg);
                    let lo = r * cfg.particles / p;
                    let hi = (r + 1) * cfg.particles / p;
                    st.particles.reserve(hi - lo);
                    for i in lo..hi {
                        let c = global.get(i);
                        st.particles.push(c[0], c[1], c[2], c[3], c[4]);
                    }
                    st
                })
                .collect()
        } else {
            (0..p)
                .map(|r| RankState::new(r, layout.local_rect(r), &cfg))
                .collect()
        };

        let machine = E::build(cfg.machine, cfg.exec_mode(), states);
        Self {
            cfg,
            machine,
            layout,
            halo,
            indexer,
            solver,
            policy,
            iter: 0,
            setup_s: 0.0,
            redistributions: 0,
            redistribute_total_s: 0.0,
            breakdown: PhaseBreakdown::default(),
            consumed_s: 0.0,
            breakdown_consumed: PhaseBreakdown::default(),
            redistributions_consumed: 0,
            redistribute_s_consumed: 0.0,
        }
    }

    /// Build the simulation: decompose the mesh, load and distribute the
    /// particles, and seed the redistribution policy with the initial
    /// distribution's cost.
    ///
    /// # Errors
    /// Returns the [`SpmdError`] when the initial distribution fails
    /// (a fault plan can target it as epoch 0).
    ///
    /// # Panics
    /// Panics on an invalid configuration.
    pub fn try_new(cfg: SimConfig) -> Result<Self, SpmdError> {
        Self::try_new_with(cfg, None)
    }

    /// [`GenericPicSim::try_new`] with a fault plan installed *before*
    /// the initial distribution, so plan entries against epoch 0 can
    /// target setup itself.
    ///
    /// # Errors
    /// Returns the [`SpmdError`] when the initial distribution fails.
    ///
    /// # Panics
    /// Panics on an invalid configuration.
    pub fn try_new_with(cfg: SimConfig, plan: Option<Arc<FaultPlan>>) -> Result<Self, SpmdError> {
        Self::try_new_traced(cfg, plan, None)
    }

    /// [`GenericPicSim::try_new_with`] with an observability
    /// [`Recorder`] installed *before* the initial distribution, so the
    /// setup collectives and the setup [`RedistributionEvent`] land in
    /// the trace too (a recorder installed later via
    /// [`GenericPicSim::set_recorder`] misses them).
    ///
    /// # Errors
    /// Returns the [`SpmdError`] when the initial distribution fails.
    ///
    /// # Panics
    /// Panics on an invalid configuration.
    pub fn try_new_traced(
        cfg: SimConfig,
        plan: Option<Arc<FaultPlan>>,
        recorder: Option<Box<dyn Recorder>>,
    ) -> Result<Self, SpmdError> {
        Self::try_new_observed(cfg, plan, recorder, None)
    }

    /// [`GenericPicSim::try_new_traced`] with a [`SharedMetrics`]
    /// registry additionally installed *before* the initial
    /// distribution, so the setup collectives count toward the
    /// communication matrix and the structure gauges (alignment,
    /// curve locality) are sampled at startup.
    ///
    /// # Errors
    /// Returns the [`SpmdError`] when the initial distribution fails.
    ///
    /// # Panics
    /// Panics on an invalid configuration.
    pub fn try_new_observed(
        cfg: SimConfig,
        plan: Option<Arc<FaultPlan>>,
        recorder: Option<Box<dyn Recorder>>,
        metrics: Option<SharedMetrics>,
    ) -> Result<Self, SpmdError> {
        let mut sim = Self::construct(cfg, true);
        sim.machine.set_recorder(recorder);
        sim.machine.set_metrics(metrics);
        sim.machine.set_fault_plan(plan);
        sim.machine.set_fault_epoch(0);
        // initial distribution (also under Eulerian: a one-time spatial
        // assignment so particles start on their owning ranks)
        let env = PhaseEnv {
            cfg: &sim.cfg,
            layout: &sim.layout,
            halo: &sim.halo,
            indexer: sim.indexer.as_ref(),
            solver: &sim.solver,
        };
        let cost = phases::redistribute::run(&mut sim.machine, &env, true)?;
        sim.setup_s = cost;
        sim.policy.notify_redistributed(0, cost);
        sim.breakdown.absorb(&sim.machine.stats_mut().drain());
        sim.emit(TraceEvent::Redistribution(RedistributionEvent {
            iter: 0,
            trigger: RedistributionTrigger::Setup,
            cost_s: cost,
        }));
        sim.sample_structure_gauges();
        Ok(sim)
    }

    /// Forward one driver-level event to the executor's recorder, if any.
    fn emit(&mut self, event: TraceEvent) {
        if let Some(rec) = self.machine.recorder_mut() {
            rec.record(&event);
        }
    }

    /// Sample the *structure* gauges — curve-locality statistics
    /// ([`pic_index::locality`]) and particle/block alignment
    /// ([`pic_partition::alignment_report`]) — into the metrics
    /// registry, if one is installed.  These cost `O(mesh)` and
    /// `O(particles)` to compute, so they are sampled only at setup and
    /// after each redistribution (when they actually change), never per
    /// iteration; see DESIGN.md §10 for the overhead policy.
    fn sample_structure_gauges(&mut self) {
        let Some(metrics) = self.machine.metrics() else {
            return;
        };
        let jumps = pic_index::locality::neighbor_jump_stats(self.indexer.as_ref());
        let parts = self.machine.num_ranks().min(self.indexer.len());
        let ranges = pic_index::locality::range_bbox_stats(self.indexer.as_ref(), parts);
        let reports = self.alignment();
        metrics.with(|reg| {
            reg.set_gauge("pic_curve_jump_mean", jumps.mean);
            reg.set_gauge("pic_curve_unit_fraction", jumps.unit_fraction);
            reg.set_gauge("pic_range_mean_aspect", ranges.mean_aspect);
            reg.set_gauge("pic_range_mean_fill", ranges.mean_fill);
            for (rank, rep) in reports.iter().enumerate() {
                reg.set_rank_gauge("pic_rank_overlap_fraction", rank, rep.overlap_fraction);
                reg.set_rank_gauge("pic_rank_ghost_cells", rank, rep.ghost_cells as f64);
            }
        });
    }

    /// Per-iteration load observation: a [`RankLoadEvent`] for the trace
    /// (per-rank particle counts, the input to the dashboard's
    /// imbalance-over-time chart and Perfetto's load counters) plus the
    /// cheap `O(p)` gauges and counters for the registry.
    fn observe_iteration(&mut self, counts: &[usize], redistributed: bool) {
        let now_s = self.machine.elapsed_s();
        if self.machine.recorder_mut().is_some() {
            self.emit(TraceEvent::RankLoad(RankLoadEvent {
                iter: self.iter as u64,
                time_s: now_s,
                counts: counts.iter().map(|&c| c as u64).collect(),
            }));
        }
        let Some(metrics) = self.machine.metrics() else {
            return;
        };
        let max = counts.iter().copied().max().unwrap_or(0) as f64;
        let total: usize = counts.iter().sum();
        let mean = total as f64 / counts.len().max(1) as f64;
        let imbalance = if mean > 0.0 { max / mean } else { 1.0 };
        let scratch: Vec<f64> = self
            .machine
            .ranks()
            .iter()
            .map(|st| st.scratch.high_water_bytes() as f64)
            .collect();
        metrics.with(|reg| {
            reg.inc("pic_iterations_total", 1);
            if redistributed {
                reg.inc("pic_redistributions_total", 1);
            }
            reg.set_gauge("pic_imbalance_factor", imbalance);
            for (rank, &c) in counts.iter().enumerate() {
                reg.set_rank_gauge("pic_rank_particles", rank, c as f64);
                reg.set_rank_gauge("pic_rank_scratch_high_water_bytes", rank, scratch[rank]);
            }
        });
    }

    /// Install (or clear) an observability sink on the executor.  All
    /// subsequent supersteps, collectives, and driver events (iterations,
    /// redistributions, faults) are emitted to it; see
    /// [`pic_machine::trace`].  To also capture setup, use
    /// [`GenericPicSim::try_new_traced`].
    pub fn set_recorder(&mut self, recorder: Option<Box<dyn Recorder>>) {
        self.machine.set_recorder(recorder);
    }

    /// Remove and return the installed recorder (flush it or hand it to a
    /// resumed simulation).
    pub fn take_recorder(&mut self) -> Option<Box<dyn Recorder>> {
        self.machine.take_recorder()
    }

    /// Mutable access to the installed recorder, if any (callers can
    /// flush it or append their own events to the stream).
    pub fn recorder_mut(&mut self) -> Option<&mut (dyn Recorder + '_)> {
        self.machine.recorder_mut()
    }

    /// Install (or clear) a metrics registry on the executor.  All
    /// subsequent supersteps and collectives feed the per-phase families
    /// and the rank-pair communication matrix; the driver additionally
    /// maintains iteration/redistribution/fault counters and the load
    /// gauges.  To also capture setup, use
    /// [`GenericPicSim::try_new_observed`].
    pub fn set_metrics(&mut self, metrics: Option<SharedMetrics>) {
        self.machine.set_metrics(metrics);
    }

    /// A handle to the installed metrics registry, if any.
    pub fn metrics(&self) -> Option<SharedMetrics> {
        self.machine.metrics()
    }

    /// [`GenericPicSim::try_new`], panicking on failure (the historical
    /// API; fault-free programs cannot fail here).
    ///
    /// # Panics
    /// Panics on an invalid configuration or a failed initial
    /// distribution.
    pub fn new(cfg: SimConfig) -> Self {
        Self::try_new(cfg).expect("initial distribution failed")
    }

    /// Rebuild a simulation from a [`Checkpoint`] taken by
    /// [`GenericPicSim::checkpoint`] under the same configuration.  The
    /// restored simulation continues bit-identically to the run the
    /// snapshot was taken from (under any measurement-independent
    /// redistribution policy).
    ///
    /// # Panics
    /// Panics when the checkpoint does not match `cfg` (rank count,
    /// particle total, or field block dimensions differ).
    pub fn resume_from(cfg: SimConfig, ck: &Checkpoint) -> Self {
        let mut sim = Self::construct(cfg, false);
        assert_eq!(
            ck.ranks.len(),
            sim.machine.num_ranks(),
            "checkpoint was taken with a different rank count"
        );
        assert_eq!(
            ck.total_particles(),
            sim.cfg.particles,
            "checkpoint was taken with a different particle total"
        );
        for (st, snap) in sim.machine.ranks_mut().iter_mut().zip(&ck.ranks) {
            snap.restore_into(st);
        }
        sim.iter = ck.iter as usize;
        sim.setup_s = ck.setup_s;
        sim.redistributions = ck.redistributions as usize;
        sim.redistribute_total_s = ck.redistribute_total_s;
        sim.breakdown = ck.breakdown;
        sim.policy.restore_state(&ck.policy);
        sim.machine.set_fault_epoch(ck.iter);
        sim
    }

    /// Snapshot the persistent simulation state at the current iteration
    /// boundary (see [`Checkpoint`] for what is and is not captured).
    pub fn checkpoint(&self) -> Checkpoint {
        Checkpoint {
            iter: self.iter as u64,
            setup_s: self.setup_s,
            redistributions: self.redistributions as u64,
            redistribute_total_s: self.redistribute_total_s,
            breakdown: self.breakdown,
            policy: self.policy.snapshot_state(),
            ranks: self
                .machine
                .ranks()
                .iter()
                .map(RankSnapshot::capture)
                .collect(),
        }
    }

    /// Install (or clear) a fault-injection plan on the executor.  The
    /// driver stamps every iteration's number into the executor as the
    /// *fault epoch*, so plan entries written against iteration numbers
    /// fire in the right place.
    pub fn set_fault_plan(&mut self, plan: Option<Arc<FaultPlan>>) {
        self.machine.set_fault_plan(plan);
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<Arc<FaultPlan>> {
        self.machine.fault_plan()
    }

    /// Run one iteration (scatter → field solve → gather → push, then the
    /// redistribution policy), reporting failures as typed errors.
    ///
    /// # Errors
    /// Returns the [`SpmdError`] when a phase fails (rank panic, injected
    /// kill, timeout) or an invariant guard trips.  The simulation must
    /// then be considered lost: resume from a checkpoint.
    pub fn try_step(&mut self) -> Result<IterationRecord, SpmdError> {
        match self.try_step_inner() {
            Ok(rec) => {
                self.emit(TraceEvent::Iteration(IterationEvent {
                    iter: rec.iter as u64,
                    time_s: rec.time_s,
                    compute_s: rec.compute_s,
                    comm_s: rec.comm_s,
                    max_particles: rec.max_particles as u64,
                    min_particles: rec.min_particles as u64,
                }));
                Ok(rec)
            }
            Err(err) => {
                self.emit(TraceEvent::Fault(FaultEvent {
                    rank: err.rank,
                    phase: err.phase,
                    superstep: err.superstep,
                    epoch: err.epoch,
                    cause: err.cause.to_string(),
                }));
                if let Some(metrics) = self.machine.metrics() {
                    metrics.with(|reg| reg.inc("pic_faults_total", 1));
                }
                Err(err)
            }
        }
    }

    /// The body of [`GenericPicSim::try_step`]; split out so the wrapper
    /// can emit the trace outcome (iteration or fault) in one place.
    fn try_step_inner(&mut self) -> Result<IterationRecord, SpmdError> {
        self.iter += 1;
        self.machine.set_fault_epoch(self.iter as u64);
        // conservation reference: what the iteration starts with (tests
        // and experiment setups may legitimately hand-edit rank states
        // between iterations, so the config's totals are not the baseline)
        let (total_before, charge_before) = if self.cfg.check_invariants {
            self.census()
        } else {
            (0, 0.0)
        };
        {
            let env = PhaseEnv {
                cfg: &self.cfg,
                layout: &self.layout,
                halo: &self.halo,
                indexer: self.indexer.as_ref(),
                solver: &self.solver,
            };
            phases::scatter::run(&mut self.machine, &env)?;
            phases::field_solve::run(&mut self.machine, &env)?;
            phases::gather::run(&mut self.machine, &env)?;
            phases::push::run(&mut self.machine, &env)?;
        }
        if self.cfg.check_invariants {
            self.check_invariants(total_before, charge_before)?;
        }
        let records = self.machine.stats_mut().drain();
        self.breakdown.absorb(&records);
        let time_s: f64 = records.iter().map(|r| r.elapsed_s).sum();
        let compute_s: f64 = records.iter().map(|r| r.max_compute_s).sum();
        let scatter = records
            .iter()
            .find(|r| r.phase == PhaseKind::Scatter)
            .copied()
            .unwrap_or_else(|| SuperstepStats::empty(PhaseKind::Scatter));

        // redistribution decision (Lagrangian only)
        let mut redistributed = false;
        let mut redistribute_s = 0.0;
        if self.cfg.movement == MovementMethod::Lagrangian {
            let fire = self.policy.should_redistribute(self.iter, time_s);
            // audit trail: every decision — fired or held — becomes a
            // trace event, built from the policy's own record when it
            // keeps one (Stop-At-Rise) and synthesized minimally for
            // time-blind policies (static, periodic)
            let decision = self.policy.last_decision().unwrap_or(PolicyDecision {
                iter: self.iter,
                observed_s: time_s,
                baseline_s: f64::NAN,
                projected_loss_s: f64::NAN,
                threshold_s: f64::NAN,
                fired: fire,
            });
            let now_s = self.machine.elapsed_s();
            self.emit(TraceEvent::PolicyDecision(PolicyDecisionEvent {
                iter: self.iter as u64,
                time_s: now_s,
                observed_s: decision.observed_s,
                baseline_s: decision.baseline_s,
                projected_loss_s: decision.projected_loss_s,
                threshold_s: decision.threshold_s,
                fired: fire,
            }));
            if let Some(metrics) = self.machine.metrics() {
                metrics.with(|reg| {
                    reg.inc("pic_policy_decisions_total", 1);
                    if fire {
                        reg.inc("pic_policy_fired_total", 1);
                    }
                });
            }
            if fire {
                let env = PhaseEnv {
                    cfg: &self.cfg,
                    layout: &self.layout,
                    halo: &self.halo,
                    indexer: self.indexer.as_ref(),
                    solver: &self.solver,
                };
                redistribute_s = phases::redistribute::run(&mut self.machine, &env, false)?;
                self.policy.notify_redistributed(self.iter, redistribute_s);
                self.redistributions += 1;
                self.redistribute_total_s += redistribute_s;
                redistributed = true;
                self.breakdown.absorb(&self.machine.stats_mut().drain());
                self.emit(TraceEvent::Redistribution(RedistributionEvent {
                    iter: self.iter as u64,
                    trigger: RedistributionTrigger::Policy,
                    cost_s: redistribute_s,
                }));
                self.sample_structure_gauges();
            }
        }

        let counts: Vec<usize> = self.machine.ranks().iter().map(RankState::len).collect();
        self.observe_iteration(&counts, redistributed);
        Ok(IterationRecord {
            iter: self.iter,
            time_s,
            compute_s,
            comm_s: time_s - compute_s,
            scatter_max_bytes_sent: scatter.max_bytes_sent,
            scatter_max_bytes_recv: scatter.max_bytes_recv,
            scatter_max_msgs_sent: scatter.max_msgs_sent,
            scatter_max_msgs_recv: scatter.max_msgs_recv,
            redistributed,
            redistribute_s,
            max_particles: counts.iter().copied().max().unwrap_or(0),
            min_particles: counts.iter().copied().min().unwrap_or(0),
        })
    }

    /// [`GenericPicSim::try_step`], panicking on failure (the historical
    /// API; fault-free programs cannot fail here).
    ///
    /// # Panics
    /// Panics when the iteration fails.
    pub fn step(&mut self) -> IterationRecord {
        self.try_step().expect("iteration failed")
    }

    /// Global particle count and total charge across all ranks.
    fn census(&self) -> (usize, f64) {
        let mut total = 0usize;
        let mut charge = 0.0f64;
        for st in self.machine.ranks() {
            total += st.len();
            charge += st.particles.charge * st.len() as f64;
        }
        (total, charge)
    }

    /// Physics/structure invariants checked after the four phases:
    /// global particle conservation (exact), key/particle array sync,
    /// total charge conservation, and field/current finiteness.
    fn check_invariants(
        &mut self,
        total_before: usize,
        charge_before: f64,
    ) -> Result<(), SpmdError> {
        let mut total = 0usize;
        let mut total_charge = 0.0f64;
        for st in self.machine.ranks() {
            if st.keys.len() != st.len() {
                return Err(self.invariant_violation(
                    Some(st.rank),
                    format!(
                        "keys ({}) and particles ({}) desynchronized",
                        st.keys.len(),
                        st.len()
                    ),
                ));
            }
            total += st.len();
            total_charge += st.particles.charge * st.len() as f64;
            let fields_finite = [
                &st.fields.ex,
                &st.fields.ey,
                &st.fields.ez,
                &st.fields.bx,
                &st.fields.by,
                &st.fields.bz,
            ]
            .iter()
            .all(|g| g.as_slice().iter().all(|v| v.is_finite()));
            if !fields_finite {
                return Err(self.invariant_violation(
                    Some(st.rank),
                    "non-finite field value on the local block".to_string(),
                ));
            }
            let currents_finite = [&st.currents.jx, &st.currents.jy, &st.currents.jz]
                .iter()
                .all(|g| g.as_slice().iter().all(|v| v.is_finite()));
            if !currents_finite {
                return Err(self.invariant_violation(
                    Some(st.rank),
                    "non-finite deposited current".to_string(),
                ));
            }
        }
        if total != total_before {
            return Err(self.invariant_violation(
                None,
                format!(
                    "particle count changed across the iteration: {total} held, {total_before} at entry"
                ),
            ));
        }
        let tol = 1e-12 * charge_before.abs().max(1e-300);
        if (total_charge - charge_before).abs() > tol {
            return Err(self.invariant_violation(
                None,
                format!("total charge drifted: {total_charge} vs {charge_before}"),
            ));
        }
        Ok(())
    }

    fn invariant_violation(&self, rank: Option<usize>, msg: String) -> SpmdError {
        let mut err = SpmdError::new(FailureCause::InvariantViolation(msg));
        err.rank = rank;
        err.epoch = Some(self.iter as u64);
        err
    }

    /// Run `iterations` steps and summarize **this call**: totals,
    /// breakdown and redistribution counts cover only the iterations run
    /// here (plus, on the first call, the initial distribution), so
    /// repeated `run()` calls each return a self-consistent report.
    ///
    /// # Errors
    /// Returns the first failing iteration's [`SpmdError`]; iterations
    /// completed before it are lost from the report (resume from a
    /// checkpoint to recover them).
    pub fn try_run(&mut self, iterations: usize) -> Result<SimReport, SpmdError> {
        let elapsed_before = self.consumed_s;
        let breakdown_before = self.breakdown_consumed;
        let redists_before = self.redistributions_consumed;
        let redist_s_before = self.redistribute_s_consumed;

        let mut records = Vec::with_capacity(iterations);
        for _ in 0..iterations {
            records.push(self.try_step()?);
        }

        let compute_s: f64 = records.iter().map(|r| r.compute_s).sum();
        let end = self.machine.elapsed_s();
        let total_s = end - elapsed_before;
        self.consumed_s = end;
        self.breakdown_consumed = self.breakdown;
        self.redistributions_consumed = self.redistributions;
        self.redistribute_s_consumed = self.redistribute_total_s;
        Ok(SimReport {
            total_s,
            compute_s,
            overhead_s: total_s - compute_s,
            redistributions: self.redistributions - redists_before,
            redistribute_total_s: self.redistribute_total_s - redist_s_before,
            setup_s: self.setup_s,
            breakdown: self.breakdown.since(&breakdown_before),
            iterations: records,
        })
    }

    /// [`GenericPicSim::try_run`], panicking on failure (the historical
    /// API; fault-free programs cannot fail here).
    ///
    /// # Panics
    /// Panics when an iteration fails.
    pub fn run(&mut self, iterations: usize) -> SimReport {
        self.try_run(iterations).expect("run failed")
    }

    /// Force a redistribution now, regardless of policy.  Returns its
    /// modeled cost.
    ///
    /// # Errors
    /// Returns the [`SpmdError`] when the redistribution fails.
    pub fn try_redistribute_now(&mut self) -> Result<f64, SpmdError> {
        let env = PhaseEnv {
            cfg: &self.cfg,
            layout: &self.layout,
            halo: &self.halo,
            indexer: self.indexer.as_ref(),
            solver: &self.solver,
        };
        let cost = phases::redistribute::run(&mut self.machine, &env, false)?;
        self.policy.notify_redistributed(self.iter, cost);
        self.redistributions += 1;
        self.redistribute_total_s += cost;
        self.breakdown.absorb(&self.machine.stats_mut().drain());
        self.emit(TraceEvent::Redistribution(RedistributionEvent {
            iter: self.iter as u64,
            trigger: RedistributionTrigger::Forced,
            cost_s: cost,
        }));
        Ok(cost)
    }

    /// [`GenericPicSim::try_redistribute_now`], panicking on failure.
    ///
    /// # Panics
    /// Panics when the redistribution fails.
    pub fn redistribute_now(&mut self) -> f64 {
        self.try_redistribute_now().expect("redistribution failed")
    }

    /// The run configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// The underlying executor (read access for diagnostics).
    pub fn machine(&self) -> &E {
        &self.machine
    }

    /// Consume the simulation, returning the executor (and with it the
    /// final rank states via [`SpmdEngine::into_ranks`]).
    pub fn into_machine(self) -> E {
        self.machine
    }

    /// Mutable access to the rank states, for tests and experiment setups
    /// that hand-place particles or pre-set fields.  Mutations here are
    /// not charged to any clock.
    pub fn ranks_mut(&mut self) -> &mut [RankState] {
        self.machine.ranks_mut()
    }

    /// The mesh layout.
    pub fn layout(&self) -> &pic_field::BlockLayout {
        &self.layout
    }

    /// Iterations executed so far.
    pub fn iterations_done(&self) -> usize {
        self.iter
    }

    /// Per-rank particle counts.
    pub fn particle_counts(&self) -> Vec<usize> {
        self.machine.ranks().iter().map(RankState::len).collect()
    }

    /// Total particles across ranks (must stay constant).
    pub fn total_particles(&self) -> usize {
        self.particle_counts().iter().sum()
    }

    /// Energy diagnostics over all ranks.
    pub fn energy(&self) -> EnergyReport {
        crate::diagnostics::energy_of(self.machine.ranks(), self.cfg.dx, self.cfg.dy)
    }

    /// Per-rank alignment diagnostics (particle subdomain vs mesh block).
    pub fn alignment(&self) -> Vec<pic_partition::AlignmentReport> {
        self.machine
            .ranks()
            .iter()
            .map(|st| {
                pic_partition::alignment_report(
                    &st.particles.x,
                    &st.particles.y,
                    self.cfg.dx,
                    self.cfg.dy,
                    self.cfg.nx,
                    self.cfg.ny,
                    &st.rect,
                )
            })
            .collect()
    }

    /// Drained access to machine statistics (advanced use).
    pub fn stats_mut(&mut self) -> &mut StatsLog {
        self.machine.stats_mut()
    }
}
