//! The parallel PIC simulation driver.

use pic_field::{HaloPlan, MaxwellSolver};
use pic_index::CellIndexer;
use pic_machine::{Machine, PhaseKind, SpmdEngine, StatsLog, SuperstepStats, ThreadedMachine};
use pic_partition::{sfc_block_layout, RedistributionPolicy};
use serde::{Deserialize, Serialize};

use crate::config::{MovementMethod, SimConfig};
use crate::diagnostics::EnergyReport;
use crate::phases::{self, PhaseEnv};
use crate::state::RankState;

/// Modeled time spent per phase, accumulated over a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PhaseBreakdown {
    /// Scatter phase seconds.
    pub scatter_s: f64,
    /// Field solve seconds.
    pub field_solve_s: f64,
    /// Gather phase seconds.
    pub gather_s: f64,
    /// Push phase seconds (includes Eulerian migration when enabled).
    pub push_s: f64,
    /// Redistribution seconds (including the initial distribution).
    pub redistribute_s: f64,
}

impl PhaseBreakdown {
    /// Component-wise difference (`self - earlier`), used to report
    /// per-run deltas from cumulative counters.
    fn since(&self, earlier: &PhaseBreakdown) -> PhaseBreakdown {
        PhaseBreakdown {
            scatter_s: self.scatter_s - earlier.scatter_s,
            field_solve_s: self.field_solve_s - earlier.field_solve_s,
            gather_s: self.gather_s - earlier.gather_s,
            push_s: self.push_s - earlier.push_s,
            redistribute_s: self.redistribute_s - earlier.redistribute_s,
        }
    }

    fn absorb(&mut self, records: &[SuperstepStats]) {
        for r in records {
            let slot = match r.phase {
                PhaseKind::Scatter => &mut self.scatter_s,
                PhaseKind::FieldSolve => &mut self.field_solve_s,
                PhaseKind::Gather => &mut self.gather_s,
                PhaseKind::Push => &mut self.push_s,
                PhaseKind::Redistribute | PhaseKind::Setup => &mut self.redistribute_s,
                PhaseKind::Other => continue,
            };
            *slot += r.elapsed_s;
        }
    }
}

/// One iteration's measurements — the rows behind Figures 17, 18 and 19.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IterationRecord {
    /// Iteration number (1-based).
    pub iter: usize,
    /// Modeled execution time of the four phases (excludes any
    /// redistribution this iteration triggered).
    pub time_s: f64,
    /// Modeled computation component (max over ranks, summed per phase).
    pub compute_s: f64,
    /// Modeled communication + idle component.
    pub comm_s: f64,
    /// Maximum bytes any rank sent in the scatter phase (Figure 18).
    pub scatter_max_bytes_sent: u64,
    /// Maximum bytes any rank received in the scatter phase.
    pub scatter_max_bytes_recv: u64,
    /// Maximum messages any rank sent in the scatter phase (Figure 19).
    pub scatter_max_msgs_sent: u64,
    /// Maximum messages any rank received in the scatter phase.
    pub scatter_max_msgs_recv: u64,
    /// Whether a redistribution ran after this iteration.
    pub redistributed: bool,
    /// Modeled cost of that redistribution (0 when none ran).
    pub redistribute_s: f64,
    /// Largest per-rank particle count at the end of the iteration.
    pub max_particles: usize,
    /// Smallest per-rank particle count.
    pub min_particles: usize,
}

/// Summary of a full run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimReport {
    /// Per-iteration records.
    pub iterations: Vec<IterationRecord>,
    /// Total modeled time including redistributions and setup.
    pub total_s: f64,
    /// Total modeled computation time.
    pub compute_s: f64,
    /// `total - compute`: the "overhead" of paper Figures 21/22
    /// (communication in scatter/solve/gather plus redistribution).
    pub overhead_s: f64,
    /// Number of redistributions performed (excluding the initial
    /// distribution).
    pub redistributions: usize,
    /// Total modeled redistribution time (excluding setup).
    pub redistribute_total_s: f64,
    /// Modeled cost of the initial distribution.
    pub setup_s: f64,
    /// Per-phase time split.
    pub breakdown: PhaseBreakdown,
}

/// The parallel PIC simulation on the modeled BSP machine (the default
/// executor: deterministic, reports modeled seconds).
pub type ParallelPicSim = GenericPicSim<Machine<RankState>>;

/// The same simulation on the real-threads executor: one OS thread per
/// rank with genuine message passing; reports wall-clock seconds.  Rank
/// states (particles, keys, bounds) are bit-identical to
/// [`ParallelPicSim`] under any measurement-independent redistribution
/// policy (e.g. `PolicyKind::Periodic`); time-based policies such as
/// `DynamicSar` read the executor's own clock and may redistribute at
/// different iterations.
pub type ThreadedPicSim = GenericPicSim<ThreadedMachine<RankState>>;

/// The parallel PIC simulation, generic over the SPMD executor.
pub struct GenericPicSim<E: SpmdEngine<RankState>> {
    cfg: SimConfig,
    machine: E,
    layout: pic_field::BlockLayout,
    halo: HaloPlan,
    indexer: Box<dyn CellIndexer>,
    solver: MaxwellSolver,
    policy: Box<dyn RedistributionPolicy>,
    iter: usize,
    setup_s: f64,
    redistributions: usize,
    redistribute_total_s: f64,
    breakdown: PhaseBreakdown,
    // snapshots of the cumulative counters at the end of the previous
    // `run()` call, so each report covers exactly one call
    consumed_s: f64,
    breakdown_consumed: PhaseBreakdown,
    redistributions_consumed: usize,
    redistribute_s_consumed: f64,
}

impl<E: SpmdEngine<RankState>> GenericPicSim<E> {
    /// Build the simulation: decompose the mesh, load and distribute the
    /// particles, and seed the redistribution policy with the initial
    /// distribution's cost.
    ///
    /// # Panics
    /// Panics on an invalid configuration.
    pub fn new(cfg: SimConfig) -> Self {
        cfg.validate();
        let p = cfg.machine.ranks;
        let layout = sfc_block_layout(cfg.nx, cfg.ny, p, cfg.scheme);
        let halo = HaloPlan::build(&layout);
        let indexer = cfg.scheme.build(cfg.nx, cfg.ny);
        let solver = MaxwellSolver::new(cfg.dt, cfg.dx, cfg.dy);
        let mut policy = cfg.policy.build();

        // load the global particle population deterministically, then
        // hand contiguous chunks to ranks (as if read from a shared file)
        let global =
            cfg.distribution
                .load(cfg.particles, cfg.lx(), cfg.ly(), cfg.thermal_u, cfg.seed);
        let states: Vec<RankState> = (0..p)
            .map(|r| {
                let mut st = RankState::new(r, layout.local_rect(r), &cfg);
                let lo = r * cfg.particles / p;
                let hi = (r + 1) * cfg.particles / p;
                st.particles.reserve(hi - lo);
                for i in lo..hi {
                    let c = global.get(i);
                    st.particles.push(c[0], c[1], c[2], c[3], c[4]);
                }
                st
            })
            .collect();

        let machine = E::build(cfg.machine, cfg.exec_mode(), states);
        let mut sim = Self {
            cfg,
            machine,
            layout,
            halo,
            indexer,
            solver,
            policy: pic_partition::PolicyKind::Static.build(), // placeholder
            iter: 0,
            setup_s: 0.0,
            redistributions: 0,
            redistribute_total_s: 0.0,
            breakdown: PhaseBreakdown::default(),
            consumed_s: 0.0,
            breakdown_consumed: PhaseBreakdown::default(),
            redistributions_consumed: 0,
            redistribute_s_consumed: 0.0,
        };

        // initial distribution (also under Eulerian: a one-time spatial
        // assignment so particles start on their owning ranks)
        let env = PhaseEnv {
            cfg: &sim.cfg,
            layout: &sim.layout,
            halo: &sim.halo,
            indexer: sim.indexer.as_ref(),
            solver: &sim.solver,
        };
        let cost = phases::redistribute::run(&mut sim.machine, &env, true);
        sim.setup_s = cost;
        policy.notify_redistributed(0, cost);
        sim.policy = policy;
        sim.breakdown.absorb(&sim.machine.stats_mut().drain());
        sim
    }

    /// Run one iteration (scatter → field solve → gather → push, then the
    /// redistribution policy).
    pub fn step(&mut self) -> IterationRecord {
        self.iter += 1;
        {
            let env = PhaseEnv {
                cfg: &self.cfg,
                layout: &self.layout,
                halo: &self.halo,
                indexer: self.indexer.as_ref(),
                solver: &self.solver,
            };
            phases::scatter::run(&mut self.machine, &env);
            phases::field_solve::run(&mut self.machine, &env);
            phases::gather::run(&mut self.machine, &env);
            phases::push::run(&mut self.machine, &env);
        }
        let records = self.machine.stats_mut().drain();
        self.breakdown.absorb(&records);
        let time_s: f64 = records.iter().map(|r| r.elapsed_s).sum();
        let compute_s: f64 = records.iter().map(|r| r.max_compute_s).sum();
        let scatter = records
            .iter()
            .find(|r| r.phase == PhaseKind::Scatter)
            .copied()
            .unwrap_or_else(|| SuperstepStats::empty(PhaseKind::Scatter));

        // redistribution decision (Lagrangian only)
        let mut redistributed = false;
        let mut redistribute_s = 0.0;
        if self.cfg.movement == MovementMethod::Lagrangian
            && self.policy.should_redistribute(self.iter, time_s)
        {
            let env = PhaseEnv {
                cfg: &self.cfg,
                layout: &self.layout,
                halo: &self.halo,
                indexer: self.indexer.as_ref(),
                solver: &self.solver,
            };
            redistribute_s = phases::redistribute::run(&mut self.machine, &env, false);
            self.policy.notify_redistributed(self.iter, redistribute_s);
            self.redistributions += 1;
            self.redistribute_total_s += redistribute_s;
            redistributed = true;
            self.breakdown.absorb(&self.machine.stats_mut().drain());
        }

        let counts: Vec<usize> = self.machine.ranks().iter().map(RankState::len).collect();
        IterationRecord {
            iter: self.iter,
            time_s,
            compute_s,
            comm_s: time_s - compute_s,
            scatter_max_bytes_sent: scatter.max_bytes_sent,
            scatter_max_bytes_recv: scatter.max_bytes_recv,
            scatter_max_msgs_sent: scatter.max_msgs_sent,
            scatter_max_msgs_recv: scatter.max_msgs_recv,
            redistributed,
            redistribute_s,
            max_particles: counts.iter().copied().max().unwrap_or(0),
            min_particles: counts.iter().copied().min().unwrap_or(0),
        }
    }

    /// Run `iterations` steps and summarize **this call**: totals,
    /// breakdown and redistribution counts cover only the iterations run
    /// here (plus, on the first call, the initial distribution), so
    /// repeated `run()` calls each return a self-consistent report.
    pub fn run(&mut self, iterations: usize) -> SimReport {
        let elapsed_before = self.consumed_s;
        let breakdown_before = self.breakdown_consumed;
        let redists_before = self.redistributions_consumed;
        let redist_s_before = self.redistribute_s_consumed;

        let records: Vec<IterationRecord> = (0..iterations).map(|_| self.step()).collect();

        let compute_s: f64 = records.iter().map(|r| r.compute_s).sum();
        let end = self.machine.elapsed_s();
        let total_s = end - elapsed_before;
        self.consumed_s = end;
        self.breakdown_consumed = self.breakdown;
        self.redistributions_consumed = self.redistributions;
        self.redistribute_s_consumed = self.redistribute_total_s;
        SimReport {
            total_s,
            compute_s,
            overhead_s: total_s - compute_s,
            redistributions: self.redistributions - redists_before,
            redistribute_total_s: self.redistribute_total_s - redist_s_before,
            setup_s: self.setup_s,
            breakdown: self.breakdown.since(&breakdown_before),
            iterations: records,
        }
    }

    /// Force a redistribution now, regardless of policy.  Returns its
    /// modeled cost.
    pub fn redistribute_now(&mut self) -> f64 {
        let env = PhaseEnv {
            cfg: &self.cfg,
            layout: &self.layout,
            halo: &self.halo,
            indexer: self.indexer.as_ref(),
            solver: &self.solver,
        };
        let cost = phases::redistribute::run(&mut self.machine, &env, false);
        self.policy.notify_redistributed(self.iter, cost);
        self.redistributions += 1;
        self.redistribute_total_s += cost;
        self.breakdown.absorb(&self.machine.stats_mut().drain());
        cost
    }

    /// The run configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// The underlying executor (read access for diagnostics).
    pub fn machine(&self) -> &E {
        &self.machine
    }

    /// Consume the simulation, returning the executor (and with it the
    /// final rank states via [`SpmdEngine::into_ranks`]).
    pub fn into_machine(self) -> E {
        self.machine
    }

    /// Mutable access to the rank states, for tests and experiment setups
    /// that hand-place particles or pre-set fields.  Mutations here are
    /// not charged to any clock.
    pub fn ranks_mut(&mut self) -> &mut [RankState] {
        self.machine.ranks_mut()
    }

    /// The mesh layout.
    pub fn layout(&self) -> &pic_field::BlockLayout {
        &self.layout
    }

    /// Iterations executed so far.
    pub fn iterations_done(&self) -> usize {
        self.iter
    }

    /// Per-rank particle counts.
    pub fn particle_counts(&self) -> Vec<usize> {
        self.machine.ranks().iter().map(RankState::len).collect()
    }

    /// Total particles across ranks (must stay constant).
    pub fn total_particles(&self) -> usize {
        self.particle_counts().iter().sum()
    }

    /// Energy diagnostics over all ranks.
    pub fn energy(&self) -> EnergyReport {
        crate::diagnostics::energy_of(self.machine.ranks(), self.cfg.dx, self.cfg.dy)
    }

    /// Per-rank alignment diagnostics (particle subdomain vs mesh block).
    pub fn alignment(&self) -> Vec<pic_partition::AlignmentReport> {
        self.machine
            .ranks()
            .iter()
            .map(|st| {
                pic_partition::alignment_report(
                    &st.particles.x,
                    &st.particles.y,
                    self.cfg.dx,
                    self.cfg.dy,
                    self.cfg.nx,
                    self.cfg.ny,
                    &st.rect,
                )
            })
            .collect()
    }

    /// Drained access to machine statistics (advanced use).
    pub fn stats_mut(&mut self) -> &mut StatsLog {
        self.machine.stats_mut()
    }
}
