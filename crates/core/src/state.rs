//! Per-rank state of the parallel PIC simulation.

use pic_field::{CurrentSet, FieldSet, Rect};
use pic_particles::Particles;
use pic_partition::BucketIncrementalSorter;

use crate::config::SimConfig;
use crate::ghost::{make_accumulator, GhostAccumulator};
use crate::messages::ParticleBatch;

/// Everything one virtual processor owns.
pub struct RankState {
    /// This rank's id.
    pub rank: usize,
    /// Owned mesh block (global cell coordinates).
    pub rect: Rect,
    /// Fields on the padded local block: `(w+2) x (h+2)` with a one-cell
    /// ghost ring maintained by halo exchange.
    pub fields: FieldSet,
    /// Current densities on the unpadded local block (`w x h`), rebuilt
    /// every scatter phase.
    pub currents: CurrentSet,
    /// The rank's particles (direct Lagrangian: stable between
    /// redistributions, sorted by curve key after each redistribution).
    pub particles: Particles,
    /// Curve keys of the particles, parallel to `particles`.
    pub keys: Vec<u64>,
    /// Bucket boundaries for the incremental sorter.
    pub sorter: BucketIncrementalSorter,
    /// Exclusive upper key bound of every rank (`globalBound` in paper
    /// Figure 12), identical on all ranks after a redistribution.
    pub bounds: Vec<u64>,
    /// Ghost accumulation table for the scatter phase.
    pub ghost: Box<dyn GhostAccumulator + Send>,
    /// Which ghost vertex indices each other rank deposited here this
    /// iteration — the gather phase pushes field values back along these
    /// lists ("the communication behavior is just the inverse of the
    /// scatter phase").
    pub ghost_serving: Vec<(usize, Vec<u32>)>,
    /// Interpolated E at each particle (filled by the gather phase).
    pub e_at: Vec<[f64; 3]>,
    /// Interpolated B at each particle.
    pub b_at: Vec<[f64; 3]>,
    /// Per-rank particle counts from the last counts allgather.
    pub all_counts: Vec<usize>,
    /// Scratch vector reused across collectives.
    pub scratch_u64: Vec<u64>,
}

impl RankState {
    /// Fresh state for `rank` under `cfg`, owning `rect`.
    pub fn new(rank: usize, rect: Rect, cfg: &SimConfig) -> Self {
        let p = cfg.machine.ranks;
        Self {
            rank,
            rect,
            fields: FieldSet::zeros(rect.w + 2, rect.h + 2),
            currents: CurrentSet::zeros(rect.w, rect.h),
            particles: Particles::new(-cfg.particle_charge, 1.0),
            keys: Vec::new(),
            sorter: BucketIncrementalSorter::new(cfg.buckets_per_rank),
            bounds: vec![u64::MAX; p],
            ghost: make_accumulator(cfg.dedup, cfg.nx, cfg.ny),
            ghost_serving: Vec::new(),
            e_at: Vec::new(),
            b_at: Vec::new(),
            all_counts: vec![0; p],
            scratch_u64: Vec::new(),
        }
    }

    /// Number of local particles.
    pub fn len(&self) -> usize {
        self.particles.len()
    }

    /// True when the rank holds no particles.
    pub fn is_empty(&self) -> bool {
        self.particles.is_empty()
    }

    /// Extract the particles whose destination (parallel array `dests`)
    /// differs from this rank, grouped into per-destination batches in
    /// ascending rank order.  Local order of survivors is preserved.
    ///
    /// # Panics
    /// Panics if `dests` length mismatches the particle count.
    pub fn take_outgoing(&mut self, dests: &[usize]) -> Vec<(usize, ParticleBatch)> {
        assert_eq!(dests.len(), self.len(), "dests length mismatch");
        let off: Vec<usize> = (0..self.len()).filter(|&i| dests[i] != self.rank).collect();
        if off.is_empty() {
            return Vec::new();
        }
        let moved_dests: Vec<usize> = off.iter().map(|&i| dests[i]).collect();
        let moved_keys: Vec<u64> = off.iter().map(|&i| self.keys[i]).collect();
        let moved = self.particles.extract(&off);
        // rebuild local keys for survivors
        let mut keep_keys = Vec::with_capacity(self.keys.len() - off.len());
        let mut oi = 0;
        for (i, &k) in self.keys.iter().enumerate() {
            if oi < off.len() && off[oi] == i {
                oi += 1;
            } else {
                keep_keys.push(k);
            }
        }
        self.keys = keep_keys;
        // group into batches by destination, ascending
        let mut order: Vec<usize> = (0..moved_dests.len()).collect();
        order.sort_by_key(|&i| (moved_dests[i], i));
        let mut out: Vec<(usize, ParticleBatch)> = Vec::new();
        for i in order {
            let dest = moved_dests[i];
            let coords = moved.get(i);
            match out.last_mut() {
                Some((d, batch)) if *d == dest => batch.push(moved_keys[i], coords),
                _ => {
                    let mut batch = ParticleBatch::default();
                    batch.push(moved_keys[i], coords);
                    out.push((dest, batch));
                }
            }
        }
        out
    }

    /// Append a received batch to the local arrays (unsorted; a local
    /// sort follows in the redistribution sequence).
    pub fn append_batch(&mut self, batch: &ParticleBatch) {
        self.particles.reserve(batch.len());
        for i in 0..batch.len() {
            let c = batch.coords(i);
            self.particles.push(c[0], c[1], c[2], c[3], c[4]);
            self.keys.push(batch.keys[i]);
        }
    }

    /// Sort the local particles by key using the incremental sorter;
    /// returns the modeled comparison count.
    pub fn sort_local(&mut self) -> f64 {
        let result = self.sorter.sort_incremental(&self.keys);
        let sorted_keys: Vec<u64> = result.order.iter().map(|&i| self.keys[i]).collect();
        self.particles.apply_order(&result.order);
        self.keys = sorted_keys;
        result.comparisons
    }

    /// Rebuild the sorter's bucket boundaries from the (sorted) keys.
    pub fn rebuild_sorter(&mut self) {
        debug_assert!(self.keys.windows(2).all(|w| w[0] <= w[1]));
        self.sorter.rebuild(&self.keys);
    }

    /// Largest local key, or 0 when empty (the monotone clamp in
    /// `rank_bounds_from_sorted` absorbs empty ranks).
    pub fn last_key(&self) -> u64 {
        self.keys.last().copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;

    fn state_with_particles() -> RankState {
        let cfg = SimConfig::small_test();
        let rect = Rect {
            x0: 0,
            y0: 0,
            w: 8,
            h: 8,
        };
        let mut st = RankState::new(1, rect, &cfg);
        for i in 0..6 {
            let f = i as f64;
            st.particles.push(f, f, 0.0, 0.0, 0.0);
            st.keys.push(10 * i as u64);
        }
        st
    }

    #[test]
    fn take_outgoing_partitions_by_destination() {
        let mut st = state_with_particles();
        // dests: particles 0,2 stay (rank 1); 1,3 -> rank 0; 4,5 -> rank 2
        let dests = vec![1, 0, 1, 0, 2, 2];
        let out = st.take_outgoing(&dests);
        assert_eq!(st.len(), 2);
        assert_eq!(st.keys, vec![0, 20]);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].0, 0);
        assert_eq!(out[0].1.keys, vec![10, 30]);
        assert_eq!(out[1].0, 2);
        assert_eq!(out[1].1.keys, vec![40, 50]);
        // phase space rode along
        assert_eq!(out[1].1.coords(0)[0], 4.0);
    }

    #[test]
    fn take_outgoing_with_no_moves_is_empty() {
        let mut st = state_with_particles();
        let out = st.take_outgoing(&[1; 6]);
        assert!(out.is_empty());
        assert_eq!(st.len(), 6);
    }

    #[test]
    fn append_then_sort_restores_key_order() {
        let mut st = state_with_particles();
        let mut batch = ParticleBatch::default();
        batch.push(15, [1.5, 1.5, 0.0, 0.0, 0.0]);
        batch.push(35, [3.5, 3.5, 0.0, 0.0, 0.0]);
        st.append_batch(&batch);
        assert_eq!(st.len(), 8);
        st.sort_local();
        assert_eq!(st.keys, vec![0, 10, 15, 20, 30, 35, 40, 50]);
        // particle attributes moved with their keys
        let idx = st.keys.iter().position(|&k| k == 15).unwrap();
        assert_eq!(st.particles.x[idx], 1.5);
    }

    #[test]
    fn last_key_handles_empty() {
        let cfg = SimConfig::small_test();
        let st = RankState::new(
            0,
            Rect {
                x0: 0,
                y0: 0,
                w: 4,
                h: 4,
            },
            &cfg,
        );
        assert_eq!(st.last_key(), 0);
        assert!(st.is_empty());
    }

    #[test]
    fn padded_field_dimensions() {
        let cfg = SimConfig::small_test();
        let st = RankState::new(
            0,
            Rect {
                x0: 0,
                y0: 0,
                w: 8,
                h: 4,
            },
            &cfg,
        );
        assert_eq!(st.fields.width(), 10);
        assert_eq!(st.fields.height(), 6);
        assert_eq!(st.currents.jx.width(), 8);
    }
}
