//! Per-rank state of the parallel PIC simulation.

use pic_field::{CurrentSet, FieldSet, Rect};
use pic_particles::Particles;
use pic_partition::BucketIncrementalSorter;

use crate::config::SimConfig;
use crate::ghost::{make_accumulator, GhostAccumulator};
use crate::messages::ParticleBatch;
use crate::scratch::{reuse_arc_buf, ScratchArena};

/// Everything one virtual processor owns.
pub struct RankState {
    /// This rank's id.
    pub rank: usize,
    /// Owned mesh block (global cell coordinates).
    pub rect: Rect,
    /// Fields on the padded local block: `(w+2) x (h+2)` with a one-cell
    /// ghost ring maintained by halo exchange.
    pub fields: FieldSet,
    /// Current densities on the unpadded local block (`w x h`), rebuilt
    /// every scatter phase.
    pub currents: CurrentSet,
    /// The rank's particles (direct Lagrangian: stable between
    /// redistributions, sorted by curve key after each redistribution).
    pub particles: Particles,
    /// Curve keys of the particles, parallel to `particles`.
    pub keys: Vec<u64>,
    /// Bucket boundaries for the incremental sorter.
    pub sorter: BucketIncrementalSorter,
    /// Exclusive upper key bound of every rank (`globalBound` in paper
    /// Figure 12), identical on all ranks after a redistribution.
    pub bounds: Vec<u64>,
    /// Ghost accumulation table for the scatter phase.
    pub ghost: Box<dyn GhostAccumulator + Send>,
    /// Which ghost vertex indices each other rank deposited here this
    /// iteration — the gather phase pushes field values back along these
    /// lists ("the communication behavior is just the inverse of the
    /// scatter phase").
    pub ghost_serving: Vec<(usize, Vec<u32>)>,
    /// Interpolated E at each particle (filled by the gather phase).
    pub e_at: Vec<[f64; 3]>,
    /// Interpolated B at each particle.
    pub b_at: Vec<[f64; 3]>,
    /// Per-rank particle counts from the last counts allgather.
    pub all_counts: Vec<usize>,
    /// Scratch vector reused across collectives.
    pub scratch_u64: Vec<u64>,
    /// Reusable hot-loop buffers (never snapshotted; see
    /// [`crate::scratch`]).
    pub scratch: ScratchArena,
}

impl RankState {
    /// Fresh state for `rank` under `cfg`, owning `rect`.
    pub fn new(rank: usize, rect: Rect, cfg: &SimConfig) -> Self {
        let p = cfg.machine.ranks;
        Self {
            rank,
            rect,
            fields: FieldSet::zeros(rect.w + 2, rect.h + 2),
            currents: CurrentSet::zeros(rect.w, rect.h),
            particles: Particles::new(-cfg.particle_charge, 1.0),
            keys: Vec::new(),
            sorter: BucketIncrementalSorter::new(cfg.buckets_per_rank),
            bounds: vec![u64::MAX; p],
            ghost: make_accumulator(cfg.dedup, cfg.nx, cfg.ny),
            ghost_serving: Vec::new(),
            e_at: Vec::new(),
            b_at: Vec::new(),
            all_counts: vec![0; p],
            scratch_u64: Vec::new(),
            scratch: ScratchArena::new(),
        }
    }

    /// Number of local particles.
    pub fn len(&self) -> usize {
        self.particles.len()
    }

    /// True when the rank holds no particles.
    pub fn is_empty(&self) -> bool {
        self.particles.is_empty()
    }

    /// Extract the particles whose destination (parallel array `dests`)
    /// differs from this rank, grouped into per-destination batches in
    /// ascending rank order.  Local order of survivors is preserved.
    ///
    /// Convenience wrapper over [`Self::take_outgoing_packed`] (copies
    /// `dests` into the arena and collects the batches); the hot path
    /// classifies straight into `scratch.dests` and streams batches to
    /// the outbox.
    ///
    /// # Panics
    /// Panics if `dests` length mismatches the particle count.
    pub fn take_outgoing(&mut self, dests: &[usize]) -> Vec<(usize, ParticleBatch)> {
        self.scratch.dests.clear();
        self.scratch.dests.extend_from_slice(dests);
        let mut out = Vec::new();
        self.take_outgoing_packed(|dest, batch| out.push((dest, batch)));
        out
    }

    /// Zero-copy outgoing exchange: consume `scratch.dests` (destination
    /// rank per particle), pack every mover ONCE into the arena's shared
    /// flat buffers — keys and interleaved phase space, grouped by
    /// destination via a stable counting scatter — and hand `send` one
    /// `Arc`-sliced [`ParticleBatch`] window per destination, ascending.
    /// Survivors are compacted in place (order preserved); the pack
    /// buffers are reclaimed on the next call once receivers have
    /// dropped their views, so steady-state exchanges allocate nothing.
    ///
    /// # Panics
    /// Panics if `scratch.dests` length mismatches the particle count.
    pub fn take_outgoing_packed(&mut self, mut send: impl FnMut(usize, ParticleBatch)) {
        let n = self.len();
        let rank = self.rank;
        let dests = std::mem::take(&mut self.scratch.dests);
        assert_eq!(dests.len(), n, "dests length mismatch");
        let nranks = self.all_counts.len().max(rank + 1);
        let ScratchArena {
            counts,
            pack_keys,
            pack_data,
            ..
        } = &mut self.scratch;
        counts.clear();
        counts.resize(nranks, 0);
        let mut movers = 0usize;
        for &d in &dests {
            if d != rank {
                counts[d] += 1;
                movers += 1;
            }
        }
        if movers == 0 {
            self.scratch.dests = dests;
            return;
        }
        // exclusive prefix sum: counts[d] becomes dest d's write cursor
        let mut off = 0usize;
        for c in counts.iter_mut() {
            let here = *c;
            *c = off;
            off += here;
        }
        let kbuf = reuse_arc_buf(pack_keys);
        kbuf.resize(movers, 0);
        let dbuf = reuse_arc_buf(pack_data);
        dbuf.resize(movers * 5, 0.0);
        // one pass: movers scatter to their destination region (stable
        // in original order), survivors compact to the front
        let mut w = 0usize;
        for (i, &d) in dests.iter().enumerate() {
            if d == rank {
                if w != i {
                    self.keys[w] = self.keys[i];
                    self.particles.x[w] = self.particles.x[i];
                    self.particles.y[w] = self.particles.y[i];
                    self.particles.ux[w] = self.particles.ux[i];
                    self.particles.uy[w] = self.particles.uy[i];
                    self.particles.uz[w] = self.particles.uz[i];
                }
                w += 1;
            } else {
                let pos = counts[d];
                counts[d] += 1;
                kbuf[pos] = self.keys[i];
                let o = pos * 5;
                dbuf[o] = self.particles.x[i];
                dbuf[o + 1] = self.particles.y[i];
                dbuf[o + 2] = self.particles.ux[i];
                dbuf[o + 3] = self.particles.uy[i];
                dbuf[o + 4] = self.particles.uz[i];
            }
        }
        self.keys.truncate(w);
        self.particles.truncate(w);
        // counts[d] is now dest d's END offset; regions tile [0, movers)
        // in ascending dest order, so a cursor walk recovers the windows
        let keys_arc = self.scratch.pack_keys.clone();
        let data_arc = self.scratch.pack_data.clone();
        let mut start = 0usize;
        for d in 0..nranks {
            let end = self.scratch.counts[d];
            if end > start {
                send(
                    d,
                    ParticleBatch::view(keys_arc.clone(), data_arc.clone(), start, end),
                );
            }
            start = end;
        }
        self.scratch.dests = dests;
    }

    /// Append a received batch to the local arrays (unsorted; a local
    /// sort follows in the redistribution sequence).
    pub fn append_batch(&mut self, batch: &ParticleBatch) {
        self.particles.reserve(batch.len());
        self.keys.extend_from_slice(batch.keys());
        for c in batch.interleaved().chunks_exact(5) {
            self.particles.push(c[0], c[1], c[2], c[3], c[4]);
        }
    }

    /// Sort the local particles by key using the incremental sorter;
    /// returns the modeled comparison count.
    ///
    /// Runs entirely on arena buffers: radix/counting sorts for the
    /// permutation, a key swap through `scratch.keys_tmp`, and one
    /// cycle-decomposition pass reordering all five attribute arrays —
    /// zero heap allocations in steady state.
    pub fn sort_local(&mut self) -> f64 {
        let ScratchArena {
            order,
            bucket_sizes,
            radix,
            keys_tmp,
            visited,
            ..
        } = &mut self.scratch;
        let cmp = self
            .sorter
            .sort_incremental_into(&self.keys, order, bucket_sizes, radix);
        keys_tmp.clear();
        keys_tmp.extend(order.iter().map(|&i| self.keys[i]));
        std::mem::swap(&mut self.keys, keys_tmp);
        self.particles.apply_order_in_place(order, visited);
        cmp
    }

    /// Rebuild the sorter's bucket boundaries from the (sorted) keys.
    pub fn rebuild_sorter(&mut self) {
        debug_assert!(self.keys.windows(2).all(|w| w[0] <= w[1]));
        self.sorter.rebuild(&self.keys);
    }

    /// Largest local key, or 0 when empty (the monotone clamp in
    /// `rank_bounds_from_sorted` absorbs empty ranks).
    pub fn last_key(&self) -> u64 {
        self.keys.last().copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;

    fn state_with_particles() -> RankState {
        let cfg = SimConfig::small_test();
        let rect = Rect {
            x0: 0,
            y0: 0,
            w: 8,
            h: 8,
        };
        let mut st = RankState::new(1, rect, &cfg);
        for i in 0..6 {
            let f = i as f64;
            st.particles.push(f, f, 0.0, 0.0, 0.0);
            st.keys.push(10 * i as u64);
        }
        st
    }

    #[test]
    fn take_outgoing_partitions_by_destination() {
        let mut st = state_with_particles();
        // dests: particles 0,2 stay (rank 1); 1,3 -> rank 0; 4,5 -> rank 2
        let dests = vec![1, 0, 1, 0, 2, 2];
        let out = st.take_outgoing(&dests);
        assert_eq!(st.len(), 2);
        assert_eq!(st.keys, vec![0, 20]);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].0, 0);
        assert_eq!(out[0].1.keys(), &[10, 30][..]);
        assert_eq!(out[1].0, 2);
        assert_eq!(out[1].1.keys(), &[40, 50][..]);
        // phase space rode along
        assert_eq!(out[1].1.coords(0)[0], 4.0);
    }

    #[test]
    fn outgoing_batches_share_one_pack_buffer() {
        let mut st = state_with_particles();
        let dests = vec![1, 0, 1, 0, 2, 2];
        let out = st.take_outgoing(&dests);
        // both batches window the same packed allocation
        assert_eq!(out.len(), 2);
        let all_keys: Vec<u64> = out.iter().flat_map(|(_, b)| b.keys().to_vec()).collect();
        assert_eq!(all_keys, vec![10, 30, 40, 50]);
        drop(out);
        // once the views are dropped the arena can reclaim the buffers:
        // a second exchange must reuse the same allocation
        let ptr = st.scratch.pack_keys.as_ptr();
        st.particles.push(6.0, 6.0, 0.0, 0.0, 0.0);
        st.particles.push(7.0, 7.0, 0.0, 0.0, 0.0);
        st.keys.push(60);
        st.keys.push(70);
        let out2 = st.take_outgoing(&[0, 1, 0, 1]);
        assert_eq!(out2.len(), 1);
        assert_eq!(out2[0].0, 0);
        assert_eq!(out2[0].1.keys(), &[0, 60][..]);
        assert_eq!(st.keys, vec![20, 70]);
        assert_eq!(st.scratch.pack_keys.as_ptr(), ptr, "pack buffer not reused");
    }

    #[test]
    fn take_outgoing_with_no_moves_is_empty() {
        let mut st = state_with_particles();
        let out = st.take_outgoing(&[1; 6]);
        assert!(out.is_empty());
        assert_eq!(st.len(), 6);
    }

    #[test]
    fn append_then_sort_restores_key_order() {
        let mut st = state_with_particles();
        let mut batch = ParticleBatch::default();
        batch.push(15, [1.5, 1.5, 0.0, 0.0, 0.0]);
        batch.push(35, [3.5, 3.5, 0.0, 0.0, 0.0]);
        st.append_batch(&batch);
        assert_eq!(st.len(), 8);
        st.sort_local();
        assert_eq!(st.keys, vec![0, 10, 15, 20, 30, 35, 40, 50]);
        // particle attributes moved with their keys
        let idx = st.keys.iter().position(|&k| k == 15).unwrap();
        assert_eq!(st.particles.x[idx], 1.5);
    }

    #[test]
    fn last_key_handles_empty() {
        let cfg = SimConfig::small_test();
        let st = RankState::new(
            0,
            Rect {
                x0: 0,
                y0: 0,
                w: 4,
                h: 4,
            },
            &cfg,
        );
        assert_eq!(st.last_key(), 0);
        assert!(st.is_empty());
    }

    #[test]
    fn padded_field_dimensions() {
        let cfg = SimConfig::small_test();
        let st = RankState::new(
            0,
            Rect {
                x0: 0,
                y0: 0,
                w: 8,
                h: 4,
            },
            &cfg,
        );
        assert_eq!(st.fields.width(), 10);
        assert_eq!(st.fields.height(), 6);
        assert_eq!(st.currents.jx.width(), 8);
    }
}
