//! Measured-vs-modeled validation: how well does the machine model's
//! predicted phase time track the real-threads executor?
//!
//! The paper validates its two-level machine model (Section 4) by
//! comparing predicted and measured per-phase times (the basis of
//! Figures 17–19).  This module reproduces that comparison for the two
//! executors that ship here: the modeled [`pic_machine::Machine`]
//! (analytic τ/μ/δ seconds) and the real-threads
//! [`pic_machine::ThreadedMachine`] (wall seconds).  Both emit one
//! [`SuperstepEvent`] per superstep/collective, in the same order for
//! measurement-independent redistribution policies, so the two traces
//! pair step-for-step.
//!
//! The modeled and measured clocks live in different units (an abstract
//! machine's seconds vs this host's), so a direct comparison would only
//! measure the calibration constant.  Instead a single least-squares
//! scale `α = Σ(measured·modeled) / Σ(modeled²)` is fitted over all
//! paired supersteps, and the report states how far each phase deviates
//! from `α · modeled` — i.e. whether the model gets the *relative*
//! phase weights right, which is what the redistribution policy and the
//! cost analysis in [`crate::costs`] rely on.

use pic_machine::{PhaseKind, SuperstepEvent, TraceEvent};

/// Per-phase aggregate of the paired supersteps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelErrorRow {
    /// Phase the row aggregates.
    pub phase: PhaseKind,
    /// Paired supersteps attributed to the phase.
    pub steps: u64,
    /// Summed modeled seconds (the model's own units).
    pub modeled_s: f64,
    /// Summed measured wall seconds.
    pub measured_s: f64,
    /// `scale * modeled_s`: the model's prediction in wall seconds.
    pub scaled_modeled_s: f64,
    /// `100 * |measured - scaled_modeled| / measured` (0 when the phase
    /// measured no time at all).
    pub error_pct: f64,
}

/// The model-error report: one row per phase that appears in the paired
/// traces, plus the fitted scale and an overall error figure.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelErrorReport {
    /// Fitted least-squares scale from modeled to measured seconds.
    pub scale: f64,
    /// Per-phase rows, in [`PhaseKind::ALL`] order.
    pub rows: Vec<ModelErrorRow>,
    /// Measured-time-weighted mean error:
    /// `100 * Σ|measured - scaled| / Σ measured` over the rows.
    pub overall_error_pct: f64,
    /// Supersteps paired between the two traces.
    pub paired_steps: u64,
    /// Trailing supersteps of the longer trace that found no partner,
    /// plus in-order pairs whose phases disagreed (both excluded from
    /// the fit; a large value means the runs diverged and the report
    /// is not meaningful).
    pub unpaired_steps: u64,
}

fn supersteps(events: &[TraceEvent]) -> Vec<&SuperstepEvent> {
    events.iter().filter_map(TraceEvent::superstep).collect()
}

/// Join a modeled trace against a measured one superstep-by-superstep
/// and aggregate the model error per phase.  Run the *same phase
/// program* (config, seed, iteration count, and a
/// measurement-independent policy such as `Periodic`) on both executors
/// to get traces that pair exactly.
pub fn model_error_report(modeled: &[TraceEvent], measured: &[TraceEvent]) -> ModelErrorReport {
    let model_steps = supersteps(modeled);
    let measure_steps = supersteps(measured);
    let paired = model_steps.len().min(measure_steps.len());
    let mut unpaired = (model_steps.len().max(measure_steps.len()) - paired) as u64;

    // least-squares scale over all phase-consistent pairs
    let mut num = 0.0f64;
    let mut den = 0.0f64;
    let mut pairs: Vec<(&SuperstepEvent, &SuperstepEvent)> = Vec::with_capacity(paired);
    for (m, w) in model_steps.iter().zip(&measure_steps) {
        if m.phase != w.phase {
            unpaired += 1;
            continue;
        }
        num += w.elapsed_s * m.elapsed_s;
        den += m.elapsed_s * m.elapsed_s;
        pairs.push((m, w));
    }
    let scale = if den > 0.0 { num / den } else { 0.0 };

    let mut rows = Vec::new();
    let mut abs_err_sum = 0.0f64;
    let mut measured_sum = 0.0f64;
    for phase in PhaseKind::ALL {
        let mut steps = 0u64;
        let mut modeled_s = 0.0f64;
        let mut measured_s = 0.0f64;
        for (m, w) in pairs.iter().filter(|(m, _)| m.phase == phase) {
            steps += 1;
            modeled_s += m.elapsed_s;
            measured_s += w.elapsed_s;
        }
        if steps == 0 {
            continue;
        }
        let scaled_modeled_s = scale * modeled_s;
        let error_pct = if measured_s > 0.0 {
            100.0 * (measured_s - scaled_modeled_s).abs() / measured_s
        } else {
            0.0
        };
        abs_err_sum += (measured_s - scaled_modeled_s).abs();
        measured_sum += measured_s;
        rows.push(ModelErrorRow {
            phase,
            steps,
            modeled_s,
            measured_s,
            scaled_modeled_s,
            error_pct,
        });
    }
    let overall_error_pct = if measured_sum > 0.0 {
        100.0 * abs_err_sum / measured_sum
    } else {
        0.0
    };
    ModelErrorReport {
        scale,
        rows,
        overall_error_pct,
        paired_steps: pairs.len() as u64,
        unpaired_steps: unpaired,
    }
}

impl ModelErrorReport {
    /// Header of [`ModelErrorReport::csv_rows`].
    pub const CSV_HEADER: &'static str =
        "phase,steps,modeled_s,measured_s,scaled_modeled_s,error_pct";

    /// One CSV line per phase row (no header).
    pub fn csv_rows(&self) -> Vec<String> {
        self.rows
            .iter()
            .map(|r| {
                format!(
                    "{},{},{:.9},{:.9},{:.9},{:.3}",
                    r.phase.label(),
                    r.steps,
                    r.modeled_s,
                    r.measured_s,
                    r.scaled_modeled_s,
                    r.error_pct
                )
            })
            .collect()
    }

    /// Human-readable table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "model validation: {} paired supersteps, scale {:.3e} s/s, \
             overall error {:.1}%",
            self.paired_steps, self.scale, self.overall_error_pct
        ));
        if self.unpaired_steps > 0 {
            out.push_str(&format!(
                " ({} unpaired steps excluded)",
                self.unpaired_steps
            ));
        }
        out.push('\n');
        out.push_str(&format!(
            "{:<12} {:>6} {:>14} {:>14} {:>14} {:>9}\n",
            "phase", "steps", "modeled_s", "measured_s", "scaled_s", "error%"
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "{:<12} {:>6} {:>14.6} {:>14.6} {:>14.6} {:>8.1}%\n",
                r.phase.label(),
                r.steps,
                r.modeled_s,
                r.measured_s,
                r.scaled_modeled_s,
                r.error_pct
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step(phase: PhaseKind, elapsed_s: f64) -> TraceEvent {
        TraceEvent::Superstep(SuperstepEvent {
            phase,
            superstep: 0,
            epoch: 0,
            start_s: 0.0,
            elapsed_s,
            max_compute_s: 0.0,
            max_comm_s: 0.0,
            total_msgs: 0,
            total_bytes: 0,
            collective: false,
        })
    }

    #[test]
    fn perfect_model_has_zero_error_at_any_scale() {
        let modeled = vec![
            step(PhaseKind::Scatter, 1.0),
            step(PhaseKind::Push, 2.0),
            step(PhaseKind::Scatter, 3.0),
        ];
        // measured = 5x modeled, step for step
        let measured = vec![
            step(PhaseKind::Scatter, 5.0),
            step(PhaseKind::Push, 10.0),
            step(PhaseKind::Scatter, 15.0),
        ];
        let rep = model_error_report(&modeled, &measured);
        assert_eq!(rep.paired_steps, 3);
        assert_eq!(rep.unpaired_steps, 0);
        assert!((rep.scale - 5.0).abs() < 1e-12);
        assert!(rep.overall_error_pct < 1e-9);
        let scatter = rep
            .rows
            .iter()
            .find(|r| r.phase == PhaseKind::Scatter)
            .unwrap();
        assert_eq!(scatter.steps, 2);
        assert!((scatter.scaled_modeled_s - 20.0).abs() < 1e-9);
    }

    #[test]
    fn phase_mismatch_and_tail_are_excluded() {
        let modeled = vec![
            step(PhaseKind::Scatter, 1.0),
            step(PhaseKind::Push, 1.0),
            step(PhaseKind::Gather, 1.0),
        ];
        let measured = vec![
            step(PhaseKind::Scatter, 2.0),
            step(PhaseKind::Gather, 2.0), // phase disagrees with Push
        ];
        let rep = model_error_report(&modeled, &measured);
        assert_eq!(rep.paired_steps, 1);
        assert_eq!(rep.unpaired_steps, 2); // 1 mismatched + 1 tail
    }

    #[test]
    fn csv_rows_match_header_arity() {
        let modeled = vec![step(PhaseKind::FieldSolve, 1.0)];
        let measured = vec![step(PhaseKind::FieldSolve, 3.0)];
        let rep = model_error_report(&modeled, &measured);
        let commas = ModelErrorReport::CSV_HEADER.matches(',').count();
        for row in rep.csv_rows() {
            assert_eq!(row.matches(',').count(), commas, "row {row}");
        }
        assert!(rep.render().contains("field_solve"));
    }
}
