//! Allocation-count regression test for the hot-path kernels.
//!
//! The performance contract (DESIGN.md §9): once a rank's scratch arena
//! is warm, the per-iteration particle kernels — key refresh, bound
//! classification, pack/exchange, incremental radix sort and the
//! cycle-decomposition permutation — perform **zero** heap allocations.
//! Everything lives in buffers owned by [`pic_core::ScratchArena`] and
//! the rank's own arrays, whose capacity is retained across iterations.
//!
//! The boundary is deliberate: the *message layer* (ghost-entry vectors,
//! per-superstep channel plumbing) still allocates per iteration, so the
//! full simulation is checked only for *bounded, non-growing* counts.
//!
//! Debug builds run the radix-vs-comparison oracle, which clones the
//! index buffer per sort; the strict zero assertion therefore applies to
//! release builds only (CI's `perf-smoke` job runs this test with
//! `--release`), while debug builds assert a small fixed bound so gross
//! regressions still fail fast everywhere.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use pic_core::messages::ParticleBatch;
use pic_core::{ParallelPicSim, RankState, SimConfig};
use pic_field::Rect;
use pic_index::{CellIndexer, HilbertIndexer};
use pic_partition::{assign_keys_into, classify_by_bounds_into};

/// Wraps the system allocator and counts every allocation
/// (`alloc`/`alloc_zeroed`/`realloc`); frees are not counted.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn count_allocs(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.load(Ordering::Relaxed);
    f();
    ALLOCS.load(Ordering::Relaxed) - before
}

/// One steady-state kernel cycle: refresh keys, classify against global
/// bounds, pack movers into the arena's shared buffers, "receive" them
/// back, then incrementally sort.  Mirrors the redistribute phase's use
/// of the arena exactly, with the exchange looped back locally.
fn kernel_cycle(
    st: &mut RankState,
    indexer: &dyn CellIndexer,
    dx: f64,
    dy: f64,
    bounds: &[u64],
    stash: &mut Vec<(usize, ParticleBatch)>,
) {
    let mut keys = std::mem::take(&mut st.keys);
    assign_keys_into(&st.particles, indexer, dx, dy, &mut keys);
    st.keys = keys;

    let mut dests = std::mem::take(&mut st.scratch.dests);
    classify_by_bounds_into(&st.keys, bounds, &mut dests);
    st.scratch.dests = dests;
    st.take_outgoing_packed(|dest, batch| stash.push((dest, batch)));

    for (_, batch) in stash.iter() {
        st.append_batch(batch);
    }
    stash.clear(); // drop the views so the arena can reclaim the pack buffers

    st.sort_local();
    st.rebuild_sorter();
}

/// Upper bound for debug builds: the radix oracle clones the index
/// buffer and runs a (heap-allocating) stable comparison sort once per
/// bucket, ~2-4 allocations each across ≤16 buckets per cycle.
const DEBUG_ORACLE_SLACK: u64 = 256;

#[test]
fn steady_state_kernels_do_not_allocate() {
    // ---- Part 1: the kernels themselves are zero-alloc once warm ----
    let cfg = SimConfig::small_test();
    let rect = Rect {
        x0: 0,
        y0: 0,
        w: cfg.nx,
        h: cfg.ny,
    };
    let indexer = HilbertIndexer::new(cfg.nx, cfg.ny);
    let (dx, dy) = (cfg.dx, cfg.dy);
    let mut st = RankState::new(0, rect, &cfg);
    st.all_counts = vec![0, 0];
    let n = 2048usize;
    for i in 0..n {
        // deterministic scatter over the whole mesh, no RNG needed
        let x = ((i * 37) % 997) as f64 / 997.0 * cfg.lx();
        let y = ((i * 61) % 991) as f64 / 991.0 * cfg.ly();
        st.particles.push(x, y, 0.01, -0.02, 0.0);
        st.keys.push(0);
    }
    // bounds splitting the key domain so a healthy fraction of the
    // particles "move" (to rank 1) and loop back every cycle
    let mid = indexer.index(cfg.nx / 2, cfg.ny / 2);
    let bounds = vec![mid, u64::MAX];
    let mut stash: Vec<(usize, ParticleBatch)> = Vec::new();

    // two warm-up cycles grow every buffer to its steady capacity
    for _ in 0..2 {
        kernel_cycle(&mut st, &indexer, dx, dy, &bounds, &mut stash);
    }
    let allocs = count_allocs(|| {
        for _ in 0..3 {
            kernel_cycle(&mut st, &indexer, dx, dy, &bounds, &mut stash);
        }
    });
    assert_eq!(st.len(), n, "loopback exchange must conserve particles");
    assert!(st.keys.windows(2).all(|w| w[0] <= w[1]), "keys sorted");
    if cfg!(debug_assertions) {
        assert!(
            allocs <= DEBUG_ORACLE_SLACK,
            "debug kernel cycles allocated {allocs} times \
             (> oracle slack {DEBUG_ORACLE_SLACK})"
        );
    } else {
        assert_eq!(
            allocs, 0,
            "steady-state kernel cycles must not allocate (got {allocs})"
        );
    }

    // ---- Part 2: the full modeled simulation stays bounded ----
    // The message layer allocates per superstep, so a full iteration is
    // not zero-alloc; the regression gate is that steady-state
    // iterations do not allocate *more* over time (no per-iteration
    // leak/growth).  The modeled machine is deterministic and a periodic
    // policy makes both 5-step windows contain exactly one
    // redistribution, so the comparison is apples-to-apples.
    let mut sim_cfg = SimConfig::small_test();
    sim_cfg.policy = pic_partition::PolicyKind::Periodic(5);
    let mut sim = ParallelPicSim::new(sim_cfg);
    for _ in 0..5 {
        sim.step(); // warm-up: arenas, ghost tables, channel buffers
    }
    let early = count_allocs(|| {
        for _ in 0..5 {
            sim.step();
        }
    });
    let late = count_allocs(|| {
        for _ in 0..5 {
            sim.step();
        }
    });
    assert!(
        late <= early * 3 / 2 + 64,
        "per-iteration allocations grew: early={early} late={late}"
    );
}
