//! Cross-validation: the modeled BSP machine and the real-threads
//! executor must produce **bit-identical** simulation state.
//!
//! The phase programs are written once against `SpmdEngine`, so any
//! divergence here means an executor reorders messages, associates a
//! floating-point reduction differently, or leaks scheduling into
//! results.  The redistribution policy is `Periodic` in these tests:
//! policy *decisions* feed on measured time, which legitimately differs
//! between modeled and wall-clock executors (that is the one sanctioned
//! difference; `DynamicSar` cross-runs may redistribute at different
//! iterations and are exercised separately for plain liveness).

use pic_core::state::RankState;
use pic_core::{GenericPicSim, ParallelPicSim, SimConfig, ThreadedPicSim};
use pic_machine::{MachineConfig, SpmdEngine};
use pic_partition::PolicyKind;

/// Bitwise equality of two f64 slices (NaN-safe, -0.0 ≠ 0.0).
fn bits_eq(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Assert full bitwise equality of two per-rank state vectors.
fn assert_states_identical(modeled: &[RankState], threaded: &[RankState]) {
    assert_eq!(modeled.len(), threaded.len(), "rank count differs");
    for (r, (m, t)) in modeled.iter().zip(threaded).enumerate() {
        assert_eq!(m.len(), t.len(), "rank {r}: particle count differs");
        assert!(
            bits_eq(&m.particles.x, &t.particles.x),
            "rank {r}: x differs"
        );
        assert!(
            bits_eq(&m.particles.y, &t.particles.y),
            "rank {r}: y differs"
        );
        assert!(
            bits_eq(&m.particles.ux, &t.particles.ux),
            "rank {r}: ux differs"
        );
        assert!(
            bits_eq(&m.particles.uy, &t.particles.uy),
            "rank {r}: uy differs"
        );
        assert!(
            bits_eq(&m.particles.uz, &t.particles.uz),
            "rank {r}: uz differs"
        );
        assert_eq!(m.keys, t.keys, "rank {r}: sort keys differ");
        assert_eq!(m.bounds, t.bounds, "rank {r}: bucket bounds differ");
        assert_eq!(m.rect, t.rect, "rank {r}: mesh rect differs");
        assert!(
            bits_eq(m.fields.ex.as_slice(), t.fields.ex.as_slice())
                && bits_eq(m.fields.ey.as_slice(), t.fields.ey.as_slice())
                && bits_eq(m.fields.ez.as_slice(), t.fields.ez.as_slice())
                && bits_eq(m.fields.bx.as_slice(), t.fields.bx.as_slice())
                && bits_eq(m.fields.by.as_slice(), t.fields.by.as_slice())
                && bits_eq(m.fields.bz.as_slice(), t.fields.bz.as_slice()),
            "rank {r}: fields differ"
        );
    }
}

fn cross_cfg(ranks: usize, particles: usize, redistribute_every: usize) -> SimConfig {
    SimConfig {
        machine: MachineConfig::cm5(ranks),
        particles,
        policy: PolicyKind::Periodic(redistribute_every),
        ..SimConfig::small_test()
    }
}

/// Run `iters` steps on executor `E`, returning the final rank states.
fn run_sim<E: SpmdEngine<RankState>>(cfg: SimConfig, iters: usize) -> Vec<RankState> {
    let mut sim: GenericPicSim<E> = GenericPicSim::new(cfg);
    sim.run(iters);
    let counts = sim.particle_counts();
    assert_eq!(counts.iter().sum::<usize>(), sim.config().particles);
    sim.into_machine().into_ranks()
}

/// The acceptance-criteria run: a full simulation at 8 ranks for 50
/// iterations with redistribution enabled (period 10 → 5 redistributions)
/// must be bit-identical between the modeled and threaded executors —
/// particle arrays, sort keys, bucket bounds, rects and fields.
#[test]
fn full_sim_bit_identical_8_ranks_50_iters() {
    let cfg = cross_cfg(8, 1024, 10);
    let modeled = run_sim::<pic_machine::Machine<RankState>>(cfg.clone(), 50);
    let threaded = run_sim::<pic_machine::ThreadedMachine<RankState>>(cfg, 50);
    assert_states_identical(&modeled, &threaded);
}

/// Same property across a spread of rank counts, including non-powers of
/// two (ragged collective shares, uneven block layouts).
#[test]
fn cross_validation_over_rank_counts() {
    for ranks in [1usize, 2, 3, 4, 6] {
        let cfg = cross_cfg(ranks, 512, 5);
        let modeled = run_sim::<pic_machine::Machine<RankState>>(cfg.clone(), 12);
        let threaded = run_sim::<pic_machine::ThreadedMachine<RankState>>(cfg, 12);
        assert_states_identical(&modeled, &threaded);
    }
}

/// The Eulerian movement method migrates particles after every push —
/// the heaviest point-to-point traffic the driver generates.
#[test]
fn cross_validation_eulerian_migration() {
    let mut cfg = cross_cfg(4, 512, 5);
    cfg.movement = pic_core::MovementMethod::Eulerian;
    let modeled = run_sim::<pic_machine::Machine<RankState>>(cfg.clone(), 10);
    let threaded = run_sim::<pic_machine::ThreadedMachine<RankState>>(cfg, 10);
    assert_states_identical(&modeled, &threaded);
}

/// The threaded sim stays live (and conserves particles) under the
/// measurement-driven policy too — results may diverge in *when* they
/// redistribute, never in physics conservation.
#[test]
fn threaded_dynamic_policy_runs_and_conserves() {
    let mut cfg = cross_cfg(4, 512, 1);
    cfg.policy = PolicyKind::DynamicSar;
    let mut sim = ThreadedPicSim::new(cfg);
    let report = sim.run(10);
    assert_eq!(report.iterations.len(), 10);
    assert_eq!(sim.total_particles(), 512);
    let mut modeled = ParallelPicSim::new(sim.config().clone());
    modeled.run(10);
    assert_eq!(modeled.total_particles(), 512);
}
