//! Fault injection and checkpoint/restart at the simulation level.
//!
//! The acceptance scenario: kill rank 2 at iteration 25 of a
//! 50-iteration, 8-rank threaded run, restart from the last periodic
//! checkpoint, and end **bit-identical** to an uninterrupted run.  The
//! redistribution policy is `Periodic` here for the same reason as in
//! `cross_validation.rs`: decision inputs must not depend on measured
//! wall-clock time.

use std::sync::Arc;

use pic_core::state::RankState;
use pic_core::{run_with_recovery, Checkpoint, GenericPicSim, ParallelPicSim, SimConfig};
use pic_machine::{FailureCause, FaultPlan, MachineConfig, SpmdEngine, ThreadedMachine};
use pic_partition::PolicyKind;

fn bits_eq(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

fn assert_states_identical(expected: &[RankState], actual: &[RankState]) {
    assert_eq!(expected.len(), actual.len(), "rank count differs");
    for (r, (m, t)) in expected.iter().zip(actual).enumerate() {
        assert_eq!(m.len(), t.len(), "rank {r}: particle count differs");
        assert!(
            bits_eq(&m.particles.x, &t.particles.x),
            "rank {r}: x differs"
        );
        assert!(
            bits_eq(&m.particles.y, &t.particles.y),
            "rank {r}: y differs"
        );
        assert!(
            bits_eq(&m.particles.ux, &t.particles.ux),
            "rank {r}: ux differs"
        );
        assert!(
            bits_eq(&m.particles.uy, &t.particles.uy),
            "rank {r}: uy differs"
        );
        assert!(
            bits_eq(&m.particles.uz, &t.particles.uz),
            "rank {r}: uz differs"
        );
        assert_eq!(m.keys, t.keys, "rank {r}: sort keys differ");
        assert_eq!(m.bounds, t.bounds, "rank {r}: bucket bounds differ");
        assert!(
            bits_eq(m.fields.ex.as_slice(), t.fields.ex.as_slice())
                && bits_eq(m.fields.ey.as_slice(), t.fields.ey.as_slice())
                && bits_eq(m.fields.ez.as_slice(), t.fields.ez.as_slice())
                && bits_eq(m.fields.bx.as_slice(), t.fields.bx.as_slice())
                && bits_eq(m.fields.by.as_slice(), t.fields.by.as_slice())
                && bits_eq(m.fields.bz.as_slice(), t.fields.bz.as_slice()),
            "rank {r}: fields differ"
        );
    }
}

fn recovery_cfg(ranks: usize, particles: usize, redistribute_every: usize) -> SimConfig {
    SimConfig {
        machine: MachineConfig::cm5(ranks),
        particles,
        policy: PolicyKind::Periodic(redistribute_every),
        ..SimConfig::small_test()
    }
}

/// The acceptance demo: rank 2 is killed at iteration 25 of a
/// 50-iteration 8-rank threaded run; the driver restarts from the last
/// checkpoint (every 10 iterations) and the final state is bit-identical
/// to an uninterrupted run.
#[test]
fn killed_rank_recovers_from_checkpoint_bit_identical() {
    let cfg = recovery_cfg(8, 1024, 10);

    let mut clean = GenericPicSim::<ThreadedMachine<RankState>>::new(cfg.clone());
    clean.run(50);
    let clean_ranks = clean.into_machine().into_ranks();

    let plan = Arc::new(FaultPlan::new(42).kill(2, 25));
    let outcome =
        run_with_recovery::<ThreadedMachine<RankState>>(cfg, 50, 10, Some(Arc::clone(&plan)), 3)
            .expect("recovery must absorb the injected kill");

    assert_eq!(outcome.restarts, 1, "exactly one restart");
    let failure = &outcome.failures[0];
    assert!(failure.is_injected_kill(), "unexpected failure: {failure}");
    assert_eq!(failure.rank, Some(2), "wrong rank blamed: {failure}");
    assert_eq!(failure.epoch, Some(25), "wrong epoch: {failure}");

    assert_eq!(outcome.records.len(), 50);
    for (i, rec) in outcome.records.iter().enumerate() {
        assert_eq!(rec.iter, i + 1, "records must cover 1..=50 exactly once");
    }
    assert_eq!(outcome.sim.total_particles(), 1024);
    let recovered_ranks = outcome.sim.into_machine().into_ranks();
    assert_states_identical(&clean_ranks, &recovered_ranks);
}

/// Delay/reorder/drop-retry noise across the whole run never changes
/// simulation results — on any seed.
#[test]
fn benign_noise_never_changes_simulation_results() {
    let cfg = recovery_cfg(4, 512, 5);
    let mut clean = GenericPicSim::<ThreadedMachine<RankState>>::new(cfg.clone());
    clean.run(12);
    let clean_ranks = clean.into_machine().into_ranks();

    for seed in [1u64, 2, 3] {
        let mut noisy = GenericPicSim::<ThreadedMachine<RankState>>::new(cfg.clone());
        noisy.set_fault_plan(Some(Arc::new(FaultPlan::benign(seed))));
        noisy.run(12);
        let noisy_ranks = noisy.into_machine().into_ranks();
        assert_states_identical(&clean_ranks, &noisy_ranks);
    }
}

/// A kill scheduled for the *initial distribution* (epoch 0) fails
/// `try_new` with full attribution — there is no checkpoint to hide
/// behind.
#[test]
fn kill_during_setup_fails_construction() {
    let cfg = recovery_cfg(4, 512, 10);
    let plan = Arc::new(FaultPlan::new(3).kill(0, 0));
    let err = match GenericPicSim::<ThreadedMachine<RankState>>::try_new_with(cfg, Some(plan)) {
        Ok(_) => panic!("a kill at epoch 0 must fail the initial distribution"),
        Err(err) => err,
    };
    assert!(err.is_injected_kill(), "unexpected error: {err}");
    assert_eq!(err.rank, Some(0));
    assert_eq!(err.epoch, Some(0));
}

/// Checkpoint → encode → decode → resume is bit-identical at arbitrary
/// iteration boundaries, and the resumed simulation *continues*
/// identically (modeled executor: fully deterministic, fast).
#[test]
fn checkpoint_roundtrip_at_arbitrary_boundaries() {
    for (ranks, particles, stop_at) in [
        (1usize, 64usize, 0usize),
        (2, 128, 1),
        (4, 512, 7),
        (4, 512, 10), // exactly on a redistribution boundary
        (3, 256, 13),
    ] {
        let cfg = recovery_cfg(ranks, particles, 5);
        let mut original = ParallelPicSim::new(cfg.clone());
        for _ in 0..stop_at {
            original.step();
        }

        let bytes = original.checkpoint().encode();
        let decoded = Checkpoint::decode(&bytes).expect("decode");
        assert_eq!(decoded.iter, stop_at as u64);
        assert_eq!(decoded.total_particles(), particles);
        let mut resumed = ParallelPicSim::resume_from(cfg, &decoded);

        // the restored state matches the live state bit-for-bit...
        assert_states_identical(original.machine().ranks(), resumed.machine().ranks());

        // ...and both trajectories stay identical for 6 more iterations
        // (crossing the next redistribution)
        for _ in 0..6 {
            original.step();
            resumed.step();
        }
        assert_states_identical(original.machine().ranks(), resumed.machine().ranks());
        assert_eq!(original.iterations_done(), resumed.iterations_done());
    }
}

/// The invariant guards catch state corruption and report it as a typed
/// error instead of letting the run limp on.
#[test]
fn invariant_guards_catch_corruption() {
    // non-finite field: poison an *interior* cell (the ghost ring is
    // legitimately rewritten by the halo exchange every solve)
    let mut sim = ParallelPicSim::new(recovery_cfg(2, 64, 10));
    {
        let ex = &mut sim.ranks_mut()[1].fields.ex;
        let w = ex.width();
        ex.as_mut_slice()[2 * w + 2] = f64::NAN;
    }
    let err = sim.try_step().expect_err("NaN field must trip the guard");
    assert!(
        matches!(err.cause, FailureCause::InvariantViolation(_)),
        "unexpected cause: {err}"
    );
    assert_eq!(err.rank, Some(1));

    // key/particle desynchronization
    let mut sim = ParallelPicSim::new(recovery_cfg(2, 64, 10));
    sim.ranks_mut()[0].keys.pop();
    let err = sim.try_step().expect_err("desync must trip the guard");
    assert!(matches!(err.cause, FailureCause::InvariantViolation(_)));
    assert_eq!(err.rank, Some(0));

    // guards off: the same corruption passes through silently
    let mut cfg = recovery_cfg(2, 64, 10);
    cfg.check_invariants = false;
    let mut sim = ParallelPicSim::new(cfg);
    {
        let ex = &mut sim.ranks_mut()[1].fields.ex;
        let w = ex.width();
        ex.as_mut_slice()[2 * w + 2] = f64::NAN;
    }
    sim.try_step().expect("guards disabled");
}

/// Exhausted restart budget: the driver returns the error instead of
/// looping forever on a repeatedly-rearmed fault.
#[test]
fn restart_budget_is_respected() {
    let cfg = recovery_cfg(4, 512, 5);
    // two kills at different epochs, budget of one restart: the second
    // kill surfaces to the caller
    let plan = Arc::new(FaultPlan::new(9).kill(1, 3).kill(3, 6));
    let err = match run_with_recovery::<ThreadedMachine<RankState>>(cfg, 10, 2, Some(plan), 1) {
        Ok(_) => panic!("the second kill must exhaust the restart budget"),
        Err(err) => err,
    };
    assert!(err.is_injected_kill());
    assert_eq!(err.rank, Some(3));
    assert_eq!(err.epoch, Some(6));
}

/// Recovery also handles a kill *inside a specific phase* — attribution
/// carries the phase and the re-executed iteration completes it.
#[test]
fn phase_scoped_kill_recovers() {
    use pic_machine::PhaseKind;
    let cfg = recovery_cfg(4, 512, 10);
    let plan = Arc::new(FaultPlan::new(5).kill_in_phase(1, 4, PhaseKind::Scatter));
    let outcome = run_with_recovery::<ThreadedMachine<RankState>>(cfg.clone(), 8, 2, Some(plan), 2)
        .expect("recovers");
    assert_eq!(outcome.restarts, 1);
    assert_eq!(outcome.failures[0].phase, Some(PhaseKind::Scatter));
    assert_eq!(outcome.failures[0].rank, Some(1));

    let mut clean = GenericPicSim::<ThreadedMachine<RankState>>::new(cfg);
    clean.run(8);
    assert_states_identical(
        &clean.into_machine().into_ranks(),
        &outcome.sim.into_machine().into_ranks(),
    );
}
