//! End-to-end checks of the metrics subsystem against the simulation:
//! comm-matrix conservation on the real-threads executor, modeled vs
//! threaded matrix agreement, and the SAR audit log matching the
//! redistributions that actually ran.

use pic_core::{GenericPicSim, SimConfig};
use pic_index::IndexScheme;
use pic_machine::{
    Machine, MachineConfig, MemoryRecorder, SharedMetrics, SharedRecorder, SpmdEngine,
    ThreadedMachine, TraceEvent,
};
use pic_particles::ParticleDistribution;
use pic_partition::PolicyKind;

fn cfg_8rank(policy: PolicyKind) -> SimConfig {
    SimConfig {
        nx: 64,
        ny: 32,
        particles: 4096,
        machine: MachineConfig::cm5(8),
        distribution: ParticleDistribution::IrregularCenter,
        scheme: IndexScheme::Hilbert,
        policy,
        seed: 7,
        ..SimConfig::small_test()
    }
}

/// Drive `iters` iterations on the given executor with a recorder and a
/// metrics registry installed from construction; returns (events,
/// metrics).
fn observed_run<E: SpmdEngine<pic_core::RankState>>(
    cfg: SimConfig,
    iters: usize,
) -> (Vec<TraceEvent>, SharedMetrics) {
    let recorder = SharedRecorder::new(MemoryRecorder::new());
    let metrics = SharedMetrics::new(cfg.machine.ranks);
    let mut sim = GenericPicSim::<E>::try_new_observed(
        cfg,
        None,
        Some(Box::new(recorder.clone())),
        Some(metrics.clone()),
    )
    .expect("setup");
    for _ in 0..iters {
        sim.try_step().expect("iteration");
    }
    let events = recorder.with(|r| r.events().to_vec());
    (events, metrics)
}

#[test]
fn threaded_comm_matrix_is_conserved_pairwise() {
    let (_, metrics) = observed_run::<ThreadedMachine<pic_core::RankState>>(
        cfg_8rank(PolicyKind::Periodic(5)),
        12,
    );
    let reg = metrics.snapshot();
    let comm = reg.comm();
    assert!(comm.total_sent_bytes() > 0, "run must communicate");
    // global invariant plus the per-pair statement: bytes rank i sent to
    // rank j (sender-side tally) equal bytes rank j received from rank i
    // (receiver-side tally of the same ordered pair), and messages too
    assert!(comm.is_conserved(), "sent != received somewhere");
    for i in 0..8 {
        for j in 0..8 {
            let (smsgs, sbytes) = comm.sent(i, j);
            let (rmsgs, rbytes) = comm.received(i, j);
            assert_eq!(smsgs, rmsgs, "msgs {i}->{j}");
            assert_eq!(sbytes, rbytes, "bytes {i}->{j}");
        }
    }
}

#[test]
fn modeled_and_threaded_comm_matrices_agree() {
    // Periodic policy: redistribution iterations are measurement-
    // independent, so both executors run the identical phase program and
    // must tally the identical rank-pair traffic.
    let cfg = cfg_8rank(PolicyKind::Periodic(4));
    let (_, modeled) = observed_run::<Machine<pic_core::RankState>>(cfg.clone(), 10);
    let (_, threaded) = observed_run::<ThreadedMachine<pic_core::RankState>>(cfg, 10);
    let m = modeled.snapshot();
    let t = threaded.snapshot();
    assert_eq!(
        m.comm().csv_rows(),
        t.comm().csv_rows(),
        "executors disagree on the communication matrix"
    );
}

#[test]
fn sar_audit_log_matches_actual_redistributions() {
    let (events, metrics) =
        observed_run::<Machine<pic_core::RankState>>(cfg_8rank(PolicyKind::DynamicSar), 30);
    // iterations where the audit log says the policy fired
    let fired: Vec<u64> = events
        .iter()
        .filter_map(TraceEvent::policy_decision)
        .filter(|d| d.fired)
        .map(|d| d.iter)
        .collect();
    // iterations where a policy-triggered redistribution actually ran
    let ran: Vec<u64> = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Redistribution(r)
                if r.trigger == pic_machine::trace::RedistributionTrigger::Policy =>
            {
                Some(r.iter)
            }
            _ => None,
        })
        .collect();
    assert_eq!(
        fired, ran,
        "audit log disagrees with executed redistributions"
    );
    // every iteration produced exactly one decision record
    let decisions = events
        .iter()
        .filter(|e| e.policy_decision().is_some())
        .count();
    assert_eq!(decisions, 30);
    // and the counters agree with the trace
    let reg = metrics.snapshot();
    assert_eq!(reg.counter("pic_policy_decisions_total"), 30);
    assert_eq!(reg.counter("pic_policy_fired_total"), fired.len() as u64);
    assert_eq!(reg.counter("pic_redistributions_total"), ran.len() as u64);
    assert_eq!(reg.counter("pic_iterations_total"), 30);
}

#[test]
fn rank_load_events_and_gauges_track_particles() {
    let cfg = cfg_8rank(PolicyKind::Static);
    let total = cfg.particles as u64;
    let (events, metrics) = observed_run::<Machine<pic_core::RankState>>(cfg, 5);
    let loads: Vec<_> = events.iter().filter_map(TraceEvent::rank_load).collect();
    assert_eq!(loads.len(), 5, "one rank-load event per iteration");
    for load in &loads {
        assert_eq!(load.counts.len(), 8);
        assert_eq!(load.counts.iter().sum::<u64>(), total, "conservation");
    }
    let reg = metrics.snapshot();
    let last = loads.last().unwrap();
    let gauge = reg
        .rank_gauge("pic_rank_particles")
        .expect("per-rank particle gauge registered");
    let expect: Vec<f64> = last.counts.iter().map(|&c| c as f64).collect();
    assert_eq!(gauge, expect.as_slice(), "gauge lags the trace");
    assert!(reg.gauge("pic_imbalance_factor").unwrap() >= 1.0);
    assert!(reg.gauge("pic_curve_unit_fraction").is_some());
    let prom = reg.prometheus_text();
    assert!(prom.contains("pic_rank_particles"));
    assert!(prom.contains("pic_comm_sent_bytes_total"));
}

#[test]
fn chrome_trace_from_sim_run_includes_counter_events() {
    let (events, _) =
        observed_run::<Machine<pic_core::RankState>>(cfg_8rank(PolicyKind::Periodic(3)), 6);
    let json = pic_machine::trace::chrome_trace(&events);
    assert!(json.contains("\"ph\":\"C\""), "no counter events in export");
    assert!(json.contains("\"name\":\"particles\""));
    assert!(json.contains("\"name\":\"exchange bytes\""));
}
