//! Driver-level observability: a traced simulation run emits the full
//! event story — setup redistribution, per-phase spans, per-iteration
//! summaries, policy/forced redistributions — and a traced recovery run
//! adds fault and checkpoint events, all into one recorder stream that
//! survives restarts.

use std::sync::Arc;

use pic_core::state::RankState;
use pic_core::{run_with_recovery_traced, ParallelPicSim, SimConfig};
use pic_machine::{
    CheckpointAction, FaultPlan, MachineConfig, MemoryRecorder, PhaseKind, SharedRecorder,
    TraceEvent,
};
use pic_partition::PolicyKind;

fn traced_cfg(ranks: usize, policy: PolicyKind) -> SimConfig {
    SimConfig {
        machine: MachineConfig::cm5(ranks),
        policy,
        ..SimConfig::small_test()
    }
}

#[test]
fn traced_run_emits_full_event_story() {
    let shared = SharedRecorder::new(MemoryRecorder::new());
    let mut sim = ParallelPicSim::try_new_traced(
        traced_cfg(4, PolicyKind::Periodic(2)),
        None,
        Some(Box::new(shared.clone())),
    )
    .expect("fault-free construction");
    for _ in 0..5 {
        sim.try_step().expect("fault-free iteration");
    }
    let forced_cost = sim.try_redistribute_now().expect("fault-free forced");
    let events = shared.with(|rec| rec.take());

    // one iteration event per step, numbered 1..=5, with the paper's
    // split into compute and comm components
    let iters: Vec<_> = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Iteration(i) => Some(i),
            _ => None,
        })
        .collect();
    assert_eq!(iters.len(), 5);
    for (k, it) in iters.iter().enumerate() {
        assert_eq!(it.iter, k as u64 + 1);
        assert!(it.time_s > 0.0);
        assert!((it.compute_s + it.comm_s - it.time_s).abs() <= 1e-9 * it.time_s.max(1.0));
        assert!(it.max_particles >= it.min_particles);
    }

    // the setup redistribution, the periodic (policy) ones, and the
    // forced one are all tagged with their trigger
    let redists: Vec<_> = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Redistribution(r) => Some(r),
            _ => None,
        })
        .collect();
    assert_eq!(redists[0].iter, 0);
    assert_eq!(redists[0].trigger.label(), "setup");
    let policy_count = redists
        .iter()
        .filter(|r| r.trigger.label() == "policy")
        .count();
    assert_eq!(
        policy_count, 2,
        "Periodic(2) fires after iterations 2 and 4"
    );
    let forced = redists.last().expect("at least the setup redistribution");
    assert_eq!(forced.trigger.label(), "forced");
    assert_eq!(forced.iter, 5);
    assert!((forced.cost_s - forced_cost).abs() < 1e-12);

    // every PIC phase shows up as spans (setup work is charged under
    // Redistribute: the initial distribution *is* a redistribution)
    for phase in [
        PhaseKind::Scatter,
        PhaseKind::FieldSolve,
        PhaseKind::Gather,
        PhaseKind::Push,
        PhaseKind::Redistribute,
    ] {
        assert!(
            events.iter().any(|e| matches!(
                e,
                TraceEvent::Span(s) if s.phase == phase
            )),
            "no span recorded for phase {}",
            phase.label()
        );
    }

    // no fault or checkpoint events in a clean un-protected run
    assert!(!events
        .iter()
        .any(|e| matches!(e, TraceEvent::Fault(_) | TraceEvent::Checkpoint(_))));
}

#[test]
fn traced_recovery_emits_fault_and_checkpoint_events() {
    let shared = SharedRecorder::new(MemoryRecorder::new());
    let plan = Arc::new(FaultPlan::new(7).kill(1, 4));
    let outcome = run_with_recovery_traced::<pic_machine::Machine<RankState>>(
        traced_cfg(4, PolicyKind::Periodic(3)),
        8,
        2,
        Some(plan),
        2,
        Some(Box::new(shared.clone())),
    )
    .expect("recovery must absorb the injected kill");
    assert_eq!(outcome.restarts, 1);

    let events = shared.with(|rec| rec.take());
    let faults: Vec<_> = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Fault(f) => Some(f),
            _ => None,
        })
        .collect();
    assert_eq!(faults.len(), 1, "one injected kill, one fault event");
    assert_eq!(faults[0].rank, Some(1));
    assert_eq!(faults[0].epoch, Some(4));
    assert!(!faults[0].cause.is_empty());

    let saved: Vec<_> = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Checkpoint(c) if c.action == CheckpointAction::Saved => Some(c),
            _ => None,
        })
        .collect();
    // post-setup snapshot at iter 0 plus every 2nd completed iteration
    assert_eq!(saved.first().map(|c| c.iter), Some(0));
    assert!(saved.len() >= 5);
    assert!(saved.iter().all(|c| c.bytes > 0));

    let restored: Vec<_> = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Checkpoint(c) if c.action == CheckpointAction::Restored => Some(c),
            _ => None,
        })
        .collect();
    assert_eq!(restored.len(), 1, "one restart, one restore event");
    // the kill fires in iteration 4 (fault epochs are 1-based iteration
    // numbers); the restore rewinds to the iteration-2 snapshot
    assert_eq!(restored[0].iter, 2);

    // the stream keeps flowing after the restart: the re-executed
    // iteration 3 is recorded twice in event order, and the killed
    // iteration 4 succeeds on re-execution (injected kills are one-shot)
    let iter_ids: Vec<u64> = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Iteration(i) => Some(i.iter),
            _ => None,
        })
        .collect();
    assert_eq!(iter_ids.iter().filter(|&&i| i == 3).count(), 2);
    assert_eq!(iter_ids.iter().filter(|&&i| i == 4).count(), 1);
    assert_eq!(iter_ids.last(), Some(&8));
}
