//! Cross-validation: the parallel machine must compute the same physics
//! as the sequential reference code, and produce identical results across
//! host execution modes, rank counts, indexing schemes and dedup tables.

use pic_core::{DedupKind, ParallelPicSim, SequentialPicSim, SimConfig};
use pic_index::IndexScheme;
use pic_machine::MachineConfig;
use pic_partition::PolicyKind;

fn sorted_positions(xs: &[f64], ys: &[f64]) -> Vec<(i64, i64)> {
    // quantize to 1e-9 cells so float-summation-order noise is ignored
    let mut v: Vec<(i64, i64)> = xs
        .iter()
        .zip(ys)
        .map(|(&x, &y)| ((x * 1e9).round() as i64, (y * 1e9).round() as i64))
        .collect();
    v.sort_unstable();
    v
}

fn parallel_positions(sim: &ParallelPicSim) -> Vec<(i64, i64)> {
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for st in sim.machine().ranks() {
        xs.extend_from_slice(&st.particles.x);
        ys.extend_from_slice(&st.particles.y);
    }
    sorted_positions(&xs, &ys)
}

#[test]
fn parallel_matches_sequential_physics() {
    let cfg = SimConfig::small_test();
    let mut seq = SequentialPicSim::new(cfg.clone());
    let mut par = ParallelPicSim::new(cfg);
    for _ in 0..5 {
        seq.step();
    }
    par.run(5);

    let seq_pos = sorted_positions(&seq.particles().x, &seq.particles().y);
    let par_pos = parallel_positions(&par);
    assert_eq!(seq_pos.len(), par_pos.len());
    let mismatches = seq_pos
        .iter()
        .zip(&par_pos)
        .filter(|(a, b)| {
            let dx = (a.0 - b.0).abs();
            let dy = (a.1 - b.1).abs();
            dx > 1000 || dy > 1000 // > 1e-6 cells apart
        })
        .count();
    assert_eq!(mismatches, 0, "{mismatches} particles diverged");

    let es = seq.energy();
    let ep = par.energy();
    assert!(
        (es.kinetic - ep.kinetic).abs() < 1e-6 * es.kinetic.max(1.0),
        "kinetic {} vs {}",
        es.kinetic,
        ep.kinetic
    );
    assert!(
        (es.field - ep.field).abs() < 1e-6 * es.field.max(1e-12),
        "field {} vs {}",
        es.field,
        ep.field
    );
}

#[test]
fn rank_count_does_not_change_physics() {
    let energy_with = |ranks: usize| {
        let mut cfg = SimConfig::small_test();
        cfg.machine = MachineConfig::cm5(ranks);
        let mut sim = ParallelPicSim::new(cfg);
        sim.run(4);
        (sim.energy(), parallel_positions(&sim))
    };
    let (e1, p1) = energy_with(1);
    let (e4, p4) = energy_with(4);
    let (e8, p8) = energy_with(8);
    assert!((e1.kinetic - e4.kinetic).abs() < 1e-6 * e1.kinetic);
    assert!((e1.kinetic - e8.kinetic).abs() < 1e-6 * e1.kinetic);
    assert_eq!(p1.len(), p4.len());
    assert_eq!(p1, p4);
    assert_eq!(p1, p8);
}

#[test]
fn indexing_scheme_does_not_change_physics() {
    let run = |scheme| {
        let mut cfg = SimConfig::small_test();
        cfg.scheme = scheme;
        cfg.policy = PolicyKind::Periodic(2);
        let mut sim = ParallelPicSim::new(cfg);
        sim.run(6);
        parallel_positions(&sim)
    };
    let hilbert = run(IndexScheme::Hilbert);
    let snake = run(IndexScheme::Snake);
    assert_eq!(hilbert, snake);
}

#[test]
fn dedup_table_does_not_change_physics() {
    let run = |dedup| {
        let mut cfg = SimConfig::small_test();
        cfg.dedup = dedup;
        let mut sim = ParallelPicSim::new(cfg);
        sim.run(4);
        (parallel_positions(&sim), sim.energy())
    };
    let (ph, eh) = run(DedupKind::Hash);
    let (pd, ed) = run(DedupKind::Direct);
    assert_eq!(ph, pd);
    assert!((eh.kinetic - ed.kinetic).abs() < 1e-9 * eh.kinetic.max(1.0));
}

#[test]
fn redistribution_preserves_physics_and_counts() {
    let mut with_redist = SimConfig::small_test();
    with_redist.policy = PolicyKind::Periodic(1); // every iteration
    let mut without = SimConfig::small_test();
    without.policy = PolicyKind::Static;

    let mut a = ParallelPicSim::new(with_redist);
    let mut b = ParallelPicSim::new(without);
    a.run(5);
    b.run(5);
    assert_eq!(a.total_particles(), 512);
    assert_eq!(b.total_particles(), 512);
    assert_eq!(parallel_positions(&a), parallel_positions(&b));
}

#[test]
fn eulerian_movement_matches_lagrangian_physics() {
    let mut eul = SimConfig::small_test();
    eul.movement = pic_core::MovementMethod::Eulerian;
    let lag = SimConfig::small_test();

    let mut a = ParallelPicSim::new(eul);
    let mut b = ParallelPicSim::new(lag);
    a.run(5);
    b.run(5);
    assert_eq!(a.total_particles(), b.total_particles());
    assert_eq!(parallel_positions(&a), parallel_positions(&b));
}

#[test]
fn lagrangian_counts_stay_fixed_between_redistributions() {
    let mut cfg = SimConfig::small_test();
    cfg.policy = PolicyKind::Static;
    let mut sim = ParallelPicSim::new(cfg);
    let counts0 = sim.particle_counts();
    sim.run(8);
    assert_eq!(
        sim.particle_counts(),
        counts0,
        "particles migrated under Lagrangian"
    );
    // and the initial distribution balanced them
    let max = counts0.iter().max().unwrap();
    let min = counts0.iter().min().unwrap();
    assert!(
        max - min <= 1,
        "unbalanced initial distribution: {counts0:?}"
    );
}

#[test]
fn eulerian_counts_drift_with_particle_motion() {
    // with an irregular distribution, Eulerian ownership follows the
    // particles; counts become unbalanced exactly as Table 1 predicts
    let mut cfg = SimConfig::small_test();
    cfg.movement = pic_core::MovementMethod::Eulerian;
    let mut sim = ParallelPicSim::new(cfg);
    sim.run(3);
    let counts = sim.particle_counts();
    let max = counts.iter().max().unwrap();
    let min = counts.iter().min().unwrap();
    assert!(max - min > 1, "expected Eulerian imbalance, got {counts:?}");
}
