//! Microscopic phase tests: hand-placed particles on tiny machines, with
//! the exact ghost messages, deposits and interpolations checked against
//! analytic values.

use pic_core::{ParallelPicSim, SimConfig};
use pic_machine::MachineConfig;
use pic_particles::ParticleDistribution;
use pic_partition::PolicyKind;

/// A 2-rank, 8x4 mesh configuration with few particles: rank blocks are
/// the left and right 4x4 halves.
fn two_rank_cfg() -> SimConfig {
    SimConfig {
        nx: 8,
        ny: 4,
        particles: 4,
        distribution: ParticleDistribution::Uniform,
        machine: MachineConfig::cm5(2),
        policy: PolicyKind::Static,
        thermal_u: 0.0,
        particle_charge: 1.0,
        seed: 7,
        ..SimConfig::paper_default()
    }
}

#[test]
fn interior_particle_generates_no_scatter_traffic() {
    // all particles rest in block interiors -> no ghost vertices at all
    let mut sim = ParallelPicSim::new(two_rank_cfg());
    // place particles well inside blocks (cells (1,1) and (5,1)), at rest
    for st in sim.ranks_mut() {
        let rect = st.rect;
        st.particles
            .x
            .iter_mut()
            .for_each(|x| *x = rect.x0 as f64 + 1.5);
        st.particles.y.iter_mut().for_each(|y| *y = 1.5);
        st.particles.ux.iter_mut().for_each(|u| *u = 0.0);
        st.particles.uy.iter_mut().for_each(|u| *u = 0.0);
        st.particles.uz.iter_mut().for_each(|u| *u = 0.0);
    }
    let rec = sim.step();
    assert_eq!(rec.scatter_max_msgs_sent, 0, "unexpected ghost messages");
    assert_eq!(rec.scatter_max_bytes_sent, 0);
}

#[test]
fn boundary_particle_scatters_across_the_block_edge() {
    let mut sim = ParallelPicSim::new(two_rank_cfg());
    // one moving particle in the cell just left of the rank boundary
    // (cell (3,1) has vertices at x=3 and x=4; x=4 belongs to rank 1)
    for (r, st) in sim.ranks_mut().iter_mut().enumerate() {
        st.particles.x.clear();
        st.particles.y.clear();
        st.particles.ux.clear();
        st.particles.uy.clear();
        st.particles.uz.clear();
        st.keys.clear();
        if r == 0 {
            st.particles.push(3.5, 1.5, 0.0, 0.0, 1.0);
            st.keys.push(0);
        }
    }
    let rec = sim.step();
    // rank 0 must send exactly one coalesced message (to rank 1) carrying
    // the two vertices at x=4 (y=1 and y=2)
    assert_eq!(rec.scatter_max_msgs_sent, 1);
    assert_eq!(
        rec.scatter_max_bytes_sent,
        2 * pic_core::costs::GHOST_CURRENT_BYTES as u64,
        "expected exactly two ghost vertices on the wire"
    );
}

#[test]
fn scatter_deposit_matches_cic_weights_globally() {
    // total deposited Jz must equal sum over particles of q * vz
    let cfg = SimConfig {
        particles: 64,
        thermal_u: 0.3,
        ..two_rank_cfg()
    };
    let mut sim = ParallelPicSim::new(cfg);
    // expectation from the *pre-step* velocities: scatter runs before push
    let mut expect = 0.0;
    for st in sim.machine().ranks() {
        for i in 0..st.particles.len() {
            let u = [st.particles.ux[i], st.particles.uy[i], st.particles.uz[i]];
            let gamma = pic_particles::push::gamma_of(u);
            expect += st.particles.charge * u[2] / gamma;
        }
    }
    sim.step();
    let mut total_jz = 0.0;
    for st in sim.machine().ranks() {
        total_jz += st.currents.jz.as_slice().iter().sum::<f64>();
    }
    assert!(
        (total_jz - expect).abs() < 1e-9 * expect.abs().max(1.0),
        "deposited {total_jz} vs expected {expect}"
    );
}

#[test]
fn gather_reproduces_uniform_fields_exactly() {
    // set Ez = 5 everywhere; every particle must gather exactly 5
    // particles are loaded at rest (thermal_u = 0) so J = 0 and a
    // spatially uniform Ez is a stationary solution: one full step leaves
    // the field at 5 and the gather must see exactly 5 at every particle.
    let mut sim = ParallelPicSim::new(two_rank_cfg());
    for st in sim.ranks_mut() {
        st.fields.ez.fill(5.0);
    }
    sim.step();
    for st in sim.machine().ranks() {
        for e in &st.e_at {
            assert!((e[2] - 5.0).abs() < 1e-12, "gathered {e:?}");
        }
    }
}

#[test]
fn field_solve_matches_sequential_reference_per_step() {
    // after one iteration with identical inputs, each rank's interior
    // fields must equal the sequential solver's on the same cells
    let cfg = SimConfig {
        particles: 32,
        thermal_u: 0.4,
        ..two_rank_cfg()
    };
    let mut par = ParallelPicSim::new(cfg.clone());
    let mut seq = pic_core::SequentialPicSim::new(cfg);
    par.step();
    seq.step();
    for st in par.machine().ranks() {
        for ly in 0..st.rect.h {
            for lx in 0..st.rect.w {
                let (gx, gy) = (st.rect.x0 + lx, st.rect.y0 + ly);
                let pv = st.fields.ez[(lx + 1, ly + 1)];
                let sv = seq.fields().ez[(gx, gy)];
                assert!(
                    (pv - sv).abs() < 1e-9,
                    "Ez mismatch at ({gx},{gy}): {pv} vs {sv}"
                );
            }
        }
    }
}
