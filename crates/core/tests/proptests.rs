//! Property tests of the full simulation over random small
//! configurations: conservation laws and determinism must hold for any
//! valid setup, not just the paper's grids.

use pic_core::{DedupKind, MovementMethod, ParallelPicSim, SimConfig};
use pic_index::IndexScheme;
use pic_machine::MachineConfig;
use pic_particles::ParticleDistribution;
use pic_partition::PolicyKind;
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = SimConfig> {
    (
        8usize..24,   // nx
        8usize..24,   // ny
        64usize..512, // particles
        1usize..9,    // ranks
        prop::sample::select(vec![
            ParticleDistribution::Uniform,
            ParticleDistribution::IrregularCenter,
            ParticleDistribution::Ring,
        ]),
        prop::sample::select(vec![
            IndexScheme::Hilbert,
            IndexScheme::Snake,
            IndexScheme::Morton,
        ]),
        prop::sample::select(vec![
            PolicyKind::Static,
            PolicyKind::Periodic(2),
            PolicyKind::DynamicSar,
        ]),
        prop::sample::select(vec![DedupKind::Hash, DedupKind::Direct]),
        any::<u64>(), // seed
    )
        .prop_map(
            |(nx, ny, particles, p, dist, scheme, policy, dedup, seed)| SimConfig {
                nx,
                ny,
                particles,
                distribution: dist,
                scheme,
                policy,
                dedup,
                machine: MachineConfig::cm5(p),
                seed,
                ..SimConfig::paper_default()
            },
        )
        .prop_filter("ranks must tile mesh", |cfg| {
            let (a, b) = pic_field::factor_near_square(cfg.machine.ranks);
            let (pr, pc) = if cfg.nx >= cfg.ny { (a, b) } else { (b, a) };
            pr <= cfg.nx && pc <= cfg.ny && cfg.particles >= cfg.machine.ranks
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Particles are conserved, stay in the domain, and the modeled
    /// clock advances monotonically, for arbitrary configurations.
    #[test]
    fn simulation_invariants(cfg in arb_config()) {
        let n = cfg.particles;
        let (lx, ly) = (cfg.lx(), cfg.ly());
        let mut sim = ParallelPicSim::new(cfg);
        let mut last_total = 0.0;
        for _ in 0..4 {
            let rec = sim.step();
            prop_assert!(rec.time_s > 0.0);
            prop_assert!(rec.comm_s >= -1e-12);
            prop_assert_eq!(sim.total_particles(), n);
            let now = sim.machine().elapsed_s();
            prop_assert!(now > last_total);
            last_total = now;
        }
        for st in sim.machine().ranks() {
            for (&x, &y) in st.particles.x.iter().zip(&st.particles.y) {
                prop_assert!((0.0..lx).contains(&x));
                prop_assert!((0.0..ly).contains(&y));
            }
        }
    }

    /// Same config -> bit-identical report; different seed -> different
    /// trajectories (for warm plasmas).
    #[test]
    fn determinism(cfg in arb_config()) {
        let run = |cfg: SimConfig| {
            let mut sim = ParallelPicSim::new(cfg);
            let r = sim.run(3);
            (r.total_s.to_bits(), sim.energy().kinetic.to_bits())
        };
        let a = run(cfg.clone());
        let b = run(cfg.clone());
        prop_assert_eq!(a, b);
    }

    /// Redistribution leaves every rank's keys sorted and globally
    /// ordered across ranks.
    #[test]
    fn redistribution_global_order(cfg in arb_config()) {
        let mut sim = ParallelPicSim::new(cfg);
        sim.run(2);
        sim.redistribute_now();
        let mut prev = 0u64;
        let mut first = true;
        for st in sim.machine().ranks() {
            for &k in &st.keys {
                prop_assert!(first || k >= prev, "global key order broken");
                prev = k;
                first = false;
            }
        }
        // counts balanced
        let counts = sim.particle_counts();
        let min = counts.iter().min().unwrap();
        let max = counts.iter().max().unwrap();
        prop_assert!(max - min <= 1, "unbalanced after redistribution: {:?}", counts);
    }

    /// Eulerian migration places every particle on the rank owning its
    /// cell.
    #[test]
    fn eulerian_ownership(cfg in arb_config()) {
        let mut cfg = cfg;
        cfg.movement = MovementMethod::Eulerian;
        let mut sim = ParallelPicSim::new(cfg.clone());
        sim.run(3);
        for (r, st) in sim.machine().ranks().iter().enumerate() {
            for (&x, &y) in st.particles.x.iter().zip(&st.particles.y) {
                let (cx, cy) = pic_partition::cell_of(x, y, cfg.dx, cfg.dy, cfg.nx, cfg.ny);
                prop_assert_eq!(sim.layout().owner_of(cx, cy), r);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Checkpoint → encode → decode → resume reproduces the live rank
    /// state bit-for-bit at *any* iteration boundary of *any* valid
    /// configuration, and the resumed trajectory stays identical when
    /// both simulations continue (the modeled executor is fully
    /// deterministic, so any divergence is a checkpoint bug).
    #[test]
    fn checkpoint_roundtrip_at_any_boundary(
        cfg in arb_config(),
        stop_at in 0usize..8,
    ) {
        let mut original = ParallelPicSim::new(cfg.clone());
        for _ in 0..stop_at {
            original.step();
        }

        let bytes = original.checkpoint().encode();
        let ck = pic_core::Checkpoint::decode(&bytes).expect("decode");
        prop_assert_eq!(ck.iter, stop_at as u64);
        let mut resumed = ParallelPicSim::resume_from(cfg, &ck);

        for _ in 0..3 {
            original.step();
            resumed.step();
        }

        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        for (m, t) in original
            .machine()
            .ranks()
            .iter()
            .zip(resumed.machine().ranks())
        {
            prop_assert_eq!(&m.keys, &t.keys);
            prop_assert_eq!(&m.bounds, &t.bounds);
            prop_assert_eq!(bits(&m.particles.x), bits(&t.particles.x));
            prop_assert_eq!(bits(&m.particles.y), bits(&t.particles.y));
            prop_assert_eq!(bits(&m.particles.ux), bits(&t.particles.ux));
            prop_assert_eq!(bits(&m.particles.uy), bits(&t.particles.uy));
            prop_assert_eq!(bits(&m.particles.uz), bits(&t.particles.uz));
            prop_assert_eq!(bits(m.fields.ex.as_slice()), bits(t.fields.ex.as_slice()));
            prop_assert_eq!(bits(m.fields.bz.as_slice()), bits(t.fields.bz.as_slice()));
        }
    }
}
