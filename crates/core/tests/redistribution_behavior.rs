//! Behavioural tests of the dynamic alignment machinery: does
//! redistribution actually restore alignment and cut communication, and
//! do the policies behave as the paper describes?

use pic_core::{ParallelPicSim, SimConfig};
use pic_index::IndexScheme;
use pic_machine::MachineConfig;
use pic_particles::ParticleDistribution;
use pic_partition::PolicyKind;

fn drift_config() -> SimConfig {
    // hot irregular plasma on 8 ranks: particle subdomains smear quickly
    SimConfig {
        nx: 32,
        ny: 32,
        particles: 4096,
        distribution: ParticleDistribution::IrregularCenter,
        machine: MachineConfig::cm5(8),
        thermal_u: 0.8,
        ..SimConfig::paper_default()
    }
}

#[test]
fn scatter_traffic_grows_without_redistribution() {
    let mut cfg = drift_config();
    cfg.policy = PolicyKind::Static;
    let mut sim = ParallelPicSim::new(cfg);
    let early: u64 = (0..3).map(|_| sim.step().scatter_max_bytes_sent).sum();
    for _ in 0..34 {
        sim.step();
    }
    let late: u64 = (0..3).map(|_| sim.step().scatter_max_bytes_sent).sum();
    assert!(
        late > early,
        "scatter traffic did not grow: early {early}, late {late}"
    );
}

#[test]
fn redistribution_cuts_scatter_traffic() {
    let mut cfg = drift_config();
    cfg.policy = PolicyKind::Static;
    let mut sim = ParallelPicSim::new(cfg);
    for _ in 0..40 {
        sim.step();
    }
    let before = sim.step().scatter_max_bytes_sent;
    sim.redistribute_now();
    let after = sim.step().scatter_max_bytes_sent;
    assert!(
        after < before,
        "redistribution did not cut traffic: {before} -> {after}"
    );
}

#[test]
fn redistribution_restores_alignment() {
    let mut cfg = drift_config();
    cfg.policy = PolicyKind::Static;
    let mut sim = ParallelPicSim::new(cfg);
    for _ in 0..40 {
        sim.step();
    }
    let mean_overlap = |sim: &ParallelPicSim| {
        let reports = sim.alignment();
        reports.iter().map(|r| r.overlap_fraction).sum::<f64>() / reports.len() as f64
    };
    let drifted = mean_overlap(&sim);
    sim.redistribute_now();
    let realigned = mean_overlap(&sim);
    assert!(
        realigned > drifted,
        "alignment not restored: {drifted} -> {realigned}"
    );
}

#[test]
fn periodic_policy_beats_static_on_total_time() {
    let run = |policy| {
        let mut cfg = drift_config();
        cfg.policy = policy;
        let mut sim = ParallelPicSim::new(cfg);
        sim.run(60).total_s
    };
    let static_t = run(PolicyKind::Static);
    let periodic_t = run(PolicyKind::Periodic(10));
    assert!(
        periodic_t < static_t,
        "periodic {periodic_t} not better than static {static_t}"
    );
}

#[test]
fn dynamic_policy_is_competitive_with_best_periodic() {
    let run = |policy| {
        let mut cfg = drift_config();
        cfg.policy = policy;
        let mut sim = ParallelPicSim::new(cfg);
        sim.run(60).total_s
    };
    let dynamic_t = run(PolicyKind::DynamicSar);
    let best_periodic = [5usize, 10, 20, 40]
        .into_iter()
        .map(|k| run(PolicyKind::Periodic(k)))
        .fold(f64::INFINITY, f64::min);
    // the paper claims "close to the periodic redistribution with the
    // best period"; allow 25% slack
    assert!(
        dynamic_t < best_periodic * 1.25,
        "dynamic {dynamic_t} vs best periodic {best_periodic}"
    );
}

#[test]
fn dynamic_policy_actually_fires() {
    let mut cfg = drift_config();
    cfg.policy = PolicyKind::DynamicSar;
    let mut sim = ParallelPicSim::new(cfg);
    let report = sim.run(60);
    assert!(
        report.redistributions > 0,
        "dynamic policy never redistributed"
    );
    assert!(
        report.redistributions < 60,
        "dynamic policy fired every iteration"
    );
}

#[test]
fn hilbert_produces_less_overhead_than_snake() {
    let run = |scheme| {
        let mut cfg = drift_config();
        cfg.scheme = scheme;
        cfg.policy = PolicyKind::Periodic(10);
        let mut sim = ParallelPicSim::new(cfg);
        let r = sim.run(40);
        r.overhead_s
    };
    let hilbert = run(IndexScheme::Hilbert);
    let snake = run(IndexScheme::Snake);
    assert!(
        hilbert < snake,
        "hilbert overhead {hilbert} not below snake {snake}"
    );
}

#[test]
fn incremental_redistribution_is_cheaper_than_initial_distribution() {
    // paper Figure 11: redistribution via incremental sorting beats
    // running the full distribution algorithm each time.  The initial
    // distribution pays the sample sort and moves most particles; an
    // incremental redistribution a few iterations later touches only the
    // particles that changed buckets.
    let mut cfg = drift_config();
    cfg.policy = PolicyKind::Static;
    let mut sim = ParallelPicSim::new(cfg);
    let initial_cost = sim.run(0).setup_s;
    for _ in 0..5 {
        sim.step();
    }
    let incremental_cost = sim.redistribute_now();
    assert!(
        incremental_cost < initial_cost,
        "incremental {incremental_cost} not below initial {initial_cost}"
    );
}

#[test]
fn redistribution_cost_grows_with_displacement() {
    // the longer we wait, the more particles cross rank bounds, the more
    // the (incremental) redistribution costs
    let cost_after = |steps: usize| {
        let mut cfg = drift_config();
        cfg.policy = PolicyKind::Static;
        let mut sim = ParallelPicSim::new(cfg);
        for _ in 0..steps {
            sim.step();
        }
        sim.redistribute_now()
    };
    let soon = cost_after(2);
    let late = cost_after(40);
    assert!(
        late > soon,
        "cost did not grow with displacement: {soon} -> {late}"
    );
}

#[test]
fn report_totals_are_consistent() {
    let mut sim = ParallelPicSim::new(SimConfig::small_test());
    let report = sim.run(10);
    assert_eq!(report.iterations.len(), 10);
    assert!(report.total_s > 0.0);
    assert!(report.compute_s > 0.0);
    assert!(report.overhead_s >= 0.0);
    // phase breakdown covers the whole run
    let b = report.breakdown;
    let phase_sum = b.scatter_s + b.field_solve_s + b.gather_s + b.push_s + b.redistribute_s;
    assert!(
        (phase_sum - report.total_s).abs() < 1e-9 * report.total_s.max(1.0),
        "breakdown {phase_sum} vs total {}",
        report.total_s
    );
    // iteration times are monotone contributions
    for rec in &report.iterations {
        assert!(rec.time_s > 0.0);
        assert!(rec.compute_s > 0.0);
        assert!(rec.comm_s >= 0.0);
    }
}
