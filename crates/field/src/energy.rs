//! Field energy diagnostics.

use crate::maxwell::FieldSet;

/// Total electromagnetic field energy `sum (E^2 + B^2) / 2 * dx * dy` in
/// normalized units.  Used by conservation tests and the physics examples.
pub fn field_energy(f: &FieldSet, dx: f64, dy: f64) -> f64 {
    let cell = dx * dy;
    let mut sum = 0.0;
    for i in 0..f.ex.len() {
        let e2 =
            f.ex.as_slice()[i].powi(2) + f.ey.as_slice()[i].powi(2) + f.ez.as_slice()[i].powi(2);
        let b2 =
            f.bx.as_slice()[i].powi(2) + f.by.as_slice()[i].powi(2) + f.bz.as_slice()[i].powi(2);
        sum += 0.5 * (e2 + b2) * cell;
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_fields_have_zero_energy() {
        let f = FieldSet::zeros(4, 4);
        assert_eq!(field_energy(&f, 1.0, 1.0), 0.0);
    }

    #[test]
    fn uniform_field_energy_is_analytic() {
        let mut f = FieldSet::zeros(4, 4);
        f.ez.fill(2.0);
        // 16 cells * 0.5 * 4 = 32
        assert!((field_energy(&f, 1.0, 1.0) - 32.0).abs() < 1e-12);
        // cell size scales linearly
        assert!((field_energy(&f, 0.5, 0.5) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn energy_sums_all_components() {
        let mut f = FieldSet::zeros(1, 1);
        f.ex.fill(1.0);
        f.ey.fill(1.0);
        f.ez.fill(1.0);
        f.bx.fill(1.0);
        f.by.fill(1.0);
        f.bz.fill(1.0);
        assert!((field_energy(&f, 1.0, 1.0) - 3.0).abs() < 1e-12);
    }
}
