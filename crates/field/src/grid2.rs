//! Dense 2-D arrays with row-major storage and periodic helpers.

use serde::{Deserialize, Serialize};
use std::ops::{Index, IndexMut};

/// A dense `width x height` array stored row-major.
///
/// Indexing is `(x, y)` with `x` the fast dimension, matching the mesh
/// convention used throughout the reproduction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Grid2<T> {
    width: usize,
    height: usize,
    data: Vec<T>,
}

impl<T: Clone + Default> Grid2<T> {
    /// A grid filled with `T::default()`.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn zeros(width: usize, height: usize) -> Self {
        Self::filled(width, height, T::default())
    }
}

impl<T: Clone> Grid2<T> {
    /// A grid filled with copies of `value`.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn filled(width: usize, height: usize, value: T) -> Self {
        assert!(width > 0 && height > 0, "grid dimensions must be nonzero");
        Self {
            width,
            height,
            data: vec![value; width * height],
        }
    }

    /// Overwrite every element with `value`.
    pub fn fill(&mut self, value: T) {
        self.data.fill(value);
    }
}

impl<T> Grid2<T> {
    /// Grid width (x extent).
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Grid height (y extent).
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the grid is empty (never, by construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Row-major flat offset of `(x, y)`.
    #[inline]
    pub fn offset(&self, x: usize, y: usize) -> usize {
        debug_assert!(x < self.width && y < self.height, "({x},{y}) out of bounds");
        y * self.width + x
    }

    /// Element at periodic coordinates: `x`/`y` may be any integer and are
    /// wrapped into the grid.
    #[inline]
    pub fn get_periodic(&self, x: isize, y: isize) -> &T {
        let xw = x.rem_euclid(self.width as isize) as usize;
        let yw = y.rem_euclid(self.height as isize) as usize;
        &self.data[yw * self.width + xw]
    }

    /// Flat view of the storage.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable flat view of the storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Iterate `(x, y, &value)` in row-major order.
    pub fn iter_coords(&self) -> impl Iterator<Item = (usize, usize, &T)> {
        self.data
            .iter()
            .enumerate()
            .map(move |(i, v)| (i % self.width, i / self.width, v))
    }
}

impl<T> Index<(usize, usize)> for Grid2<T> {
    type Output = T;

    #[inline]
    fn index(&self, (x, y): (usize, usize)) -> &T {
        assert!(x < self.width && y < self.height, "({x},{y}) out of bounds");
        &self.data[y * self.width + x]
    }
}

impl<T> IndexMut<(usize, usize)> for Grid2<T> {
    #[inline]
    fn index_mut(&mut self, (x, y): (usize, usize)) -> &mut T {
        assert!(x < self.width && y < self.height, "({x},{y}) out of bounds");
        &mut self.data[y * self.width + x]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storage_is_row_major() {
        let mut g = Grid2::<u32>::zeros(4, 3);
        g[(1, 0)] = 1;
        g[(0, 1)] = 2;
        assert_eq!(g.as_slice()[1], 1);
        assert_eq!(g.as_slice()[4], 2);
        assert_eq!(g.offset(3, 2), 11);
    }

    #[test]
    fn periodic_access_wraps_both_ways() {
        let mut g = Grid2::<f64>::zeros(4, 4);
        g[(0, 0)] = 7.0;
        assert_eq!(*g.get_periodic(4, 0), 7.0);
        assert_eq!(*g.get_periodic(-4, -4), 7.0);
        assert_eq!(*g.get_periodic(8, 4), 7.0);
        g[(3, 2)] = 9.0;
        assert_eq!(*g.get_periodic(-1, 2), 9.0);
        assert_eq!(*g.get_periodic(-1, -6), 9.0);
    }

    #[test]
    fn iter_coords_covers_grid_in_order() {
        let g = Grid2::<u8>::zeros(2, 2);
        let coords: Vec<(usize, usize)> = g.iter_coords().map(|(x, y, _)| (x, y)).collect();
        assert_eq!(coords, vec![(0, 0), (1, 0), (0, 1), (1, 1)]);
    }

    #[test]
    fn fill_overwrites_all() {
        let mut g = Grid2::filled(3, 3, 1.0f64);
        g.fill(2.0);
        assert!(g.as_slice().iter().all(|&v| v == 2.0));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_panics() {
        let g = Grid2::<u8>::zeros(2, 2);
        let _ = g[(2, 0)];
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_dimension_panics() {
        Grid2::<u8>::zeros(0, 5);
    }
}
