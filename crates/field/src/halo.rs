//! Halo (ghost-ring) exchange plans for the field-solve stencil.
//!
//! Each grid point "needs data from its four neighboring grid points"
//! (paper Section 4, field solve phase), so every rank needs a one-cell
//! ghost ring around its block, filled from the owners of the wrapped
//! neighbouring cells.  [`HaloPlan`] precomputes, for every rank, which of
//! its *owned* cells must be sent to which neighbour — the plan is static
//! because the mesh distribution never changes during a run.

use serde::{Deserialize, Serialize};

use crate::layout::BlockLayout;

/// A halo transfer unit: the sender's owned global cell and the padded
/// ghost slot it fills on the receiver.
pub type CellSlot = ((usize, usize), (usize, usize));

/// One rank's outgoing halo traffic to a single neighbour.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HaloMsg {
    /// Destination rank.
    pub to: usize,
    /// Owned global cells whose values the destination needs, paired with
    /// the *padded-grid slot* `(px, py)` they fill on the receiver (the
    /// receiver's local block plus a one-cell ghost ring, so
    /// `px in 0..w+2`, `py in 0..h+2`).  Order is deterministic (scan
    /// order of the receiver's ghost ring), so sender and receiver agree
    /// on the layout of the packed message.
    pub cells: Vec<CellSlot>,
}

/// Precomputed halo exchange plan for a [`BlockLayout`] with periodic
/// boundaries.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HaloPlan {
    /// `sends[rank]` lists this rank's outgoing messages, sorted by
    /// destination rank.
    sends: Vec<Vec<HaloMsg>>,
    /// `self_copies[rank]` lists ghost slots the rank fills from its own
    /// cells (periodic wrap onto itself, e.g. a full-width strip in a 1-D
    /// layout): `((source global cell), (padded slot))`.
    self_copies: Vec<Vec<CellSlot>>,
}

impl HaloPlan {
    /// Build the plan for `layout` (one-cell ghost ring, periodic wrap).
    pub fn build(layout: &BlockLayout) -> Self {
        let p = layout.num_ranks();
        let (nx, ny) = (layout.nx(), layout.ny());
        // For each rank, walk the ghost ring around its block; the owner
        // of each (wrapped) ghost cell must send that cell's value here.
        // Invert that into per-sender lists.
        let mut sends: Vec<Vec<HaloMsg>> = (0..p).map(|_| Vec::new()).collect();
        let mut self_copies: Vec<Vec<CellSlot>> = (0..p).map(|_| Vec::new()).collect();
        for (rank, self_list) in self_copies.iter_mut().enumerate() {
            let r = layout.local_rect(rank);
            let mut wanted: Vec<(usize, CellSlot)> = Vec::new();
            let x0 = r.x0 as isize;
            let y0 = r.y0 as isize;
            let (w, h) = (r.w as isize, r.h as isize);
            let mut ghost = |gx: isize, gy: isize| {
                let sx = gx.rem_euclid(nx as isize) as usize;
                let sy = gy.rem_euclid(ny as isize) as usize;
                let owner = layout.owner_of(sx, sy);
                // receiver's padded slot for this ghost cell
                let px = (gx - (x0 - 1)) as usize;
                let py = (gy - (y0 - 1)) as usize;
                if owner != rank {
                    wanted.push((owner, ((sx, sy), (px, py))));
                } else {
                    self_list.push(((sx, sy), (px, py)));
                }
            };
            for gx in x0 - 1..=x0 + w {
                ghost(gx, y0 - 1);
                ghost(gx, y0 + h);
            }
            for gy in y0..y0 + h {
                ghost(x0 - 1, gy);
                ghost(x0 + w, gy);
            }
            // group by owner, preserving scan order
            wanted.sort_by_key(|&(owner, _)| owner);
            let mut i = 0;
            while i < wanted.len() {
                let owner = wanted[i].0;
                let mut cells = Vec::new();
                while i < wanted.len() && wanted[i].0 == owner {
                    cells.push(wanted[i].1);
                    i += 1;
                }
                sends[owner].push(HaloMsg { to: rank, cells });
            }
        }
        for list in &mut sends {
            list.sort_by_key(|m| m.to);
        }
        Self { sends, self_copies }
    }

    /// Outgoing messages of `rank`.
    pub fn sends(&self, rank: usize) -> &[HaloMsg] {
        &self.sends[rank]
    }

    /// Ghost slots `rank` fills from its own cells (periodic self-wrap).
    pub fn self_copies(&self, rank: usize) -> &[CellSlot] {
        &self.self_copies[rank]
    }

    /// Number of ranks in the plan.
    pub fn num_ranks(&self) -> usize {
        self.sends.len()
    }

    /// Total cells this rank sends per exchange (its halo volume).
    pub fn send_volume(&self, rank: usize) -> usize {
        self.sends[rank].iter().map(|m| m.cells.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::BlockLayout;

    #[test]
    fn plan_is_symmetric_in_volume() {
        // On a uniform 2-D split with periodic wrap, what rank a sends to
        // b equals what b sends to a.
        let layout = BlockLayout::new_2d(16, 16, 4, 4);
        let plan = HaloPlan::build(&layout);
        for a in 0..16 {
            for msg in plan.sends(a) {
                let back: usize = plan
                    .sends(msg.to)
                    .iter()
                    .filter(|m| m.to == a)
                    .map(|m| m.cells.len())
                    .sum();
                assert_eq!(back, msg.cells.len(), "{a} <-> {}", msg.to);
            }
        }
    }

    #[test]
    fn interior_rank_sends_edges_and_corners() {
        let layout = BlockLayout::new_2d(16, 16, 4, 4);
        let plan = HaloPlan::build(&layout);
        // every rank owns a 4x4 block; its neighbours need 4 cells per side
        // plus corners; total outgoing = 4*4 + 4 = 20 cells
        for rank in 0..16 {
            assert_eq!(plan.send_volume(rank), 20, "rank {rank}");
        }
    }

    #[test]
    fn sent_cells_are_owned_by_sender() {
        let layout = BlockLayout::new_2d(12, 8, 3, 2);
        let plan = HaloPlan::build(&layout);
        for rank in 0..6 {
            let rect = layout.local_rect(rank);
            for msg in plan.sends(rank) {
                for &((sx, sy), _) in &msg.cells {
                    assert!(rect.contains(sx, sy), "rank {rank} sends unowned cell");
                }
            }
        }
    }

    #[test]
    fn padded_slots_lie_on_the_ghost_ring() {
        let layout = BlockLayout::new_2d(12, 8, 3, 2);
        let plan = HaloPlan::build(&layout);
        for rank in 0..6 {
            let r = layout.local_rect(rank);
            for src in 0..6 {
                for msg in plan.sends(src).iter().filter(|m| m.to == rank) {
                    for &(_, (px, py)) in &msg.cells {
                        assert!(px <= r.w + 1 && py <= r.h + 1);
                        let on_ring = px == 0 || py == 0 || px == r.w + 1 || py == r.h + 1;
                        assert!(on_ring, "slot ({px},{py}) not on ghost ring");
                    }
                }
            }
        }
    }

    #[test]
    fn every_ghost_slot_is_filled_exactly_once() {
        // Union of incoming slots plus own wrapped cells covers the whole
        // ghost ring with no duplicates.
        let layout = BlockLayout::new_2d(16, 16, 4, 4);
        let plan = HaloPlan::build(&layout);
        for rank in 0..16 {
            let r = layout.local_rect(rank);
            let mut filled = std::collections::HashSet::new();
            for src in 0..16 {
                for msg in plan.sends(src).iter().filter(|m| m.to == rank) {
                    for &(_, slot) in &msg.cells {
                        assert!(filled.insert(slot), "slot {slot:?} filled twice");
                    }
                }
            }
            // ring has 2*(w+2) + 2*h slots; with 4x4 blocks all ghosts are
            // off-rank, so all must arrive by message
            assert_eq!(filled.len(), 2 * (r.w + 2) + 2 * r.h);
            assert!(plan.self_copies(rank).is_empty());
        }
    }

    #[test]
    fn strip_layout_fills_vertical_ghosts_locally() {
        // 1-D layout: single block row, so north/south ghosts wrap onto
        // the owning rank itself and must be local copies, not messages.
        let layout = BlockLayout::new_1d(8, 4, 4);
        let plan = HaloPlan::build(&layout);
        for rank in 0..4 {
            let r = layout.local_rect(rank);
            // the top and bottom rows of the owned columns
            assert!(
                plan.self_copies(rank).len() >= 2 * r.w,
                "rank {rank} self copies {}",
                plan.self_copies(rank).len()
            );
            for &((sx, sy), (px, py)) in plan.self_copies(rank) {
                assert!(r.contains(sx, sy));
                assert!(px <= r.w + 1 && py <= r.h + 1);
            }
        }
    }

    #[test]
    fn single_rank_plan_is_empty() {
        let layout = BlockLayout::new_2d(8, 8, 1, 1);
        let plan = HaloPlan::build(&layout);
        assert!(plan.sends(0).is_empty());
    }

    #[test]
    fn strip_layout_wraps_periodically() {
        let layout = BlockLayout::new_1d(8, 4, 4);
        let plan = HaloPlan::build(&layout);
        // rank 0 owns x in [0,2); rank 3 owns x in [6,8). They are periodic
        // neighbours, so each must send to the other.
        let r0_to_r3: usize = plan
            .sends(0)
            .iter()
            .filter(|m| m.to == 3)
            .map(|m| m.cells.len())
            .sum();
        assert!(r0_to_r3 > 0, "periodic wrap missing");
    }
}
