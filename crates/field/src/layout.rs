//! BLOCK distribution of the mesh over processors.
//!
//! The mesh is cut into `pr x pc` rectangular blocks (2-D BLOCK) or `p`
//! row/column strips (1-D BLOCK).  Block `(bi, bj)` maps to a rank through
//! an optional permutation so the partition crate can lay processor
//! addresses along a Hilbert curve (paper Figure 10) — that alignment is
//! what makes rank-adjacent particle subdomains land on rank-adjacent mesh
//! subdomains.

use serde::{Deserialize, Serialize};

/// A half-open rectangle of grid cells: `x0 <= x < x0+w`, `y0 <= y < y0+h`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Rect {
    /// Left edge (inclusive).
    pub x0: usize,
    /// Bottom edge (inclusive).
    pub y0: usize,
    /// Width in cells.
    pub w: usize,
    /// Height in cells.
    pub h: usize,
}

impl Rect {
    /// Number of cells covered.
    pub fn area(&self) -> usize {
        self.w * self.h
    }

    /// Perimeter in cell edges — proportional to the halo volume and, for
    /// particle subdomains, to the ghost-point communication the paper's
    /// Section 6.3 discusses.
    pub fn perimeter(&self) -> usize {
        2 * (self.w + self.h)
    }

    /// True when `(x, y)` lies inside.
    pub fn contains(&self, x: usize, y: usize) -> bool {
        x >= self.x0 && x < self.x0 + self.w && y >= self.y0 && y < self.y0 + self.h
    }

    /// Intersection with `other`, if non-empty.
    pub fn intersect(&self, other: &Rect) -> Option<Rect> {
        let x0 = self.x0.max(other.x0);
        let y0 = self.y0.max(other.y0);
        let x1 = (self.x0 + self.w).min(other.x0 + other.w);
        let y1 = (self.y0 + self.h).min(other.y0 + other.h);
        if x0 < x1 && y0 < y1 {
            Some(Rect {
                x0,
                y0,
                w: x1 - x0,
                h: y1 - y0,
            })
        } else {
            None
        }
    }

    /// Iterate all `(x, y)` cells in row-major order.
    pub fn cells(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (self.y0..self.y0 + self.h)
            .flat_map(move |y| (self.x0..self.x0 + self.w).map(move |x| (x, y)))
    }
}

/// Factor `p` into `(pr, pc)` with `pr * pc == p` and the factors as close
/// to square as possible, preferring `pr >= pc`.
pub fn factor_near_square(p: usize) -> (usize, usize) {
    assert!(p > 0, "cannot factor zero ranks");
    let mut best = (p, 1);
    let mut d = 1;
    while d * d <= p {
        if p.is_multiple_of(d) {
            best = (p / d, d);
        }
        d += 1;
    }
    best
}

/// BLOCK distribution of an `nx x ny` mesh over `pr x pc` rank blocks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlockLayout {
    nx: usize,
    ny: usize,
    pr: usize,
    pc: usize,
    /// block id (row-major over the block grid) -> rank
    block_to_rank: Vec<usize>,
    /// rank -> block id
    rank_to_block: Vec<usize>,
}

impl BlockLayout {
    /// 2-D BLOCK: `pr` blocks along x, `pc` blocks along y, identity
    /// block→rank mapping.
    ///
    /// # Panics
    /// Panics if any dimension is zero or there are more blocks than cells
    /// along a dimension.
    pub fn new_2d(nx: usize, ny: usize, pr: usize, pc: usize) -> Self {
        assert!(nx > 0 && ny > 0, "mesh dimensions must be nonzero");
        assert!(pr > 0 && pc > 0, "block grid must be nonzero");
        assert!(pr <= nx, "more x-blocks ({pr}) than columns ({nx})");
        assert!(pc <= ny, "more y-blocks ({pc}) than rows ({ny})");
        let p = pr * pc;
        Self {
            nx,
            ny,
            pr,
            pc,
            block_to_rank: (0..p).collect(),
            rank_to_block: (0..p).collect(),
        }
    }

    /// 2-D BLOCK over `p` ranks with a near-square block grid.
    pub fn new_auto(nx: usize, ny: usize, p: usize) -> Self {
        let (a, b) = factor_near_square(p);
        // put the larger factor along the longer mesh dimension
        if nx >= ny {
            Self::new_2d(nx, ny, a, b)
        } else {
            Self::new_2d(nx, ny, b, a)
        }
    }

    /// 1-D BLOCK along x (column strips).
    pub fn new_1d(nx: usize, ny: usize, p: usize) -> Self {
        Self::new_2d(nx, ny, p, 1)
    }

    /// Install a block→rank permutation (e.g. Hilbert order over the block
    /// grid).  `perm[block_id] = rank`.
    ///
    /// # Panics
    /// Panics if `perm` is not a permutation of `0..p`.
    pub fn with_block_to_rank(mut self, perm: Vec<usize>) -> Self {
        let p = self.num_ranks();
        assert_eq!(perm.len(), p, "permutation length != rank count");
        let mut rank_to_block = vec![usize::MAX; p];
        for (block, &rank) in perm.iter().enumerate() {
            assert!(rank < p, "rank {rank} out of range");
            assert_eq!(rank_to_block[rank], usize::MAX, "rank {rank} repeated");
            rank_to_block[rank] = block;
        }
        self.block_to_rank = perm;
        self.rank_to_block = rank_to_block;
        self
    }

    /// Mesh width.
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Mesh height.
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Blocks along x.
    pub fn pr(&self) -> usize {
        self.pr
    }

    /// Blocks along y.
    pub fn pc(&self) -> usize {
        self.pc
    }

    /// Total ranks.
    pub fn num_ranks(&self) -> usize {
        self.pr * self.pc
    }

    /// Extent of block `bi` along a dimension of size `n` cut into `nb`
    /// blocks: the standard balanced BLOCK split.
    fn block_range(n: usize, nb: usize, bi: usize) -> (usize, usize) {
        let start = bi * n / nb;
        let end = (bi + 1) * n / nb;
        (start, end)
    }

    /// The rectangle of cells owned by `rank`.
    ///
    /// # Panics
    /// Panics if `rank` is out of range.
    pub fn local_rect(&self, rank: usize) -> Rect {
        assert!(rank < self.num_ranks(), "rank {rank} out of range");
        let block = self.rank_to_block[rank];
        let (bi, bj) = (block % self.pr, block / self.pr);
        let (x0, x1) = Self::block_range(self.nx, self.pr, bi);
        let (y0, y1) = Self::block_range(self.ny, self.pc, bj);
        Rect {
            x0,
            y0,
            w: x1 - x0,
            h: y1 - y0,
        }
    }

    /// The rank owning global cell `(x, y)`.
    ///
    /// # Panics
    /// Panics if the cell is outside the mesh.
    #[inline]
    pub fn owner_of(&self, x: usize, y: usize) -> usize {
        assert!(x < self.nx && y < self.ny, "cell ({x},{y}) outside mesh");
        // Invert the balanced split: block bi owns [bi*n/nb, (bi+1)*n/nb),
        // so bi = floor(((x+1)*nb - 1) / n) gives the block with
        // bi*n/nb <= x. Using integer search keeps it exact for all sizes.
        let bi = Self::block_of(x, self.nx, self.pr);
        let bj = Self::block_of(y, self.ny, self.pc);
        self.block_to_rank[bj * self.pr + bi]
    }

    /// The block index owning coordinate `x` of a dimension of `n` cells
    /// split into `nb` blocks.
    #[inline]
    fn block_of(x: usize, n: usize, nb: usize) -> usize {
        // candidate from the affine estimate, corrected by +-1
        let mut bi = (x * nb) / n;
        loop {
            let (s, e) = Self::block_range(n, nb, bi);
            if x < s {
                bi -= 1;
            } else if x >= e {
                bi += 1;
            } else {
                return bi;
            }
        }
    }

    /// Convert global coordinates to rank-local coordinates.
    ///
    /// # Panics
    /// Panics if the cell is not owned by `rank`.
    pub fn global_to_local(&self, rank: usize, x: usize, y: usize) -> (usize, usize) {
        let r = self.local_rect(rank);
        assert!(r.contains(x, y), "cell ({x},{y}) not owned by rank {rank}");
        (x - r.x0, y - r.y0)
    }

    /// Convert rank-local coordinates to global coordinates.
    pub fn local_to_global(&self, rank: usize, lx: usize, ly: usize) -> (usize, usize) {
        let r = self.local_rect(rank);
        assert!(
            lx < r.w && ly < r.h,
            "local ({lx},{ly}) outside rank {rank} block"
        );
        (r.x0 + lx, r.y0 + ly)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factoring_prefers_square() {
        assert_eq!(factor_near_square(1), (1, 1));
        assert_eq!(factor_near_square(32), (8, 4));
        assert_eq!(factor_near_square(64), (8, 8));
        assert_eq!(factor_near_square(128), (16, 8));
        assert_eq!(factor_near_square(7), (7, 1));
        assert_eq!(factor_near_square(12), (4, 3));
    }

    #[test]
    fn blocks_tile_the_mesh_exactly() {
        for (nx, ny, pr, pc) in [(128, 64, 8, 4), (10, 7, 3, 2), (5, 5, 5, 5)] {
            let l = BlockLayout::new_2d(nx, ny, pr, pc);
            let mut owned = vec![0u32; nx * ny];
            for rank in 0..l.num_ranks() {
                for (x, y) in l.local_rect(rank).cells() {
                    owned[y * nx + x] += 1;
                    assert_eq!(l.owner_of(x, y), rank);
                }
            }
            assert!(owned.iter().all(|&c| c == 1), "{nx}x{ny}/{pr}x{pc}");
        }
    }

    #[test]
    fn balanced_split_sizes_differ_by_at_most_one() {
        let l = BlockLayout::new_2d(10, 7, 3, 2);
        let areas: Vec<usize> = (0..6).map(|r| l.local_rect(r).area()).collect();
        let min = *areas.iter().min().unwrap();
        let max = *areas.iter().max().unwrap();
        // 10/3 in {3,4}, 7/2 in {3,4} -> areas in 9..=16
        assert!(max <= min * 2, "{areas:?}");
        assert_eq!(areas.iter().sum::<usize>(), 70);
    }

    #[test]
    fn local_global_roundtrip() {
        let l = BlockLayout::new_2d(64, 32, 4, 4);
        for rank in [0, 5, 15] {
            let r = l.local_rect(rank);
            for (x, y) in r.cells().take(10) {
                let (lx, ly) = l.global_to_local(rank, x, y);
                assert_eq!(l.local_to_global(rank, lx, ly), (x, y));
            }
        }
    }

    #[test]
    fn permutation_reroutes_ownership() {
        let l = BlockLayout::new_2d(8, 8, 2, 2);
        let perm = vec![3, 2, 1, 0];
        let lp = l.clone().with_block_to_rank(perm);
        // block 0 (bottom-left) now belongs to rank 3
        assert_eq!(lp.owner_of(0, 0), 3);
        assert_eq!(lp.local_rect(3), l.local_rect(0));
    }

    #[test]
    #[should_panic(expected = "repeated")]
    fn non_permutation_rejected() {
        BlockLayout::new_2d(8, 8, 2, 2).with_block_to_rank(vec![0, 0, 1, 2]);
    }

    #[test]
    fn one_dimensional_layout_is_strips() {
        let l = BlockLayout::new_1d(16, 4, 4);
        let r = l.local_rect(2);
        assert_eq!(
            r,
            Rect {
                x0: 8,
                y0: 0,
                w: 4,
                h: 4
            }
        );
    }

    #[test]
    fn rect_geometry() {
        let a = Rect {
            x0: 0,
            y0: 0,
            w: 4,
            h: 4,
        };
        let b = Rect {
            x0: 2,
            y0: 3,
            w: 4,
            h: 4,
        };
        let i = a.intersect(&b).unwrap();
        assert_eq!(
            i,
            Rect {
                x0: 2,
                y0: 3,
                w: 2,
                h: 1
            }
        );
        assert_eq!(a.perimeter(), 16);
        assert!(a.contains(3, 3));
        assert!(!a.contains(4, 3));
        let far = Rect {
            x0: 10,
            y0: 10,
            w: 1,
            h: 1,
        };
        assert!(a.intersect(&far).is_none());
    }

    #[test]
    fn auto_layout_orients_blocks_with_mesh() {
        let l = BlockLayout::new_auto(128, 64, 32);
        assert_eq!((l.pr(), l.pc()), (8, 4));
        let l = BlockLayout::new_auto(64, 128, 32);
        assert_eq!((l.pr(), l.pc()), (4, 8));
    }
}
