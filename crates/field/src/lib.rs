//! # pic-field — mesh grid arrays and the field solve substrate
//!
//! The PIC mesh side of the paper: dense 2-D grids ([`Grid2`]), BLOCK
//! distributions of the mesh over processors ([`BlockLayout`]), halo
//! (ghost-ring) exchange plans for the finite-difference stencil
//! ([`HaloPlan`]), and a 2½-D electromagnetic field solver
//! ([`maxwell`]) with periodic boundaries.
//!
//! The paper assumes "the mesh grid is distributed along one or more
//! dimensions using BLOCK distribution" (Section 1) — [`BlockLayout`]
//! implements both the 1-D and 2-D variants, with an optional block→rank
//! permutation so the partition crate can arrange blocks along a Hilbert
//! curve of processor addresses (paper Figure 10).
//!
//! ```
//! use pic_field::{BlockLayout, Grid2};
//!
//! let layout = BlockLayout::new_2d(128, 64, 8, 4); // 32 ranks
//! assert_eq!(layout.num_ranks(), 32);
//! let rect = layout.local_rect(5);
//! assert_eq!(rect.area(), 128 * 64 / 32);
//! assert_eq!(layout.owner_of(rect.x0, rect.y0), 5);
//!
//! let mut g = Grid2::zeros(16, 8);
//! g[(3, 2)] = 1.5;
//! assert_eq!(g[(3, 2)], 1.5);
//! ```

#![warn(missing_docs)]

pub mod energy;
pub mod grid2;
pub mod halo;
pub mod layout;
pub mod maxwell;
pub mod poisson;

pub use energy::field_energy;
pub use grid2::Grid2;
pub use halo::{CellSlot, HaloMsg, HaloPlan};
pub use layout::{factor_near_square, BlockLayout, Rect};
pub use maxwell::{CurrentSet, FieldSet, MaxwellSolver};
pub use poisson::{efield_from_phi, solve_poisson_periodic};
