//! 2½-D electromagnetic field solver.
//!
//! The paper's application is a "relativistic electromagnetic PIC plasma
//! simulation code": Maxwell's equations are advanced on the mesh by
//! finite differences, each grid point reading its four neighbours.  We
//! implement the standard 2½-D reduction (all quantities depend on `x, y`
//! only; vectors keep all three components) with central differences on a
//! collocated grid, normalized units (`c = 1`, `eps0 = 1`):
//!
//! ```text
//! dBx/dt = -dEz/dy            dEx/dt =  dBz/dy - Jx
//! dBy/dt =  dEz/dx            dEy/dt = -dBz/dx - Jy
//! dBz/dt =  dEx/dy - dEy/dx   dEz/dt =  dBy/dx - dBx/dy - Jz
//! ```
//!
//! The update is split B-then-E, so a distributed implementation needs two
//! ghost-ring exchanges per field solve — this is the neighbour
//! communication the paper's field-solve cost formula charges (`4 * tau`
//! per exchange on a 2-D block).
//!
//! Two entry points cover both deployment styles:
//! * [`MaxwellSolver::step_periodic`] — a single global grid with periodic
//!   wrap (the sequential reference code);
//! * [`MaxwellSolver::update_b_padded`] / [`MaxwellSolver::update_e_padded`]
//!   — a rank-local block with a one-cell ghost ring filled by halo
//!   exchange before each half (the parallel code).

use serde::{Deserialize, Serialize};

use crate::grid2::Grid2;

/// The six field components on one grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FieldSet {
    /// Electric field x-component.
    pub ex: Grid2<f64>,
    /// Electric field y-component.
    pub ey: Grid2<f64>,
    /// Electric field z-component.
    pub ez: Grid2<f64>,
    /// Magnetic field x-component.
    pub bx: Grid2<f64>,
    /// Magnetic field y-component.
    pub by: Grid2<f64>,
    /// Magnetic field z-component.
    pub bz: Grid2<f64>,
}

impl FieldSet {
    /// All-zero fields on a `width x height` grid.
    pub fn zeros(width: usize, height: usize) -> Self {
        Self {
            ex: Grid2::zeros(width, height),
            ey: Grid2::zeros(width, height),
            ez: Grid2::zeros(width, height),
            bx: Grid2::zeros(width, height),
            by: Grid2::zeros(width, height),
            bz: Grid2::zeros(width, height),
        }
    }

    /// Grid width.
    pub fn width(&self) -> usize {
        self.ex.width()
    }

    /// Grid height.
    pub fn height(&self) -> usize {
        self.ex.height()
    }

    /// The six components at `(x, y)` as `[Ex, Ey, Ez, Bx, By, Bz]`.
    #[inline]
    pub fn at(&self, x: usize, y: usize) -> [f64; 6] {
        [
            self.ex[(x, y)],
            self.ey[(x, y)],
            self.ez[(x, y)],
            self.bx[(x, y)],
            self.by[(x, y)],
            self.bz[(x, y)],
        ]
    }
}

/// Current density components deposited by the scatter phase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CurrentSet {
    /// Current density x-component.
    pub jx: Grid2<f64>,
    /// Current density y-component.
    pub jy: Grid2<f64>,
    /// Current density z-component.
    pub jz: Grid2<f64>,
}

impl CurrentSet {
    /// All-zero currents on a `width x height` grid.
    pub fn zeros(width: usize, height: usize) -> Self {
        Self {
            jx: Grid2::zeros(width, height),
            jy: Grid2::zeros(width, height),
            jz: Grid2::zeros(width, height),
        }
    }

    /// Reset all components to zero (start of every scatter phase).
    pub fn clear(&mut self) {
        self.jx.fill(0.0);
        self.jy.fill(0.0);
        self.jz.fill(0.0);
    }
}

/// Finite-difference Maxwell stepper.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MaxwellSolver {
    /// Time step.
    pub dt: f64,
    /// Cell size along x.
    pub dx: f64,
    /// Cell size along y.
    pub dy: f64,
}

/// Central difference of `g` at periodic coordinates, `(d/dx, d/dy)`.
#[inline]
fn grad_periodic(g: &Grid2<f64>, x: usize, y: usize, dx: f64, dy: f64) -> (f64, f64) {
    let (xi, yi) = (x as isize, y as isize);
    let ddx = (g.get_periodic(xi + 1, yi) - g.get_periodic(xi - 1, yi)) / (2.0 * dx);
    let ddy = (g.get_periodic(xi, yi + 1) - g.get_periodic(xi, yi - 1)) / (2.0 * dy);
    (ddx, ddy)
}

/// Central difference of a padded `g` at interior coordinates.
#[inline]
fn grad_padded(g: &Grid2<f64>, x: usize, y: usize, dx: f64, dy: f64) -> (f64, f64) {
    let ddx = (g[(x + 1, y)] - g[(x - 1, y)]) / (2.0 * dx);
    let ddy = (g[(x, y + 1)] - g[(x, y - 1)]) / (2.0 * dy);
    (ddx, ddy)
}

impl MaxwellSolver {
    /// Create a solver, checking the CFL-like stability bound
    /// `dt <= 0.5 * min(dx, dy)` for the collocated central scheme.
    ///
    /// # Panics
    /// Panics on non-positive steps or a CFL violation.
    pub fn new(dt: f64, dx: f64, dy: f64) -> Self {
        assert!(dt > 0.0 && dx > 0.0 && dy > 0.0, "steps must be positive");
        assert!(
            dt <= 0.5 * dx.min(dy) + 1e-12,
            "dt {dt} violates CFL bound {}",
            0.5 * dx.min(dy)
        );
        Self { dt, dx, dy }
    }

    /// Advance B then E on a global periodic grid.
    pub fn step_periodic(&self, f: &mut FieldSet, j: &CurrentSet) {
        self.update_b_periodic(f);
        self.update_e_periodic(f, j);
    }

    /// B update (`dB/dt = -curl E`) on a global periodic grid.
    pub fn update_b_periodic(&self, f: &mut FieldSet) {
        let h = f.height();
        self.update_b_periodic_rows(f, 0, h);
    }

    /// B update restricted to rows `y0..y1` of a global periodic grid —
    /// the strip a rank owns under the replicated-grid baseline's
    /// distributed field solve.
    pub fn update_b_periodic_rows(&self, f: &mut FieldSet, y0: usize, y1: usize) {
        let (w, h) = (f.width(), f.height());
        debug_assert!(y0 <= y1 && y1 <= h);
        let (dt, dx, dy) = (self.dt, self.dx, self.dy);
        let mut bx = f.bx.clone();
        let mut by = f.by.clone();
        let mut bz = f.bz.clone();
        for y in y0..y1 {
            for x in 0..w {
                let (_, dez_dy) = grad_periodic(&f.ez, x, y, dx, dy);
                let (dez_dx, _) = grad_periodic(&f.ez, x, y, dx, dy);
                let (_, dex_dy) = grad_periodic(&f.ex, x, y, dx, dy);
                let (dey_dx, _) = grad_periodic(&f.ey, x, y, dx, dy);
                bx[(x, y)] -= dt * dez_dy;
                by[(x, y)] += dt * dez_dx;
                bz[(x, y)] += dt * (dex_dy - dey_dx);
            }
        }
        f.bx = bx;
        f.by = by;
        f.bz = bz;
    }

    /// E update (`dE/dt = curl B - J`) on a global periodic grid.
    pub fn update_e_periodic(&self, f: &mut FieldSet, j: &CurrentSet) {
        let h = f.height();
        self.update_e_periodic_rows(f, j, 0, h);
    }

    /// E update restricted to rows `y0..y1` of a global periodic grid.
    pub fn update_e_periodic_rows(&self, f: &mut FieldSet, j: &CurrentSet, y0: usize, y1: usize) {
        let (w, h) = (f.width(), f.height());
        debug_assert!(y0 <= y1 && y1 <= h);
        debug_assert_eq!(j.jx.width(), w);
        debug_assert_eq!(j.jx.height(), h);
        let (dt, dx, dy) = (self.dt, self.dx, self.dy);
        let mut ex = f.ex.clone();
        let mut ey = f.ey.clone();
        let mut ez = f.ez.clone();
        for y in y0..y1 {
            for x in 0..w {
                let (dbz_dx, dbz_dy) = grad_periodic(&f.bz, x, y, dx, dy);
                let (dby_dx, _) = grad_periodic(&f.by, x, y, dx, dy);
                let (_, dbx_dy) = grad_periodic(&f.bx, x, y, dx, dy);
                ex[(x, y)] += dt * (dbz_dy - j.jx[(x, y)]);
                ey[(x, y)] += dt * (-dbz_dx - j.jy[(x, y)]);
                ez[(x, y)] += dt * (dby_dx - dbx_dy - j.jz[(x, y)]);
            }
        }
        f.ex = ex;
        f.ey = ey;
        f.ez = ez;
    }

    /// B update on a padded rank-local block.
    ///
    /// Field grids must be `(w+2) x (h+2)` with the E ghost ring filled by
    /// halo exchange; only interior cells `1..=w, 1..=h` are written.
    pub fn update_b_padded(&self, f: &mut FieldSet) {
        let (pw, ph) = (f.width(), f.height());
        assert!(pw > 2 && ph > 2, "padded grid too small");
        let (dt, dx, dy) = (self.dt, self.dx, self.dy);
        let mut bx = f.bx.clone();
        let mut by = f.by.clone();
        let mut bz = f.bz.clone();
        for y in 1..ph - 1 {
            for x in 1..pw - 1 {
                let (dez_dx, dez_dy) = grad_padded(&f.ez, x, y, dx, dy);
                let (_, dex_dy) = grad_padded(&f.ex, x, y, dx, dy);
                let (dey_dx, _) = grad_padded(&f.ey, x, y, dx, dy);
                bx[(x, y)] -= dt * dez_dy;
                by[(x, y)] += dt * dez_dx;
                bz[(x, y)] += dt * (dex_dy - dey_dx);
            }
        }
        f.bx = bx;
        f.by = by;
        f.bz = bz;
    }

    /// E update on a padded rank-local block.
    ///
    /// Field grids must be `(w+2) x (h+2)` with the B ghost ring filled;
    /// the current grids are unpadded `w x h` (currents are purely local
    /// after the scatter phase resolves ghost contributions).
    pub fn update_e_padded(&self, f: &mut FieldSet, j: &CurrentSet) {
        let (pw, ph) = (f.width(), f.height());
        assert!(pw > 2 && ph > 2, "padded grid too small");
        assert_eq!(j.jx.width(), pw - 2, "current grid must be unpadded");
        assert_eq!(j.jx.height(), ph - 2, "current grid must be unpadded");
        let (dt, dx, dy) = (self.dt, self.dx, self.dy);
        let mut ex = f.ex.clone();
        let mut ey = f.ey.clone();
        let mut ez = f.ez.clone();
        for y in 1..ph - 1 {
            for x in 1..pw - 1 {
                let (dbz_dx, dbz_dy) = grad_padded(&f.bz, x, y, dx, dy);
                let (dby_dx, _) = grad_padded(&f.by, x, y, dx, dy);
                let (_, dbx_dy) = grad_padded(&f.bx, x, y, dx, dy);
                let (jx, jy, jz) = (
                    j.jx[(x - 1, y - 1)],
                    j.jy[(x - 1, y - 1)],
                    j.jz[(x - 1, y - 1)],
                );
                ex[(x, y)] += dt * (dbz_dy - jx);
                ey[(x, y)] += dt * (-dbz_dx - jy);
                ez[(x, y)] += dt * (dby_dx - dbx_dy - jz);
            }
        }
        f.ex = ex;
        f.ey = ey;
        f.ez = ez;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::energy::field_energy;

    fn solver() -> MaxwellSolver {
        MaxwellSolver::new(0.25, 1.0, 1.0)
    }

    #[test]
    fn vacuum_stays_vacuum() {
        let mut f = FieldSet::zeros(8, 8);
        let j = CurrentSet::zeros(8, 8);
        for _ in 0..10 {
            solver().step_periodic(&mut f, &j);
        }
        assert!(f.ez.as_slice().iter().all(|&v| v == 0.0));
        assert!(f.bz.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn uniform_fields_are_stationary() {
        // Spatially uniform fields have zero curl everywhere (periodic),
        // so nothing changes without currents.
        let mut f = FieldSet::zeros(8, 8);
        f.ez.fill(2.0);
        f.bx.fill(-1.0);
        let j = CurrentSet::zeros(8, 8);
        let before = f.clone();
        solver().step_periodic(&mut f, &j);
        assert_eq!(f, before);
    }

    #[test]
    fn current_drives_electric_field() {
        let mut f = FieldSet::zeros(8, 8);
        let mut j = CurrentSet::zeros(8, 8);
        j.jz.fill(1.0);
        solver().step_periodic(&mut f, &j);
        // dEz/dt = -Jz -> Ez = -dt after one step
        assert!(f.ez.as_slice().iter().all(|&v| (v + 0.25).abs() < 1e-12));
    }

    #[test]
    fn pulse_propagates_outward() {
        let n = 32;
        let mut f = FieldSet::zeros(n, n);
        // Gaussian Ez pulse in the centre
        for y in 0..n {
            for x in 0..n {
                let dx = x as f64 - n as f64 / 2.0;
                let dy = y as f64 - n as f64 / 2.0;
                f.ez[(x, y)] = (-(dx * dx + dy * dy) / 8.0).exp();
            }
        }
        let j = CurrentSet::zeros(n, n);
        let s = solver();
        let probe_before = f.ez[(2, n / 2)].abs();
        for _ in 0..40 {
            s.step_periodic(&mut f, &j);
        }
        let probe_after = f.ez[(2, n / 2)].abs() + f.bx[(2, n / 2)].abs() + f.by[(2, n / 2)].abs();
        assert!(
            probe_after > probe_before + 1e-6,
            "wave did not reach distant probe: {probe_after}"
        );
    }

    #[test]
    fn energy_is_approximately_conserved_in_vacuum() {
        let n = 32;
        let mut f = FieldSet::zeros(n, n);
        for y in 0..n {
            for x in 0..n {
                let dx = x as f64 - n as f64 / 2.0;
                let dy = y as f64 - n as f64 / 2.0;
                f.ez[(x, y)] = (-(dx * dx + dy * dy) / 8.0).exp();
            }
        }
        let j = CurrentSet::zeros(n, n);
        let s = solver();
        let e0 = field_energy(&f, 1.0, 1.0);
        for _ in 0..100 {
            s.step_periodic(&mut f, &j);
        }
        let e1 = field_energy(&f, 1.0, 1.0);
        let drift = (e1 - e0).abs() / e0;
        assert!(drift < 0.05, "energy drift {drift}");
    }

    #[test]
    fn padded_matches_periodic_on_interior() {
        // Single "rank" owning the whole mesh, ghost ring filled by
        // periodic wrap, must agree exactly with the periodic stepper.
        let n = 8;
        let mut fp = FieldSet::zeros(n, n);
        for y in 0..n {
            for x in 0..n {
                fp.ez[(x, y)] = (x * 31 + y * 7) as f64 * 0.01;
                fp.bz[(x, y)] = (x + 2 * y) as f64 * 0.02;
            }
        }
        let j = CurrentSet::zeros(n, n);

        let mut reference = fp.clone();
        solver().step_periodic(&mut reference, &j);

        // build padded copy
        let fill = |src: &Grid2<f64>| {
            let mut dst = Grid2::<f64>::zeros(n + 2, n + 2);
            for y in 0..n + 2 {
                for x in 0..n + 2 {
                    dst[(x, y)] = *src.get_periodic(x as isize - 1, y as isize - 1);
                }
            }
            dst
        };
        let mut padded = FieldSet {
            ex: fill(&fp.ex),
            ey: fill(&fp.ey),
            ez: fill(&fp.ez),
            bx: fill(&fp.bx),
            by: fill(&fp.by),
            bz: fill(&fp.bz),
        };
        solver().update_b_padded(&mut padded);
        // refresh B ghosts from the updated interior before the E half
        for g in [&mut padded.bx, &mut padded.by, &mut padded.bz] {
            let interior = g.clone();
            for y in 0..n + 2 {
                for x in 0..n + 2 {
                    if x == 0 || y == 0 || x == n + 1 || y == n + 1 {
                        let sx = ((x as isize - 1).rem_euclid(n as isize) + 1) as usize;
                        let sy = ((y as isize - 1).rem_euclid(n as isize) + 1) as usize;
                        g[(x, y)] = interior[(sx, sy)];
                    }
                }
            }
        }
        solver().update_e_padded(&mut padded, &j);

        for y in 0..n {
            for x in 0..n {
                assert!(
                    (padded.ez[(x + 1, y + 1)] - reference.ez[(x, y)]).abs() < 1e-12,
                    "ez mismatch at ({x},{y})"
                );
                assert!(
                    (padded.bz[(x + 1, y + 1)] - reference.bz[(x, y)]).abs() < 1e-12,
                    "bz mismatch at ({x},{y})"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "CFL")]
    fn cfl_violation_rejected() {
        MaxwellSolver::new(1.0, 1.0, 1.0);
    }
}
