//! Periodic Poisson solver for the electrostatic PIC variant.
//!
//! The paper builds on earlier electrostatic PIC parallelizations (Lubeck
//! & Faber's 2-D electrostatic code, Section 3).  The electrostatic field
//! solve replaces Maxwell's equations with the Poisson equation
//! `laplacian(phi) = -rho` followed by `E = -grad(phi)`.  This module
//! provides a weighted-Jacobi iteration on the periodic grid — each sweep
//! reads the four neighbours of every grid point, i.e. exactly the
//! communication stencil of the paper's field-solve cost analysis, just
//! repeated `sweeps` times per time step.

use crate::grid2::Grid2;

/// On a periodic domain, Poisson is solvable only for mean-free sources;
/// returns `rho` shifted to zero mean.
pub fn make_mean_free(rho: &Grid2<f64>) -> Grid2<f64> {
    let mean = rho.as_slice().iter().sum::<f64>() / rho.len() as f64;
    let mut out = rho.clone();
    for v in out.as_mut_slice() {
        *v -= mean;
    }
    out
}

/// One weighted-Jacobi sweep for `laplacian(phi) = -rho` on a periodic
/// grid; returns the maximum absolute update (a convergence measure).
pub fn jacobi_sweep_periodic(phi: &mut Grid2<f64>, rho: &Grid2<f64>, dx: f64, dy: f64) -> f64 {
    let (w, h) = (phi.width(), phi.height());
    debug_assert_eq!(rho.width(), w);
    debug_assert_eq!(rho.height(), h);
    let (idx2, idy2) = (1.0 / (dx * dx), 1.0 / (dy * dy));
    let diag = 2.0 * (idx2 + idy2);
    let mut next = phi.clone();
    let mut max_delta = 0.0f64;
    for y in 0..h {
        for x in 0..w {
            let (xi, yi) = (x as isize, y as isize);
            let xn = phi.get_periodic(xi - 1, yi) + phi.get_periodic(xi + 1, yi);
            let yn = phi.get_periodic(xi, yi - 1) + phi.get_periodic(xi, yi + 1);
            let new = (xn * idx2 + yn * idy2 + rho[(x, y)]) / diag;
            max_delta = max_delta.max((new - phi[(x, y)]).abs());
            next[(x, y)] = new;
        }
    }
    *phi = next;
    max_delta
}

/// Solve `laplacian(phi) = -rho` with up to `max_sweeps` Jacobi sweeps or
/// until the update drops below `tol`; returns the sweep count used.
///
/// The source is made mean-free internally; the solution is pinned to
/// zero mean (the periodic null space).
pub fn solve_poisson_periodic(
    phi: &mut Grid2<f64>,
    rho: &Grid2<f64>,
    dx: f64,
    dy: f64,
    max_sweeps: usize,
    tol: f64,
) -> usize {
    let rho0 = make_mean_free(rho);
    let mut used = 0;
    for s in 1..=max_sweeps {
        used = s;
        let delta = jacobi_sweep_periodic(phi, &rho0, dx, dy);
        if delta < tol {
            break;
        }
    }
    // remove the accumulated mean drift
    let mean = phi.as_slice().iter().sum::<f64>() / phi.len() as f64;
    for v in phi.as_mut_slice() {
        *v -= mean;
    }
    used
}

/// Electric field `E = -grad(phi)` by central differences on the
/// periodic grid.
pub fn efield_from_phi(phi: &Grid2<f64>, dx: f64, dy: f64) -> (Grid2<f64>, Grid2<f64>) {
    let (w, h) = (phi.width(), phi.height());
    let mut ex = Grid2::<f64>::zeros(w, h);
    let mut ey = Grid2::<f64>::zeros(w, h);
    for y in 0..h {
        for x in 0..w {
            let (xi, yi) = (x as isize, y as isize);
            ex[(x, y)] =
                -(phi.get_periodic(xi + 1, yi) - phi.get_periodic(xi - 1, yi)) / (2.0 * dx);
            ey[(x, y)] =
                -(phi.get_periodic(xi, yi + 1) - phi.get_periodic(xi, yi - 1)) / (2.0 * dy);
        }
    }
    (ex, ey)
}

/// Residual `max |laplacian(phi) + rho|` of a candidate solution.
pub fn poisson_residual(phi: &Grid2<f64>, rho: &Grid2<f64>, dx: f64, dy: f64) -> f64 {
    let (w, h) = (phi.width(), phi.height());
    let (idx2, idy2) = (1.0 / (dx * dx), 1.0 / (dy * dy));
    let mut worst = 0.0f64;
    for y in 0..h {
        for x in 0..w {
            let (xi, yi) = (x as isize, y as isize);
            let lap = (phi.get_periodic(xi - 1, yi) + phi.get_periodic(xi + 1, yi)
                - 2.0 * phi[(x, y)])
                * idx2
                + (phi.get_periodic(xi, yi - 1) + phi.get_periodic(xi, yi + 1) - 2.0 * phi[(x, y)])
                    * idy2;
            worst = worst.max((lap + rho[(x, y)]).abs());
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::TAU;

    /// A single Fourier mode: rho = A sin(2 pi x / L) has the analytic
    /// solution phi = A (L / 2 pi)^2 sin(2 pi x / L) for the continuous
    /// operator; the discrete solution matches the discrete eigenvalue.
    fn mode_source(n: usize, amp: f64) -> Grid2<f64> {
        let mut rho = Grid2::<f64>::zeros(n, n);
        for y in 0..n {
            for x in 0..n {
                rho[(x, y)] = amp * (TAU * x as f64 / n as f64).sin();
            }
        }
        rho
    }

    #[test]
    fn solver_drives_residual_down() {
        let n = 16;
        let rho = mode_source(n, 1.0);
        let mut phi = Grid2::<f64>::zeros(n, n);
        let before = poisson_residual(&phi, &rho, 1.0, 1.0);
        let sweeps = solve_poisson_periodic(&mut phi, &rho, 1.0, 1.0, 2000, 1e-10);
        let after = poisson_residual(&phi, &rho, 1.0, 1.0);
        assert!(sweeps > 1);
        assert!(after < 1e-6 * before, "residual {before} -> {after}");
    }

    #[test]
    fn solution_matches_discrete_eigenmode() {
        // for rho = sin(k x), the discrete 5-point solution is
        // phi = rho / lambda_k with lambda_k = (2 - 2 cos(k dx)) / dx^2
        let n = 32;
        let rho = mode_source(n, 1.0);
        let mut phi = Grid2::<f64>::zeros(n, n);
        solve_poisson_periodic(&mut phi, &rho, 1.0, 1.0, 20_000, 1e-13);
        let k = TAU / n as f64;
        let lambda = 2.0 - 2.0 * k.cos();
        for x in 0..n {
            let expect = rho[(x, 3)] / lambda;
            assert!(
                (phi[(x, 3)] - expect).abs() < 1e-5,
                "x={x}: {} vs {}",
                phi[(x, 3)],
                expect
            );
        }
    }

    #[test]
    fn uniform_charge_gives_zero_field() {
        // a uniform rho is pure null space after mean removal
        let n = 8;
        let rho = Grid2::filled(n, n, 3.5);
        let mut phi = Grid2::<f64>::zeros(n, n);
        solve_poisson_periodic(&mut phi, &rho, 1.0, 1.0, 100, 1e-14);
        assert!(phi.as_slice().iter().all(|&v| v.abs() < 1e-12));
        let (ex, ey) = efield_from_phi(&phi, 1.0, 1.0);
        assert!(ex.as_slice().iter().all(|&v| v.abs() < 1e-12));
        assert!(ey.as_slice().iter().all(|&v| v.abs() < 1e-12));
    }

    #[test]
    fn efield_points_from_positive_to_negative_charge() {
        // dipole: positive charge left, negative right; E between them
        // points from + to - (toward +x in the gap)
        let n = 16;
        let mut rho = Grid2::<f64>::zeros(n, n);
        for y in 0..n {
            rho[(4, y)] = 1.0;
            rho[(12, y)] = -1.0;
        }
        let mut phi = Grid2::<f64>::zeros(n, n);
        solve_poisson_periodic(&mut phi, &rho, 1.0, 1.0, 20_000, 1e-12);
        let (ex, _) = efield_from_phi(&phi, 1.0, 1.0);
        assert!(ex[(8, 8)] > 1e-6, "gap field {}", ex[(8, 8)]);
    }

    #[test]
    fn mean_free_subtracts_exactly() {
        let mut rho = Grid2::<f64>::zeros(4, 4);
        rho[(0, 0)] = 16.0;
        let mf = make_mean_free(&rho);
        assert!((mf.as_slice().iter().sum::<f64>()).abs() < 1e-12);
        assert!((mf[(0, 0)] - 15.0).abs() < 1e-12);
        assert!((mf[(1, 1)] + 1.0).abs() < 1e-12);
    }
}
