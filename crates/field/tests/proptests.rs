//! Property tests for grids, BLOCK layouts and halo plans on arbitrary
//! mesh/processor geometries.

use pic_field::{factor_near_square, BlockLayout, Grid2, HaloPlan};
use proptest::prelude::*;

proptest! {
    /// Near-square factoring always multiplies back and is as square as
    /// any other factoring.
    #[test]
    fn factoring_is_optimal(p in 1usize..2000) {
        let (a, b) = factor_near_square(p);
        prop_assert_eq!(a * b, p);
        prop_assert!(a >= b);
        // no better factor pair exists
        for d in (b + 1)..=((p as f64).sqrt() as usize) {
            if p % d == 0 {
                prop_assert!(d <= b, "found squarer factoring {}x{}", p / d, d);
            }
        }
    }

    /// Blocks tile the mesh: every cell owned exactly once, owner lookup
    /// agrees with rect membership.
    #[test]
    fn layout_tiles_mesh(
        nx in 1usize..40,
        ny in 1usize..40,
        pr in 1usize..8,
        pc in 1usize..8,
    ) {
        prop_assume!(pr <= nx && pc <= ny);
        let l = BlockLayout::new_2d(nx, ny, pr, pc);
        let mut owned = vec![false; nx * ny];
        for rank in 0..l.num_ranks() {
            for (x, y) in l.local_rect(rank).cells() {
                prop_assert!(!owned[y * nx + x], "cell ({x},{y}) owned twice");
                owned[y * nx + x] = true;
                prop_assert_eq!(l.owner_of(x, y), rank);
            }
        }
        prop_assert!(owned.iter().all(|&b| b));
    }

    /// Block areas are balanced within the unavoidable rounding.
    #[test]
    fn layout_is_balanced(
        nx in 4usize..64,
        ny in 4usize..64,
        pr in 1usize..6,
        pc in 1usize..6,
    ) {
        prop_assume!(pr <= nx && pc <= ny);
        let l = BlockLayout::new_2d(nx, ny, pr, pc);
        let areas: Vec<usize> = (0..l.num_ranks()).map(|r| l.local_rect(r).area()).collect();
        let min = *areas.iter().min().unwrap();
        let max = *areas.iter().max().unwrap();
        // each dimension differs by at most one cell per block
        let bound = (nx / pr + 1) * (ny / pc + 1);
        prop_assert!(max <= bound);
        prop_assert!(min >= (nx / pr) * (ny / pc));
    }

    /// Halo plans are volume-symmetric and only send owned cells.
    #[test]
    fn halo_plan_invariants(
        nx in 2usize..24,
        ny in 2usize..24,
        pr in 1usize..5,
        pc in 1usize..5,
    ) {
        prop_assume!(pr <= nx && pc <= ny);
        let l = BlockLayout::new_2d(nx, ny, pr, pc);
        let plan = HaloPlan::build(&l);
        for rank in 0..l.num_ranks() {
            let rect = l.local_rect(rank);
            for msg in plan.sends(rank) {
                prop_assert!(msg.to != rank);
                for &((sx, sy), _) in &msg.cells {
                    prop_assert!(rect.contains(sx, sy));
                }
            }
            for &((sx, sy), _) in plan.self_copies(rank) {
                prop_assert!(rect.contains(sx, sy));
            }
            // each rank's ghost ring is fully covered: messages in +
            // self copies = ring size
            let incoming: usize = (0..l.num_ranks())
                .flat_map(|src| plan.sends(src))
                .filter(|m| m.to == rank)
                .map(|m| m.cells.len())
                .sum();
            let ring = 2 * (rect.w + 2) + 2 * rect.h;
            prop_assert_eq!(incoming + plan.self_copies(rank).len(), ring);
        }
    }

    /// Periodic grid access is the identity composed with wrapping.
    #[test]
    fn grid_periodic_access(
        w in 1usize..20,
        h in 1usize..20,
        x in -100isize..100,
        y in -100isize..100,
    ) {
        let mut g = Grid2::<f64>::zeros(w, h);
        let xw = x.rem_euclid(w as isize) as usize;
        let yw = y.rem_euclid(h as isize) as usize;
        g[(xw, yw)] = 42.0;
        prop_assert_eq!(*g.get_periodic(x, y), 42.0);
    }

    /// Local/global coordinate maps are inverse bijections.
    #[test]
    fn local_global_roundtrip(
        nx in 2usize..40,
        ny in 2usize..40,
        p in 1usize..16,
        seed in any::<u64>(),
    ) {
        let (a, b) = factor_near_square(p);
        let (pr, pc) = if nx >= ny { (a, b) } else { (b, a) };
        prop_assume!(pr <= nx && pc <= ny);
        let l = BlockLayout::new_auto(nx, ny, p);
        let rank = (seed as usize) % l.num_ranks();
        let rect = l.local_rect(rank);
        let lx = (seed >> 8) as usize % rect.w;
        let ly = (seed >> 24) as usize % rect.h;
        let (gx, gy) = l.local_to_global(rank, lx, ly);
        prop_assert_eq!(l.global_to_local(rank, gx, gy), (lx, ly));
        prop_assert_eq!(l.owner_of(gx, gy), rank);
    }
}
