//! The [`CellIndexer`] trait and the [`IndexScheme`] enum that selects an
//! indexing at runtime (experiment configurations are data, not types).

use serde::{Deserialize, Serialize};

use crate::{HilbertIndexer, MortonIndexer, RowMajorIndexer, SnakeIndexer};

/// A bijection between 2-D cell coordinates and a 1-D index.
///
/// Implementations index the cells of a `width x height` mesh with the
/// integers `0..width*height`.  `index` and `coords` must be inverses on
/// that domain; this is enforced by shared property tests.
pub trait CellIndexer: Send + Sync {
    /// Mesh width (number of cells along x).
    fn width(&self) -> usize;
    /// Mesh height (number of cells along y).
    fn height(&self) -> usize;
    /// Map cell coordinates to its 1-D curve index.
    ///
    /// # Panics
    /// Panics if `x >= width()` or `y >= height()`.
    fn index(&self, x: usize, y: usize) -> u64;
    /// Map a 1-D curve index back to cell coordinates.
    ///
    /// # Panics
    /// Panics if `idx >= width()*height()`.
    fn coords(&self, idx: u64) -> (usize, usize);

    /// Number of cells on the mesh.
    fn len(&self) -> usize {
        self.width() * self.height()
    }

    /// True when the mesh has no cells.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Runtime-selectable indexing scheme.
///
/// The experiment harness sweeps over schemes, so they need to be plain
/// data that can live in a config file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IndexScheme {
    /// 2-D Hilbert curve (the paper's proposal).
    Hilbert,
    /// Snakelike / boustrophedon row ordering (the paper's baseline).
    Snake,
    /// Plain row-major ordering.
    RowMajor,
    /// Z-order (Morton) curve.
    Morton,
}

impl IndexScheme {
    /// All schemes, in the order they appear in ablation tables.
    pub const ALL: [IndexScheme; 4] = [
        IndexScheme::Hilbert,
        IndexScheme::Snake,
        IndexScheme::RowMajor,
        IndexScheme::Morton,
    ];

    /// Construct the corresponding indexer for a `width x height` mesh.
    pub fn build(self, width: usize, height: usize) -> Box<dyn CellIndexer> {
        match self {
            IndexScheme::Hilbert => Box::new(HilbertIndexer::new(width, height)),
            IndexScheme::Snake => Box::new(SnakeIndexer::new(width, height)),
            IndexScheme::RowMajor => Box::new(RowMajorIndexer::new(width, height)),
            IndexScheme::Morton => Box::new(MortonIndexer::new(width, height)),
        }
    }

    /// Short lower-case label used in experiment output rows.
    pub fn label(self) -> &'static str {
        match self {
            IndexScheme::Hilbert => "hilbert",
            IndexScheme::Snake => "snake",
            IndexScheme::RowMajor => "rowmajor",
            IndexScheme::Morton => "morton",
        }
    }
}

impl std::fmt::Display for IndexScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_builds_correct_dimensions() {
        for scheme in IndexScheme::ALL {
            let ix = scheme.build(16, 8);
            assert_eq!(ix.width(), 16, "{scheme}");
            assert_eq!(ix.height(), 8, "{scheme}");
            assert_eq!(ix.len(), 128, "{scheme}");
            assert!(!ix.is_empty());
        }
    }

    #[test]
    fn every_scheme_is_a_bijection_on_a_small_mesh() {
        for scheme in IndexScheme::ALL {
            let ix = scheme.build(8, 4);
            let mut seen = vec![false; ix.len()];
            for y in 0..4 {
                for x in 0..8 {
                    let i = ix.index(x, y) as usize;
                    assert!(i < ix.len(), "{scheme}: index {i} out of range");
                    assert!(!seen[i], "{scheme}: index {i} assigned twice");
                    seen[i] = true;
                    assert_eq!(ix.coords(i as u64), (x, y), "{scheme}: roundtrip");
                }
            }
            assert!(seen.iter().all(|&s| s), "{scheme}: surjective");
        }
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<_> =
            IndexScheme::ALL.iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), IndexScheme::ALL.len());
    }

    #[test]
    fn display_matches_label() {
        assert_eq!(IndexScheme::Hilbert.to_string(), "hilbert");
        assert_eq!(IndexScheme::Snake.to_string(), "snake");
    }
}
