//! 2-D Hilbert curve indexing.
//!
//! The raw curve ([`xy2d`]/[`d2xy`]) is defined on a `2^order x 2^order`
//! square.  The paper's meshes are rectangular (e.g. `128 x 64`), so
//! [`HilbertIndexer`] embeds the mesh in the smallest enclosing power-of-two
//! square and *compacts* the curve: cells are ranked by their raw Hilbert
//! index, producing a bijection onto `0..width*height` that preserves curve
//! order.  Compaction keeps the key property the paper relies on — cells
//! with nearby compacted indices are spatially close — because dropping
//! out-of-mesh cells never reorders the survivors.

use crate::curve::CellIndexer;

/// Rotate/flip a quadrant so the curve recurses correctly.
///
/// `n` is the side length of the (sub)square being rotated; `rx`/`ry` are
/// the quadrant bits extracted at the current scale.
#[inline]
fn rot(n: u64, x: &mut u64, y: &mut u64, rx: u64, ry: u64) {
    if ry == 0 {
        if rx == 1 {
            *x = n.wrapping_sub(1).wrapping_sub(*x);
            *y = n.wrapping_sub(1).wrapping_sub(*y);
        }
        std::mem::swap(x, y);
    }
}

/// Convert cell coordinates to the Hilbert distance on a `2^order` square.
///
/// # Panics
/// Panics in debug builds if `x` or `y` lie outside the square.
#[inline]
pub fn xy2d(order: u32, mut x: u64, mut y: u64) -> u64 {
    let n = 1u64 << order;
    debug_assert!(x < n && y < n, "({x},{y}) outside 2^{order} square");
    let mut d = 0u64;
    let mut s = n >> 1;
    while s > 0 {
        let rx = u64::from(x & s > 0);
        let ry = u64::from(y & s > 0);
        d += s * s * ((3 * rx) ^ ry);
        rot(n, &mut x, &mut y, rx, ry);
        s >>= 1;
    }
    d
}

/// Convert a Hilbert distance back to cell coordinates on a `2^order` square.
///
/// # Panics
/// Panics in debug builds if `d >= 4^order`.
#[inline]
pub fn d2xy(order: u32, d: u64) -> (u64, u64) {
    let n = 1u64 << order;
    debug_assert!(d < n * n, "distance {d} outside 2^{order} square");
    let (mut x, mut y) = (0u64, 0u64);
    let mut t = d;
    let mut s = 1u64;
    while s < n {
        let rx = 1 & (t / 2);
        let ry = 1 & (t ^ rx);
        rot(s, &mut x, &mut y, rx, ry);
        x += s * rx;
        y += s * ry;
        t /= 4;
        s <<= 1;
    }
    (x, y)
}

/// Smallest order `k` with `2^k >= max(width, height)`.
pub fn enclosing_order(width: usize, height: usize) -> u32 {
    let side = width.max(height).max(1);
    (usize::BITS - (side - 1).leading_zeros()).max(1)
}

/// Hilbert-curve indexer for an arbitrary `width x height` mesh.
///
/// Construction is `O(w*h log(w*h))`; both [`CellIndexer::index`] and
/// [`CellIndexer::coords`] are then O(1) table lookups, which matters
/// because the scatter phase indexes every particle every iteration.
#[derive(Debug, Clone)]
pub struct HilbertIndexer {
    width: usize,
    height: usize,
    /// Row-major cell position -> compacted curve index.
    cell_to_index: Vec<u64>,
    /// Compacted curve index -> (x, y).
    index_to_cell: Vec<(u32, u32)>,
}

impl HilbertIndexer {
    /// Build the indexer for a `width x height` mesh.
    ///
    /// # Panics
    /// Panics if either dimension is zero or exceeds `u32::MAX`.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "mesh dimensions must be nonzero");
        assert!(width <= u32::MAX as usize && height <= u32::MAX as usize);
        let order = enclosing_order(width, height);
        let mut ranked: Vec<(u64, u32, u32)> = Vec::with_capacity(width * height);
        for y in 0..height {
            for x in 0..width {
                ranked.push((xy2d(order, x as u64, y as u64), x as u32, y as u32));
            }
        }
        ranked.sort_unstable_by_key(|&(raw, _, _)| raw);
        let mut cell_to_index = vec![0u64; width * height];
        let mut index_to_cell = Vec::with_capacity(width * height);
        for (compact, &(_, x, y)) in ranked.iter().enumerate() {
            cell_to_index[y as usize * width + x as usize] = compact as u64;
            index_to_cell.push((x, y));
        }
        Self {
            width,
            height,
            cell_to_index,
            index_to_cell,
        }
    }

    /// The enclosing square's curve order used internally.
    pub fn order(&self) -> u32 {
        enclosing_order(self.width, self.height)
    }
}

impl CellIndexer for HilbertIndexer {
    fn width(&self) -> usize {
        self.width
    }

    fn height(&self) -> usize {
        self.height
    }

    #[inline]
    fn index(&self, x: usize, y: usize) -> u64 {
        assert!(
            x < self.width && y < self.height,
            "cell ({x},{y}) outside mesh"
        );
        self.cell_to_index[y * self.width + x]
    }

    #[inline]
    fn coords(&self, idx: u64) -> (usize, usize) {
        let (x, y) = self.index_to_cell[idx as usize];
        (x as usize, y as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_curve_first_quadrant_order1() {
        // The order-1 curve visits (0,0) (0,1) (1,1) (1,0).
        assert_eq!(d2xy(1, 0), (0, 0));
        assert_eq!(d2xy(1, 1), (0, 1));
        assert_eq!(d2xy(1, 2), (1, 1));
        assert_eq!(d2xy(1, 3), (1, 0));
    }

    #[test]
    fn raw_curve_roundtrips_order_6() {
        let order = 6;
        let n = 1u64 << order;
        for d in 0..n * n {
            let (x, y) = d2xy(order, d);
            assert_eq!(xy2d(order, x, y), d);
        }
    }

    #[test]
    fn raw_curve_consecutive_cells_are_grid_neighbors() {
        // The defining property of a Hilbert curve: unit steps.
        let order = 5;
        let n = 1u64 << order;
        let mut prev = d2xy(order, 0);
        for d in 1..n * n {
            let cur = d2xy(order, d);
            let dist = prev.0.abs_diff(cur.0) + prev.1.abs_diff(cur.1);
            assert_eq!(dist, 1, "step {d}: {prev:?} -> {cur:?}");
            prev = cur;
        }
    }

    #[test]
    fn enclosing_order_covers_both_dimensions() {
        assert_eq!(enclosing_order(1, 1), 1);
        assert_eq!(enclosing_order(2, 2), 1);
        assert_eq!(enclosing_order(3, 2), 2);
        assert_eq!(enclosing_order(128, 64), 7);
        assert_eq!(enclosing_order(512, 256), 9);
        assert_eq!(enclosing_order(100, 300), 9);
    }

    #[test]
    fn rectangular_mesh_is_a_bijection() {
        let ix = HilbertIndexer::new(16, 8);
        let mut seen = [false; 128];
        for y in 0..8 {
            for x in 0..16 {
                let i = ix.index(x, y) as usize;
                assert!(!seen[i]);
                seen[i] = true;
                assert_eq!(ix.coords(i as u64), (x, y));
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn compaction_preserves_curve_order() {
        // Raw order of any two in-mesh cells must equal compacted order.
        let (w, h) = (13, 7); // deliberately not powers of two
        let ix = HilbertIndexer::new(w, h);
        let order = ix.order();
        let mut cells: Vec<(usize, usize)> =
            (0..h).flat_map(|y| (0..w).map(move |x| (x, y))).collect();
        cells.sort_by_key(|&(x, y)| xy2d(order, x as u64, y as u64));
        for (rank, &(x, y)) in cells.iter().enumerate() {
            assert_eq!(ix.index(x, y), rank as u64);
        }
    }

    #[test]
    fn square_power_of_two_mesh_matches_raw_curve() {
        let ix = HilbertIndexer::new(8, 8);
        for y in 0..8 {
            for x in 0..8 {
                assert_eq!(ix.index(x, y), xy2d(3, x as u64, y as u64));
            }
        }
    }

    #[test]
    #[should_panic(expected = "outside mesh")]
    fn out_of_mesh_access_panics() {
        let ix = HilbertIndexer::new(4, 4);
        ix.index(4, 0);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_dimension_panics() {
        HilbertIndexer::new(0, 4);
    }
}
