//! 3-D Hilbert curve (extension).
//!
//! The paper evaluates 2-D problems but notes (Section 5.1) that Hilbert
//! indexing "can be generalized to n-dimensions".  This module provides the
//! 3-D instantiation via Skilling's transpose algorithm
//! (J. Skilling, "Programming the Hilbert curve", AIP Conf. Proc. 707, 2004)
//! so that a 3-D PIC port can reuse the same distribution machinery.

/// A 3-D Hilbert curve over a cube of side `2^order`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hilbert3d {
    order: u32,
}

const DIM: usize = 3;

impl Hilbert3d {
    /// Curve over a `2^order` cube.
    ///
    /// # Panics
    /// Panics unless `1 <= order <= 21` (so the index fits in a `u64`).
    pub fn new(order: u32) -> Self {
        assert!(
            (1..=21).contains(&order),
            "order {order} out of range 1..=21"
        );
        Self { order }
    }

    /// Side length of the cube.
    pub fn side(&self) -> u64 {
        1 << self.order
    }

    /// Number of cells on the curve (`8^order`).
    pub fn len(&self) -> u64 {
        1u64 << (3 * self.order)
    }

    /// True when the curve has no cells (never, by construction).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Hilbert distance of the cell at `(x, y, z)`.
    ///
    /// # Panics
    /// Panics in debug builds if a coordinate is outside the cube.
    pub fn index(&self, x: u64, y: u64, z: u64) -> u64 {
        let n = self.side();
        debug_assert!(
            x < n && y < n && z < n,
            "({x},{y},{z}) outside 2^{} cube",
            self.order
        );
        let mut xs = [x, y, z];
        axes_to_transpose(&mut xs, self.order);
        interleave(&xs, self.order)
    }

    /// Cell coordinates of Hilbert distance `d`.
    ///
    /// # Panics
    /// Panics in debug builds if `d >= 8^order`.
    pub fn coords(&self, d: u64) -> (u64, u64, u64) {
        debug_assert!(d < self.len(), "distance {d} outside curve");
        let mut xs = deinterleave(d, self.order);
        transpose_to_axes(&mut xs, self.order);
        (xs[0], xs[1], xs[2])
    }
}

/// Skilling's AxesToTranspose: in-place map coordinates -> transposed index.
fn axes_to_transpose(x: &mut [u64; DIM], bits: u32) {
    let m = 1u64 << (bits - 1);
    // Inverse undo
    let mut q = m;
    while q > 1 {
        let p = q - 1;
        for i in 0..DIM {
            if x[i] & q != 0 {
                x[0] ^= p;
            } else {
                let t = (x[0] ^ x[i]) & p;
                x[0] ^= t;
                x[i] ^= t;
            }
        }
        q >>= 1;
    }
    // Gray encode
    for i in 1..DIM {
        x[i] ^= x[i - 1];
    }
    let mut t = 0u64;
    let mut q = m;
    while q > 1 {
        if x[DIM - 1] & q != 0 {
            t ^= q - 1;
        }
        q >>= 1;
    }
    for xi in x.iter_mut() {
        *xi ^= t;
    }
}

/// Skilling's TransposeToAxes: in-place map transposed index -> coordinates.
fn transpose_to_axes(x: &mut [u64; DIM], bits: u32) {
    let n = 2u64 << (bits - 1);
    // Gray decode by H ^ (H/2)
    let mut t = x[DIM - 1] >> 1;
    for i in (1..DIM).rev() {
        x[i] ^= x[i - 1];
    }
    x[0] ^= t;
    // Undo excess work
    let mut q = 2u64;
    while q != n {
        let p = q - 1;
        for i in (0..DIM).rev() {
            if x[i] & q != 0 {
                x[0] ^= p;
            } else {
                t = (x[0] ^ x[i]) & p;
                x[0] ^= t;
                x[i] ^= t;
            }
        }
        q <<= 1;
    }
}

/// Pack a transposed index into a single integer, most significant bit
/// plane first (bit `bits-1` of x[0], then of x[1], x[2], then bit `bits-2`
/// of x[0], ...).
fn interleave(x: &[u64; DIM], bits: u32) -> u64 {
    let mut out = 0u64;
    for b in (0..bits).rev() {
        for xi in x.iter() {
            out = (out << 1) | ((xi >> b) & 1);
        }
    }
    out
}

/// Inverse of [`interleave`].
fn deinterleave(d: u64, bits: u32) -> [u64; DIM] {
    let mut x = [0u64; DIM];
    let total = bits * DIM as u32;
    for pos in 0..total {
        let bit = (d >> (total - 1 - pos)) & 1;
        let axis = (pos as usize) % DIM;
        x[axis] = (x[axis] << 1) | bit;
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interleave_roundtrip() {
        for bits in 1..6u32 {
            let side = 1u64 << bits;
            for x in (0..side).step_by(3) {
                for y in (0..side).step_by(2) {
                    for z in 0..side {
                        let xs = [x, y, z];
                        assert_eq!(deinterleave(interleave(&xs, bits), bits), xs);
                    }
                }
            }
        }
    }

    #[test]
    fn roundtrip_order_3() {
        let h = Hilbert3d::new(3);
        for d in 0..h.len() {
            let (x, y, z) = h.coords(d);
            assert_eq!(h.index(x, y, z), d, "d = {d}");
        }
    }

    #[test]
    fn curve_visits_every_cell_exactly_once() {
        let h = Hilbert3d::new(2);
        let mut seen = vec![false; h.len() as usize];
        for d in 0..h.len() {
            let (x, y, z) = h.coords(d);
            let flat = ((z * h.side() + y) * h.side() + x) as usize;
            assert!(!seen[flat], "cell visited twice at d={d}");
            seen[flat] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn consecutive_cells_are_unit_steps() {
        // Defining Hilbert property in 3-D as well.
        let h = Hilbert3d::new(3);
        let mut prev = h.coords(0);
        for d in 1..h.len() {
            let cur = h.coords(d);
            let dist = prev.0.abs_diff(cur.0) + prev.1.abs_diff(cur.1) + prev.2.abs_diff(cur.2);
            assert_eq!(dist, 1, "step {d}: {prev:?} -> {cur:?}");
            prev = cur;
        }
    }

    #[test]
    fn starts_at_origin() {
        let h = Hilbert3d::new(4);
        assert_eq!(h.coords(0), (0, 0, 0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn order_zero_rejected() {
        Hilbert3d::new(0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn huge_order_rejected() {
        Hilbert3d::new(22);
    }
}
