//! 3-D indexing baselines and locality metrics (extension).
//!
//! Companions to [`crate::Hilbert3d`] for the paper's n-dimensional
//! generalization remark: a snakelike 3-D ordering (the natural extension
//! of the paper's 2-D baseline) and range-compactness statistics for
//! contiguous index ranges — the 3-D analogue of
//! [`crate::locality::range_bbox_stats`].

use crate::hilbert3d::Hilbert3d;

/// Snakelike 3-D index: x sweeps alternate with y, and xy-planes
/// alternate with z, so consecutive indices are always grid neighbours —
/// but locality holds along one dimension only, exactly like the 2-D
/// snake.
pub fn snake3d_index(side: u64, x: u64, y: u64, z: u64) -> u64 {
    debug_assert!(x < side && y < side && z < side);
    let (y_eff, x_parity) = if z.is_multiple_of(2) {
        (y, y % 2)
    } else {
        (side - 1 - y, (side - 1 - y) % 2)
    };
    let x_eff = if x_parity == 0 { x } else { side - 1 - x };
    (z * side + y_eff) * side + x_eff
}

/// Inverse of [`snake3d_index`].
pub fn snake3d_coords(side: u64, idx: u64) -> (u64, u64, u64) {
    debug_assert!(idx < side * side * side);
    let z = idx / (side * side);
    let rem = idx % (side * side);
    let y_eff = rem / side;
    let x_eff = rem % side;
    let y = if z.is_multiple_of(2) {
        y_eff
    } else {
        side - 1 - y_eff
    };
    let x_parity = y_eff % 2;
    let x = if x_parity == 0 {
        x_eff
    } else {
        side - 1 - x_eff
    };
    (x, y, z)
}

/// Plain row-major 3-D index (z-major), the weakest baseline.
pub fn rowmajor3d_index(side: u64, x: u64, y: u64, z: u64) -> u64 {
    (z * side + y) * side + x
}

/// Bounding-box statistics of equal contiguous ranges of a 3-D indexing:
/// mean bounding-box volume and mean longest/shortest edge ratio over
/// `parts` ranges of a `side^3` cube.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Range3Stats {
    /// Mean bounding-box volume (cells) per range.
    pub mean_volume: f64,
    /// Mean aspect ratio (longest edge / shortest edge).
    pub mean_aspect: f64,
    /// Mean surface area of the bounding box — the 3-D analogue of the
    /// subdomain perimeter that bounds ghost-cell communication.
    pub mean_surface: f64,
}

/// Compute [`Range3Stats`] for an index→coords function over a cube.
pub fn range3_stats<F>(side: u64, parts: usize, coords: F) -> Range3Stats
where
    F: Fn(u64) -> (u64, u64, u64),
{
    let n = side * side * side;
    assert!(parts > 0 && (parts as u64) <= n, "invalid part count");
    let mut vol_sum = 0.0;
    let mut aspect_sum = 0.0;
    let mut surf_sum = 0.0;
    for p in 0..parts as u64 {
        let lo = n * p / parts as u64;
        let hi = n * (p + 1) / parts as u64;
        let (mut min, mut max) = ([u64::MAX; 3], [0u64; 3]);
        for d in lo..hi {
            let (x, y, z) = coords(d);
            for (c, &v) in [x, y, z].iter().enumerate() {
                min[c] = min[c].min(v);
                max[c] = max[c].max(v);
            }
        }
        let e: Vec<f64> = (0..3).map(|c| (max[c] - min[c] + 1) as f64).collect();
        vol_sum += e[0] * e[1] * e[2];
        let longest = e.iter().cloned().fold(0.0f64, f64::max);
        let shortest = e.iter().cloned().fold(f64::INFINITY, f64::min);
        aspect_sum += longest / shortest;
        surf_sum += 2.0 * (e[0] * e[1] + e[1] * e[2] + e[0] * e[2]);
    }
    Range3Stats {
        mean_volume: vol_sum / parts as f64,
        mean_aspect: aspect_sum / parts as f64,
        mean_surface: surf_sum / parts as f64,
    }
}

/// Convenience: range statistics of the 3-D Hilbert curve.
pub fn hilbert3d_range_stats(order: u32, parts: usize) -> Range3Stats {
    let h = Hilbert3d::new(order);
    range3_stats(h.side(), parts, |d| h.coords(d))
}

/// Convenience: range statistics of the snakelike 3-D ordering.
pub fn snake3d_range_stats(order: u32, parts: usize) -> Range3Stats {
    let side = 1u64 << order;
    range3_stats(side, parts, |d| snake3d_coords(side, d))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snake3d_roundtrips() {
        let side = 8;
        for idx in 0..side * side * side {
            let (x, y, z) = snake3d_coords(side, idx);
            assert_eq!(snake3d_index(side, x, y, z), idx, "idx {idx}");
        }
    }

    #[test]
    fn snake3d_consecutive_are_neighbors() {
        let side = 6;
        let mut prev = snake3d_coords(side, 0);
        for idx in 1..side * side * side {
            let cur = snake3d_coords(side, idx);
            let dist = prev.0.abs_diff(cur.0) + prev.1.abs_diff(cur.1) + prev.2.abs_diff(cur.2);
            assert_eq!(dist, 1, "step {idx}: {prev:?} -> {cur:?}");
            prev = cur;
        }
    }

    #[test]
    fn snake3d_visits_every_cell_once() {
        let side = 4;
        let mut seen = vec![false; (side * side * side) as usize];
        for idx in 0..side * side * side {
            let (x, y, z) = snake3d_coords(side, idx);
            let flat = ((z * side + y) * side + x) as usize;
            assert!(!seen[flat]);
            seen[flat] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn hilbert3d_ranges_are_more_compact_than_snake3d() {
        // the 3-D analogue of the paper's Section 6.3 argument: Hilbert
        // subdomains have smaller bounding surfaces than snakelike slabs
        let (order, parts) = (4, 16);
        let h = hilbert3d_range_stats(order, parts);
        let s = snake3d_range_stats(order, parts);
        assert!(
            h.mean_surface < s.mean_surface,
            "hilbert surface {} !< snake surface {}",
            h.mean_surface,
            s.mean_surface
        );
        assert!(
            h.mean_aspect < s.mean_aspect,
            "hilbert aspect {} !< snake aspect {}",
            h.mean_aspect,
            s.mean_aspect
        );
    }

    #[test]
    fn power_of_two_hilbert_split_fills_octants() {
        // 8 ranges of an order-k cube are exactly the 8 sub-cubes
        let stats = hilbert3d_range_stats(3, 8);
        assert!((stats.mean_aspect - 1.0).abs() < 1e-12);
        assert!((stats.mean_volume - 64.0).abs() < 1e-12);
    }

    #[test]
    fn rowmajor3d_is_plain_lexicographic() {
        assert_eq!(rowmajor3d_index(4, 0, 0, 0), 0);
        assert_eq!(rowmajor3d_index(4, 3, 0, 0), 3);
        assert_eq!(rowmajor3d_index(4, 0, 1, 0), 4);
        assert_eq!(rowmajor3d_index(4, 0, 0, 1), 16);
    }
}
