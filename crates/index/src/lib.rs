//! # pic-index — space-filling-curve cell indexing
//!
//! The IPPS'96 paper distributes particles over processors by (1) indexing
//! every cell of the computational mesh along a space-filling curve, (2)
//! assigning each particle the index of the cell that encloses it, and (3)
//! sorting the global particle array by that index and splitting it into
//! equal-size contiguous chunks.  The quality of the resulting partition —
//! how spatially compact each processor's particle subdomain is, and hence
//! how much off-processor communication the scatter/gather phases generate —
//! is entirely determined by the *locality* of the indexing scheme.
//!
//! This crate provides the paper's two contenders plus two extra baselines
//! used by the locality ablation:
//!
//! * [`HilbertIndexer`] — the 2-D Hilbert curve (the paper's proposal);
//! * [`SnakeIndexer`] — snakelike (boustrophedon) row ordering (the paper's
//!   comparison baseline);
//! * [`RowMajorIndexer`] — plain row-major ordering;
//! * [`MortonIndexer`] — Z-order / Morton curve;
//!
//! a 3-D Hilbert curve ([`hilbert3d`]) since the paper notes the scheme
//! generalizes to n dimensions, and [`locality`] metrics that quantify why
//! Hilbert wins (smaller index jumps between spatial neighbours, lower
//! perimeter-to-area ratios of contiguous index ranges).
//!
//! All indexers are exact bijections between cell coordinates and
//! `0..width*height` and are validated by property tests.
//!
//! ```
//! use pic_index::{CellIndexer, HilbertIndexer};
//!
//! // an 8x8 mesh indexed along the Hilbert curve
//! let h = HilbertIndexer::new(8, 8);
//! let idx = h.index(3, 5);
//! assert_eq!(h.coords(idx), (3, 5));
//! ```

#![warn(missing_docs)]

pub mod curve;
pub mod hilbert2d;
pub mod hilbert3d;
pub mod index3d;
pub mod locality;
pub mod morton;
pub mod rowmajor;
pub mod snake;

pub use curve::{CellIndexer, IndexScheme};
pub use hilbert2d::HilbertIndexer;
pub use hilbert3d::Hilbert3d;
pub use index3d::{
    hilbert3d_range_stats, range3_stats, snake3d_coords, snake3d_index, snake3d_range_stats,
    Range3Stats,
};
pub use locality::{neighbor_jump_stats, range_bbox_stats, JumpStats, RangeStats};
pub use morton::MortonIndexer;
pub use rowmajor::RowMajorIndexer;
pub use snake::SnakeIndexer;
