//! Locality metrics for indexing schemes.
//!
//! Two quantities predict the communication behaviour the paper measures:
//!
//! * **Neighbour jump** — how far apart the indices of spatially adjacent
//!   cells are.  Small jumps in *both* dimensions mean an equal split of
//!   the sorted particle array yields compact subdomains.
//! * **Range bounding box** — take a contiguous index range (exactly what a
//!   processor is assigned) and measure the bounding box / perimeter of the
//!   cells it covers.  The perimeter bounds the ghost-point count, i.e. the
//!   scatter/gather communication volume (paper Section 6.3: snakelike
//!   subdomains are "rectangular in nature with high aspect ratios" and
//!   have "boundaries with larger perimeters and greater communication
//!   cost").

use crate::curve::CellIndexer;

/// Statistics of |index(cell) - index(neighbour)| over all 4-neighbour
/// pairs of the mesh.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JumpStats {
    /// Mean absolute index difference between adjacent cells.
    pub mean: f64,
    /// Maximum absolute index difference.
    pub max: u64,
    /// Fraction of adjacent pairs with index difference exactly 1.
    pub unit_fraction: f64,
}

/// Compute [`JumpStats`] for an indexer.
pub fn neighbor_jump_stats(ix: &dyn CellIndexer) -> JumpStats {
    let (w, h) = (ix.width(), ix.height());
    let mut sum = 0u128;
    let mut count = 0u64;
    let mut max = 0u64;
    let mut units = 0u64;
    for y in 0..h {
        for x in 0..w {
            let here = ix.index(x, y);
            if x + 1 < w {
                let d = here.abs_diff(ix.index(x + 1, y));
                sum += d as u128;
                count += 1;
                max = max.max(d);
                units += u64::from(d == 1);
            }
            if y + 1 < h {
                let d = here.abs_diff(ix.index(x, y + 1));
                sum += d as u128;
                count += 1;
                max = max.max(d);
                units += u64::from(d == 1);
            }
        }
    }
    JumpStats {
        mean: if count == 0 {
            0.0
        } else {
            sum as f64 / count as f64
        },
        max,
        unit_fraction: if count == 0 {
            0.0
        } else {
            units as f64 / count as f64
        },
    }
}

/// Shape statistics of the cell sets covered by equal contiguous index
/// ranges (one range per "processor").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RangeStats {
    /// Mean bounding-box aspect ratio (long side / short side) over ranges.
    pub mean_aspect: f64,
    /// Mean bounding-box perimeter over ranges, in cells.
    pub mean_perimeter: f64,
    /// Mean ratio of range size to bounding-box area (1.0 = perfectly
    /// filled box; lower values mean stragglers far from the core).
    pub mean_fill: f64,
}

/// Split the curve into `parts` equal contiguous ranges and compute
/// [`RangeStats`].
///
/// # Panics
/// Panics if `parts` is zero or exceeds the number of cells.
pub fn range_bbox_stats(ix: &dyn CellIndexer, parts: usize) -> RangeStats {
    let n = ix.len();
    assert!(
        parts > 0 && parts <= n,
        "parts {parts} invalid for {n} cells"
    );
    let mut aspect_sum = 0.0;
    let mut perim_sum = 0.0;
    let mut fill_sum = 0.0;
    for p in 0..parts {
        let lo = (n * p / parts) as u64;
        let hi = (n * (p + 1) / parts) as u64;
        let (mut minx, mut miny) = (usize::MAX, usize::MAX);
        let (mut maxx, mut maxy) = (0usize, 0usize);
        for d in lo..hi {
            let (x, y) = ix.coords(d);
            minx = minx.min(x);
            miny = miny.min(y);
            maxx = maxx.max(x);
            maxy = maxy.max(y);
        }
        let bw = (maxx - minx + 1) as f64;
        let bh = (maxy - miny + 1) as f64;
        aspect_sum += bw.max(bh) / bw.min(bh);
        perim_sum += 2.0 * (bw + bh);
        fill_sum += (hi - lo) as f64 / (bw * bh);
    }
    RangeStats {
        mean_aspect: aspect_sum / parts as f64,
        mean_perimeter: perim_sum / parts as f64,
        mean_fill: fill_sum / parts as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HilbertIndexer, RowMajorIndexer, SnakeIndexer};

    #[test]
    fn hilbert_mean_jump_smaller_than_snake() {
        let (w, h) = (32, 16);
        let hil = neighbor_jump_stats(&HilbertIndexer::new(w, h));
        let snk = neighbor_jump_stats(&SnakeIndexer::new(w, h));
        assert!(
            hil.mean < snk.mean,
            "hilbert {} !< snake {}",
            hil.mean,
            snk.mean
        );
    }

    #[test]
    fn rowmajor_max_jump_is_width_scale() {
        let rm = neighbor_jump_stats(&RowMajorIndexer::new(16, 16));
        // vertical neighbours differ by exactly the width
        assert_eq!(rm.max, 16);
    }

    #[test]
    fn unit_fraction_reflects_curve_steps() {
        // Hilbert visits neighbours consecutively, so a good share of
        // adjacent pairs have distance exactly 1.
        let hil = neighbor_jump_stats(&HilbertIndexer::new(16, 16));
        assert!(hil.unit_fraction > 0.25, "{}", hil.unit_fraction);
    }

    #[test]
    fn hilbert_ranges_are_squarer_than_snake() {
        let (w, h, parts) = (32, 32, 16);
        let hil = range_bbox_stats(&HilbertIndexer::new(w, h), parts);
        let snk = range_bbox_stats(&SnakeIndexer::new(w, h), parts);
        assert!(
            hil.mean_aspect < snk.mean_aspect,
            "hilbert aspect {} !< snake aspect {}",
            hil.mean_aspect,
            snk.mean_aspect
        );
        assert!(
            hil.mean_perimeter < snk.mean_perimeter,
            "hilbert perim {} !< snake perim {}",
            hil.mean_perimeter,
            snk.mean_perimeter
        );
    }

    #[test]
    fn hilbert_power_of_two_split_fills_boxes() {
        // 16 ranges of an order-5 square are exactly the 16 subsquares.
        let stats = range_bbox_stats(&HilbertIndexer::new(32, 32), 16);
        assert!((stats.mean_fill - 1.0).abs() < 1e-12);
        assert!((stats.mean_aspect - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "invalid")]
    fn zero_parts_panics() {
        range_bbox_stats(&HilbertIndexer::new(8, 8), 0);
    }
}
