//! Morton (Z-order) indexing — an extra locality baseline for ablations.
//!
//! Morton order maintains proximity along both dimensions like Hilbert, but
//! has long diagonal jumps at block boundaries; the locality ablation bench
//! quantifies how much that costs relative to Hilbert.
//!
//! Like [`crate::HilbertIndexer`], the raw curve lives on an enclosing
//! power-of-two square and is compacted to a bijection on the mesh.

use crate::curve::CellIndexer;
use crate::hilbert2d::enclosing_order;

/// Interleave the low 32 bits of `v` with zeros (bit i -> bit 2i).
#[inline]
fn part1by1(v: u64) -> u64 {
    let mut v = v & 0xffff_ffff;
    v = (v | (v << 16)) & 0x0000_ffff_0000_ffff;
    v = (v | (v << 8)) & 0x00ff_00ff_00ff_00ff;
    v = (v | (v << 4)) & 0x0f0f_0f0f_0f0f_0f0f;
    v = (v | (v << 2)) & 0x3333_3333_3333_3333;
    v = (v | (v << 1)) & 0x5555_5555_5555_5555;
    v
}

/// Inverse of [`part1by1`]: collect every other bit.
#[inline]
fn compact1by1(v: u64) -> u64 {
    let mut v = v & 0x5555_5555_5555_5555;
    v = (v | (v >> 1)) & 0x3333_3333_3333_3333;
    v = (v | (v >> 2)) & 0x0f0f_0f0f_0f0f_0f0f;
    v = (v | (v >> 4)) & 0x00ff_00ff_00ff_00ff;
    v = (v | (v >> 8)) & 0x0000_ffff_0000_ffff;
    v = (v | (v >> 16)) & 0x0000_0000_ffff_ffff;
    v
}

/// Morton code of `(x, y)`.
#[inline]
pub fn morton_encode(x: u64, y: u64) -> u64 {
    part1by1(x) | (part1by1(y) << 1)
}

/// Coordinates of a Morton code.
#[inline]
pub fn morton_decode(code: u64) -> (u64, u64) {
    (compact1by1(code), compact1by1(code >> 1))
}

/// Morton-order indexer for an arbitrary `width x height` mesh.
#[derive(Debug, Clone)]
pub struct MortonIndexer {
    width: usize,
    height: usize,
    cell_to_index: Vec<u64>,
    index_to_cell: Vec<(u32, u32)>,
}

impl MortonIndexer {
    /// Build the indexer.
    ///
    /// # Panics
    /// Panics if either dimension is zero or exceeds `u32::MAX`.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "mesh dimensions must be nonzero");
        assert!(width <= u32::MAX as usize && height <= u32::MAX as usize);
        // `enclosing_order` isn't needed for correctness of Morton codes,
        // but asserting the mesh fits keeps behaviour aligned with Hilbert.
        let _ = enclosing_order(width, height);
        let mut ranked: Vec<(u64, u32, u32)> = Vec::with_capacity(width * height);
        for y in 0..height {
            for x in 0..width {
                ranked.push((morton_encode(x as u64, y as u64), x as u32, y as u32));
            }
        }
        ranked.sort_unstable_by_key(|&(raw, _, _)| raw);
        let mut cell_to_index = vec![0u64; width * height];
        let mut index_to_cell = Vec::with_capacity(width * height);
        for (compact, &(_, x, y)) in ranked.iter().enumerate() {
            cell_to_index[y as usize * width + x as usize] = compact as u64;
            index_to_cell.push((x, y));
        }
        Self {
            width,
            height,
            cell_to_index,
            index_to_cell,
        }
    }
}

impl CellIndexer for MortonIndexer {
    fn width(&self) -> usize {
        self.width
    }

    fn height(&self) -> usize {
        self.height
    }

    #[inline]
    fn index(&self, x: usize, y: usize) -> u64 {
        assert!(
            x < self.width && y < self.height,
            "cell ({x},{y}) outside mesh"
        );
        self.cell_to_index[y * self.width + x]
    }

    #[inline]
    fn coords(&self, idx: u64) -> (usize, usize) {
        let (x, y) = self.index_to_cell[idx as usize];
        (x as usize, y as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_matches_bit_interleave() {
        assert_eq!(morton_encode(0, 0), 0);
        assert_eq!(morton_encode(1, 0), 1);
        assert_eq!(morton_encode(0, 1), 2);
        assert_eq!(morton_encode(1, 1), 3);
        assert_eq!(morton_encode(2, 0), 4);
        // x = 101, y = 011 -> bits interleave to y2 x2 y1 x1 y0 x0 = 011011
        assert_eq!(morton_encode(0b101, 0b011), 0b011011);
    }

    #[test]
    fn encode_decode_roundtrip() {
        for x in 0..64u64 {
            for y in 0..64u64 {
                assert_eq!(morton_decode(morton_encode(x, y)), (x, y));
            }
        }
    }

    #[test]
    fn large_coordinates_roundtrip() {
        for &(x, y) in &[
            (u32::MAX as u64, 0),
            (0, u32::MAX as u64),
            (123_456_789, 987_654_321),
        ] {
            assert_eq!(morton_decode(morton_encode(x, y)), (x, y));
        }
    }

    #[test]
    fn indexer_is_a_bijection() {
        let ix = MortonIndexer::new(12, 10);
        let mut seen = vec![false; ix.len()];
        for y in 0..10 {
            for x in 0..12 {
                let i = ix.index(x, y) as usize;
                assert!(!seen[i]);
                seen[i] = true;
                assert_eq!(ix.coords(i as u64), (x, y));
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn square_mesh_matches_raw_codes_in_order() {
        // On a full power-of-two square, compaction is the identity ranking.
        let ix = MortonIndexer::new(8, 8);
        for y in 0..8 {
            for x in 0..8 {
                assert_eq!(ix.index(x, y), morton_encode(x as u64, y as u64));
            }
        }
    }
}
