//! Plain row-major indexing — the weakest locality baseline.
//!
//! Mentioned in the paper (Figure 9) as the ordering that keeps indices
//! close only along rows; the jump from the end of one row to the start of
//! the next is a full mesh width, so contiguous index ranges can span the
//! whole x extent.

use crate::curve::CellIndexer;

/// Row-major indexer over a `width x height` mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RowMajorIndexer {
    width: usize,
    height: usize,
}

impl RowMajorIndexer {
    /// Build the indexer.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "mesh dimensions must be nonzero");
        Self { width, height }
    }
}

impl CellIndexer for RowMajorIndexer {
    fn width(&self) -> usize {
        self.width
    }

    fn height(&self) -> usize {
        self.height
    }

    #[inline]
    fn index(&self, x: usize, y: usize) -> u64 {
        assert!(
            x < self.width && y < self.height,
            "cell ({x},{y}) outside mesh"
        );
        (y * self.width + x) as u64
    }

    #[inline]
    fn coords(&self, idx: u64) -> (usize, usize) {
        let idx = idx as usize;
        assert!(idx < self.len(), "index {idx} outside mesh");
        (idx % self.width, idx / self.width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_manual_formula() {
        let r = RowMajorIndexer::new(5, 3);
        assert_eq!(r.index(0, 0), 0);
        assert_eq!(r.index(4, 0), 4);
        assert_eq!(r.index(0, 1), 5);
        assert_eq!(r.index(4, 2), 14);
    }

    #[test]
    fn roundtrip_full_mesh() {
        let r = RowMajorIndexer::new(6, 4);
        for i in 0..r.len() as u64 {
            let (x, y) = r.coords(i);
            assert_eq!(r.index(x, y), i);
        }
    }
}
