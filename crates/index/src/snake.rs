//! Snakelike (boustrophedon) indexing — the paper's comparison baseline.
//!
//! Rows are traversed left-to-right and right-to-left alternately so that
//! consecutive indices are always grid neighbours, but locality is only
//! maintained along one dimension: index distance between vertical
//! neighbours is O(width).  The paper (Section 6.3) shows this produces
//! particle subdomains that are thin rectangles with high aspect ratios and
//! correspondingly larger communication perimeters.

use crate::curve::CellIndexer;

/// Snakelike indexer over a `width x height` mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnakeIndexer {
    width: usize,
    height: usize,
}

impl SnakeIndexer {
    /// Build the indexer.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "mesh dimensions must be nonzero");
        Self { width, height }
    }
}

impl CellIndexer for SnakeIndexer {
    fn width(&self) -> usize {
        self.width
    }

    fn height(&self) -> usize {
        self.height
    }

    #[inline]
    fn index(&self, x: usize, y: usize) -> u64 {
        assert!(
            x < self.width && y < self.height,
            "cell ({x},{y}) outside mesh"
        );
        let x_in_row = if y.is_multiple_of(2) {
            x
        } else {
            self.width - 1 - x
        };
        (y * self.width + x_in_row) as u64
    }

    #[inline]
    fn coords(&self, idx: u64) -> (usize, usize) {
        let idx = idx as usize;
        assert!(idx < self.len(), "index {idx} outside mesh");
        let y = idx / self.width;
        let r = idx % self.width;
        let x = if y.is_multiple_of(2) {
            r
        } else {
            self.width - 1 - r
        };
        (x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_two_rows_snake() {
        let s = SnakeIndexer::new(4, 4);
        // row 0 left-to-right
        assert_eq!(s.index(0, 0), 0);
        assert_eq!(s.index(3, 0), 3);
        // row 1 right-to-left
        assert_eq!(s.index(3, 1), 4);
        assert_eq!(s.index(0, 1), 7);
    }

    #[test]
    fn consecutive_indices_are_grid_neighbors() {
        let s = SnakeIndexer::new(7, 5);
        let mut prev = s.coords(0);
        for d in 1..s.len() as u64 {
            let cur = s.coords(d);
            assert_eq!(prev.0.abs_diff(cur.0) + prev.1.abs_diff(cur.1), 1);
            prev = cur;
        }
    }

    #[test]
    fn roundtrip_full_mesh() {
        let s = SnakeIndexer::new(9, 6);
        for y in 0..6 {
            for x in 0..9 {
                assert_eq!(s.coords(s.index(x, y)), (x, y));
            }
        }
    }

    #[test]
    #[should_panic(expected = "outside mesh")]
    fn coords_out_of_range_panics() {
        SnakeIndexer::new(3, 3).coords(9);
    }
}
