//! Property tests for the indexing schemes: bijectivity, inverse
//! consistency, and the curve-order invariants the partitioner relies on.

use pic_index::hilbert2d::{d2xy, xy2d};
use pic_index::{Hilbert3d, IndexScheme};
use proptest::prelude::*;

proptest! {
    /// Raw 2-D Hilbert conversion is self-inverse on random squares.
    #[test]
    fn hilbert2d_raw_roundtrip(order in 1u32..12, seed in any::<u64>()) {
        let n = 1u64 << order;
        let x = seed % n;
        let y = (seed >> 32) % n;
        let d = xy2d(order, x, y);
        prop_assert!(d < n * n);
        prop_assert_eq!(d2xy(order, d), (x, y));
    }

    /// Consecutive raw Hilbert indices are always grid neighbours.
    #[test]
    fn hilbert2d_unit_steps(order in 1u32..10, seed in any::<u64>()) {
        let n = 1u64 << order;
        let d = seed % (n * n - 1);
        let a = d2xy(order, d);
        let b = d2xy(order, d + 1);
        prop_assert_eq!(a.0.abs_diff(b.0) + a.1.abs_diff(b.1), 1);
    }

    /// Every scheme round-trips on arbitrary rectangular meshes.
    #[test]
    fn schemes_roundtrip(
        w in 1usize..80,
        h in 1usize..80,
        seed in any::<u64>(),
    ) {
        for scheme in IndexScheme::ALL {
            let ix = scheme.build(w, h);
            let x = (seed as usize) % w;
            let y = ((seed >> 32) as usize) % h;
            let d = ix.index(x, y);
            prop_assert!(d < (w * h) as u64, "{}: index out of range", scheme);
            prop_assert_eq!(ix.coords(d), (x, y), "{}: roundtrip", scheme);
        }
    }

    /// Every scheme is injective: two distinct cells never share an index.
    #[test]
    fn schemes_injective(
        w in 1usize..40,
        h in 1usize..40,
        seed in any::<u64>(),
    ) {
        let (x1, y1) = ((seed as usize) % w, ((seed >> 16) as usize) % h);
        let (x2, y2) = (((seed >> 32) as usize) % w, ((seed >> 48) as usize) % h);
        prop_assume!((x1, y1) != (x2, y2));
        for scheme in IndexScheme::ALL {
            let ix = scheme.build(w, h);
            prop_assert_ne!(ix.index(x1, y1), ix.index(x2, y2), "{}", scheme);
        }
    }

    /// 3-D Hilbert round-trips and stays in range.
    #[test]
    fn hilbert3d_roundtrip(order in 1u32..8, seed in any::<u64>()) {
        let h = Hilbert3d::new(order);
        let n = h.side();
        let x = seed % n;
        let y = (seed >> 21) % n;
        let z = (seed >> 42) % n;
        let d = h.index(x, y, z);
        prop_assert!(d < h.len());
        prop_assert_eq!(h.coords(d), (x, y, z));
    }

    /// 3-D Hilbert takes unit steps.
    #[test]
    fn hilbert3d_unit_steps(order in 1u32..6, seed in any::<u64>()) {
        let h = Hilbert3d::new(order);
        let d = seed % (h.len() - 1);
        let a = h.coords(d);
        let b = h.coords(d + 1);
        let dist = a.0.abs_diff(b.0) + a.1.abs_diff(b.1) + a.2.abs_diff(b.2);
        prop_assert_eq!(dist, 1);
    }
}
