//! Per-rank simulated clocks.
//!
//! Each rank accumulates modeled compute and communication seconds
//! separately; the figure harness needs the split because the paper's
//! "overhead" figures (21, 22) plot `execution time - computation time`.

use serde::{Deserialize, Serialize};

/// Simulated time of one virtual rank.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Clock {
    /// Modeled seconds spent computing.
    pub compute_s: f64,
    /// Modeled seconds spent communicating (startup + transfer).
    pub comm_s: f64,
}

impl Clock {
    /// Total modeled time.
    #[inline]
    pub fn total_s(&self) -> f64 {
        self.compute_s + self.comm_s
    }

    /// Advance the compute component.
    #[inline]
    pub fn advance_compute(&mut self, s: f64) {
        debug_assert!(s >= 0.0, "negative compute advance {s}");
        self.compute_s += s;
    }

    /// Advance the communication component.
    #[inline]
    pub fn advance_comm(&mut self, s: f64) {
        debug_assert!(s >= 0.0, "negative comm advance {s}");
        self.comm_s += s;
    }

    /// Synchronize this clock up to a barrier instant: idle wait counts as
    /// communication time, matching how the paper's measured "overhead"
    /// swallows load-imbalance stalls.
    #[inline]
    pub fn sync_to(&mut self, barrier_total_s: f64) {
        let gap = barrier_total_s - self.total_s();
        if gap > 0.0 {
            self.comm_s += gap;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_accumulate() {
        let mut c = Clock::default();
        c.advance_compute(1.0);
        c.advance_comm(0.5);
        c.advance_compute(0.25);
        assert!((c.total_s() - 1.75).abs() < 1e-12);
        assert!((c.compute_s - 1.25).abs() < 1e-12);
    }

    #[test]
    fn sync_charges_idle_to_comm() {
        let mut c = Clock {
            compute_s: 1.0,
            comm_s: 0.0,
        };
        c.sync_to(3.0);
        assert!((c.comm_s - 2.0).abs() < 1e-12);
        assert!((c.total_s() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn sync_to_past_is_a_noop() {
        let mut c = Clock {
            compute_s: 5.0,
            comm_s: 1.0,
        };
        c.sync_to(2.0);
        assert!((c.total_s() - 6.0).abs() < 1e-12);
    }
}
