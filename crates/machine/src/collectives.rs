//! Global collectives with modeled costs.
//!
//! The paper's algorithms use two collectives: **global concatenation**
//! (line 1 of `Bucket_incremental_sorting`, to gather all ranks' bucket
//! boundaries) and the global sums of the redistribution bookkeeping.
//! Under the two-level model a recursive-doubling implementation costs
//! each rank `stages * tau + (p - 1) * share_bytes * mu`, with `stages`
//! depending on the topology.

use crate::clock::Clock;
use crate::machine::Machine;
use crate::stats::{PhaseKind, SuperstepStats};
use crate::trace::{SpanEvent, SuperstepEvent, TraceEvent};

impl<S: Send> Machine<S> {
    /// Charge every rank for a collective moving `share_bytes` per rank
    /// and synchronize the clocks.  Used internally by the typed
    /// collectives below.
    fn charge_collective(&mut self, phase: PhaseKind, share_bytes: usize) {
        let cfg = *self.config();
        let p = cfg.ranks;
        let stages = cfg.topology.collective_stages(p) as f64;
        let comm = if p > 1 {
            stages * cfg.tau + ((p - 1) * share_bytes) as f64 * cfg.mu
        } else {
            0.0
        };
        let start = self.elapsed_s();
        for c in self.clocks_mut() {
            c.advance_comm(comm);
        }
        let per_rank_msgs = if p > 1 { stages as u64 } else { 0 };
        let per_rank_bytes = ((p - 1) * share_bytes) as u64;
        let total_msgs = if p > 1 { stages as u64 * p as u64 } else { 0 };
        let total_bytes = ((p - 1) * share_bytes * p) as u64;
        self.stats_mut().push(SuperstepStats {
            phase,
            max_msgs_sent: per_rank_msgs,
            max_msgs_recv: per_rank_msgs,
            max_bytes_sent: per_rank_bytes,
            max_bytes_recv: per_rank_bytes,
            total_msgs,
            total_bytes,
            max_compute_s: 0.0,
            max_comm_s: comm,
            elapsed_s: comm,
        });
        self.metrics_collective(phase, comm, share_bytes as u64, total_msgs, total_bytes);
        self.trace_collective(
            phase,
            start,
            comm,
            per_rank_msgs,
            per_rank_bytes,
            total_msgs,
            total_bytes,
        );
    }

    /// Feed an installed metrics registry with one collective superstep
    /// (uniform pair attribution; see [`crate::metrics`]).
    fn metrics_collective(
        &mut self,
        phase: PhaseKind,
        elapsed_s: f64,
        share_bytes: u64,
        total_msgs: u64,
        total_bytes: u64,
    ) {
        if let Some(metrics) = self.metrics() {
            metrics.with(|reg| {
                reg.observe_collective(phase, elapsed_s, share_bytes, total_msgs, total_bytes);
            });
        }
    }

    /// Emit the trace events of a collective: one uniform span per rank
    /// (collectives charge every rank identically under the model) plus
    /// the aggregated superstep event.
    #[allow(clippy::too_many_arguments)]
    fn trace_collective(
        &mut self,
        phase: PhaseKind,
        start: f64,
        comm: f64,
        per_rank_msgs: u64,
        per_rank_bytes: u64,
        total_msgs: u64,
        total_bytes: u64,
    ) {
        if !self.has_recorder() {
            return;
        }
        let p = self.config().ranks;
        let step = self.next_trace_step();
        let epoch = self.fault_epoch();
        for rank in 0..p {
            self.record_event(&TraceEvent::Span(SpanEvent {
                rank,
                phase,
                superstep: step,
                epoch,
                start_s: start,
                compute_s: 0.0,
                comm_s: comm,
                end_s: start + comm,
                msgs_sent: per_rank_msgs,
                msgs_recv: per_rank_msgs,
                bytes_sent: per_rank_bytes,
                bytes_recv: per_rank_bytes,
            }));
        }
        self.record_event(&TraceEvent::Superstep(SuperstepEvent {
            phase,
            superstep: step,
            epoch,
            start_s: start,
            elapsed_s: comm,
            max_compute_s: 0.0,
            max_comm_s: comm,
            total_msgs,
            total_bytes,
            collective: true,
        }));
    }

    /// Global concatenation: every rank contributes one value extracted
    /// from its state, every rank receives the full vector (indexed by
    /// rank).  `bytes_per_item` models the wire size of one contribution.
    pub fn allgather<T, F, G>(
        &mut self,
        phase: PhaseKind,
        bytes_per_item: usize,
        extract: F,
        apply: G,
    ) where
        T: Clone + Send,
        F: Fn(usize, &S) -> T,
        G: Fn(usize, &mut S, &[T]),
    {
        let gathered: Vec<T> = self
            .ranks()
            .iter()
            .enumerate()
            .map(|(r, s)| extract(r, s))
            .collect();
        for (r, s) in self.ranks_mut().iter_mut().enumerate() {
            apply(r, s, &gathered);
        }
        self.charge_collective(phase, bytes_per_item);
    }

    /// Global concatenation of *vectors*: rank `r` contributes a `Vec<T>`;
    /// every rank receives the concatenation in rank order.  The modeled
    /// share is the maximum contribution size (recursive doubling is
    /// bottlenecked by the largest share).
    pub fn allgatherv<T, F, G>(
        &mut self,
        phase: PhaseKind,
        bytes_per_item: usize,
        extract: F,
        apply: G,
    ) where
        T: Clone + Send,
        F: Fn(usize, &S) -> Vec<T>,
        G: Fn(usize, &mut S, &[T]),
    {
        let parts: Vec<Vec<T>> = self
            .ranks()
            .iter()
            .enumerate()
            .map(|(r, s)| extract(r, s))
            .collect();
        let max_share = parts.iter().map(Vec::len).max().unwrap_or(0);
        let concat: Vec<T> = parts.into_iter().flatten().collect();
        for (r, s) in self.ranks_mut().iter_mut().enumerate() {
            apply(r, s, &concat);
        }
        self.charge_collective(phase, max_share * bytes_per_item);
    }

    /// All-reduce with a caller-supplied fold, 8-byte shares (one f64/u64).
    pub fn allreduce<T, F, R, G>(&mut self, phase: PhaseKind, extract: F, reduce: R, apply: G)
    where
        T: Clone + Send,
        F: Fn(usize, &S) -> T,
        R: Fn(T, T) -> T,
        G: Fn(usize, &mut S, &T),
    {
        let mut it = self.ranks().iter().enumerate().map(|(r, s)| extract(r, s));
        let first = it.next().expect("machine has at least one rank");
        let folded = it.fold(first, reduce);
        for (r, s) in self.ranks_mut().iter_mut().enumerate() {
            apply(r, s, &folded);
        }
        self.charge_collective(phase, 8);
    }

    /// Element-wise all-reduce of a per-rank array (e.g. the replicated
    /// mesh's current grids in the Lubeck & Faber baseline): every rank
    /// contributes a vector, all receive the element-wise fold.  Each
    /// rank is charged `stages * (tau + share_bytes * mu)` — a pipelined
    /// tree reduction over the whole array, the dominant cost of the
    /// replicated-grid method at scale.
    ///
    /// # Panics
    /// Panics if ranks contribute arrays of different lengths.
    pub fn allreduce_elementwise<T, F, R, G>(
        &mut self,
        phase: PhaseKind,
        share_bytes: usize,
        extract: F,
        reduce: R,
        apply: G,
    ) where
        T: Clone + Send,
        F: Fn(usize, &S) -> Vec<T>,
        R: Fn(&T, &T) -> T,
        G: Fn(usize, &mut S, &[T]),
    {
        let mut it = self.ranks().iter().enumerate().map(|(r, s)| extract(r, s));
        let mut acc = it.next().expect("machine has at least one rank");
        for v in it {
            assert_eq!(v.len(), acc.len(), "ragged allreduce contributions");
            for (a, b) in acc.iter_mut().zip(&v) {
                *a = reduce(a, b);
            }
        }
        for (r, s) in self.ranks_mut().iter_mut().enumerate() {
            apply(r, s, &acc);
        }
        // charge a pipelined tree: stages * (tau + share * mu)
        let cfg = *self.config();
        let p = cfg.ranks;
        let stages = cfg.topology.collective_stages(p) as f64;
        let comm = if p > 1 {
            stages * (cfg.tau + share_bytes as f64 * cfg.mu)
        } else {
            0.0
        };
        let start = self.elapsed_s();
        for c in self.clocks_mut() {
            c.advance_comm(comm);
        }
        let per_rank_msgs = if p > 1 { stages as u64 } else { 0 };
        let per_rank_bytes = (stages as u64) * share_bytes as u64;
        let total_msgs = if p > 1 { stages as u64 * p as u64 } else { 0 };
        let total_bytes = (stages as u64) * (share_bytes * p) as u64;
        self.stats_mut().push(SuperstepStats {
            phase,
            max_msgs_sent: per_rank_msgs,
            max_msgs_recv: per_rank_msgs,
            max_bytes_sent: per_rank_bytes,
            max_bytes_recv: per_rank_bytes,
            total_msgs,
            total_bytes,
            max_compute_s: 0.0,
            max_comm_s: comm,
            elapsed_s: comm,
        });
        self.metrics_collective(phase, comm, share_bytes as u64, total_msgs, total_bytes);
        self.trace_collective(
            phase,
            start,
            comm,
            per_rank_msgs,
            per_rank_bytes,
            total_msgs,
            total_bytes,
        );
    }

    /// Barrier: level all clocks to the slowest rank (idle -> comm).
    pub fn barrier(&mut self) {
        let barrier = self.elapsed_s();
        for c in self.clocks_mut() {
            c.sync_to(barrier);
        }
    }

    /// Mutable clock access for the collectives (crate-internal).
    pub(crate) fn clocks_mut(&mut self) -> &mut [Clock] {
        // Safety note: plain field access; lives here to keep `machine.rs`
        // field privacy intact from the outside.
        self.clocks_mut_impl()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::ExecMode;
    use crate::MachineConfig;

    fn cfg(p: usize) -> MachineConfig {
        MachineConfig {
            ranks: p,
            tau: 1.0,
            mu: 0.1,
            delta: 0.01,
            topology: crate::Topology::FullyConnected,
        }
    }

    #[test]
    fn allgather_distributes_all_values() {
        let mut m = Machine::new(cfg(4), ExecMode::Sequential, vec![(0u64, Vec::new()); 4]);
        m.allgather(
            PhaseKind::Setup,
            8,
            |r, _s| r as u64 * 10,
            |_r, s, all: &[u64]| s.1 = all.to_vec(),
        );
        for (_v, all) in m.ranks() {
            assert_eq!(all, &[0, 10, 20, 30]);
        }
        // log2(4)=2 stages * tau + 3 ranks * 8B * mu = 2 + 2.4
        assert!((m.elapsed_s() - 4.4).abs() < 1e-12, "{}", m.elapsed_s());
    }

    #[test]
    fn allgatherv_concatenates_in_rank_order() {
        let mut m = Machine::new(cfg(3), ExecMode::Sequential, vec![Vec::<u32>::new(); 3]);
        m.allgatherv(
            PhaseKind::Setup,
            4,
            |r, _s| vec![r as u32; r + 1],
            |_r, s, concat: &[u32]| *s = concat.to_vec(),
        );
        assert_eq!(m.ranks()[0], vec![0, 1, 1, 2, 2, 2]);
    }

    #[test]
    fn allreduce_folds_over_all_ranks() {
        let mut m = Machine::new(cfg(4), ExecMode::Sequential, vec![0.0f64; 4]);
        for (r, s) in m.ranks_mut().iter_mut().enumerate() {
            *s = r as f64 + 1.0;
        }
        m.allreduce(
            PhaseKind::Other,
            |_r, s| *s,
            f64::max,
            |_r, s, &max| *s = max,
        );
        assert!(m.ranks().iter().all(|&v| v == 4.0));
    }

    #[test]
    fn single_rank_collectives_are_free() {
        let mut m = Machine::new(cfg(1), ExecMode::Sequential, vec![0u64]);
        m.allgather(PhaseKind::Setup, 8, |_r, s| *s, |_r, _s, _all: &[u64]| {});
        assert_eq!(m.elapsed_s(), 0.0);
    }
}
