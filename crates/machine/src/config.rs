//! Machine parameters: the two-level cost model of paper Section 4.

use serde::{Deserialize, Serialize};

/// Interconnect topology.
///
/// The paper's two-level model charges a *fixed* cost per off-processor
/// access independent of distance ("these assumptions closely model the
/// behavior of the CM-5").  Topology therefore only affects the cost
/// formulas of the *collectives* (tree depth), not point-to-point messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Topology {
    /// Distance-independent network (CM-5 fat tree under the paper model).
    FullyConnected,
    /// 2-D mesh: collectives pay `2 * (sqrt(p) - 1)` stages instead of
    /// `log2 p`.  Included because the paper claims the algorithms "should
    /// be efficiently implementable on meshes and hypercubes".
    Mesh2d,
    /// Hypercube: collectives pay `log2 p` stages (same as fully connected
    /// under the two-level model).
    Hypercube,
}

impl Topology {
    /// Number of communication stages a tree/dimension-ordered collective
    /// pays on `p` ranks.
    pub fn collective_stages(self, p: usize) -> u32 {
        match self {
            Topology::FullyConnected | Topology::Hypercube => log2_ceil(p),
            Topology::Mesh2d => {
                let side = (p as f64).sqrt().ceil() as u32;
                2 * side.saturating_sub(1).max(1)
            }
        }
    }
}

/// Ceil of log2, with `log2_ceil(1) == 1` so a singleton collective still
/// pays one stage of startup.
pub(crate) fn log2_ceil(p: usize) -> u32 {
    debug_assert!(p > 0);
    if p <= 2 {
        1
    } else {
        usize::BITS - (p - 1).leading_zeros()
    }
}

/// Parameters of the virtual machine.
///
/// `tau`, `mu`, `delta` are the paper's τ, μ, δ.  All times in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Number of virtual processors `p`.
    pub ranks: usize,
    /// Message startup overhead τ (seconds per message).
    pub tau: f64,
    /// Per-byte transfer time μ (seconds per byte); `1/mu` is bandwidth.
    pub mu: f64,
    /// Per-unit local computation time δ (seconds per op unit).
    pub delta: f64,
    /// Interconnect topology (affects collectives only).
    pub topology: Topology,
}

impl MachineConfig {
    /// CM-5 era constants (no vector units), calibrated so that the
    /// reproduced 200-iteration runs land in the paper's range of tens to
    /// hundreds of seconds: τ = 86 µs message startup, 10 MB/s per-node
    /// bandwidth, δ = 1 µs per abstract op unit (a 33 MHz SPARC executed
    /// roughly a handful of flops per microsecond).
    pub fn cm5(ranks: usize) -> Self {
        assert!(ranks > 0, "machine needs at least one rank");
        Self {
            ranks,
            tau: 86e-6,
            mu: 1e-7,
            delta: 1e-6,
            topology: Topology::FullyConnected,
        }
    }

    /// A modern-cluster preset: 2 µs startup, 10 GB/s, 1 ns per op unit.
    /// Used by the sensitivity ablation to show how the policy trade-offs
    /// shift when computation is cheap relative to communication (paper
    /// Section 6.3, final remark).
    pub fn modern(ranks: usize) -> Self {
        assert!(ranks > 0, "machine needs at least one rank");
        Self {
            ranks,
            tau: 2e-6,
            mu: 1e-10,
            delta: 1e-9,
            topology: Topology::FullyConnected,
        }
    }

    /// Cost of sending one message of `bytes` bytes: `tau + bytes * mu`.
    #[inline]
    pub fn message_cost(&self, bytes: usize) -> f64 {
        self.tau + bytes as f64 * self.mu
    }

    /// Cost of `ops` abstract op units of local computation.
    #[inline]
    pub fn compute_cost(&self, ops: f64) -> f64 {
        ops * self.delta
    }

    /// Cost one rank pays for a collective that moves `bytes_per_stage`
    /// bytes per stage over the topology's stage count.
    #[inline]
    pub fn collective_cost(&self, bytes_per_stage: usize) -> f64 {
        let stages = self.topology.collective_stages(self.ranks) as f64;
        stages * self.message_cost(bytes_per_stage)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2_ceil_small_values() {
        assert_eq!(log2_ceil(1), 1);
        assert_eq!(log2_ceil(2), 1);
        assert_eq!(log2_ceil(3), 2);
        assert_eq!(log2_ceil(4), 2);
        assert_eq!(log2_ceil(5), 3);
        assert_eq!(log2_ceil(32), 5);
        assert_eq!(log2_ceil(128), 7);
    }

    #[test]
    fn message_cost_is_affine() {
        let cfg = MachineConfig::cm5(32);
        let c0 = cfg.message_cost(0);
        let c100 = cfg.message_cost(100);
        assert!((c0 - cfg.tau).abs() < 1e-15);
        assert!((c100 - (cfg.tau + 100.0 * cfg.mu)).abs() < 1e-15);
    }

    #[test]
    fn mesh_pays_more_stages_than_hypercube() {
        assert!(Topology::Mesh2d.collective_stages(64) > Topology::Hypercube.collective_stages(64));
    }

    #[test]
    fn hypercube_matches_fully_connected() {
        for p in [1, 2, 16, 128] {
            assert_eq!(
                Topology::Hypercube.collective_stages(p),
                Topology::FullyConnected.collective_stages(p)
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        MachineConfig::cm5(0);
    }

    #[test]
    fn cm5_calibration_orders_of_magnitude() {
        let cfg = MachineConfig::cm5(32);
        // startup dwarfs per-byte cost; compute unit is a microsecond
        assert!(cfg.tau > 100.0 * cfg.mu);
        assert!((cfg.delta - 1e-6).abs() < 1e-12);
    }
}
