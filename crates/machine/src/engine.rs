//! The executor abstraction: one SPMD phase program, two machines.
//!
//! Every PIC phase is written as a sequence of *supersteps* and
//! *collectives* against this trait, so the identical program runs on
//!
//! * the modeled BSP [`Machine`] — deterministic,
//!   charges the paper's two-level (τ/μ/δ) cost model, reports **modeled
//!   seconds**; and
//! * the real-threads [`ThreadedMachine`](crate::ThreadedMachine) — one OS
//!   thread per virtual rank, genuine message passing over mailboxes,
//!   reports **wall-clock seconds**.
//!
//! Cross-validation tests assert that both executors produce bit-identical
//! rank states for full multi-iteration simulations; the bench binary
//! `threaded_vs_modeled` quantifies how far the cost model drifts from
//! real execution.
//!
//! ## Failure reporting
//!
//! Every communication operation returns `Result<(), SpmdError>` so a
//! rank failure — panic, receive timeout, injected kill, poisoned
//! mailbox — surfaces as a typed value carrying the failing rank, the
//! phase, the engine's superstep index, and the driver's fault epoch.
//! Fault schedules are installed via [`SpmdEngine::set_fault_plan`] and
//! scoped in time by [`SpmdEngine::set_fault_epoch`] (the PIC driver sets
//! the epoch to the iteration number every iteration).  The modeled
//! machine honors only kill faults — it has no real wires for benign
//! delay/reorder/drop faults to act on; the threaded machine honors all
//! of them at the mailbox layer.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use crate::config::MachineConfig;
use crate::error::SpmdError;
use crate::fault::FaultPlan;
use crate::machine::{ExecMode, Machine, Outbox, PhaseCtx};
use crate::metrics::SharedMetrics;
use crate::payload::Payload;
use crate::stats::{PhaseKind, StatsLog};
use crate::trace::Recorder;

/// A machine that can run SPMD phase programs over rank states of type `S`.
///
/// The closure bounds mirror the strictest executor (the threaded one,
/// which shares the closures across rank threads); the modeled machine
/// simply ignores the extra `Sync` requirement.
pub trait SpmdEngine<S: Send>: Sized {
    /// Build an engine whose rank `r` starts with `states[r]`.
    ///
    /// # Panics
    /// Panics if `states.len() != cfg.ranks`.
    fn build(cfg: MachineConfig, mode: ExecMode, states: Vec<S>) -> Self;

    /// Number of virtual ranks.
    fn num_ranks(&self) -> usize;

    /// The machine parameters the engine was built with.
    fn machine_config(&self) -> &MachineConfig;

    /// Immutable view of rank states.
    fn ranks(&self) -> &[S];

    /// Mutable view of rank states (setup only; not charged to clocks).
    fn ranks_mut(&mut self) -> &mut [S];

    /// Consume the engine, returning final rank states.
    fn into_ranks(self) -> Vec<S>;

    /// Elapsed seconds so far: modeled time on the BSP machine,
    /// accumulated wall-clock time on the threaded one.
    fn elapsed_s(&self) -> f64;

    /// Computation component of [`Self::elapsed_s`] (max over ranks).
    fn compute_s(&self) -> f64;

    /// Superstep statistics log.
    fn stats(&self) -> &StatsLog;

    /// Mutable statistics log (drained per iteration by the PIC driver).
    fn stats_mut(&mut self) -> &mut StatsLog;

    /// Install (or clear) a fault schedule for subsequent operations.
    fn set_fault_plan(&mut self, plan: Option<Arc<FaultPlan>>);

    /// The installed fault schedule, if any.
    fn fault_plan(&self) -> Option<Arc<FaultPlan>>;

    /// Set the fault epoch faults are matched against (drivers use their
    /// iteration counter, so plans can say "kill rank 2 at iteration 25").
    fn set_fault_epoch(&mut self, epoch: u64);

    /// The current fault epoch.
    fn fault_epoch(&self) -> u64;

    /// Install (or clear) an observability sink.  Every subsequent
    /// superstep and collective emits per-rank
    /// [`SpanEvent`](crate::trace::SpanEvent)s and one aggregated
    /// [`SuperstepEvent`](crate::trace::SuperstepEvent) to it — modeled
    /// seconds on the BSP machine, wall-clock seconds on the threaded
    /// one (see [`crate::trace`]).
    fn set_recorder(&mut self, recorder: Option<Box<dyn Recorder>>);

    /// Remove and return the installed recorder (used to carry a sink
    /// across an engine rebuild, e.g. on checkpoint restart).
    fn take_recorder(&mut self) -> Option<Box<dyn Recorder>>;

    /// Mutable access to the installed recorder, if any.  Drivers use it
    /// to emit their own iteration/redistribution/fault events into the
    /// same stream.
    fn recorder_mut(&mut self) -> Option<&mut (dyn Recorder + '_)>;

    /// Install (or clear) a shared metrics registry.  While installed,
    /// every superstep and collective feeds its phase family and the
    /// rank-pair communication matrix (see [`crate::metrics`]); the
    /// registry is locked once per superstep, never per message, and a
    /// machine without one pays a single branch.
    fn set_metrics(&mut self, metrics: Option<SharedMetrics>);

    /// A clone of the installed metrics handle, if any.
    fn metrics(&self) -> Option<SharedMetrics>;

    /// Run one superstep: `compute` on every rank (may send messages),
    /// then `deliver` on every rank with its inbox sorted by sender rank
    /// (order within one sender preserved).
    fn superstep<M, F, G>(
        &mut self,
        phase: PhaseKind,
        compute: F,
        deliver: G,
    ) -> Result<(), SpmdError>
    where
        M: Payload,
        F: Fn(usize, &mut S, &mut PhaseCtx, &mut Outbox<M>) + Sync,
        G: Fn(usize, &mut S, &mut PhaseCtx, Vec<(usize, M)>) + Sync;

    /// A communication-free superstep.
    fn local_step<F>(&mut self, phase: PhaseKind, compute: F) -> Result<(), SpmdError>
    where
        F: Fn(usize, &mut S, &mut PhaseCtx) + Sync,
    {
        self.superstep::<(), _, _>(
            phase,
            move |r, s, ctx, _outbox| compute(r, s, ctx),
            |_, _, _, _| {},
        )
    }

    /// Global concatenation: every rank contributes one value, every rank
    /// receives the full rank-indexed vector.
    fn allgather<T, F, G>(
        &mut self,
        phase: PhaseKind,
        bytes_per_item: usize,
        extract: F,
        apply: G,
    ) -> Result<(), SpmdError>
    where
        T: Clone + Send,
        F: Fn(usize, &S) -> T + Sync,
        G: Fn(usize, &mut S, &[T]) + Sync;

    /// Global concatenation of vectors, in rank order.
    fn allgatherv<T, F, G>(
        &mut self,
        phase: PhaseKind,
        bytes_per_item: usize,
        extract: F,
        apply: G,
    ) -> Result<(), SpmdError>
    where
        T: Clone + Send,
        F: Fn(usize, &S) -> Vec<T> + Sync,
        G: Fn(usize, &mut S, &[T]) + Sync;

    /// All-reduce with a caller-supplied fold.  The fold is applied in
    /// rank order on every executor so floating-point results are
    /// bit-identical across them.
    fn allreduce<T, F, R, G>(
        &mut self,
        phase: PhaseKind,
        extract: F,
        reduce: R,
        apply: G,
    ) -> Result<(), SpmdError>
    where
        T: Clone + Send,
        F: Fn(usize, &S) -> T + Sync,
        R: Fn(T, T) -> T + Sync,
        G: Fn(usize, &mut S, &T) + Sync;

    /// Element-wise all-reduce of per-rank arrays (rank-ordered fold).
    /// Fails with a panic cause if ranks contribute arrays of different
    /// lengths.
    fn allreduce_elementwise<T, F, R, G>(
        &mut self,
        phase: PhaseKind,
        share_bytes: usize,
        extract: F,
        reduce: R,
        apply: G,
    ) -> Result<(), SpmdError>
    where
        T: Clone + Send,
        F: Fn(usize, &S) -> Vec<T> + Sync,
        R: Fn(&T, &T) -> T + Sync,
        G: Fn(usize, &mut S, &[T]) + Sync;

    /// Synchronize all ranks.
    fn barrier(&mut self) -> Result<(), SpmdError>;
}

impl<S: Send> SpmdEngine<S> for Machine<S> {
    fn build(cfg: MachineConfig, mode: ExecMode, states: Vec<S>) -> Self {
        Machine::new(cfg, mode, states)
    }

    fn num_ranks(&self) -> usize {
        Machine::num_ranks(self)
    }

    fn machine_config(&self) -> &MachineConfig {
        self.config()
    }

    fn ranks(&self) -> &[S] {
        Machine::ranks(self)
    }

    fn ranks_mut(&mut self) -> &mut [S] {
        Machine::ranks_mut(self)
    }

    fn into_ranks(self) -> Vec<S> {
        Machine::into_ranks(self)
    }

    fn elapsed_s(&self) -> f64 {
        Machine::elapsed_s(self)
    }

    fn compute_s(&self) -> f64 {
        Machine::compute_s(self)
    }

    fn stats(&self) -> &StatsLog {
        Machine::stats(self)
    }

    fn stats_mut(&mut self) -> &mut StatsLog {
        Machine::stats_mut(self)
    }

    fn set_fault_plan(&mut self, plan: Option<Arc<FaultPlan>>) {
        Machine::set_fault_plan(self, plan);
    }

    fn fault_plan(&self) -> Option<Arc<FaultPlan>> {
        Machine::fault_plan(self)
    }

    fn set_fault_epoch(&mut self, epoch: u64) {
        Machine::set_fault_epoch(self, epoch);
    }

    fn fault_epoch(&self) -> u64 {
        Machine::fault_epoch(self)
    }

    fn set_recorder(&mut self, recorder: Option<Box<dyn Recorder>>) {
        Machine::set_recorder(self, recorder);
    }

    fn take_recorder(&mut self) -> Option<Box<dyn Recorder>> {
        Machine::take_recorder(self)
    }

    fn recorder_mut(&mut self) -> Option<&mut (dyn Recorder + '_)> {
        Machine::recorder_mut(self)
    }

    fn set_metrics(&mut self, metrics: Option<SharedMetrics>) {
        Machine::set_metrics(self, metrics);
    }

    fn metrics(&self) -> Option<SharedMetrics> {
        Machine::metrics(self)
    }

    fn superstep<M, F, G>(
        &mut self,
        phase: PhaseKind,
        compute: F,
        deliver: G,
    ) -> Result<(), SpmdError>
    where
        M: Payload,
        F: Fn(usize, &mut S, &mut PhaseCtx, &mut Outbox<M>) + Sync,
        G: Fn(usize, &mut S, &mut PhaseCtx, Vec<(usize, M)>) + Sync,
    {
        let step = self.fault_guard(phase)?;
        let epoch = Machine::fault_epoch(self);
        catch_unwind(AssertUnwindSafe(|| {
            Machine::superstep(self, phase, compute, deliver)
        }))
        .map_err(|p| SpmdError::from_panic_payload(p).in_phase(phase, step, epoch))
    }

    fn allgather<T, F, G>(
        &mut self,
        phase: PhaseKind,
        bytes_per_item: usize,
        extract: F,
        apply: G,
    ) -> Result<(), SpmdError>
    where
        T: Clone + Send,
        F: Fn(usize, &S) -> T + Sync,
        G: Fn(usize, &mut S, &[T]) + Sync,
    {
        let step = self.fault_guard(phase)?;
        let epoch = Machine::fault_epoch(self);
        catch_unwind(AssertUnwindSafe(|| {
            Machine::allgather(self, phase, bytes_per_item, extract, apply)
        }))
        .map_err(|p| SpmdError::from_panic_payload(p).in_phase(phase, step, epoch))
    }

    fn allgatherv<T, F, G>(
        &mut self,
        phase: PhaseKind,
        bytes_per_item: usize,
        extract: F,
        apply: G,
    ) -> Result<(), SpmdError>
    where
        T: Clone + Send,
        F: Fn(usize, &S) -> Vec<T> + Sync,
        G: Fn(usize, &mut S, &[T]) + Sync,
    {
        let step = self.fault_guard(phase)?;
        let epoch = Machine::fault_epoch(self);
        catch_unwind(AssertUnwindSafe(|| {
            Machine::allgatherv(self, phase, bytes_per_item, extract, apply)
        }))
        .map_err(|p| SpmdError::from_panic_payload(p).in_phase(phase, step, epoch))
    }

    fn allreduce<T, F, R, G>(
        &mut self,
        phase: PhaseKind,
        extract: F,
        reduce: R,
        apply: G,
    ) -> Result<(), SpmdError>
    where
        T: Clone + Send,
        F: Fn(usize, &S) -> T + Sync,
        R: Fn(T, T) -> T + Sync,
        G: Fn(usize, &mut S, &T) + Sync,
    {
        let step = self.fault_guard(phase)?;
        let epoch = Machine::fault_epoch(self);
        catch_unwind(AssertUnwindSafe(|| {
            Machine::allreduce(self, phase, extract, reduce, apply)
        }))
        .map_err(|p| SpmdError::from_panic_payload(p).in_phase(phase, step, epoch))
    }

    fn allreduce_elementwise<T, F, R, G>(
        &mut self,
        phase: PhaseKind,
        share_bytes: usize,
        extract: F,
        reduce: R,
        apply: G,
    ) -> Result<(), SpmdError>
    where
        T: Clone + Send,
        F: Fn(usize, &S) -> Vec<T> + Sync,
        R: Fn(&T, &T) -> T + Sync,
        G: Fn(usize, &mut S, &[T]) + Sync,
    {
        let step = self.fault_guard(phase)?;
        let epoch = Machine::fault_epoch(self);
        catch_unwind(AssertUnwindSafe(|| {
            Machine::allreduce_elementwise(self, phase, share_bytes, extract, reduce, apply)
        }))
        .map_err(|p| SpmdError::from_panic_payload(p).in_phase(phase, step, epoch))
    }

    fn barrier(&mut self) -> Result<(), SpmdError> {
        let step = self.fault_guard(PhaseKind::Other)?;
        let epoch = Machine::fault_epoch(self);
        catch_unwind(AssertUnwindSafe(|| Machine::barrier(self)))
            .map_err(|p| SpmdError::from_panic_payload(p).in_phase(PhaseKind::Other, step, epoch))
    }
}
