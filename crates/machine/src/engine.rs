//! The executor abstraction: one SPMD phase program, two machines.
//!
//! Every PIC phase is written as a sequence of *supersteps* and
//! *collectives* against this trait, so the identical program runs on
//!
//! * the modeled BSP [`Machine`](crate::Machine) — deterministic, charges
//!   the paper's two-level (τ/μ/δ) cost model, reports **modeled
//!   seconds**; and
//! * the real-threads [`ThreadedMachine`](crate::ThreadedMachine) — one OS
//!   thread per virtual rank, genuine message passing over mailboxes,
//!   reports **wall-clock seconds**.
//!
//! Cross-validation tests assert that both executors produce bit-identical
//! rank states for full multi-iteration simulations; the bench binary
//! `threaded_vs_modeled` quantifies how far the cost model drifts from
//! real execution.

use crate::config::MachineConfig;
use crate::machine::{ExecMode, Machine, Outbox, PhaseCtx};
use crate::payload::Payload;
use crate::stats::{PhaseKind, StatsLog};

/// A machine that can run SPMD phase programs over rank states of type `S`.
///
/// The closure bounds mirror the strictest executor (the threaded one,
/// which shares the closures across rank threads); the modeled machine
/// simply ignores the extra `Sync` requirement.
pub trait SpmdEngine<S: Send>: Sized {
    /// Build an engine whose rank `r` starts with `states[r]`.
    ///
    /// # Panics
    /// Panics if `states.len() != cfg.ranks`.
    fn build(cfg: MachineConfig, mode: ExecMode, states: Vec<S>) -> Self;

    /// Number of virtual ranks.
    fn num_ranks(&self) -> usize;

    /// The machine parameters the engine was built with.
    fn machine_config(&self) -> &MachineConfig;

    /// Immutable view of rank states.
    fn ranks(&self) -> &[S];

    /// Mutable view of rank states (setup only; not charged to clocks).
    fn ranks_mut(&mut self) -> &mut [S];

    /// Consume the engine, returning final rank states.
    fn into_ranks(self) -> Vec<S>;

    /// Elapsed seconds so far: modeled time on the BSP machine,
    /// accumulated wall-clock time on the threaded one.
    fn elapsed_s(&self) -> f64;

    /// Computation component of [`Self::elapsed_s`] (max over ranks).
    fn compute_s(&self) -> f64;

    /// Superstep statistics log.
    fn stats(&self) -> &StatsLog;

    /// Mutable statistics log (drained per iteration by the PIC driver).
    fn stats_mut(&mut self) -> &mut StatsLog;

    /// Run one superstep: `compute` on every rank (may send messages),
    /// then `deliver` on every rank with its inbox sorted by sender rank
    /// (order within one sender preserved).
    fn superstep<M, F, G>(&mut self, phase: PhaseKind, compute: F, deliver: G)
    where
        M: Payload,
        F: Fn(usize, &mut S, &mut PhaseCtx, &mut Outbox<M>) + Sync,
        G: Fn(usize, &mut S, &mut PhaseCtx, Vec<(usize, M)>) + Sync;

    /// A communication-free superstep.
    fn local_step<F>(&mut self, phase: PhaseKind, compute: F)
    where
        F: Fn(usize, &mut S, &mut PhaseCtx) + Sync,
    {
        self.superstep::<(), _, _>(
            phase,
            move |r, s, ctx, _outbox| compute(r, s, ctx),
            |_, _, _, _| {},
        );
    }

    /// Global concatenation: every rank contributes one value, every rank
    /// receives the full rank-indexed vector.
    fn allgather<T, F, G>(&mut self, phase: PhaseKind, bytes_per_item: usize, extract: F, apply: G)
    where
        T: Clone + Send,
        F: Fn(usize, &S) -> T + Sync,
        G: Fn(usize, &mut S, &[T]) + Sync;

    /// Global concatenation of vectors, in rank order.
    fn allgatherv<T, F, G>(
        &mut self,
        phase: PhaseKind,
        bytes_per_item: usize,
        extract: F,
        apply: G,
    ) where
        T: Clone + Send,
        F: Fn(usize, &S) -> Vec<T> + Sync,
        G: Fn(usize, &mut S, &[T]) + Sync;

    /// All-reduce with a caller-supplied fold.  The fold is applied in
    /// rank order on every executor so floating-point results are
    /// bit-identical across them.
    fn allreduce<T, F, R, G>(&mut self, phase: PhaseKind, extract: F, reduce: R, apply: G)
    where
        T: Clone + Send,
        F: Fn(usize, &S) -> T + Sync,
        R: Fn(T, T) -> T + Sync,
        G: Fn(usize, &mut S, &T) + Sync;

    /// Element-wise all-reduce of per-rank arrays (rank-ordered fold).
    ///
    /// # Panics
    /// Panics if ranks contribute arrays of different lengths.
    fn allreduce_elementwise<T, F, R, G>(
        &mut self,
        phase: PhaseKind,
        share_bytes: usize,
        extract: F,
        reduce: R,
        apply: G,
    ) where
        T: Clone + Send,
        F: Fn(usize, &S) -> Vec<T> + Sync,
        R: Fn(&T, &T) -> T + Sync,
        G: Fn(usize, &mut S, &[T]) + Sync;

    /// Synchronize all ranks.
    fn barrier(&mut self);
}

impl<S: Send> SpmdEngine<S> for Machine<S> {
    fn build(cfg: MachineConfig, mode: ExecMode, states: Vec<S>) -> Self {
        Machine::new(cfg, mode, states)
    }

    fn num_ranks(&self) -> usize {
        Machine::num_ranks(self)
    }

    fn machine_config(&self) -> &MachineConfig {
        self.config()
    }

    fn ranks(&self) -> &[S] {
        Machine::ranks(self)
    }

    fn ranks_mut(&mut self) -> &mut [S] {
        Machine::ranks_mut(self)
    }

    fn into_ranks(self) -> Vec<S> {
        Machine::into_ranks(self)
    }

    fn elapsed_s(&self) -> f64 {
        Machine::elapsed_s(self)
    }

    fn compute_s(&self) -> f64 {
        Machine::compute_s(self)
    }

    fn stats(&self) -> &StatsLog {
        Machine::stats(self)
    }

    fn stats_mut(&mut self) -> &mut StatsLog {
        Machine::stats_mut(self)
    }

    fn superstep<M, F, G>(&mut self, phase: PhaseKind, compute: F, deliver: G)
    where
        M: Payload,
        F: Fn(usize, &mut S, &mut PhaseCtx, &mut Outbox<M>) + Sync,
        G: Fn(usize, &mut S, &mut PhaseCtx, Vec<(usize, M)>) + Sync,
    {
        Machine::superstep(self, phase, compute, deliver);
    }

    fn allgather<T, F, G>(&mut self, phase: PhaseKind, bytes_per_item: usize, extract: F, apply: G)
    where
        T: Clone + Send,
        F: Fn(usize, &S) -> T + Sync,
        G: Fn(usize, &mut S, &[T]) + Sync,
    {
        Machine::allgather(self, phase, bytes_per_item, extract, apply);
    }

    fn allgatherv<T, F, G>(&mut self, phase: PhaseKind, bytes_per_item: usize, extract: F, apply: G)
    where
        T: Clone + Send,
        F: Fn(usize, &S) -> Vec<T> + Sync,
        G: Fn(usize, &mut S, &[T]) + Sync,
    {
        Machine::allgatherv(self, phase, bytes_per_item, extract, apply);
    }

    fn allreduce<T, F, R, G>(&mut self, phase: PhaseKind, extract: F, reduce: R, apply: G)
    where
        T: Clone + Send,
        F: Fn(usize, &S) -> T + Sync,
        R: Fn(T, T) -> T + Sync,
        G: Fn(usize, &mut S, &T) + Sync,
    {
        Machine::allreduce(self, phase, extract, reduce, apply);
    }

    fn allreduce_elementwise<T, F, R, G>(
        &mut self,
        phase: PhaseKind,
        share_bytes: usize,
        extract: F,
        reduce: R,
        apply: G,
    ) where
        T: Clone + Send,
        F: Fn(usize, &S) -> Vec<T> + Sync,
        R: Fn(&T, &T) -> T + Sync,
        G: Fn(usize, &mut S, &[T]) + Sync,
    {
        Machine::allreduce_elementwise(self, phase, share_bytes, extract, reduce, apply);
    }

    fn barrier(&mut self) {
        Machine::barrier(self);
    }
}
