//! Typed failure reporting for SPMD runs.
//!
//! Before this module existed the executors reported every failure the
//! same way: a panic unwinding out of `run_spmd` or an engine method,
//! with the diagnostic squeezed into a formatted string.  [`SpmdError`]
//! replaces that with a structured value carrying *where* the run died
//! (rank, phase, superstep, fault epoch) and *why* ([`FailureCause`]):
//! a rank panic, a receive timeout with per-rank in-flight message
//! counts, mailbox poisoning by a dead peer, an injected kill from a
//! [`FaultPlan`](crate::fault::FaultPlan), or a physics invariant
//! violation detected by the simulation driver.
//!
//! The mailbox layer still *transports* failures as panics internally
//! (any rank failure must abort every peer's superstep, and unwinding is
//! the only channel that crosses the user program's stack), but the
//! payloads are typed (`RankFailure`) and the public entry points
//! catch them and return `Result<_, SpmdError>` instead of re-raising.

use std::any::Any;
use std::fmt;
use std::time::Duration;

use crate::stats::PhaseKind;

/// Everything known about a receive that gave up waiting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimeoutDetail {
    /// What the rank was waiting inside (`"recv_exact"`, `"exchange"`,
    /// `"allgather"`, `"barrier"`).
    pub operation: &'static str,
    /// Messages the operation needed in total (0 when unknown up front,
    /// e.g. an exchange still waiting for count handshakes).
    pub expected: usize,
    /// Messages already received when the deadline passed.
    pub received: usize,
    /// Per-sender in-flight bookkeeping at the moment of the timeout:
    /// `in_flight[r]` is how many messages from rank `r` were still
    /// outstanding (`0` for peers that had fully delivered, and for the
    /// waiting rank itself).
    pub in_flight: Vec<usize>,
    /// The deadline that expired.
    pub waited: Duration,
}

impl fmt::Display for TimeoutDetail {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} received {}/{} messages within {:?}",
            self.operation, self.received, self.expected, self.waited
        )?;
        let missing: Vec<String> = self
            .in_flight
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(r, &n)| format!("rank {r}: {n}"))
            .collect();
        if !missing.is_empty() {
            write!(f, " (still in flight — {})", missing.join(", "))?;
        }
        Ok(())
    }
}

/// Why an SPMD run failed.
#[derive(Debug, Clone, PartialEq)]
pub enum FailureCause {
    /// A rank's program panicked; the payload rendered to a string.
    Panic(String),
    /// A blocking receive exceeded its deadline (protocol deadlock, or a
    /// dropped message that exhausted its retransmission budget).
    /// Boxed to keep `SpmdError` small on the `Result` hot path.
    Timeout(Box<TimeoutDetail>),
    /// The rank unwound because a *peer* died first; `by` is the peer.
    /// Surfaced only when the root cause itself never reached a runner
    /// (e.g. double-panic abort); normally the root cause wins.
    Poisoned {
        /// Rank whose poison message was received.
        by: usize,
    },
    /// A [`FaultPlan`](crate::fault::FaultPlan) killed the rank.
    Killed {
        /// Fault epoch (driver iteration) the kill fired in.
        epoch: u64,
    },
    /// Every peer channel closed before the expected message arrived.
    Disconnected,
    /// The simulation driver detected state corruption (particle loss,
    /// charge non-conservation, non-finite fields).
    InvariantViolation(String),
}

impl fmt::Display for FailureCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailureCause::Panic(msg) => write!(f, "panic: {msg}"),
            FailureCause::Timeout(d) => write!(f, "timeout: {d}"),
            FailureCause::Poisoned { by } => write!(f, "poisoned by rank {by}"),
            FailureCause::Killed { epoch } => {
                write!(f, "killed by fault injection at epoch {epoch}")
            }
            FailureCause::Disconnected => write!(f, "all peers disconnected"),
            FailureCause::InvariantViolation(msg) => write!(f, "invariant violated: {msg}"),
        }
    }
}

/// A failed SPMD run: which rank died, where in the program, and why.
#[derive(Debug, Clone, PartialEq)]
pub struct SpmdError {
    /// The failing rank, when attributable to one.
    pub rank: Option<usize>,
    /// Phase the failing operation belonged to (engine-level context).
    pub phase: Option<PhaseKind>,
    /// Engine superstep counter at the failing operation.
    pub superstep: Option<u64>,
    /// Fault epoch (the driver's iteration counter) if one was set.
    pub epoch: Option<u64>,
    /// Root cause.
    pub cause: FailureCause,
}

impl SpmdError {
    /// An error with only a cause; context is attached by the layers
    /// that know it (see [`SpmdError::in_phase`]).
    pub fn new(cause: FailureCause) -> Self {
        Self {
            rank: None,
            phase: None,
            superstep: None,
            epoch: None,
            cause,
        }
    }

    /// Same, attributed to `rank`.
    pub fn on_rank(rank: usize, cause: FailureCause) -> Self {
        Self {
            rank: Some(rank),
            ..Self::new(cause)
        }
    }

    /// Attach engine context (phase, superstep counter, fault epoch).
    /// Existing context is kept — the innermost layer knows best.
    #[must_use]
    pub fn in_phase(mut self, phase: PhaseKind, superstep: u64, epoch: u64) -> Self {
        self.phase.get_or_insert(phase);
        self.superstep.get_or_insert(superstep);
        self.epoch.get_or_insert(epoch);
        self
    }

    /// Build from a caught panic payload: typed `RankFailure` payloads
    /// become their structured causes, strings become
    /// [`FailureCause::Panic`].
    pub fn from_panic_payload(payload: Box<dyn Any + Send>) -> Self {
        match payload.downcast::<RankFailure>() {
            Ok(failure) => (*failure).into_error(),
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "opaque panic payload".to_string());
                SpmdError::new(FailureCause::Panic(msg))
            }
        }
    }

    /// True when the cause is an injected rank kill.
    pub fn is_injected_kill(&self) -> bool {
        matches!(self.cause, FailureCause::Killed { .. })
    }

    /// True when the cause is a receive timeout.
    pub fn is_timeout(&self) -> bool {
        matches!(self.cause, FailureCause::Timeout(_))
    }
}

impl fmt::Display for SpmdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.rank {
            Some(r) => write!(f, "SPMD run failed on rank {r}")?,
            None => write!(f, "SPMD run failed")?,
        }
        if let Some(phase) = self.phase {
            write!(f, " during {}", phase.label())?;
        }
        if let Some(step) = self.superstep {
            write!(f, " (superstep {step}")?;
            if let Some(epoch) = self.epoch {
                write!(f, ", epoch {epoch}")?;
            }
            write!(f, ")")?;
        }
        write!(f, ": {}", self.cause)
    }
}

impl std::error::Error for SpmdError {}

/// Typed panic payload used *inside* rank threads: the mailbox layer
/// aborts a rank by `panic_any(RankFailure::...)`, the thread wrapper
/// poisons peers, and the runner converts the payload into the
/// [`SpmdError`] the caller sees.
#[derive(Debug, Clone)]
pub(crate) enum RankFailure {
    /// A receive deadline expired on `rank`.
    Timeout { rank: usize, detail: TimeoutDetail },
    /// Every peer channel closed under `rank`.
    Disconnected { rank: usize },
    /// A fault plan killed `rank` at `epoch`.
    Killed { rank: usize, epoch: u64 },
}

impl RankFailure {
    pub(crate) fn into_error(self) -> SpmdError {
        match self {
            RankFailure::Timeout { rank, detail } => {
                SpmdError::on_rank(rank, FailureCause::Timeout(Box::new(detail)))
            }
            RankFailure::Disconnected { rank } => {
                SpmdError::on_rank(rank, FailureCause::Disconnected)
            }
            RankFailure::Killed { rank, epoch } => {
                let mut err = SpmdError::on_rank(rank, FailureCause::Killed { epoch });
                err.epoch = Some(epoch);
                err
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_full_context() {
        let detail = TimeoutDetail {
            operation: "exchange",
            expected: 7,
            received: 3,
            in_flight: vec![0, 4, 0],
            waited: Duration::from_secs(2),
        };
        let err = SpmdError::on_rank(2, FailureCause::Timeout(Box::new(detail))).in_phase(
            PhaseKind::Scatter,
            41,
            25,
        );
        let text = err.to_string();
        assert!(text.contains("rank 2"), "{text}");
        assert!(text.contains("scatter"), "{text}");
        assert!(text.contains("superstep 41"), "{text}");
        assert!(text.contains("epoch 25"), "{text}");
        assert!(text.contains("3/7"), "{text}");
        assert!(text.contains("rank 1: 4"), "{text}");
    }

    #[test]
    fn panic_payload_conversion_prefers_typed_failures() {
        let typed: Box<dyn Any + Send> = Box::new(RankFailure::Killed { rank: 5, epoch: 9 });
        let err = SpmdError::from_panic_payload(typed);
        assert_eq!(err.rank, Some(5));
        assert!(err.is_injected_kill());

        let stringy: Box<dyn Any + Send> = Box::new("boom".to_string());
        let err = SpmdError::from_panic_payload(stringy);
        assert_eq!(err.cause, FailureCause::Panic("boom".to_string()));
    }

    #[test]
    fn context_attachment_keeps_innermost_values() {
        let err = SpmdError::on_rank(1, FailureCause::Disconnected)
            .in_phase(PhaseKind::Gather, 3, 1)
            .in_phase(PhaseKind::Push, 99, 50);
        assert_eq!(err.phase, Some(PhaseKind::Gather));
        assert_eq!(err.superstep, Some(3));
        assert_eq!(err.epoch, Some(1));
    }
}
