//! Deterministic, seeded fault injection for the SPMD executors.
//!
//! A [`FaultPlan`] describes which faults strike which rank and when.
//! Faults come in two flavours:
//!
//! * **benign** — [`FaultKind::Delay`], [`FaultKind::Reorder`] and
//!   [`FaultKind::DropRetry`] perturb *timing and wire order* only: a
//!   delayed message arrives late, a reordered exchange visits peers in a
//!   scrambled order (per-destination FIFO is preserved — the delivery
//!   contract every collective is built on), and a dropped message is
//!   retransmitted by the sender's retry/backoff loop.  A correct runtime
//!   produces **bit-identical results** under any benign plan; the chaos
//!   suite asserts exactly that.
//! * **fatal** — [`FaultKind::Kill`] aborts the rank at the start of its
//!   next mailbox operation, modeling a node death mid-superstep.  Kills
//!   are **one-shot**: after firing once they disarm, so a driver that
//!   restarts from a checkpoint does not die again at the same spot.
//!
//! When a fault fires is keyed on the **fault epoch**, an opaque counter
//! the driver advances via
//! [`SpmdEngine::set_fault_epoch`](crate::SpmdEngine::set_fault_epoch)
//! (the PIC driver sets it to the iteration number, so "kill rank 2 at
//! iteration 25" is `FaultPlan::new(seed).kill(2, 25)`).  Background
//! *noise* ([`FaultNoise`]) draws per-send faults from an RNG seeded by
//! `(plan seed, rank, epoch)` — deterministic for a given plan, varied
//! across ranks and epochs.
//!
//! The modeled BSP [`Machine`](crate::Machine) honors kills (it returns
//! the same typed error the threaded executor produces) and ignores
//! benign faults: wire timing is not part of its model.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::stats::PhaseKind;

/// What a fault does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Sleep this long before the send goes out.
    Delay(Duration),
    /// Scramble the destination visit order of the next exchange
    /// (per-destination message order is preserved).
    Reorder,
    /// Drop the message on first send; the sender's retry/backoff loop
    /// retransmits it.
    DropRetry,
    /// Abort the rank at its next mailbox operation (one-shot).
    Kill,
}

/// One scheduled fault: `kind` strikes `rank` when the current fault
/// epoch (and optionally phase) matches.
#[derive(Debug, Clone)]
pub struct FaultSpec {
    /// Victim rank.
    pub rank: usize,
    /// Epoch the fault is armed in; `None` = every epoch.
    pub epoch: Option<u64>,
    /// Phase the fault is armed in; `None` = every phase.
    pub phase: Option<PhaseKind>,
    /// What happens.
    pub kind: FaultKind,
}

impl FaultSpec {
    fn matches(&self, rank: usize, epoch: u64, phase: PhaseKind) -> bool {
        self.rank == rank
            && self.epoch.map(|e| e == epoch).unwrap_or(true)
            && self.phase.map(|p| p == phase).unwrap_or(true)
    }
}

/// Background noise: per-send fault probabilities, drawn from the plan's
/// seeded RNG.  All three faults are benign; results must not change.
#[derive(Debug, Clone, Copy)]
pub struct FaultNoise {
    /// Probability a send is delayed by up to `max_delay`.
    pub delay_prob: f64,
    /// Upper bound of an injected delay.
    pub max_delay: Duration,
    /// Probability an exchange scrambles its destination visit order.
    pub reorder_prob: f64,
    /// Probability a send is dropped and left to retransmission.
    pub drop_prob: f64,
}

impl FaultNoise {
    /// Mild noise: frequent small delays, occasional reorders and drops.
    pub fn mild() -> Self {
        Self {
            delay_prob: 0.05,
            max_delay: Duration::from_micros(200),
            reorder_prob: 0.25,
            drop_prob: 0.02,
        }
    }

    /// Aggressive noise for chaos tests: most exchanges are scrambled,
    /// drops are common enough that every retry path executes.
    pub fn aggressive() -> Self {
        Self {
            delay_prob: 0.15,
            max_delay: Duration::from_micros(500),
            reorder_prob: 0.75,
            drop_prob: 0.10,
        }
    }
}

/// A deterministic, seeded fault schedule shared by every rank of a run.
///
/// Cheap to share via [`Arc`]; the kill arming state is interior so the
/// same plan object can span a checkpoint/restart cycle without
/// re-killing (see the module docs).
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    specs: Vec<FaultSpec>,
    /// `fired[i]` is set once spec `i` (a kill) has struck.
    fired: Vec<AtomicBool>,
    noise: Option<FaultNoise>,
}

impl FaultPlan {
    /// An empty plan with the given noise seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            specs: Vec::new(),
            fired: Vec::new(),
            noise: None,
        }
    }

    /// Builder: add an explicit fault spec.
    #[must_use]
    pub fn with_spec(mut self, spec: FaultSpec) -> Self {
        self.specs.push(spec);
        self.fired.push(AtomicBool::new(false));
        self
    }

    /// Builder: kill `rank` at `epoch` (any phase, one-shot).
    #[must_use]
    pub fn kill(self, rank: usize, epoch: u64) -> Self {
        self.with_spec(FaultSpec {
            rank,
            epoch: Some(epoch),
            phase: None,
            kind: FaultKind::Kill,
        })
    }

    /// Builder: kill `rank` at `epoch`, but only in `phase`.
    #[must_use]
    pub fn kill_in_phase(self, rank: usize, epoch: u64, phase: PhaseKind) -> Self {
        self.with_spec(FaultSpec {
            rank,
            epoch: Some(epoch),
            phase: Some(phase),
            kind: FaultKind::Kill,
        })
    }

    /// Builder: delay every send of `rank` during `epoch` by `by`.
    #[must_use]
    pub fn delay(self, rank: usize, epoch: u64, by: Duration) -> Self {
        self.with_spec(FaultSpec {
            rank,
            epoch: Some(epoch),
            phase: None,
            kind: FaultKind::Delay(by),
        })
    }

    /// Builder: enable background noise.
    #[must_use]
    pub fn with_noise(mut self, noise: FaultNoise) -> Self {
        self.noise = Some(noise);
        self
    }

    /// A noise-only benign plan (no kills): the chaos suite's workhorse.
    pub fn benign(seed: u64) -> Self {
        Self::new(seed).with_noise(FaultNoise::aggressive())
    }

    /// The plan's seed (labels chaos-test output).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// True if any spec is a kill (drivers use this to decide whether a
    /// recovery path needs to be armed at all).
    pub fn has_kills(&self) -> bool {
        self.specs.iter().any(|s| s.kind == FaultKind::Kill)
    }

    /// Re-arm all one-shot kills (tests that reuse a plan).
    pub fn rearm(&self) {
        for f in &self.fired {
            f.store(false, Ordering::SeqCst);
        }
    }

    /// Does a kill spec strike `rank` in (`epoch`, `phase`)?  Firing
    /// consumes the spec (one-shot).
    pub fn consume_kill(&self, rank: usize, epoch: u64, phase: PhaseKind) -> bool {
        for (spec, fired) in self.specs.iter().zip(&self.fired) {
            if spec.kind == FaultKind::Kill
                && spec.matches(rank, epoch, phase)
                && !fired.swap(true, Ordering::SeqCst)
            {
                return true;
            }
        }
        false
    }

    /// The per-rank, per-epoch view a mailbox consults on every send.
    pub fn session(self: &Arc<Self>, rank: usize, epoch: u64, phase: PhaseKind) -> FaultSession {
        // SplitMix64-style mix so (seed, rank, epoch) streams are
        // uncorrelated; the phase is deliberately excluded so a phase
        // running twice in one epoch still sees fresh draws via the RNG
        // state advancing within the session.
        let mut mixed = self
            .seed
            .wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(rank as u64 + 1))
            .wrapping_add(0xbf58_476d_1ce4_e5b9u64.wrapping_mul(epoch + 1));
        mixed ^= mixed >> 30;
        let forced: Vec<FaultKind> = self
            .specs
            .iter()
            .filter(|s| s.kind != FaultKind::Kill && s.matches(rank, epoch, phase))
            .map(|s| s.kind)
            .collect();
        FaultSession {
            plan: Arc::clone(self),
            rank,
            epoch,
            phase,
            rng: StdRng::seed_from_u64(mixed),
            forced,
        }
    }
}

/// What the fault layer decided about one outgoing message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendFault {
    /// Send normally.
    Deliver,
    /// Sleep, then send.
    Delay(Duration),
    /// Don't send; queue for retransmission.
    Drop,
}

/// One rank's live view of a [`FaultPlan`] for one fault epoch.
///
/// Created per superstep by the engines (or once per run by
/// [`run_spmd_with`](crate::threaded::run_spmd_with)); holds the rank's
/// RNG stream so noise decisions are deterministic and independent of
/// thread scheduling.
#[derive(Debug)]
pub struct FaultSession {
    plan: Arc<FaultPlan>,
    rank: usize,
    epoch: u64,
    phase: PhaseKind,
    rng: StdRng,
    /// Benign specs matching this (rank, epoch, phase).
    forced: Vec<FaultKind>,
}

impl FaultSession {
    /// Decide the fate of the next outgoing message.
    pub fn on_send(&mut self) -> SendFault {
        for kind in &self.forced {
            match *kind {
                FaultKind::Delay(d) => return SendFault::Delay(d),
                FaultKind::DropRetry => return SendFault::Drop,
                _ => {}
            }
        }
        if let Some(noise) = self.plan.noise {
            // Fixed draw order keeps the stream stable regardless of
            // which probabilities are zero.
            let (d, r): (f64, f64) = (self.rng.random(), self.rng.random());
            if d < noise.drop_prob {
                return SendFault::Drop;
            }
            if r < noise.delay_prob {
                let micros = noise.max_delay.as_micros() as u64;
                let jitter = if micros > 0 {
                    self.rng.random_range(0..micros.saturating_add(1))
                } else {
                    0
                };
                return SendFault::Delay(Duration::from_micros(jitter));
            }
        }
        SendFault::Deliver
    }

    /// Should the next exchange scramble its destination visit order?
    pub fn reorder_exchange(&mut self) -> bool {
        if self.forced.contains(&FaultKind::Reorder) {
            return true;
        }
        match self.plan.noise {
            Some(noise) => self.rng.random::<f64>() < noise.reorder_prob,
            None => false,
        }
    }

    /// A destination visit permutation for `p` ranks (Fisher–Yates from
    /// the session RNG).
    pub fn destination_permutation(&mut self, p: usize) -> Vec<usize> {
        let mut perm: Vec<usize> = (0..p).collect();
        for i in (1..p).rev() {
            let j = self.rng.random_range(0..(i as u64 + 1)) as usize;
            perm.swap(i, j);
        }
        perm
    }

    /// Does a kill strike now?  Consumes the one-shot spec.
    pub fn should_kill(&self) -> bool {
        self.plan.consume_kill(self.rank, self.epoch, self.phase)
    }

    /// The rank this session belongs to.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// The fault epoch this session was built for.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arc(plan: FaultPlan) -> Arc<FaultPlan> {
        Arc::new(plan)
    }

    #[test]
    fn kills_are_one_shot() {
        let plan = arc(FaultPlan::new(1).kill(2, 25));
        let s = plan.session(2, 25, PhaseKind::Scatter);
        assert!(s.should_kill());
        assert!(!s.should_kill(), "kill must disarm after firing");
        // a fresh session (the restarted run) must not die again
        let s2 = plan.session(2, 25, PhaseKind::Scatter);
        assert!(!s2.should_kill());
        plan.rearm();
        assert!(plan.session(2, 25, PhaseKind::Push).should_kill());
    }

    #[test]
    fn kill_only_strikes_matching_rank_and_epoch() {
        let plan = arc(FaultPlan::new(7).kill(3, 10));
        assert!(!plan.session(3, 9, PhaseKind::Other).should_kill());
        assert!(!plan.session(2, 10, PhaseKind::Other).should_kill());
        assert!(plan.session(3, 10, PhaseKind::Other).should_kill());
    }

    #[test]
    fn phase_scoped_kill_waits_for_its_phase() {
        let plan = arc(FaultPlan::new(7).kill_in_phase(1, 4, PhaseKind::Gather));
        assert!(!plan.session(1, 4, PhaseKind::Scatter).should_kill());
        assert!(plan.session(1, 4, PhaseKind::Gather).should_kill());
    }

    #[test]
    fn noise_is_deterministic_per_rank_and_epoch() {
        let draw = |seed| {
            let plan = arc(FaultPlan::benign(seed));
            let mut s = plan.session(3, 7, PhaseKind::Scatter);
            (0..64).map(|_| s.on_send()).collect::<Vec<_>>()
        };
        assert_eq!(draw(42), draw(42));
        assert_ne!(draw(42), draw(43), "different seeds should differ");
    }

    #[test]
    fn permutation_is_a_permutation() {
        let plan = arc(FaultPlan::benign(5));
        let mut s = plan.session(0, 0, PhaseKind::Other);
        let mut perm = s.destination_permutation(17);
        perm.sort_unstable();
        assert_eq!(perm, (0..17).collect::<Vec<_>>());
    }

    #[test]
    fn forced_delay_applies_to_every_send() {
        let plan = arc(FaultPlan::new(0).delay(1, 3, Duration::from_millis(2)));
        let mut s = plan.session(1, 3, PhaseKind::Other);
        assert_eq!(s.on_send(), SendFault::Delay(Duration::from_millis(2)));
        let mut other_epoch = plan.session(1, 4, PhaseKind::Other);
        assert_eq!(other_epoch.on_send(), SendFault::Deliver);
    }
}
