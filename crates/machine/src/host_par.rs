//! Host-side parallel execution of rank loops.
//!
//! Replaces the former rayon dependency with scoped threads from `std`:
//! rank states are split into contiguous chunks, one chunk per host core,
//! and results are reassembled in rank order, so execution order can never
//! leak into results (ranks only interact at superstep boundaries anyway).
//!
//! The worker count defaults to [`std::thread::available_parallelism`]
//! and can be pinned with the `PIC_HOST_THREADS` environment variable
//! (any positive integer; invalid or zero values are ignored).  Pinning
//! matters for reproducible benchmark numbers on shared CI runners,
//! where the visible core count varies between runs — `BENCH_hot_path`
//! comparisons should set it explicitly.

use std::sync::OnceLock;
use std::thread;

/// Worker count override from `PIC_HOST_THREADS`, read once per process
/// (the first `par_map` call wins; benches set the variable up front).
fn host_workers() -> usize {
    static WORKERS: OnceLock<usize> = OnceLock::new();
    *WORKERS.get_or_init(|| {
        if let Ok(v) = std::env::var("PIC_HOST_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
            eprintln!("PIC_HOST_THREADS={v:?} is not a positive integer; ignoring");
        }
        thread::available_parallelism()
            .map(|v| v.get())
            .unwrap_or(1)
    })
}

/// Apply `f` to every `(rank, state, arg)` triple, possibly across host
/// threads, returning outputs in rank order.  Falls back to a plain loop
/// when only one worker is available or the input is tiny.
pub(crate) fn par_map<S, X, T, F>(states: &mut [S], args: Vec<X>, f: &F) -> Vec<T>
where
    S: Send,
    X: Send,
    T: Send,
    F: Fn(usize, &mut S, X) -> T + Sync,
{
    let n = states.len();
    debug_assert_eq!(n, args.len());
    let workers = host_workers().min(n);
    if workers <= 1 {
        return states
            .iter_mut()
            .zip(args)
            .enumerate()
            .map(|(r, (s, x))| f(r, s, x))
            .collect();
    }
    let chunk = n.div_ceil(workers);
    thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        let mut rest = states;
        let mut args = args.into_iter();
        let mut base = 0usize;
        while !rest.is_empty() {
            let take = chunk.min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            rest = tail;
            let xs: Vec<X> = args.by_ref().take(take).collect();
            handles.push(scope.spawn(move || {
                head.iter_mut()
                    .zip(xs)
                    .enumerate()
                    .map(|(i, (s, x))| f(base + i, s, x))
                    .collect::<Vec<T>>()
            }));
            base += take;
        }
        handles
            .into_iter()
            .flat_map(|h| match h.join() {
                Ok(outputs) => outputs,
                // Re-raise the worker's own payload so the engine-level
                // catch_unwind reports the root cause, not a generic
                // "host worker panicked".
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_rank_order() {
        let mut states: Vec<u64> = (0..37).collect();
        let args: Vec<u64> = (0..37).map(|i| i * 2).collect();
        let out = par_map(&mut states, args, &|r, s, x| {
            *s += 1;
            (r as u64) * 1000 + *s + x
        });
        for (r, v) in out.iter().enumerate() {
            let expect = (r as u64) * 1000 + (r as u64 + 1) + (r as u64) * 2;
            assert_eq!(*v, expect);
        }
    }

    #[test]
    fn empty_input_is_fine() {
        let mut states: Vec<u8> = Vec::new();
        let out: Vec<u8> = par_map(&mut states, Vec::new(), &|_, s, ()| *s);
        assert!(out.is_empty());
    }
}
