//! Host-side parallel execution of rank loops.
//!
//! Replaces the former rayon dependency with scoped threads from `std`:
//! rank states are split into contiguous chunks, one chunk per host core,
//! and results are reassembled in rank order, so execution order can never
//! leak into results (ranks only interact at superstep boundaries anyway).

use std::thread;

/// Apply `f` to every `(rank, state, arg)` triple, possibly across host
/// threads, returning outputs in rank order.  Falls back to a plain loop
/// when only one worker is available or the input is tiny.
pub(crate) fn par_map<S, X, T, F>(states: &mut [S], args: Vec<X>, f: &F) -> Vec<T>
where
    S: Send,
    X: Send,
    T: Send,
    F: Fn(usize, &mut S, X) -> T + Sync,
{
    let n = states.len();
    debug_assert_eq!(n, args.len());
    let workers = thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(1)
        .min(n);
    if workers <= 1 {
        return states
            .iter_mut()
            .zip(args)
            .enumerate()
            .map(|(r, (s, x))| f(r, s, x))
            .collect();
    }
    let chunk = n.div_ceil(workers);
    thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        let mut rest = states;
        let mut args = args.into_iter();
        let mut base = 0usize;
        while !rest.is_empty() {
            let take = chunk.min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            rest = tail;
            let xs: Vec<X> = args.by_ref().take(take).collect();
            handles.push(scope.spawn(move || {
                head.iter_mut()
                    .zip(xs)
                    .enumerate()
                    .map(|(i, (s, x))| f(base + i, s, x))
                    .collect::<Vec<T>>()
            }));
            base += take;
        }
        handles
            .into_iter()
            .flat_map(|h| match h.join() {
                Ok(outputs) => outputs,
                // Re-raise the worker's own payload so the engine-level
                // catch_unwind reports the root cause, not a generic
                // "host worker panicked".
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_rank_order() {
        let mut states: Vec<u64> = (0..37).collect();
        let args: Vec<u64> = (0..37).map(|i| i * 2).collect();
        let out = par_map(&mut states, args, &|r, s, x| {
            *s += 1;
            (r as u64) * 1000 + *s + x
        });
        for (r, v) in out.iter().enumerate() {
            let expect = (r as u64) * 1000 + (r as u64 + 1) + (r as u64) * 2;
            assert_eq!(*v, expect);
        }
    }

    #[test]
    fn empty_input_is_fine() {
        let mut states: Vec<u8> = Vec::new();
        let out: Vec<u8> = par_map(&mut states, Vec::new(), &|_, s, ()| *s);
        assert!(out.is_empty());
    }
}
