//! # pic-machine — a virtual distributed-memory machine
//!
//! The IPPS'96 paper evaluates on a 32–128 node CM-5.  This crate replaces
//! that hardware with a deterministic **BSP-style virtual machine**: `p`
//! virtual ranks hold rank-local state, execute compute *supersteps*, and
//! exchange typed, byte-counted messages through a router.  Time is
//! *modeled* with the paper's own two-level machine model (Section 4):
//!
//! * a unit of local computation costs `delta` seconds,
//! * every message carries a startup cost `tau`,
//! * every byte transferred costs `mu` seconds,
//!
//! independent of distance between ranks — exactly the assumptions under
//! which the paper analyses scatter/field-solve/gather/push.  Because all
//! communication is counted exactly (messages and bytes, per phase, per
//! rank), the reproduced figures report the same quantities the paper
//! measured: modeled execution time, maximum data sent/received by any
//! processor, and maximum message counts.
//!
//! Virtual ranks are executed either sequentially or across host cores via
//! scoped threads ([`ExecMode`]); both produce bit-identical results
//! because ranks only interact through the router at superstep boundaries.
//!
//! Beyond the modeled machine, the crate ships a second executor: the
//! real-threads [`ThreadedMachine`] runs every virtual rank on its own OS
//! thread with genuine message passing over [`threaded::Mailbox`]
//! channels.  Both executors implement [`SpmdEngine`], so the same phase
//! program runs — and produces bit-identical rank states — on either.
//!
//! ```
//! use pic_machine::{ExecMode, Machine, MachineConfig, PhaseKind};
//!
//! // Each rank holds a counter; one superstep sends it to the next rank.
//! let cfg = MachineConfig::cm5(4);
//! let mut m = Machine::new(cfg, ExecMode::Sequential, vec![0u64; 4]);
//! m.superstep(
//!     PhaseKind::Other,
//!     |rank, _state, ctx, outbox| {
//!         ctx.charge_ops(1.0);
//!         outbox.send((rank + 1) % 4, vec![rank as u64]);
//!     },
//!     |_rank, state, _ctx, inbox| {
//!         for (_, msg) in inbox {
//!             *state += msg[0];
//!         }
//!     },
//! );
//! assert_eq!(m.ranks()[1], 0); // rank 1 received rank 0's value 0
//! assert_eq!(m.ranks()[0], 3); // rank 0 received rank 3's value 3
//! ```

#![warn(missing_docs)]

pub mod clock;
pub mod collectives;
pub mod config;
pub mod engine;
pub mod error;
pub mod fault;
mod host_par;
pub mod machine;
pub mod metrics;
pub mod payload;
pub mod stats;
pub mod threaded;
pub mod threaded_engine;
pub mod trace;

pub use clock::Clock;
pub use config::{MachineConfig, Topology};
pub use engine::SpmdEngine;
pub use error::{FailureCause, SpmdError, TimeoutDetail};
pub use fault::{FaultKind, FaultNoise, FaultPlan, FaultSession, FaultSpec, SendFault};
pub use machine::{ExecMode, Machine, Outbox, PhaseCtx};
pub use metrics::{CommMatrix, Histogram, MetricsRegistry, PhaseFamily, SharedMetrics};
pub use payload::Payload;
pub use stats::{PhaseKind, PhaseTotals, StatsLog, SuperstepStats};
pub use threaded_engine::ThreadedMachine;
pub use trace::{
    CheckpointAction, CheckpointEvent, CsvRecorder, FaultEvent, IterationEvent, JsonLinesRecorder,
    MemoryRecorder, MetricsReport, MultiRecorder, PhaseMetrics, PolicyDecisionEvent, RankLoadEvent,
    Recorder, RedistributionEvent, RedistributionTrigger, RingRecorder, SharedRecorder, SpanEvent,
    SuperstepEvent, TraceEvent,
};
