//! The BSP engine: supersteps over rank-local states.
//!
//! A superstep is `compute -> route -> deliver -> barrier`:
//!
//! 1. every rank runs the *compute* closure against its own state,
//!    charging abstract op units and enqueueing typed messages;
//! 2. the router groups messages by destination (sender order preserved,
//!    so results never depend on execution order);
//! 3. every rank runs the *deliver* closure over its inbox;
//! 4. clocks synchronize to the slowest rank — idle time is charged to
//!    the communication component, which is exactly how load imbalance
//!    shows up as "overhead" in the paper's Figures 21/22.
//!
//! Self-messages are delivered but cost nothing, matching the paper's
//! machine model where only *off-processor* accesses pay τ/μ.

use std::sync::Arc;

use crate::clock::Clock;
use crate::config::MachineConfig;
use crate::error::{FailureCause, SpmdError};
use crate::fault::FaultPlan;
use crate::host_par;
use crate::metrics::SharedMetrics;
use crate::payload::Payload;
use crate::stats::{PhaseKind, StatsLog, SuperstepStats};
use crate::trace::{Recorder, SpanEvent, SuperstepEvent, TraceEvent};

/// How virtual ranks are executed on the host.
///
/// Both modes produce bit-identical simulation results; `Rayon` simply
/// spreads rank loops over host cores for wall-clock speed on the big
/// parameter sweeps.  (The name is historic: the host-parallel mode now
/// runs on `std` scoped threads — see `host_par` — so the
/// workspace builds with no external dependencies.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Run ranks one after another on the calling thread.
    Sequential,
    /// Run ranks across host threads, one contiguous chunk per core.
    Rayon,
}

/// Per-rank, per-superstep accounting handed to the phase closures.
#[derive(Debug, Default)]
pub struct PhaseCtx {
    ops: f64,
}

impl PhaseCtx {
    /// Charge `units` abstract op units of local computation (converted to
    /// seconds via the machine's δ).
    #[inline]
    pub fn charge_ops(&mut self, units: f64) {
        debug_assert!(units >= 0.0, "negative op charge {units}");
        self.ops += units;
    }

    /// Units charged so far this superstep.
    #[inline]
    pub fn ops(&self) -> f64 {
        self.ops
    }
}

/// Message staging area for one rank during the compute half-step.
#[derive(Debug)]
pub struct Outbox<M> {
    msgs: Vec<(usize, M)>,
    ranks: usize,
}

impl<M: Payload> Outbox<M> {
    pub(crate) fn new(ranks: usize) -> Self {
        Self {
            msgs: Vec::new(),
            ranks,
        }
    }

    /// Consume the outbox, returning the staged `(to, msg)` pairs in send
    /// order (crate-internal: executors drain it after the compute half).
    pub(crate) fn into_msgs(self) -> Vec<(usize, M)> {
        self.msgs
    }

    /// Queue `msg` for delivery to rank `to` at the end of the superstep.
    ///
    /// # Panics
    /// Panics if `to` is not a valid rank.
    #[inline]
    pub fn send(&mut self, to: usize, msg: M) {
        assert!(to < self.ranks, "destination rank {to} out of range");
        self.msgs.push((to, msg));
    }

    /// Number of messages queued so far.
    pub fn len(&self) -> usize {
        self.msgs.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.msgs.is_empty()
    }
}

/// The virtual machine: configuration, rank states, clocks and statistics.
pub struct Machine<S> {
    cfg: MachineConfig,
    mode: ExecMode,
    states: Vec<S>,
    clocks: Vec<Clock>,
    stats: StatsLog,
    /// Fault schedule honored by the engine-trait wrappers (the modeled
    /// machine has no real wires, so only kill faults apply).
    fault_plan: Option<Arc<FaultPlan>>,
    /// Driver-set fault epoch (the PIC driver uses the iteration number).
    fault_epoch: u64,
    /// Operations issued through the engine trait (superstep index in
    /// error context).
    supersteps: u64,
    /// Installed observability sink, if any (see [`crate::trace`]).
    recorder: Option<Box<dyn Recorder>>,
    /// Supersteps/collectives emitted to the recorder.  Separate from
    /// `supersteps`, which only counts engine-trait entry points.
    traced_steps: u64,
    /// Installed metrics registry, if any (see [`crate::metrics`]).
    metrics: Option<SharedMetrics>,
}

impl<S: Send> Machine<S> {
    /// Build a machine whose rank `r` starts with `states[r]`.
    ///
    /// # Panics
    /// Panics if `states.len() != cfg.ranks`.
    pub fn new(cfg: MachineConfig, mode: ExecMode, states: Vec<S>) -> Self {
        assert_eq!(
            states.len(),
            cfg.ranks,
            "state count {} != configured ranks {}",
            states.len(),
            cfg.ranks
        );
        let clocks = vec![Clock::default(); cfg.ranks];
        Self {
            cfg,
            mode,
            states,
            clocks,
            stats: StatsLog::new(),
            fault_plan: None,
            fault_epoch: 0,
            supersteps: 0,
            recorder: None,
            traced_steps: 0,
            metrics: None,
        }
    }

    /// Install (or clear) a shared metrics registry.  While installed,
    /// every superstep and collective feeds its phase family and the
    /// rank-pair communication matrix (see [`crate::metrics`]).
    pub fn set_metrics(&mut self, metrics: Option<SharedMetrics>) {
        self.metrics = metrics;
    }

    /// A clone of the installed metrics handle, if any.
    pub fn metrics(&self) -> Option<SharedMetrics> {
        self.metrics.clone()
    }

    /// Install (or clear) an observability sink.  Every subsequent
    /// superstep and collective emits per-rank [`SpanEvent`]s and one
    /// aggregated [`SuperstepEvent`] to it (see [`crate::trace`]).
    pub fn set_recorder(&mut self, recorder: Option<Box<dyn Recorder>>) {
        self.recorder = recorder;
    }

    /// Remove and return the installed recorder (used to carry a sink
    /// across an engine rebuild, e.g. on checkpoint restart).
    pub fn take_recorder(&mut self) -> Option<Box<dyn Recorder>> {
        self.recorder.take()
    }

    /// Mutable access to the installed recorder, if any (drivers use it
    /// to emit their own iteration/redistribution events).
    pub fn recorder_mut(&mut self) -> Option<&mut (dyn Recorder + '_)> {
        match self.recorder.as_mut() {
            Some(rec) => Some(rec.as_mut()),
            None => None,
        }
    }

    /// True when a recorder is installed (crate-internal fast path so
    /// emission work is skipped entirely when tracing is off).
    pub(crate) fn has_recorder(&self) -> bool {
        self.recorder.is_some()
    }

    /// Forward one event to the recorder, if any (crate-internal).
    pub(crate) fn record_event(&mut self, event: &TraceEvent) {
        if let Some(rec) = &mut self.recorder {
            rec.record(event);
        }
    }

    /// Allocate the next trace superstep index (crate-internal).
    pub(crate) fn next_trace_step(&mut self) -> u64 {
        let step = self.traced_steps;
        self.traced_steps += 1;
        step
    }

    /// Install (or clear) a fault schedule.  The modeled machine has no
    /// real wires, so only kill faults apply; benign delay/reorder/drop
    /// faults are executor-level phenomena and are ignored here.
    pub fn set_fault_plan(&mut self, plan: Option<Arc<FaultPlan>>) {
        self.fault_plan = plan;
    }

    /// The installed fault schedule, if any.
    pub fn fault_plan(&self) -> Option<Arc<FaultPlan>> {
        self.fault_plan.clone()
    }

    /// Advance the fault epoch (the PIC driver sets it to the iteration
    /// number so fault specs can say "at iteration 25").
    pub fn set_fault_epoch(&mut self, epoch: u64) {
        self.fault_epoch = epoch;
    }

    /// The current fault epoch.
    pub fn fault_epoch(&self) -> u64 {
        self.fault_epoch
    }

    /// Engine-trait bookkeeping: bump the superstep counter and fail if
    /// a kill fault strikes any rank now.  Returns the operation's
    /// superstep index for error context.
    pub(crate) fn fault_guard(&mut self, phase: PhaseKind) -> Result<u64, SpmdError> {
        let step = self.supersteps;
        self.supersteps += 1;
        if let Some(plan) = &self.fault_plan {
            for r in 0..self.cfg.ranks {
                if plan.consume_kill(r, self.fault_epoch, phase) {
                    return Err(SpmdError::on_rank(
                        r,
                        FailureCause::Killed {
                            epoch: self.fault_epoch,
                        },
                    )
                    .in_phase(phase, step, self.fault_epoch));
                }
            }
        }
        Ok(step)
    }

    /// Machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Number of virtual ranks.
    pub fn num_ranks(&self) -> usize {
        self.cfg.ranks
    }

    /// Immutable view of rank states.
    pub fn ranks(&self) -> &[S] {
        &self.states
    }

    /// Mutable view of rank states (setup only; mutation outside
    /// supersteps is not charged to any clock).
    pub fn ranks_mut(&mut self) -> &mut [S] {
        &mut self.states
    }

    /// Per-rank clocks (all equal after a barrier).
    pub fn clocks(&self) -> &[Clock] {
        &self.clocks
    }

    /// Modeled elapsed time: the slowest rank's total.
    pub fn elapsed_s(&self) -> f64 {
        self.clocks.iter().map(Clock::total_s).fold(0.0, f64::max)
    }

    /// Maximum compute seconds over ranks.
    pub fn compute_s(&self) -> f64 {
        self.clocks.iter().map(|c| c.compute_s).fold(0.0, f64::max)
    }

    /// Superstep statistics log.
    pub fn stats(&self) -> &StatsLog {
        &self.stats
    }

    /// Mutable statistics log (the PIC driver drains it per iteration).
    pub fn stats_mut(&mut self) -> &mut StatsLog {
        &mut self.stats
    }

    /// Run one superstep of `phase`.
    ///
    /// `compute` runs first on every rank and may send messages; `deliver`
    /// then runs on every rank with its inbox, sorted by sender rank.
    /// Both closures may charge op units.
    pub fn superstep<M, F, G>(&mut self, phase: PhaseKind, compute: F, deliver: G)
    where
        M: Payload,
        F: Fn(usize, &mut S, &mut PhaseCtx, &mut Outbox<M>) + Sync,
        G: Fn(usize, &mut S, &mut PhaseCtx, Vec<(usize, M)>) + Sync,
    {
        let p = self.cfg.ranks;

        // --- compute half-step -------------------------------------------------
        let run_compute = |r: usize, s: &mut S, (): ()| {
            let mut ctx = PhaseCtx::default();
            let mut outbox = Outbox::new(p);
            compute(r, s, &mut ctx, &mut outbox);
            (outbox.msgs, ctx.ops)
        };
        let outputs: Vec<(Vec<(usize, M)>, f64)> = match self.mode {
            ExecMode::Sequential => self
                .states
                .iter_mut()
                .enumerate()
                .map(|(r, s)| run_compute(r, s, ()))
                .collect(),
            ExecMode::Rayon => host_par::par_map(&mut self.states, vec![(); p], &run_compute),
        };

        // --- route -------------------------------------------------------------
        let mut compute_ops = vec![0.0f64; p];
        let mut send_msgs = vec![0u64; p];
        let mut send_bytes = vec![0u64; p];
        let mut recv_msgs = vec![0u64; p];
        let mut recv_bytes = vec![0u64; p];
        let mut inboxes: Vec<Vec<(usize, M)>> = (0..p).map(|_| Vec::new()).collect();
        // Per-pair tallies for the metrics comm matrix; only collected
        // when a registry is installed so the hot path stays alloc-free.
        let mut pair_log: Vec<(usize, usize, u64)> = Vec::new();
        let log_pairs = self.metrics.is_some();
        for (from, (msgs, ops)) in outputs.into_iter().enumerate() {
            compute_ops[from] = ops;
            for (to, msg) in msgs {
                if to != from {
                    let bytes = msg.size_bytes() as u64;
                    send_msgs[from] += 1;
                    send_bytes[from] += bytes;
                    recv_msgs[to] += 1;
                    recv_bytes[to] += bytes;
                    if log_pairs {
                        pair_log.push((from, to, bytes));
                    }
                }
                inboxes[to].push((from, msg));
            }
        }

        // --- deliver half-step -------------------------------------------------
        let deliver_ops: Vec<f64> = {
            let run_deliver = |r: usize, s: &mut S, inbox: Vec<(usize, M)>| {
                let mut ctx = PhaseCtx::default();
                deliver(r, s, &mut ctx, inbox);
                ctx.ops
            };
            match self.mode {
                ExecMode::Sequential => self
                    .states
                    .iter_mut()
                    .enumerate()
                    .zip(inboxes)
                    .map(|((r, s), inbox)| run_deliver(r, s, inbox))
                    .collect(),
                ExecMode::Rayon => host_par::par_map(&mut self.states, inboxes, &run_deliver),
            }
        };

        // --- charge clocks and barrier -----------------------------------------
        let start = self.clocks.first().map_or(0.0, Clock::total_s);
        let mut compute_secs = vec![0.0f64; p];
        let mut comm_secs = vec![0.0f64; p];
        let mut max_compute = 0.0f64;
        let mut max_comm = 0.0f64;
        for r in 0..p {
            let compute_s = self.cfg.compute_cost(compute_ops[r] + deliver_ops[r]);
            let comm_s = send_msgs[r] as f64 * self.cfg.tau
                + send_bytes[r] as f64 * self.cfg.mu
                + recv_msgs[r] as f64 * self.cfg.tau
                + recv_bytes[r] as f64 * self.cfg.mu;
            self.clocks[r].advance_compute(compute_s);
            self.clocks[r].advance_comm(comm_s);
            compute_secs[r] = compute_s;
            comm_secs[r] = comm_s;
            max_compute = max_compute.max(compute_s);
            max_comm = max_comm.max(comm_s);
        }
        let elapsed = self.clocks.iter().map(Clock::total_s).fold(0.0, f64::max) - start;
        let barrier = start + elapsed;
        for c in &mut self.clocks {
            c.sync_to(barrier);
        }

        let total_msgs: u64 = send_msgs.iter().sum();
        let total_bytes: u64 = send_bytes.iter().sum();
        self.stats.push(SuperstepStats {
            phase,
            max_msgs_sent: send_msgs.iter().copied().max().unwrap_or(0),
            max_msgs_recv: recv_msgs.iter().copied().max().unwrap_or(0),
            max_bytes_sent: send_bytes.iter().copied().max().unwrap_or(0),
            max_bytes_recv: recv_bytes.iter().copied().max().unwrap_or(0),
            total_msgs,
            total_bytes,
            max_compute_s: max_compute,
            max_comm_s: max_comm,
            elapsed_s: elapsed,
        });

        if let Some(metrics) = &self.metrics {
            // One lock per superstep.  The modeled router sees both ends
            // of every transfer, so sender- and receiver-side matrix
            // entries are recorded from the same pair log here; the
            // threaded engine records the two sides from the two ends of
            // its mailbox exchange.
            metrics.with(|reg| {
                for &(from, to, bytes) in &pair_log {
                    reg.comm_mut().record_send(from, to, 1, bytes);
                    reg.comm_mut().record_recv(to, from, 1, bytes);
                }
                reg.observe_superstep(phase, elapsed, total_msgs, total_bytes);
            });
        }

        if self.has_recorder() {
            let step = self.next_trace_step();
            let epoch = self.fault_epoch;
            for r in 0..p {
                self.record_event(&TraceEvent::Span(SpanEvent {
                    rank: r,
                    phase,
                    superstep: step,
                    epoch,
                    start_s: start,
                    compute_s: compute_secs[r],
                    comm_s: comm_secs[r],
                    end_s: start + compute_secs[r] + comm_secs[r],
                    msgs_sent: send_msgs[r],
                    msgs_recv: recv_msgs[r],
                    bytes_sent: send_bytes[r],
                    bytes_recv: recv_bytes[r],
                }));
            }
            self.record_event(&TraceEvent::Superstep(SuperstepEvent {
                phase,
                superstep: step,
                epoch,
                start_s: start,
                elapsed_s: elapsed,
                max_compute_s: max_compute,
                max_comm_s: max_comm,
                total_msgs,
                total_bytes,
                collective: false,
            }));
        }
    }

    /// A communication-free superstep: every rank runs `compute` locally.
    pub fn local_step<F>(&mut self, phase: PhaseKind, compute: F)
    where
        F: Fn(usize, &mut S, &mut PhaseCtx) + Sync,
    {
        self.superstep::<(), _, _>(
            phase,
            |r, s, ctx, _outbox| compute(r, s, ctx),
            |_, _, _, _| {},
        );
    }

    /// Consume the machine, returning the final rank states.
    pub fn into_ranks(self) -> Vec<S> {
        self.states
    }

    /// Mutable clock access for the collectives module.
    pub(crate) fn clocks_mut_impl(&mut self) -> &mut [Clock] {
        &mut self.clocks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(p: usize) -> MachineConfig {
        MachineConfig {
            ranks: p,
            tau: 1.0,
            mu: 0.1,
            delta: 0.01,
            topology: crate::Topology::FullyConnected,
        }
    }

    #[test]
    fn ring_exchange_delivers_in_sender_order() {
        let mut m = Machine::new(tiny(4), ExecMode::Sequential, vec![Vec::<usize>::new(); 4]);
        m.superstep(
            PhaseKind::Other,
            |r, _s, _ctx, ob: &mut Outbox<Vec<u64>>| {
                // everyone sends to rank 0
                ob.send(0, vec![r as u64]);
            },
            |_r, s, _ctx, inbox| {
                for (from, _msg) in inbox {
                    s.push(from);
                }
            },
        );
        assert_eq!(m.ranks()[0], vec![0, 1, 2, 3]);
        assert!(m.ranks()[1].is_empty());
    }

    #[test]
    fn self_messages_are_free() {
        let mut m = Machine::new(tiny(2), ExecMode::Sequential, vec![0u64; 2]);
        m.superstep(
            PhaseKind::Other,
            |r, _s, _ctx, ob: &mut Outbox<Vec<u64>>| ob.send(r, vec![1, 2, 3]),
            |_r, s, _ctx, inbox| *s += inbox.len() as u64,
        );
        let rec = m.stats().records()[0];
        assert_eq!(rec.total_msgs, 0);
        assert_eq!(rec.total_bytes, 0);
        assert_eq!(rec.elapsed_s, 0.0);
        assert_eq!(m.ranks(), &[1, 1]);
    }

    #[test]
    fn off_rank_message_costs_tau_plus_mu() {
        let mut m = Machine::new(tiny(2), ExecMode::Sequential, vec![(); 2]);
        m.superstep(
            PhaseKind::Scatter,
            |r, _s, _ctx, ob: &mut Outbox<Vec<f64>>| {
                if r == 0 {
                    ob.send(1, vec![0.0; 10]); // 80 bytes
                }
            },
            |_, _, _, _| {},
        );
        let rec = m.stats().records()[0];
        assert_eq!(rec.max_bytes_sent, 80);
        assert_eq!(rec.max_msgs_sent, 1);
        assert_eq!(rec.max_msgs_recv, 1);
        // sender pays tau + 80 mu = 1 + 8; receiver the same; elapsed is
        // the max single-rank cost, i.e. 9.
        assert!((rec.elapsed_s - 9.0).abs() < 1e-12, "{}", rec.elapsed_s);
        // both clocks synced to the barrier
        assert!((m.clocks()[0].total_s() - 9.0).abs() < 1e-12);
        assert!((m.clocks()[1].total_s() - 9.0).abs() < 1e-12);
    }

    #[test]
    fn compute_ops_charged_via_delta() {
        let mut m = Machine::new(tiny(2), ExecMode::Sequential, vec![(); 2]);
        m.local_step(PhaseKind::Push, |r, _s, ctx| {
            ctx.charge_ops(if r == 0 { 100.0 } else { 300.0 });
        });
        // slowest rank: 300 * 0.01 = 3.0
        assert!((m.elapsed_s() - 3.0).abs() < 1e-12);
        let rec = m.stats().records()[0];
        assert!((rec.max_compute_s - 3.0).abs() < 1e-12);
        // rank 0 idled 2.0s, charged to comm by the barrier
        assert!((m.clocks()[0].comm_s - 2.0).abs() < 1e-12);
    }

    #[test]
    fn sequential_and_rayon_agree() {
        let run = |mode| {
            let mut m = Machine::new(tiny(8), mode, (0..8u64).collect::<Vec<_>>());
            for _ in 0..5 {
                m.superstep(
                    PhaseKind::Other,
                    |r, s, ctx, ob: &mut Outbox<Vec<u64>>| {
                        ctx.charge_ops(*s as f64);
                        ob.send((r + 3) % 8, vec![*s]);
                        ob.send((r + 5) % 8, vec![*s * 2]);
                    },
                    |_r, s, _ctx, inbox| {
                        for (from, msg) in inbox {
                            *s = s.wrapping_add(msg[0]).wrapping_mul(from as u64 | 1);
                        }
                    },
                );
            }
            (m.ranks().to_vec(), m.elapsed_s())
        };
        let (seq_states, seq_t) = run(ExecMode::Sequential);
        let (par_states, par_t) = run(ExecMode::Rayon);
        assert_eq!(seq_states, par_states);
        assert!((seq_t - par_t).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn sending_to_invalid_rank_panics() {
        let mut m = Machine::new(tiny(2), ExecMode::Sequential, vec![(); 2]);
        m.superstep(
            PhaseKind::Other,
            |_r, _s, _ctx, ob: &mut Outbox<Vec<u64>>| ob.send(7, vec![]),
            |_, _, _, _| {},
        );
    }

    #[test]
    #[should_panic(expected = "state count")]
    fn state_count_mismatch_panics() {
        let _ = Machine::new(tiny(3), ExecMode::Sequential, vec![(); 2]);
    }

    #[test]
    fn stats_track_max_over_ranks() {
        let mut m = Machine::new(tiny(3), ExecMode::Sequential, vec![(); 3]);
        m.superstep(
            PhaseKind::Scatter,
            |r, _s, _ctx, ob: &mut Outbox<Vec<u8>>| {
                // rank 2 sends the most
                for _ in 0..=r {
                    ob.send((r + 1) % 3, vec![0u8; 4]);
                }
            },
            |_, _, _, _| {},
        );
        let rec = m.stats().records()[0];
        assert_eq!(rec.max_msgs_sent, 3);
        assert_eq!(rec.max_bytes_sent, 12);
        assert_eq!(rec.total_msgs, 6);
        assert_eq!(rec.total_bytes, 24);
    }
}
