//! Zero-dependency metrics registry: counters, gauges, fixed-bucket
//! histograms, and a rank-pair communication matrix.
//!
//! The trace layer ([`crate::trace`]) answers *"what happened, in
//! order?"* — an event stream.  This module answers *"how much, in
//! total?"* — cheap aggregates a long-running service can expose on a
//! scrape endpoint.  The two are fed from the same instrumentation
//! points in the engines, and both are strictly pay-when-enabled: a
//! machine with no [`SharedMetrics`] installed takes a single
//! `Option::is_some` branch per superstep and allocates nothing (the
//! `alloc_free` oracle test runs without metrics and still asserts zero
//! steady-state allocations).
//!
//! ## Structure
//!
//! * [`MetricsRegistry`] — the store.  Per-phase families (superstep
//!   counts, seconds, message/byte totals, a duration histogram per
//!   [`PhaseKind`]), named global counters/gauges, named per-rank
//!   gauges, and a [`CommMatrix`].
//! * [`CommMatrix`] — dense `p × p` send *and* receive tallies.  Sender
//!   and receiver sides are recorded independently (on the threaded
//!   engine, literally from the two ends of the mailbox exchange), so
//!   the conservation check `sent(i→j) == recv(j←i)` is a genuine
//!   end-to-end invariant rather than a tautology.
//! * [`Histogram`] — fixed log-spaced buckets; no allocation after
//!   construction.
//! * [`SharedMetrics`] — `Arc<Mutex<MetricsRegistry>>` handle cloned
//!   into engines and the driver.  Engines lock it **once per
//!   superstep**, never per message.
//! * [`MetricsRegistry::prometheus_text`] — Prometheus text-format
//!   snapshot writer (the first of the two exporters; the second is the
//!   HTML/SVG dashboard in `pic-bench`).
//!
//! Collective supersteps have no literal point-to-point messages in the
//! modeled engine and butterfly-stage messages in the threaded one; both
//! engines attribute them to the matrix uniformly as one logical message
//! of the per-pair share to every ordered pair `(i, j), i != j`, so the
//! matrices of a cross-validated modeled/threaded pair of runs are
//! comparable entry for entry.

use crate::stats::PhaseKind;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Dense slot index of a phase inside the registry's per-phase arrays.
///
/// Deliberately an exhaustive match with **no wildcard arm**: adding a
/// `PhaseKind` variant fails compilation here until the new phase gets a
/// metric family, which is the "every phase has a registered family"
/// lint the CI test suite relies on.
pub fn phase_slot(phase: PhaseKind) -> usize {
    match phase {
        PhaseKind::Scatter => 0,
        PhaseKind::FieldSolve => 1,
        PhaseKind::Gather => 2,
        PhaseKind::Push => 3,
        PhaseKind::Redistribute => 4,
        PhaseKind::Setup => 5,
        PhaseKind::Other => 6,
    }
}

/// Upper bounds (seconds) of the fixed histogram buckets; a final
/// implicit `+Inf` bucket catches the rest.  Log-spaced so the same
/// bounds resolve both modeled CM-5 superstep times (~1e-3 s) and
/// wall-clock threaded times (~1e-5 s).
pub const DURATION_BUCKETS_S: [f64; 10] =
    [1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0, 1000.0];

/// Fixed-bucket histogram of `f64` observations.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Cumulative-style raw counts per bucket; `counts[i]` holds
    /// observations `<= DURATION_BUCKETS_S[i]` and not in an earlier
    /// bucket, and the final entry is the `+Inf` overflow bucket.
    counts: Vec<u64>,
    count: u64,
    sum: f64,
}

impl Histogram {
    /// An empty histogram over [`DURATION_BUCKETS_S`].
    pub fn new() -> Self {
        Self {
            counts: vec![0; DURATION_BUCKETS_S.len() + 1],
            count: 0,
            sum: 0.0,
        }
    }

    /// Record one observation.
    pub fn observe(&mut self, v: f64) {
        let slot = DURATION_BUCKETS_S
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(DURATION_BUCKETS_S.len());
        self.counts[slot] += 1;
        self.count += 1;
        self.sum += v;
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Cumulative count of observations `<=` bucket `i` of
    /// [`DURATION_BUCKETS_S`]; `i == DURATION_BUCKETS_S.len()` is `+Inf`
    /// and equals [`Histogram::count`].
    pub fn cumulative(&self, i: usize) -> u64 {
        self.counts[..=i].iter().sum()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Dense rank-pair communication tallies (row = source, column =
/// destination), with send and receive sides recorded independently.
#[derive(Debug, Clone, PartialEq)]
pub struct CommMatrix {
    ranks: usize,
    sent_msgs: Vec<u64>,
    sent_bytes: Vec<u64>,
    recv_msgs: Vec<u64>,
    recv_bytes: Vec<u64>,
}

impl CommMatrix {
    /// An all-zero `ranks × ranks` matrix.
    pub fn new(ranks: usize) -> Self {
        let n = ranks * ranks;
        Self {
            ranks,
            sent_msgs: vec![0; n],
            sent_bytes: vec![0; n],
            recv_msgs: vec![0; n],
            recv_bytes: vec![0; n],
        }
    }

    /// Number of ranks (matrix side length).
    pub fn ranks(&self) -> usize {
        self.ranks
    }

    fn idx(&self, from: usize, to: usize) -> usize {
        from * self.ranks + to
    }

    /// Record, on the **sender** side, `msgs` messages totalling `bytes`
    /// going from `from` to `to`.
    pub fn record_send(&mut self, from: usize, to: usize, msgs: u64, bytes: u64) {
        let i = self.idx(from, to);
        self.sent_msgs[i] += msgs;
        self.sent_bytes[i] += bytes;
    }

    /// Record, on the **receiver** side, `msgs` messages totalling
    /// `bytes` arriving at `to` from `from`.
    pub fn record_recv(&mut self, to: usize, from: usize, msgs: u64, bytes: u64) {
        let i = self.idx(from, to);
        self.recv_msgs[i] += msgs;
        self.recv_bytes[i] += bytes;
    }

    /// Sender-side tallies for the ordered pair: `(msgs, bytes)`.
    pub fn sent(&self, from: usize, to: usize) -> (u64, u64) {
        let i = self.idx(from, to);
        (self.sent_msgs[i], self.sent_bytes[i])
    }

    /// Receiver-side tallies for the ordered pair: `(msgs, bytes)`.
    pub fn received(&self, from: usize, to: usize) -> (u64, u64) {
        let i = self.idx(from, to);
        (self.recv_msgs[i], self.recv_bytes[i])
    }

    /// Total bytes recorded on the sender side.
    pub fn total_sent_bytes(&self) -> u64 {
        self.sent_bytes.iter().sum()
    }

    /// Largest sender-side byte tally over all ordered pairs.
    pub fn max_pair_bytes(&self) -> u64 {
        self.sent_bytes.iter().copied().max().unwrap_or(0)
    }

    /// `true` iff for every ordered pair the sender-side tallies equal
    /// the receiver-side tallies — every message sent was received,
    /// byte for byte.
    pub fn is_conserved(&self) -> bool {
        self.sent_msgs == self.recv_msgs && self.sent_bytes == self.recv_bytes
    }

    /// CSV header matching [`CommMatrix::csv_rows`].
    pub const CSV_HEADER: &'static str = "src,dst,sent_msgs,sent_bytes,recv_msgs,recv_bytes";

    /// One CSV row per ordered pair with nonzero traffic.
    pub fn csv_rows(&self) -> Vec<String> {
        let mut rows = Vec::new();
        for from in 0..self.ranks {
            for to in 0..self.ranks {
                let i = self.idx(from, to);
                if self.sent_msgs[i] == 0 && self.recv_msgs[i] == 0 {
                    continue;
                }
                rows.push(format!(
                    "{},{},{},{},{},{}",
                    from,
                    to,
                    self.sent_msgs[i],
                    self.sent_bytes[i],
                    self.recv_msgs[i],
                    self.recv_bytes[i]
                ));
            }
        }
        rows
    }
}

/// Per-[`PhaseKind`] metric family: superstep counts, time, traffic, and
/// a duration histogram.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PhaseFamily {
    /// Supersteps recorded for this phase.
    pub supersteps: u64,
    /// Summed superstep elapsed seconds.
    pub seconds: f64,
    /// Summed off-rank messages across ranks and supersteps.
    pub msgs: u64,
    /// Summed off-rank bytes across ranks and supersteps.
    pub bytes: u64,
    /// Distribution of superstep durations.
    pub duration: Histogram,
}

/// The metrics store: phase families, named counters/gauges (global and
/// per-rank), and the communication matrix.
///
/// Not thread-safe by itself; share through [`SharedMetrics`].  Named
/// series use `BTreeMap` so [`MetricsRegistry::prometheus_text`] output
/// is deterministic.
#[derive(Debug, Clone)]
pub struct MetricsRegistry {
    ranks: usize,
    phases: Vec<PhaseFamily>,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    rank_gauges: BTreeMap<String, Vec<f64>>,
    comm: CommMatrix,
}

impl MetricsRegistry {
    /// A fresh registry for a `ranks`-rank machine with one family per
    /// [`PhaseKind`] pre-registered.
    pub fn new(ranks: usize) -> Self {
        Self {
            ranks,
            phases: vec![PhaseFamily::default(); PhaseKind::ALL.len()],
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            rank_gauges: BTreeMap::new(),
            comm: CommMatrix::new(ranks),
        }
    }

    /// Number of ranks this registry was built for.
    pub fn ranks(&self) -> usize {
        self.ranks
    }

    /// The metric family of `phase`.
    pub fn phase(&self, phase: PhaseKind) -> &PhaseFamily {
        &self.phases[phase_slot(phase)]
    }

    /// The communication matrix.
    pub fn comm(&self) -> &CommMatrix {
        &self.comm
    }

    /// Mutable communication matrix (engines feed it directly).
    pub fn comm_mut(&mut self) -> &mut CommMatrix {
        &mut self.comm
    }

    /// Record one superstep into `phase`'s family.
    pub fn observe_superstep(&mut self, phase: PhaseKind, elapsed_s: f64, msgs: u64, bytes: u64) {
        let fam = &mut self.phases[phase_slot(phase)];
        fam.supersteps += 1;
        fam.seconds += elapsed_s;
        fam.msgs += msgs;
        fam.bytes += bytes;
        fam.duration.observe(elapsed_s);
    }

    /// Record a collective superstep: the phase family entry plus the
    /// modeled uniform pair attribution (every ordered pair `i != j`
    /// exchanges one logical message of `share_bytes`).
    pub fn observe_collective(
        &mut self,
        phase: PhaseKind,
        elapsed_s: f64,
        share_bytes: u64,
        msgs: u64,
        bytes: u64,
    ) {
        self.observe_superstep(phase, elapsed_s, msgs, bytes);
        for from in 0..self.ranks {
            for to in 0..self.ranks {
                if from != to {
                    self.comm.record_send(from, to, 1, share_bytes);
                    self.comm.record_recv(to, from, 1, share_bytes);
                }
            }
        }
    }

    /// Add `delta` to the named global counter, creating it at zero.
    pub fn inc(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Current value of a named global counter (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Set the named global gauge.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Current value of a named global gauge.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Set one rank's slot of a named per-rank gauge vector.
    pub fn set_rank_gauge(&mut self, name: &str, rank: usize, value: f64) {
        let ranks = self.ranks;
        let v = self
            .rank_gauges
            .entry(name.to_string())
            .or_insert_with(|| vec![0.0; ranks]);
        v[rank] = value;
    }

    /// The per-rank values of a named gauge, if ever set.
    pub fn rank_gauge(&self, name: &str) -> Option<&[f64]> {
        self.rank_gauges.get(name).map(|v| v.as_slice())
    }

    /// Render the registry as a Prometheus text-format snapshot.
    pub fn prometheus_text(&self) -> String {
        let mut out = String::new();

        out.push_str("# HELP pic_phase_supersteps_total Supersteps recorded per phase.\n");
        out.push_str("# TYPE pic_phase_supersteps_total counter\n");
        for &p in &PhaseKind::ALL {
            let fam = self.phase(p);
            out.push_str(&format!(
                "pic_phase_supersteps_total{{phase=\"{}\"}} {}\n",
                p.label(),
                fam.supersteps
            ));
        }

        out.push_str("# HELP pic_phase_msgs_total Off-rank messages per phase.\n");
        out.push_str("# TYPE pic_phase_msgs_total counter\n");
        for &p in &PhaseKind::ALL {
            out.push_str(&format!(
                "pic_phase_msgs_total{{phase=\"{}\"}} {}\n",
                p.label(),
                self.phase(p).msgs
            ));
        }

        out.push_str("# HELP pic_phase_bytes_total Off-rank bytes per phase.\n");
        out.push_str("# TYPE pic_phase_bytes_total counter\n");
        for &p in &PhaseKind::ALL {
            out.push_str(&format!(
                "pic_phase_bytes_total{{phase=\"{}\"}} {}\n",
                p.label(),
                self.phase(p).bytes
            ));
        }

        out.push_str("# HELP pic_phase_seconds Superstep duration per phase.\n");
        out.push_str("# TYPE pic_phase_seconds histogram\n");
        for &p in &PhaseKind::ALL {
            let fam = self.phase(p);
            for (i, b) in DURATION_BUCKETS_S.iter().enumerate() {
                out.push_str(&format!(
                    "pic_phase_seconds_bucket{{phase=\"{}\",le=\"{}\"}} {}\n",
                    p.label(),
                    b,
                    fam.duration.cumulative(i)
                ));
            }
            out.push_str(&format!(
                "pic_phase_seconds_bucket{{phase=\"{}\",le=\"+Inf\"}} {}\n",
                p.label(),
                fam.duration.count()
            ));
            out.push_str(&format!(
                "pic_phase_seconds_sum{{phase=\"{}\"}} {}\n",
                p.label(),
                fam.duration.sum()
            ));
            out.push_str(&format!(
                "pic_phase_seconds_count{{phase=\"{}\"}} {}\n",
                p.label(),
                fam.duration.count()
            ));
        }

        for (name, v) in &self.counters {
            out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
        }
        for (name, v) in &self.gauges {
            out.push_str(&format!("# TYPE {name} gauge\n{name} {v}\n"));
        }
        for (name, vals) in &self.rank_gauges {
            out.push_str(&format!("# TYPE {name} gauge\n"));
            for (rank, v) in vals.iter().enumerate() {
                out.push_str(&format!("{name}{{rank=\"{rank}\"}} {v}\n"));
            }
        }

        out.push_str("# HELP pic_comm_sent_bytes_total Sender-side bytes per rank pair.\n");
        out.push_str("# TYPE pic_comm_sent_bytes_total counter\n");
        for from in 0..self.ranks {
            for to in 0..self.ranks {
                let (msgs, bytes) = self.comm.sent(from, to);
                if msgs > 0 {
                    out.push_str(&format!(
                        "pic_comm_sent_bytes_total{{src=\"{from}\",dst=\"{to}\"}} {bytes}\n"
                    ));
                }
            }
        }
        out
    }
}

/// Cloneable handle to a [`MetricsRegistry`] shared between the driving
/// thread, the engines, and exporters.
#[derive(Debug, Clone)]
pub struct SharedMetrics {
    inner: Arc<Mutex<MetricsRegistry>>,
}

impl SharedMetrics {
    /// A fresh shared registry for `ranks` ranks.
    pub fn new(ranks: usize) -> Self {
        Self {
            inner: Arc::new(Mutex::new(MetricsRegistry::new(ranks))),
        }
    }

    /// Run `f` with the registry locked.
    pub fn with<T>(&self, f: impl FnOnce(&mut MetricsRegistry) -> T) -> T {
        let mut guard = self.inner.lock().expect("metrics mutex poisoned");
        f(&mut guard)
    }

    /// Clone out a point-in-time snapshot of the registry.
    pub fn snapshot(&self) -> MetricsRegistry {
        self.with(|r| r.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_phase_kind_has_a_registered_family() {
        // The CI lint: `phase_slot` is an exhaustive match (no wildcard),
        // so this test plus the match itself guarantee a new PhaseKind
        // cannot ship without a metric family.  Slots must be unique and
        // cover the registry's family vector exactly.
        let reg = MetricsRegistry::new(4);
        let mut seen = vec![false; PhaseKind::ALL.len()];
        for &p in &PhaseKind::ALL {
            let slot = phase_slot(p);
            assert!(!seen[slot], "duplicate slot for {:?}", p);
            seen[slot] = true;
            // Family is addressable and starts empty.
            assert_eq!(reg.phase(p).supersteps, 0);
        }
        assert!(seen.iter().all(|&s| s), "every slot covered");
        // And the Prometheus snapshot names every phase.
        let text = reg.prometheus_text();
        for &p in &PhaseKind::ALL {
            assert!(
                text.contains(&format!("phase=\"{}\"", p.label())),
                "missing {} in snapshot",
                p.label()
            );
        }
    }

    #[test]
    fn histogram_buckets_and_sums() {
        let mut h = Histogram::new();
        h.observe(5e-7); // first bucket
        h.observe(5e-4); // <= 1e-3
        h.observe(2e3); // overflow
        assert_eq!(h.count(), 3);
        assert!((h.sum() - (5e-7 + 5e-4 + 2e3)).abs() < 1e-9);
        assert_eq!(h.cumulative(0), 1); // <= 1e-6
        assert_eq!(h.cumulative(3), 2); // <= 1e-3
        assert_eq!(h.cumulative(DURATION_BUCKETS_S.len()), 3); // +Inf
    }

    #[test]
    fn comm_matrix_conservation_detects_mismatch() {
        let mut m = CommMatrix::new(3);
        m.record_send(0, 1, 2, 100);
        m.record_recv(1, 0, 2, 100);
        assert!(m.is_conserved());
        assert_eq!(m.sent(0, 1), (2, 100));
        assert_eq!(m.received(0, 1), (2, 100));
        m.record_send(2, 0, 1, 7);
        assert!(!m.is_conserved(), "unreceived send must break conservation");
        m.record_recv(0, 2, 1, 7);
        assert!(m.is_conserved());
        assert_eq!(m.total_sent_bytes(), 107);
        assert_eq!(m.max_pair_bytes(), 100);
        assert_eq!(m.csv_rows().len(), 2);
    }

    #[test]
    fn collective_attribution_is_uniform_and_conserved() {
        let mut reg = MetricsRegistry::new(4);
        reg.observe_collective(PhaseKind::FieldSolve, 1e-3, 64, 8, 512);
        assert!(reg.comm().is_conserved());
        for i in 0..4 {
            for j in 0..4 {
                let (msgs, bytes) = reg.comm().sent(i, j);
                if i == j {
                    assert_eq!((msgs, bytes), (0, 0));
                } else {
                    assert_eq!((msgs, bytes), (1, 64));
                }
            }
        }
        assert_eq!(reg.phase(PhaseKind::FieldSolve).supersteps, 1);
        assert_eq!(reg.phase(PhaseKind::FieldSolve).bytes, 512);
    }

    #[test]
    fn counters_gauges_and_rank_gauges_round_trip() {
        let mut reg = MetricsRegistry::new(2);
        reg.inc("pic_faults_total", 1);
        reg.inc("pic_faults_total", 2);
        assert_eq!(reg.counter("pic_faults_total"), 3);
        assert_eq!(reg.counter("never_touched"), 0);
        reg.set_gauge("pic_imbalance_factor", 1.25);
        assert_eq!(reg.gauge("pic_imbalance_factor"), Some(1.25));
        reg.set_rank_gauge("pic_rank_particles", 1, 42.0);
        assert_eq!(reg.rank_gauge("pic_rank_particles"), Some(&[0.0, 42.0][..]));
        let text = reg.prometheus_text();
        assert!(text.contains("pic_faults_total 3"));
        assert!(text.contains("pic_imbalance_factor 1.25"));
        assert!(text.contains("pic_rank_particles{rank=\"1\"} 42"));
    }

    #[test]
    fn shared_metrics_snapshot_is_point_in_time() {
        let shared = SharedMetrics::new(2);
        shared.with(|r| r.inc("c", 1));
        let snap = shared.snapshot();
        shared.with(|r| r.inc("c", 1));
        assert_eq!(snap.counter("c"), 1);
        assert_eq!(shared.snapshot().counter("c"), 2);
    }
}
