//! Byte accounting for message payloads.
//!
//! The machine charges μ per payload byte, so every message type must
//! report its wire size.  Sizes model what the 1996 code would actually
//! have sent (raw packed arrays), not Rust in-memory layouts.

/// A message payload with a modeled wire size.
pub trait Payload: Send {
    /// Number of bytes this payload occupies on the wire.
    fn size_bytes(&self) -> usize;
}

impl Payload for Vec<f64> {
    fn size_bytes(&self) -> usize {
        self.len() * 8
    }
}

impl Payload for Vec<f32> {
    fn size_bytes(&self) -> usize {
        self.len() * 4
    }
}

impl Payload for Vec<u64> {
    fn size_bytes(&self) -> usize {
        self.len() * 8
    }
}

impl Payload for Vec<u32> {
    fn size_bytes(&self) -> usize {
        self.len() * 4
    }
}

impl Payload for Vec<u8> {
    fn size_bytes(&self) -> usize {
        self.len()
    }
}

/// `(grid index, value)` pairs — the scatter phase's coalesced ghost-point
/// updates (4-byte packed index + 8-byte value, as a 1996 code would pack).
impl Payload for Vec<(u32, f64)> {
    fn size_bytes(&self) -> usize {
        self.len() * 12
    }
}

/// `(grid index, Ex, Ey, Ez, Bx, By, Bz)` — gather-phase field replies.
impl Payload for Vec<(u32, [f64; 6])> {
    fn size_bytes(&self) -> usize {
        self.len() * (4 + 48)
    }
}

/// Shared payloads are free to clone and charge the inner wire size:
/// zero-copy fan-out wraps one packed buffer in an `Arc` and sends the
/// same bytes to several destinations (each still pays μ per byte).
impl<T: Payload + Send + Sync> Payload for std::sync::Arc<T> {
    fn size_bytes(&self) -> usize {
        self.as_ref().size_bytes()
    }
}

impl<A: Payload, B: Payload> Payload for (A, B) {
    fn size_bytes(&self) -> usize {
        self.0.size_bytes() + self.1.size_bytes()
    }
}

impl Payload for () {
    fn size_bytes(&self) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_sizes_reflect_element_width() {
        assert_eq!(vec![1.0f64; 3].size_bytes(), 24);
        assert_eq!(vec![1.0f32; 3].size_bytes(), 12);
        assert_eq!(vec![1u8; 5].size_bytes(), 5);
        assert_eq!(vec![(7u32, 1.0f64); 2].size_bytes(), 24);
    }

    #[test]
    fn tuple_sums_components() {
        let p = (vec![0u32; 2], vec![0.0f64; 1]);
        assert_eq!(p.size_bytes(), 8 + 8);
    }

    #[test]
    fn unit_is_free() {
        assert_eq!(().size_bytes(), 0);
    }
}
