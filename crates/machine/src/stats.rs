//! Per-superstep communication and timing statistics.
//!
//! These records are the raw material for every reproduced figure:
//! Figure 17 plots per-iteration modeled time, Figures 18/19 the maximum
//! scatter-phase data volume and message count over ranks, Figures 21/22
//! the communication-plus-idle overhead.

use serde::{Deserialize, Serialize};

/// Which PIC phase a superstep belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PhaseKind {
    /// Particle contributions to current-density grid points.
    Scatter,
    /// Maxwell solve on the mesh.
    FieldSolve,
    /// Field values back to particles.
    Gather,
    /// Particle position/velocity update (no communication under the
    /// direct Lagrangian method).
    Push,
    /// Particle redistribution (indexing + incremental sort + balance).
    Redistribute,
    /// Initial distribution / setup collectives.
    Setup,
    /// Anything else (tests, examples).
    Other,
}

impl PhaseKind {
    /// Every phase, in canonical (pipeline) order.  Aggregators iterate
    /// this instead of hand-listing variants so a new phase cannot be
    /// silently dropped from a report (the metrics registry additionally
    /// carries an exhaustive match that fails to compile on a new
    /// variant; see `metrics::phase_slot`).
    pub const ALL: [PhaseKind; 7] = [
        PhaseKind::Scatter,
        PhaseKind::FieldSolve,
        PhaseKind::Gather,
        PhaseKind::Push,
        PhaseKind::Redistribute,
        PhaseKind::Setup,
        PhaseKind::Other,
    ];

    /// Stable label for CSV output.
    pub fn label(self) -> &'static str {
        match self {
            PhaseKind::Scatter => "scatter",
            PhaseKind::FieldSolve => "field_solve",
            PhaseKind::Gather => "gather",
            PhaseKind::Push => "push",
            PhaseKind::Redistribute => "redistribute",
            PhaseKind::Setup => "setup",
            PhaseKind::Other => "other",
        }
    }
}

/// Aggregated statistics of one superstep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SuperstepStats {
    /// Phase this superstep implements.
    pub phase: PhaseKind,
    /// Maximum off-rank messages sent by any rank.
    pub max_msgs_sent: u64,
    /// Maximum off-rank messages received by any rank.
    pub max_msgs_recv: u64,
    /// Maximum off-rank bytes sent by any rank.
    pub max_bytes_sent: u64,
    /// Maximum off-rank bytes received by any rank.
    pub max_bytes_recv: u64,
    /// Total off-rank messages across ranks.
    pub total_msgs: u64,
    /// Total off-rank bytes across ranks.
    pub total_bytes: u64,
    /// Maximum modeled compute seconds over ranks.
    pub max_compute_s: f64,
    /// Maximum modeled communication seconds over ranks.
    pub max_comm_s: f64,
    /// Superstep duration: maximum over ranks of compute + comm.
    pub elapsed_s: f64,
}

impl SuperstepStats {
    /// An empty record for `phase`.
    pub fn empty(phase: PhaseKind) -> Self {
        Self {
            phase,
            max_msgs_sent: 0,
            max_msgs_recv: 0,
            max_bytes_sent: 0,
            max_bytes_recv: 0,
            total_msgs: 0,
            total_bytes: 0,
            max_compute_s: 0.0,
            max_comm_s: 0.0,
            elapsed_s: 0.0,
        }
    }
}

/// Per-phase totals aggregated over a [`StatsLog`] (see
/// [`StatsLog::aggregate`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseTotals {
    /// The phase.
    pub phase: PhaseKind,
    /// Number of supersteps recorded for it.
    pub supersteps: u64,
    /// Summed elapsed seconds over those supersteps.
    pub elapsed_s: f64,
    /// Summed max-compute seconds (critical-path computation).
    pub compute_s: f64,
    /// Summed max-comm seconds (critical-path communication + idle).
    pub comm_s: f64,
    /// Summed off-rank messages across ranks and supersteps.
    pub total_msgs: u64,
    /// Summed off-rank bytes across ranks and supersteps.
    pub total_bytes: u64,
}

/// Append-only log of superstep statistics.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct StatsLog {
    records: Vec<SuperstepStats>,
}

impl StatsLog {
    /// Create an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one superstep.
    pub fn push(&mut self, s: SuperstepStats) {
        self.records.push(s);
    }

    /// All records in execution order.
    pub fn records(&self) -> &[SuperstepStats] {
        &self.records
    }

    /// Drain the log, returning the records accumulated so far.  The PIC
    /// driver drains once per iteration to build per-iteration summaries.
    pub fn drain(&mut self) -> Vec<SuperstepStats> {
        std::mem::take(&mut self.records)
    }

    /// Total modeled elapsed seconds across recorded supersteps.
    pub fn elapsed_s(&self) -> f64 {
        self.records.iter().map(|r| r.elapsed_s).sum()
    }

    /// Records of one phase.
    pub fn phase(&self, phase: PhaseKind) -> impl Iterator<Item = &SuperstepStats> {
        self.records.iter().filter(move |r| r.phase == phase)
    }

    /// Append every record of `other` (in its execution order) to this
    /// log.  Used to stitch the per-iteration logs the driver drains
    /// back into one run-level log for aggregation.
    pub fn merge(&mut self, other: &StatsLog) {
        self.records.extend_from_slice(&other.records);
    }

    /// Collapse the log into per-phase totals, ordered by descending
    /// elapsed time.  Phases with no records are omitted.
    pub fn aggregate(&self) -> Vec<PhaseTotals> {
        let all_phases = [
            PhaseKind::Scatter,
            PhaseKind::FieldSolve,
            PhaseKind::Gather,
            PhaseKind::Push,
            PhaseKind::Redistribute,
            PhaseKind::Setup,
            PhaseKind::Other,
        ];
        let mut out = Vec::new();
        for phase in all_phases {
            let mut totals = PhaseTotals {
                phase,
                supersteps: 0,
                elapsed_s: 0.0,
                compute_s: 0.0,
                comm_s: 0.0,
                total_msgs: 0,
                total_bytes: 0,
            };
            for r in self.phase(phase) {
                totals.supersteps += 1;
                totals.elapsed_s += r.elapsed_s;
                totals.compute_s += r.max_compute_s;
                totals.comm_s += r.max_comm_s;
                totals.total_msgs += r.total_msgs;
                totals.total_bytes += r.total_bytes;
            }
            if totals.supersteps > 0 {
                out.push(totals);
            }
        }
        out.sort_by(|a, b| {
            b.elapsed_s
                .partial_cmp(&a.elapsed_s)
                .expect("finite elapsed totals")
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_sums_records() {
        let mut log = StatsLog::new();
        let mut a = SuperstepStats::empty(PhaseKind::Scatter);
        a.elapsed_s = 1.5;
        let mut b = SuperstepStats::empty(PhaseKind::Gather);
        b.elapsed_s = 0.5;
        log.push(a);
        log.push(b);
        assert!((log.elapsed_s() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn phase_filter_selects_matching_records() {
        let mut log = StatsLog::new();
        log.push(SuperstepStats::empty(PhaseKind::Scatter));
        log.push(SuperstepStats::empty(PhaseKind::Push));
        log.push(SuperstepStats::empty(PhaseKind::Scatter));
        assert_eq!(log.phase(PhaseKind::Scatter).count(), 2);
        assert_eq!(log.phase(PhaseKind::Gather).count(), 0);
    }

    #[test]
    fn drain_empties_the_log() {
        let mut log = StatsLog::new();
        log.push(SuperstepStats::empty(PhaseKind::Other));
        let drained = log.drain();
        assert_eq!(drained.len(), 1);
        assert!(log.records().is_empty());
    }

    #[test]
    fn merge_appends_in_order() {
        let mut a = StatsLog::new();
        let mut rec = SuperstepStats::empty(PhaseKind::Scatter);
        rec.elapsed_s = 1.0;
        a.push(rec);
        let mut b = StatsLog::new();
        let mut rec = SuperstepStats::empty(PhaseKind::Push);
        rec.elapsed_s = 2.0;
        b.push(rec);
        a.merge(&b);
        assert_eq!(a.records().len(), 2);
        assert_eq!(a.records()[1].phase, PhaseKind::Push);
        assert!((a.elapsed_s() - 3.0).abs() < 1e-12);
        // merging an empty log is a no-op
        a.merge(&StatsLog::new());
        assert_eq!(a.records().len(), 2);
    }

    #[test]
    fn aggregate_collapses_per_phase_and_sorts_by_elapsed() {
        let mut log = StatsLog::new();
        for elapsed in [1.0, 3.0] {
            let mut r = SuperstepStats::empty(PhaseKind::Scatter);
            r.elapsed_s = elapsed;
            r.max_compute_s = elapsed / 2.0;
            r.max_comm_s = elapsed / 2.0;
            r.total_msgs = 4;
            r.total_bytes = 100;
            log.push(r);
        }
        let mut r = SuperstepStats::empty(PhaseKind::Push);
        r.elapsed_s = 10.0;
        log.push(r);
        let agg = log.aggregate();
        assert_eq!(agg.len(), 2);
        assert_eq!(agg[0].phase, PhaseKind::Push); // largest elapsed first
        let scatter = agg[1];
        assert_eq!(scatter.supersteps, 2);
        assert!((scatter.elapsed_s - 4.0).abs() < 1e-12);
        assert!((scatter.compute_s - 2.0).abs() < 1e-12);
        assert!((scatter.comm_s - 2.0).abs() < 1e-12);
        assert_eq!(scatter.total_msgs, 8);
        assert_eq!(scatter.total_bytes, 200);
    }

    #[test]
    fn aggregate_of_empty_log_is_empty() {
        assert!(StatsLog::new().aggregate().is_empty());
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(PhaseKind::Scatter.label(), "scatter");
        assert_eq!(PhaseKind::FieldSolve.label(), "field_solve");
        assert_eq!(PhaseKind::Redistribute.label(), "redistribute");
    }
}
