//! A real-threads message-passing executor.
//!
//! The BSP [`crate::Machine`] *models* communication; this module
//! *performs* it: each virtual rank becomes an OS thread with a mailbox of
//! point-to-point channels, demonstrating that the superstep protocol maps
//! one-to-one onto genuine message passing (the role MPI played for the
//! paper).  Two entry points:
//!
//! * [`run_spmd`] — run a rank-local program on `p` spawned threads, each
//!   holding a [`Mailbox`]; the building block and its own public API;
//! * [`crate::ThreadedMachine`] — an engine implementing
//!   [`crate::SpmdEngine`], so the PIC phase programs in `pic-core` run
//!   unchanged on real threads (see `crate::threaded_engine`).
//!
//! ## Collectives
//!
//! [`Mailbox`] implements the collectives the phases need on top of plain
//! sends: [`Mailbox::allgather`], [`Mailbox::allgatherv`], the all-to-many
//! [`Mailbox::exchange`] with a message-count handshake (every rank first
//! tells every peer how many messages to expect, then streams them), and a
//! dissemination [`Mailbox::barrier`].
//!
//! ## Failure semantics
//!
//! A panicking rank must not leave peers blocked in a receive forever
//! (every mailbox holds a clone of every sender — including its own — so
//! channels never close on their own).  Two mechanisms bound every run:
//!
//! * **poison propagation** — each rank thread runs its program under
//!   `catch_unwind`; on panic it broadcasts a poison message to every
//!   rank before exiting, and any rank that receives poison panics in
//!   turn, so the whole run unwinds promptly and [`run_spmd`] re-raises
//!   the original payload;
//! * **receive timeout** — every blocking receive uses a deadline
//!   (default [`DEFAULT_RECV_TIMEOUT`]); a genuine protocol deadlock
//!   panics with a diagnostic instead of hanging the process.

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::thread;
use std::time::Duration;

/// Default per-receive deadline before a run is declared deadlocked.
pub const DEFAULT_RECV_TIMEOUT: Duration = Duration::from_secs(30);

/// Panic payload used when a rank aborts because a *peer* panicked.  The
/// runners filter these out so the root cause's payload is what callers
/// see re-raised.
pub(crate) struct PoisonedBy(pub(crate) usize);

/// What travels on the wire between rank threads.
pub(crate) enum Wire<M> {
    /// One point-to-point message.
    Msg(M),
    /// A whole vector contributed to a vector collective.
    Many(Vec<M>),
    /// Count handshake of [`Mailbox::exchange`]: "expect this many
    /// messages from me in this exchange".
    Count(usize),
    /// Dissemination-barrier token for the given round.
    Barrier(u32),
    /// The sending rank panicked; receivers must unwind.
    Poison,
}

/// Handle to the channels of one rank inside an SPMD run.
pub struct Mailbox<M> {
    rank: usize,
    senders: Vec<Sender<(usize, Wire<M>)>>,
    receiver: Receiver<(usize, Wire<M>)>,
    /// Messages received while waiting for something else (e.g. a fast
    /// peer's next-step traffic arriving during this step's collective).
    pending: VecDeque<(usize, Wire<M>)>,
    timeout: Duration,
}

/// Build the `p` connected mailboxes of one run.
pub(crate) fn make_mailboxes<M>(p: usize, timeout: Duration) -> Vec<Mailbox<M>> {
    let mut senders = Vec::with_capacity(p);
    let mut receivers = Vec::with_capacity(p);
    for _ in 0..p {
        let (tx, rx) = channel();
        senders.push(tx);
        receivers.push(rx);
    }
    receivers
        .into_iter()
        .enumerate()
        .map(|(rank, receiver)| Mailbox {
            rank,
            senders: senders.clone(),
            receiver,
            pending: VecDeque::new(),
            timeout,
        })
        .collect()
}

impl<M: Send> Mailbox<M> {
    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total number of ranks.
    pub fn num_ranks(&self) -> usize {
        self.senders.len()
    }

    /// Clones of every rank's sender (for poison broadcasting by the
    /// thread wrapper, which outlives the mailbox itself).
    pub(crate) fn sender_clones(&self) -> Vec<Sender<(usize, Wire<M>)>> {
        self.senders.clone()
    }

    fn push_wire(&self, to: usize, wire: Wire<M>) {
        assert!(
            to < self.senders.len(),
            "destination rank {to} out of range"
        );
        // A closed channel means the receiving thread is gone, which only
        // happens when the run is already unwinding; drop silently so the
        // first panic stays the root cause.
        let _ = self.senders[to].send((self.rank, wire));
    }

    /// Send `msg` to rank `to`.
    ///
    /// # Panics
    /// Panics if `to` is out of range.
    pub fn send(&self, to: usize, msg: M) {
        self.push_wire(to, Wire::Msg(msg));
    }

    /// Next wire message satisfying `pred`, buffering others (poison and
    /// timeout both panic).
    fn next_matching<P: Fn(&Wire<M>) -> bool>(&mut self, pred: P) -> (usize, Wire<M>) {
        if let Some(pos) = self.pending.iter().position(|(_, w)| pred(w)) {
            return self.pending.remove(pos).expect("position just found");
        }
        loop {
            match self.receiver.recv_timeout(self.timeout) {
                Ok((from, Wire::Poison)) => std::panic::panic_any(PoisonedBy(from)),
                Ok((from, wire)) if pred(&wire) => return (from, wire),
                Ok(other) => self.pending.push_back(other),
                Err(RecvTimeoutError::Timeout) => panic!(
                    "rank {} received no message within {:?} — SPMD deadlock suspected",
                    self.rank, self.timeout
                ),
                Err(RecvTimeoutError::Disconnected) => panic!(
                    "rank {}: all peers gone before the expected message arrived",
                    self.rank
                ),
            }
        }
    }

    /// Receive exactly `n` point-to-point messages, returned sorted by
    /// sender rank (stable: order within one sender is preserved) so the
    /// result is deterministic regardless of thread scheduling.
    ///
    /// # Panics
    /// Panics on poison (a peer died) or timeout (deadlock).
    pub fn recv_exact(&mut self, n: usize) -> Vec<(usize, M)> {
        let mut msgs: Vec<(usize, M)> = (0..n)
            .map(|_| {
                let (from, wire) = self.next_matching(|w| matches!(w, Wire::Msg(_)));
                match wire {
                    Wire::Msg(m) => (from, m),
                    _ => unreachable!("next_matching returned a non-Msg wire"),
                }
            })
            .collect();
        msgs.sort_by_key(|&(from, _)| from);
        msgs
    }

    /// All-to-many exchange with a message-count handshake: every rank
    /// first tells every peer how many messages to expect, then streams
    /// the payloads.  Self-addressed messages round-trip through the
    /// rank's own channel.  Returns the inbox sorted by sender rank with
    /// per-sender order preserved — exactly the modeled machine's
    /// delivery order.
    pub fn exchange(&mut self, outgoing: Vec<(usize, M)>) -> Vec<(usize, M)> {
        let p = self.num_ranks();
        let mut counts = vec![0usize; p];
        for (to, _) in &outgoing {
            assert!(*to < p, "destination rank {to} out of range");
            counts[*to] += 1;
        }
        for (to, &n) in counts.iter().enumerate() {
            self.push_wire(to, Wire::Count(n));
        }
        for (to, msg) in outgoing {
            self.push_wire(to, Wire::Msg(msg));
        }
        // collect until every peer's count is known and fulfilled
        let mut expected: Vec<Option<usize>> = vec![None; p];
        let mut got: Vec<Vec<M>> = (0..p).map(|_| Vec::new()).collect();
        let done = |expected: &[Option<usize>], got: &[Vec<M>]| {
            expected
                .iter()
                .zip(got)
                .all(|(e, g)| e.map(|n| g.len() == n).unwrap_or(false))
        };
        while !done(&expected, &got) {
            let (from, wire) = self.next_matching(|w| matches!(w, Wire::Count(_) | Wire::Msg(_)));
            match wire {
                Wire::Count(n) => {
                    assert!(
                        expected[from].is_none(),
                        "rank {from} sent two exchange handshakes"
                    );
                    expected[from] = Some(n);
                }
                Wire::Msg(m) => got[from].push(m),
                _ => unreachable!("next_matching returned a non-exchange wire"),
            }
        }
        got.into_iter()
            .enumerate()
            .flat_map(|(from, msgs)| msgs.into_iter().map(move |m| (from, m)))
            .collect()
    }

    /// Global concatenation: contribute `value`, receive every rank's
    /// contribution indexed by rank.
    pub fn allgather(&mut self, value: M) -> Vec<M>
    where
        M: Clone,
    {
        let per_rank = self.allgather_vec(vec![value]);
        per_rank
            .into_iter()
            .map(|mut v| {
                assert_eq!(v.len(), 1, "allgather contribution must be one value");
                v.pop().expect("length checked")
            })
            .collect()
    }

    /// Vector allgather keeping contributions separate: rank `r`'s
    /// contribution is element `r` of the result.
    pub fn allgather_vec(&mut self, values: Vec<M>) -> Vec<Vec<M>>
    where
        M: Clone,
    {
        let p = self.num_ranks();
        for to in 0..p {
            if to != self.rank {
                self.push_wire(to, Wire::Many(values.clone()));
            }
        }
        let mut result: Vec<Option<Vec<M>>> = vec![None; p];
        result[self.rank] = Some(values);
        while result.iter().any(Option::is_none) {
            let (from, wire) = self.next_matching(|w| matches!(w, Wire::Many(_)));
            let Wire::Many(v) = wire else {
                unreachable!("next_matching returned a non-Many wire")
            };
            assert!(
                result[from].is_none(),
                "rank {from} contributed twice to one allgather"
            );
            result[from] = Some(v);
        }
        result.into_iter().map(|v| v.expect("all filled")).collect()
    }

    /// Global concatenation of vectors in rank order (the paper's "global
    /// concatenation" used by bucket incremental sorting).
    pub fn allgatherv(&mut self, values: Vec<M>) -> Vec<M>
    where
        M: Clone,
    {
        self.allgather_vec(values).into_iter().flatten().collect()
    }

    /// Dissemination barrier: `ceil(log2 p)` rounds of token passing.
    ///
    /// At round `k` the only rank that ever sends *this* rank a round-`k`
    /// token is `(rank - 2^k) mod p` (the offset determines the round
    /// uniquely per sender pair), and per-sender FIFO ordering keeps
    /// consecutive barriers from confusing each other's tokens, so
    /// matching on the round number alone is unambiguous.
    pub fn barrier(&mut self) {
        let p = self.num_ranks();
        let mut round = 0u32;
        let mut dist = 1usize;
        while dist < p {
            let to = (self.rank + dist) % p;
            let expect_from = (self.rank + p - dist) % p;
            self.push_wire(to, Wire::Barrier(round));
            let want = round;
            let (got_from, _) = self.next_matching(|w| matches!(w, Wire::Barrier(r) if *r == want));
            debug_assert_eq!(got_from, expect_from, "unexpected barrier peer");
            round += 1;
            dist *= 2;
        }
    }
}

/// Broadcast poison to every rank (used by thread wrappers on panic).
pub(crate) fn poison_all<M: Send>(rank: usize, senders: &[Sender<(usize, Wire<M>)>]) {
    for tx in senders {
        let _ = tx.send((rank, Wire::Poison));
    }
}

/// Split per-rank outcomes into results or the panic to re-raise.
///
/// When several ranks panicked, the *root cause* wins: a [`PoisonedBy`]
/// payload means the rank only unwound because a peer died, so any
/// non-poison payload takes precedence regardless of rank order.
pub(crate) fn resolve_rank_results<R>(
    outcomes: Vec<Result<R, Box<dyn Any + Send>>>,
) -> Result<Vec<R>, Box<dyn Any + Send>> {
    let mut results = Vec::with_capacity(outcomes.len());
    let mut root: Option<Box<dyn Any + Send>> = None;
    let mut poison: Option<Box<dyn Any + Send>> = None;
    for outcome in outcomes {
        match outcome {
            Ok(r) => results.push(r),
            Err(e) if e.is::<PoisonedBy>() => {
                poison.get_or_insert(e);
            }
            Err(e) => {
                root.get_or_insert(e);
            }
        }
    }
    let describe = |e: Box<dyn Any + Send>| -> Box<dyn Any + Send> {
        // A run that only saw poison (root thread died without unwinding
        // through catch_unwind, e.g. via abort-on-double-panic) still gets
        // a readable message.
        match e.downcast::<PoisonedBy>() {
            Ok(p) => Box::new(format!("rank {} panicked; SPMD run poisoned", p.0)),
            Err(e) => e,
        }
    };
    match root.or_else(|| poison.map(describe)) {
        Some(e) => Err(e),
        None => Ok(results),
    }
}

/// Run an SPMD program on `p` OS threads, one per rank, each with a
/// [`Mailbox`].  Returns the per-rank results in rank order.
///
/// # Panics
/// Propagates the first panicking rank's payload.  A panicking rank
/// poisons all peers, so the call returns (or panics) within bounded
/// time instead of hanging peers in a receive.
pub fn run_spmd<M, R, F>(p: usize, program: F) -> Vec<R>
where
    M: Send + 'static,
    R: Send + 'static,
    F: Fn(Mailbox<M>) -> R + Send + Sync + 'static + Clone,
{
    run_spmd_with_timeout(p, DEFAULT_RECV_TIMEOUT, program)
}

/// [`run_spmd`] with an explicit per-receive deadline (tests use short
/// deadlines to assert bounded-time failure).
pub fn run_spmd_with_timeout<M, R, F>(p: usize, timeout: Duration, program: F) -> Vec<R>
where
    M: Send + 'static,
    R: Send + 'static,
    F: Fn(Mailbox<M>) -> R + Send + Sync + 'static + Clone,
{
    assert!(p > 0, "need at least one rank");
    let mailboxes = make_mailboxes::<M>(p, timeout);
    let handles: Vec<_> = mailboxes
        .into_iter()
        .map(|mailbox| {
            let rank = mailbox.rank();
            let senders = mailbox.sender_clones();
            let program = program.clone();
            thread::spawn(move || {
                let result = catch_unwind(AssertUnwindSafe(|| program(mailbox)));
                if result.is_err() {
                    poison_all(rank, &senders);
                }
                result
            })
        })
        .collect();
    let outcomes: Vec<_> = handles
        .into_iter()
        .map(|h| match h.join() {
            Ok(inner) => inner,
            Err(payload) => Err(payload),
        })
        .collect();
    match resolve_rank_results(outcomes) {
        Ok(results) => results,
        Err(payload) => resume_unwind(payload),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn ring_rotation_on_real_threads() {
        let results = run_spmd::<u64, u64, _>(4, |mut mb| {
            let next = (mb.rank() + 1) % mb.num_ranks();
            mb.send(next, mb.rank() as u64 * 100);
            let got = mb.recv_exact(1);
            got[0].1
        });
        assert_eq!(results, vec![300, 0, 100, 200]);
    }

    #[test]
    fn all_to_all_is_deterministic() {
        let results = run_spmd::<u64, Vec<u64>, _>(8, |mut mb| {
            let p = mb.num_ranks();
            for to in 0..p {
                if to != mb.rank() {
                    mb.send(to, (mb.rank() * 10) as u64);
                }
            }
            mb.recv_exact(p - 1).into_iter().map(|(_, v)| v).collect()
        });
        for (r, got) in results.iter().enumerate() {
            let expect: Vec<u64> = (0..8)
                .filter(|&s| s != r)
                .map(|s| (s * 10) as u64)
                .collect();
            assert_eq!(got, &expect, "rank {r}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        run_spmd::<u64, (), _>(0, |_mb| {});
    }

    #[test]
    fn exchange_handshake_round_trips() {
        let results = run_spmd::<(u64, u64), Vec<(usize, (u64, u64))>, _>(6, |mut mb| {
            let r = mb.rank();
            // rank r sends k = r messages, spread over peers (r+1)..(r+1+r)
            let outgoing: Vec<(usize, (u64, u64))> = (0..r)
                .map(|k| (((r + 1 + k) % mb.num_ranks()), (r as u64, k as u64)))
                .collect();
            mb.exchange(outgoing)
        });
        let total: usize = results.iter().map(Vec::len).sum();
        assert_eq!(total, (0..6).sum::<usize>());
        for inbox in &results {
            // sorted by sender, per-sender send order preserved
            assert!(inbox.windows(2).all(|w| w[0].0 <= w[1].0));
            for w in inbox.windows(2) {
                if w[0].0 == w[1].0 {
                    assert!(w[0].1 .1 < w[1].1 .1);
                }
            }
        }
    }

    #[test]
    fn collectives_agree_with_direct_computation() {
        let results = run_spmd::<u64, (Vec<u64>, Vec<u64>), _>(5, |mut mb| {
            let r = mb.rank() as u64;
            let gathered = mb.allgather(r * 7);
            let concat = mb.allgatherv(vec![r; mb.rank()]);
            mb.barrier();
            (gathered, concat)
        });
        let expect_concat: Vec<u64> = (0..5u64).flat_map(|r| vec![r; r as usize]).collect();
        for (gathered, concat) in results {
            assert_eq!(gathered, vec![0, 7, 14, 21, 28]);
            assert_eq!(concat, expect_concat);
        }
    }

    #[test]
    fn panicking_rank_fails_the_run_promptly() {
        for p in [1usize, 2, 4, 8] {
            let start = Instant::now();
            let result = catch_unwind(|| {
                run_spmd_with_timeout::<u64, (), _>(p, Duration::from_secs(20), move |mut mb| {
                    if mb.rank() == p / 2 {
                        panic!("injected failure on rank {}", p / 2);
                    }
                    // everyone else waits for a message that never comes
                    let _ = mb.recv_exact(1);
                })
            });
            assert!(result.is_err(), "p={p}: run must fail");
            let msg = result
                .unwrap_err()
                .downcast::<String>()
                .map(|s| *s)
                .unwrap_or_default();
            assert!(
                msg.contains("injected failure"),
                "p={p}: original panic payload must win, got {msg:?}"
            );
            assert!(
                start.elapsed() < Duration::from_secs(15),
                "p={p}: failure must propagate promptly, took {:?}",
                start.elapsed()
            );
        }
    }

    #[test]
    fn deadlock_times_out_instead_of_hanging() {
        let start = Instant::now();
        let result = catch_unwind(|| {
            run_spmd_with_timeout::<u64, (), _>(2, Duration::from_millis(200), |mut mb| {
                // both ranks wait forever: nothing is ever sent
                let _ = mb.recv_exact(1);
            })
        });
        assert!(result.is_err());
        assert!(start.elapsed() < Duration::from_secs(10));
    }
}
