//! A real-threads message-passing executor.
//!
//! The BSP [`crate::Machine`] *models* communication; this module
//! *performs* it: each virtual rank becomes an OS thread with a mailbox of
//! point-to-point channels, demonstrating that the superstep protocol maps
//! one-to-one onto genuine message passing (the role MPI played for the
//! paper).  Two entry points:
//!
//! * [`run_spmd`] — run a rank-local program on `p` spawned threads, each
//!   holding a [`Mailbox`]; the building block and its own public API;
//! * [`crate::ThreadedMachine`] — an engine implementing
//!   [`crate::SpmdEngine`], so the PIC phase programs in `pic-core` run
//!   unchanged on real threads (see `crate::threaded_engine`).
//!
//! ## Collectives
//!
//! [`Mailbox`] implements the collectives the phases need on top of plain
//! sends: [`Mailbox::allgather`], [`Mailbox::allgatherv`], the all-to-many
//! [`Mailbox::exchange`] (every rank sends every peer one batch wire —
//! possibly empty, which doubles as the "nothing from me" handshake), and
//! a dissemination [`Mailbox::barrier`].
//!
//! ## Failure semantics
//!
//! A failing rank must not leave peers blocked in a receive forever
//! (every mailbox holds a clone of every sender — including its own — so
//! channels never close on their own).  Three mechanisms bound every run:
//!
//! * **poison propagation** — each rank thread runs its program under
//!   `catch_unwind`; on failure it broadcasts a poison message to every
//!   rank before exiting, and any rank that receives poison unwinds in
//!   turn, so the whole run collapses promptly and the entry points
//!   return the *root* cause as a typed [`SpmdError`];
//! * **retry with exponential backoff** — a blocking receive waits in
//!   slices starting at [`RETRY_INITIAL_BACKOFF`] and doubling up to
//!   [`RETRY_MAX_BACKOFF`]; each expired slice retransmits any messages
//!   this rank still owes its peers (see fault injection below), so
//!   transiently lost messages recover without aborting the run;
//! * **receive deadline** — when the cumulative wait exceeds the run's
//!   timeout (default [`DEFAULT_RECV_TIMEOUT`]), the rank fails with a
//!   structured [`TimeoutDetail`] carrying the operation, expected vs
//!   received message counts and per-rank in-flight counts, instead of
//!   hanging the process.
//!
//! ## Fault injection
//!
//! A [`Mailbox`] optionally carries a [`FaultSession`] (one rank's view of
//! a seeded [`FaultPlan`]).  Benign faults act at
//! the wire level — a delayed send sleeps, a reordered exchange visits
//! destinations in a scrambled order, a dropped message is parked in a
//! per-destination *lost queue* (everything later addressed to the same
//! destination queues behind it, preserving per-destination FIFO) and
//! retransmitted by the backoff loop or at operation exit.  Kill faults
//! abort the rank at its next mailbox operation with a typed
//! `Killed` failure.  Correct runs produce bit-identical results under
//! any benign plan; the chaos suite asserts this.

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, panic_any, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use crate::error::{FailureCause, RankFailure, SpmdError, TimeoutDetail};
use crate::fault::{FaultPlan, FaultSession, SendFault};
use crate::stats::PhaseKind;

/// Default cumulative per-receive deadline before a run is declared
/// deadlocked.
pub const DEFAULT_RECV_TIMEOUT: Duration = Duration::from_secs(30);

/// First wait slice of the receive retry loop; each expiry retransmits
/// this rank's lost-queue contents and doubles the slice.
pub const RETRY_INITIAL_BACKOFF: Duration = Duration::from_millis(2);

/// Upper bound of the exponential backoff between retransmissions.
pub const RETRY_MAX_BACKOFF: Duration = Duration::from_millis(256);

/// Panic payload used when a rank aborts because a *peer* failed.  The
/// runners filter these out so the root cause is what callers see.
pub(crate) struct PoisonedBy(pub(crate) usize);

/// What travels on the wire between rank threads.
///
/// Collective wires carry the sender's collective sequence number.  In an
/// SPMD program every rank executes the same collectives in the same
/// order, so the numbers agree; tagging them keeps a fast rank's *next*
/// collective from being consumed by a slow rank still inside the
/// previous one (the stray wire parks in `pending` until its turn).
pub(crate) enum Wire<M> {
    /// One point-to-point message.
    Msg(M),
    /// Everything one rank sends this destination in exchange collective
    /// `seq`, in send order (possibly empty — the empty batch doubles as
    /// the "nothing from me" handshake).  One wire per rank pair keeps
    /// the wakeup count of an exchange at `p` per rank, where a
    /// count-then-stream protocol would wake a blocked receiver once per
    /// message — painful when ranks outnumber host cores.
    Batch(u64, Vec<M>),
    /// A whole vector contributed to vector collective `seq`.
    Many(u64, Vec<M>),
    /// Dissemination-barrier token of collective `seq`, for the given
    /// round.
    Barrier(u64, u32),
    /// The sending rank failed; receivers must unwind.
    Poison,
}

/// Handle to the channels of one rank inside an SPMD run.
pub struct Mailbox<M> {
    rank: usize,
    senders: Vec<Sender<(usize, Wire<M>)>>,
    receiver: Receiver<(usize, Wire<M>)>,
    /// Messages received while waiting for something else (e.g. a fast
    /// peer's next-step traffic arriving during this step's collective).
    pending: VecDeque<(usize, Wire<M>)>,
    /// Per-destination queues of wires withheld by an injected drop
    /// fault.  Everything later addressed to a stalled destination queues
    /// behind the dropped wire so per-destination FIFO survives the
    /// retransmission.
    lost: Vec<VecDeque<Wire<M>>>,
    /// Collective operations started so far; tags collective wires (see
    /// [`Wire`]).
    seq: u64,
    timeout: Duration,
    fault: Option<FaultSession>,
}

/// Build the `p` connected mailboxes of one run.
pub(crate) fn make_mailboxes<M>(p: usize, timeout: Duration) -> Vec<Mailbox<M>> {
    let mut senders = Vec::with_capacity(p);
    let mut receivers = Vec::with_capacity(p);
    for _ in 0..p {
        let (tx, rx) = channel();
        senders.push(tx);
        receivers.push(rx);
    }
    receivers
        .into_iter()
        .enumerate()
        .map(|(rank, receiver)| Mailbox {
            rank,
            senders: senders.clone(),
            receiver,
            pending: VecDeque::new(),
            lost: (0..p).map(|_| VecDeque::new()).collect(),
            seq: 0,
            timeout,
            fault: None,
        })
        .collect()
}

impl<M> Mailbox<M> {
    /// Retransmit every wire withheld by a drop fault, in per-destination
    /// FIFO order.  Retransmission bypasses fault injection — a retried
    /// message is never dropped again, so delivery is guaranteed.
    fn flush_lost(&mut self) {
        for (to, queue) in self.lost.iter_mut().enumerate() {
            while let Some(wire) = queue.pop_front() {
                let _ = self.senders[to].send((self.rank, wire));
            }
        }
    }
}

impl<M> Drop for Mailbox<M> {
    fn drop(&mut self) {
        // A program may end right after a send that a fault withheld;
        // peers are still waiting on it, so the last flush happens here.
        self.flush_lost();
    }
}

impl<M: Send> Mailbox<M> {
    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total number of ranks.
    pub fn num_ranks(&self) -> usize {
        self.senders.len()
    }

    /// Clones of every rank's sender (for poison broadcasting by the
    /// thread wrapper, which outlives the mailbox itself).
    pub(crate) fn sender_clones(&self) -> Vec<Sender<(usize, Wire<M>)>> {
        self.senders.clone()
    }

    /// Attach one rank's fault-plan session for this run/superstep.
    pub(crate) fn set_fault(&mut self, session: Option<FaultSession>) {
        self.fault = session;
    }

    /// Abort the rank if a kill fault is armed for it right now.
    /// `pub(crate)` so the engine's communication-free `local_step` can
    /// honor kill faults without paying for an (empty) exchange.
    pub(crate) fn check_kill(&self) {
        if let Some(fault) = &self.fault {
            if fault.should_kill() {
                panic_any(RankFailure::Killed {
                    rank: self.rank,
                    epoch: fault.epoch(),
                });
            }
        }
    }

    fn push_wire(&mut self, to: usize, wire: Wire<M>) {
        assert!(
            to < self.senders.len(),
            "destination rank {to} out of range"
        );
        if !self.lost[to].is_empty() {
            // A drop fault already stalled this destination; queue behind
            // it so per-destination FIFO survives the retransmission.
            self.lost[to].push_back(wire);
            return;
        }
        let verdict = match self.fault.as_mut() {
            Some(f) => f.on_send(),
            None => SendFault::Deliver,
        };
        match verdict {
            SendFault::Deliver => {}
            SendFault::Delay(d) => thread::sleep(d),
            SendFault::Drop => {
                self.lost[to].push_back(wire);
                return;
            }
        }
        // A closed channel means the receiving thread is gone, which only
        // happens when the run is already unwinding; drop silently so the
        // first failure stays the root cause.
        let _ = self.senders[to].send((self.rank, wire));
    }

    /// Send `msg` to rank `to`.
    ///
    /// # Panics
    /// Panics if `to` is out of range, or to abort the rank on an
    /// injected kill / peer poison (caught by the runners and surfaced as
    /// [`SpmdError`]).
    pub fn send(&mut self, to: usize, msg: M) {
        self.check_kill();
        self.push_wire(to, Wire::Msg(msg));
    }

    /// Next wire message satisfying `pred`, buffering others.
    ///
    /// Waits in exponentially growing slices; each expired slice
    /// retransmits this rank's lost queue (a peer may be blocked on a
    /// dropped message of ours).  Once the cumulative wait exceeds the
    /// run timeout, aborts the rank with a typed timeout whose
    /// [`TimeoutDetail`] comes from `detail()` = `(expected, received,
    /// per-rank in-flight counts)`.
    fn next_matching<P, D>(
        &mut self,
        operation: &'static str,
        pred: P,
        detail: D,
    ) -> (usize, Wire<M>)
    where
        P: Fn(&Wire<M>) -> bool,
        D: Fn() -> (usize, usize, Vec<usize>),
    {
        if let Some(pos) = self.pending.iter().position(|(_, w)| pred(w)) {
            return self.pending.remove(pos).expect("position just found");
        }
        let mut waited = Duration::ZERO;
        let mut backoff = RETRY_INITIAL_BACKOFF;
        loop {
            let slice = backoff.min(self.timeout.saturating_sub(waited));
            if slice.is_zero() {
                let (expected, received, in_flight) = detail();
                panic_any(RankFailure::Timeout {
                    rank: self.rank,
                    detail: TimeoutDetail {
                        operation,
                        expected,
                        received,
                        in_flight,
                        waited,
                    },
                });
            }
            match self.receiver.recv_timeout(slice) {
                Ok((from, Wire::Poison)) => panic_any(PoisonedBy(from)),
                Ok((from, wire)) if pred(&wire) => return (from, wire),
                Ok(other) => self.pending.push_back(other),
                Err(RecvTimeoutError::Timeout) => {
                    waited += slice;
                    self.flush_lost();
                    backoff = (backoff * 2).min(RETRY_MAX_BACKOFF);
                }
                Err(RecvTimeoutError::Disconnected) => {
                    panic_any(RankFailure::Disconnected { rank: self.rank })
                }
            }
        }
    }

    /// Receive exactly `n` point-to-point messages, returned sorted by
    /// sender rank (stable: order within one sender is preserved) so the
    /// result is deterministic regardless of thread scheduling.
    ///
    /// # Panics
    /// Aborts the rank (typed payload) on poison, timeout, or injected
    /// kill; the runners surface it as [`SpmdError`].
    pub fn recv_exact(&mut self, n: usize) -> Vec<(usize, M)> {
        self.check_kill();
        let mut msgs: Vec<(usize, M)> = Vec::with_capacity(n);
        while msgs.len() < n {
            let received = msgs.len();
            let (from, wire) = self.next_matching(
                "recv_exact",
                |w| matches!(w, Wire::Msg(_)),
                move || (n, received, Vec::new()),
            );
            match wire {
                Wire::Msg(m) => msgs.push((from, m)),
                _ => unreachable!("next_matching returned a non-Msg wire"),
            }
        }
        self.flush_lost();
        msgs.sort_by_key(|&(from, _)| from);
        msgs
    }

    /// All-to-many exchange: every rank sends every peer (including
    /// itself, round-tripping through its own channel) exactly one batch
    /// wire carrying all its messages for that destination — an empty
    /// batch doubles as the "nothing from me" handshake.  Returns the
    /// inbox sorted by sender rank with per-sender order preserved —
    /// exactly the modeled machine's delivery order (an injected reorder
    /// fault only scrambles which *destination* is served first;
    /// per-destination order is kept, so results never change).
    pub fn exchange(&mut self, outgoing: Vec<(usize, M)>) -> Vec<(usize, M)> {
        self.check_kill();
        self.seq += 1;
        let seq = self.seq;
        let p = self.num_ranks();
        let mut groups: Vec<Vec<M>> = (0..p).map(|_| Vec::new()).collect();
        for (to, msg) in outgoing {
            assert!(to < p, "destination rank {to} out of range");
            groups[to].push(msg);
        }
        let order: Vec<usize> = match self.fault.as_mut() {
            Some(f) => {
                if f.reorder_exchange() {
                    f.destination_permutation(p)
                } else {
                    (0..p).collect()
                }
            }
            None => (0..p).collect(),
        };
        for &to in &order {
            let batch = std::mem::take(&mut groups[to]);
            self.push_wire(to, Wire::Batch(seq, batch));
        }
        // collect until every peer's batch (possibly empty) has arrived
        let mut got: Vec<Option<Vec<M>>> = (0..p).map(|_| None).collect();
        while got.iter().any(Option::is_none) {
            let (from, wire) = {
                let got = &got;
                self.next_matching(
                    "exchange",
                    move |w| matches!(w, Wire::Batch(s, _) if *s == seq),
                    move || {
                        let received = got.iter().filter(|g| g.is_some()).count();
                        let in_flight = got.iter().map(|g| usize::from(g.is_none())).collect();
                        (p, received, in_flight)
                    },
                )
            };
            let Wire::Batch(_, msgs) = wire else {
                unreachable!("next_matching returned a non-exchange wire")
            };
            assert!(
                got[from].is_none(),
                "rank {from} sent two batches in one exchange"
            );
            got[from] = Some(msgs);
        }
        self.flush_lost();
        got.into_iter()
            .enumerate()
            .flat_map(|(from, msgs)| {
                msgs.expect("all filled")
                    .into_iter()
                    .map(move |m| (from, m))
            })
            .collect()
    }

    /// Global concatenation: contribute `value`, receive every rank's
    /// contribution indexed by rank.
    pub fn allgather(&mut self, value: M) -> Vec<M>
    where
        M: Clone,
    {
        let per_rank = self.allgather_vec(vec![value]);
        per_rank
            .into_iter()
            .map(|mut v| {
                assert_eq!(v.len(), 1, "allgather contribution must be one value");
                v.pop().expect("length checked")
            })
            .collect()
    }

    /// Vector allgather keeping contributions separate: rank `r`'s
    /// contribution is element `r` of the result.
    pub fn allgather_vec(&mut self, values: Vec<M>) -> Vec<Vec<M>>
    where
        M: Clone,
    {
        self.check_kill();
        self.seq += 1;
        let seq = self.seq;
        let p = self.num_ranks();
        for to in 0..p {
            if to != self.rank {
                self.push_wire(to, Wire::Many(seq, values.clone()));
            }
        }
        let mut result: Vec<Option<Vec<M>>> = vec![None; p];
        result[self.rank] = Some(values);
        while result.iter().any(Option::is_none) {
            let (from, wire) = {
                let result = &result;
                self.next_matching(
                    "allgather",
                    move |w| matches!(w, Wire::Many(s, _) if *s == seq),
                    move || {
                        let received = result.iter().filter(|v| v.is_some()).count() - 1;
                        let in_flight = result.iter().map(|v| usize::from(v.is_none())).collect();
                        (p - 1, received, in_flight)
                    },
                )
            };
            let Wire::Many(_, v) = wire else {
                unreachable!("next_matching returned a non-Many wire")
            };
            assert!(
                result[from].is_none(),
                "rank {from} contributed twice to one allgather"
            );
            result[from] = Some(v);
        }
        self.flush_lost();
        result.into_iter().map(|v| v.expect("all filled")).collect()
    }

    /// Global concatenation of vectors in rank order (the paper's "global
    /// concatenation" used by bucket incremental sorting).
    pub fn allgatherv(&mut self, values: Vec<M>) -> Vec<M>
    where
        M: Clone,
    {
        self.allgather_vec(values).into_iter().flatten().collect()
    }

    /// Dissemination barrier: `ceil(log2 p)` rounds of token passing.
    ///
    /// Tokens are tagged with the barrier's collective sequence number
    /// and the round, so neither a fast peer's *next* barrier nor a
    /// different round of this one can satisfy the wait.
    pub fn barrier(&mut self) {
        self.check_kill();
        self.seq += 1;
        let seq = self.seq;
        let p = self.num_ranks();
        let mut round = 0u32;
        let mut dist = 1usize;
        while dist < p {
            let to = (self.rank + dist) % p;
            let expect_from = (self.rank + p - dist) % p;
            self.push_wire(to, Wire::Barrier(seq, round));
            let want = round;
            let (got_from, _) = self.next_matching(
                "barrier",
                move |w| matches!(w, Wire::Barrier(s, r) if *s == seq && *r == want),
                move || (1, 0, Vec::new()),
            );
            debug_assert_eq!(got_from, expect_from, "unexpected barrier peer");
            round += 1;
            dist *= 2;
        }
        self.flush_lost();
    }
}

/// Broadcast poison to every rank (used by thread wrappers on failure).
pub(crate) fn poison_all<M: Send>(rank: usize, senders: &[Sender<(usize, Wire<M>)>]) {
    for tx in senders {
        let _ = tx.send((rank, Wire::Poison));
    }
}

/// Split per-rank outcomes into results or the error to surface.
///
/// When several ranks failed, the *root cause* wins: a [`PoisonedBy`]
/// payload means the rank only unwound because a peer died, so any
/// non-poison payload takes precedence regardless of rank order.  A run
/// that only saw poison (root thread died without unwinding through
/// `catch_unwind`, e.g. via abort-on-double-panic) still names the rank
/// whose poison was received.
pub(crate) fn resolve_rank_results<R>(
    outcomes: Vec<Result<R, Box<dyn Any + Send>>>,
) -> Result<Vec<R>, SpmdError> {
    let mut results = Vec::with_capacity(outcomes.len());
    let mut root: Option<Box<dyn Any + Send>> = None;
    let mut poisoned_by: Option<usize> = None;
    for outcome in outcomes {
        match outcome {
            Ok(r) => results.push(r),
            Err(e) => match e.downcast::<PoisonedBy>() {
                Ok(p) => {
                    poisoned_by.get_or_insert(p.0);
                }
                Err(e) => {
                    root.get_or_insert(e);
                }
            },
        }
    }
    match (root, poisoned_by) {
        (Some(payload), _) => Err(SpmdError::from_panic_payload(payload)),
        (None, Some(by)) => Err(SpmdError::on_rank(by, FailureCause::Poisoned { by })),
        (None, None) => Ok(results),
    }
}

/// Run an SPMD program on `p` OS threads, one per rank, each with a
/// [`Mailbox`].  Returns the per-rank results in rank order, or the
/// *root* failure as a typed [`SpmdError`] (a failing rank poisons all
/// peers, so the call returns within bounded time instead of hanging
/// peers in a receive).
///
/// # Panics
/// Panics if `p == 0`.
pub fn run_spmd<M, R, F>(p: usize, program: F) -> Result<Vec<R>, SpmdError>
where
    M: Send + 'static,
    R: Send + 'static,
    F: Fn(Mailbox<M>) -> R + Send + Sync + 'static + Clone,
{
    run_spmd_with(p, DEFAULT_RECV_TIMEOUT, None, program)
}

/// [`run_spmd`] with an explicit per-receive deadline (tests use short
/// deadlines to assert bounded-time failure).
pub fn run_spmd_with_timeout<M, R, F>(
    p: usize,
    timeout: Duration,
    program: F,
) -> Result<Vec<R>, SpmdError>
where
    M: Send + 'static,
    R: Send + 'static,
    F: Fn(Mailbox<M>) -> R + Send + Sync + 'static + Clone,
{
    run_spmd_with(p, timeout, None, program)
}

/// Full-control entry point: explicit deadline and an optional fault
/// plan applied at fault epoch `epoch` (the chaos suite's workhorse).
pub fn run_spmd_with<M, R, F>(
    p: usize,
    timeout: Duration,
    fault: Option<(Arc<FaultPlan>, u64)>,
    program: F,
) -> Result<Vec<R>, SpmdError>
where
    M: Send + 'static,
    R: Send + 'static,
    F: Fn(Mailbox<M>) -> R + Send + Sync + 'static + Clone,
{
    assert!(p > 0, "need at least one rank");
    let mut mailboxes = make_mailboxes::<M>(p, timeout);
    if let Some((plan, epoch)) = &fault {
        for (rank, mb) in mailboxes.iter_mut().enumerate() {
            mb.set_fault(Some(plan.session(rank, *epoch, PhaseKind::Other)));
        }
    }
    let handles: Vec<_> = mailboxes
        .into_iter()
        .map(|mailbox| {
            let rank = mailbox.rank();
            let senders = mailbox.sender_clones();
            let program = program.clone();
            thread::spawn(move || {
                let result = catch_unwind(AssertUnwindSafe(|| program(mailbox)));
                if result.is_err() {
                    poison_all(rank, &senders);
                }
                result
            })
        })
        .collect();
    let outcomes: Vec<_> = handles
        .into_iter()
        .map(|h| match h.join() {
            Ok(inner) => inner,
            Err(payload) => Err(payload),
        })
        .collect();
    resolve_rank_results(outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultNoise;
    use std::time::Instant;

    #[test]
    fn ring_rotation_on_real_threads() {
        let results = run_spmd::<u64, u64, _>(4, |mut mb| {
            let next = (mb.rank() + 1) % mb.num_ranks();
            mb.send(next, mb.rank() as u64 * 100);
            let got = mb.recv_exact(1);
            got[0].1
        })
        .expect("fault-free run");
        assert_eq!(results, vec![300, 0, 100, 200]);
    }

    #[test]
    fn all_to_all_is_deterministic() {
        let results = run_spmd::<u64, Vec<u64>, _>(8, |mut mb| {
            let p = mb.num_ranks();
            for to in 0..p {
                if to != mb.rank() {
                    mb.send(to, (mb.rank() * 10) as u64);
                }
            }
            mb.recv_exact(p - 1).into_iter().map(|(_, v)| v).collect()
        })
        .expect("fault-free run");
        for (r, got) in results.iter().enumerate() {
            let expect: Vec<u64> = (0..8)
                .filter(|&s| s != r)
                .map(|s| (s * 10) as u64)
                .collect();
            assert_eq!(got, &expect, "rank {r}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        let _ = run_spmd::<u64, (), _>(0, |_mb| {});
    }

    #[test]
    fn exchange_handshake_round_trips() {
        let results = run_spmd::<(u64, u64), Vec<(usize, (u64, u64))>, _>(6, |mut mb| {
            let r = mb.rank();
            // rank r sends k = r messages, spread over peers (r+1)..(r+1+r)
            let outgoing: Vec<(usize, (u64, u64))> = (0..r)
                .map(|k| (((r + 1 + k) % mb.num_ranks()), (r as u64, k as u64)))
                .collect();
            mb.exchange(outgoing)
        })
        .expect("fault-free run");
        let total: usize = results.iter().map(Vec::len).sum();
        assert_eq!(total, (0..6).sum::<usize>());
        for inbox in &results {
            // sorted by sender, per-sender send order preserved
            assert!(inbox.windows(2).all(|w| w[0].0 <= w[1].0));
            for w in inbox.windows(2) {
                if w[0].0 == w[1].0 {
                    assert!(w[0].1 .1 < w[1].1 .1);
                }
            }
        }
    }

    #[test]
    fn collectives_agree_with_direct_computation() {
        let results = run_spmd::<u64, (Vec<u64>, Vec<u64>), _>(5, |mut mb| {
            let r = mb.rank() as u64;
            let gathered = mb.allgather(r * 7);
            let concat = mb.allgatherv(vec![r; mb.rank()]);
            mb.barrier();
            (gathered, concat)
        })
        .expect("fault-free run");
        let expect_concat: Vec<u64> = (0..5u64).flat_map(|r| vec![r; r as usize]).collect();
        for (gathered, concat) in results {
            assert_eq!(gathered, vec![0, 7, 14, 21, 28]);
            assert_eq!(concat, expect_concat);
        }
    }

    #[test]
    fn panicking_rank_fails_the_run_promptly() {
        for p in [1usize, 2, 4, 8] {
            let start = Instant::now();
            let err =
                run_spmd_with_timeout::<u64, (), _>(p, Duration::from_secs(20), move |mut mb| {
                    if mb.rank() == p / 2 {
                        panic!("injected failure on rank {}", p / 2);
                    }
                    // everyone else waits for a message that never comes
                    let _ = mb.recv_exact(1);
                })
                .expect_err("run must fail");
            match &err.cause {
                FailureCause::Panic(msg) => {
                    assert!(msg.contains("injected failure"), "p={p}: got {msg:?}")
                }
                other => panic!("p={p}: expected Panic cause, got {other:?}"),
            }
            assert!(
                start.elapsed() < Duration::from_secs(15),
                "p={p}: failure must propagate promptly, took {:?}",
                start.elapsed()
            );
        }
    }

    #[test]
    fn deadlock_times_out_with_structured_detail() {
        let start = Instant::now();
        let err = run_spmd_with_timeout::<u64, (), _>(2, Duration::from_millis(200), |mut mb| {
            // both ranks wait forever: nothing is ever sent
            let _ = mb.recv_exact(1);
        })
        .expect_err("deadlock must fail");
        assert!(start.elapsed() < Duration::from_secs(10));
        assert!(err.is_timeout(), "got {err:?}");
        assert!(err.rank.is_some(), "timeout must name a rank");
        let FailureCause::Timeout(detail) = &err.cause else {
            panic!("expected timeout cause");
        };
        assert_eq!(detail.operation, "recv_exact");
        assert_eq!(detail.expected, 1);
        assert_eq!(detail.received, 0);
        assert!(detail.waited >= Duration::from_millis(200));
    }

    #[test]
    fn injected_kill_names_the_rank() {
        let plan = Arc::new(FaultPlan::new(3).kill(2, 0));
        let start = Instant::now();
        let err =
            run_spmd_with::<u64, (), _>(8, Duration::from_secs(20), Some((plan, 0)), |mut mb| {
                mb.barrier();
            })
            .expect_err("killed run must fail");
        assert!(err.is_injected_kill(), "got {err:?}");
        assert_eq!(err.rank, Some(2));
        assert_eq!(err.epoch, Some(0));
        assert!(start.elapsed() < Duration::from_secs(15));
    }

    #[test]
    fn dropped_messages_are_retransmitted() {
        // Every send from every rank is dropped on first attempt; the
        // backoff loop retransmits and the exchange still completes with
        // the fault-free result.
        let noisy = Arc::new(FaultPlan::new(11).with_noise(FaultNoise {
            delay_prob: 0.0,
            max_delay: Duration::ZERO,
            reorder_prob: 0.0,
            drop_prob: 1.0,
        }));
        let program = |mut mb: Mailbox<u64>| {
            let p = mb.num_ranks();
            let outgoing: Vec<(usize, u64)> = (0..p)
                .map(|to| (to, (mb.rank() * 100 + to) as u64))
                .collect();
            mb.exchange(outgoing)
        };
        let clean = run_spmd::<u64, _, _>(4, program).expect("clean run");
        let faulty =
            run_spmd_with::<u64, _, _>(4, Duration::from_secs(20), Some((noisy, 0)), program)
                .expect("drops must recover via retransmission");
        assert_eq!(clean, faulty);
    }

    #[test]
    fn benign_noise_preserves_results() {
        let program = |mut mb: Mailbox<u64>| {
            let p = mb.num_ranks();
            let outgoing: Vec<(usize, u64)> = (0..p)
                .flat_map(|to| {
                    let r = mb.rank() as u64;
                    (0..3).map(move |k| (to, r * 1000 + k))
                })
                .collect();
            let inbox = mb.exchange(outgoing);
            let sum = mb.allgather(inbox.iter().map(|(_, v)| v).sum::<u64>());
            mb.barrier();
            (inbox, sum)
        };
        let clean = run_spmd::<u64, _, _>(6, program).expect("clean run");
        for seed in [1u64, 2, 3] {
            let plan = Arc::new(FaultPlan::benign(seed));
            let noisy =
                run_spmd_with::<u64, _, _>(6, Duration::from_secs(30), Some((plan, 0)), program)
                    .expect("benign plan must not fail the run");
            assert_eq!(clean, noisy, "seed {seed} changed results");
        }
    }
}
