//! A real-threads message-passing executor.
//!
//! The BSP [`crate::Machine`] models communication; this module *performs*
//! it: each virtual rank becomes an OS thread with a crossbeam mailbox and
//! point-to-point channels, demonstrating that the superstep protocol maps
//! one-to-one onto genuine message passing (the role MPI played for the
//! paper).  It is used by integration tests to cross-validate the modeled
//! machine: the same SPMD program must produce identical rank states on
//! both executors.

use crossbeam::channel::{unbounded, Receiver, Sender};
use std::thread;

/// Handle to the channels of one rank inside [`run_spmd`].
pub struct Mailbox<M> {
    rank: usize,
    senders: Vec<Sender<(usize, M)>>,
    receiver: Receiver<(usize, M)>,
}

impl<M: Send> Mailbox<M> {
    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total number of ranks.
    pub fn num_ranks(&self) -> usize {
        self.senders.len()
    }

    /// Send `msg` to rank `to`.
    ///
    /// # Panics
    /// Panics if `to` is out of range or the receiving thread is gone.
    pub fn send(&self, to: usize, msg: M) {
        self.senders[to]
            .send((self.rank, msg))
            .expect("receiving rank terminated");
    }

    /// Receive exactly `n` messages, returned sorted by sender rank so the
    /// result is deterministic regardless of thread scheduling.
    pub fn recv_exact(&self, n: usize) -> Vec<(usize, M)> {
        let mut msgs: Vec<(usize, M)> = (0..n)
            .map(|_| self.receiver.recv().expect("sender terminated"))
            .collect();
        msgs.sort_by_key(|&(from, _)| from);
        msgs
    }
}

/// Run an SPMD program on `p` OS threads, one per rank, each with a
/// [`Mailbox`].  Returns the per-rank results in rank order.
///
/// # Panics
/// Propagates panics from rank threads.
pub fn run_spmd<M, R, F>(p: usize, program: F) -> Vec<R>
where
    M: Send + 'static,
    R: Send + 'static,
    F: Fn(Mailbox<M>) -> R + Send + Sync + 'static + Clone,
{
    assert!(p > 0, "need at least one rank");
    let mut senders = Vec::with_capacity(p);
    let mut receivers = Vec::with_capacity(p);
    for _ in 0..p {
        let (tx, rx) = unbounded();
        senders.push(tx);
        receivers.push(rx);
    }
    let handles: Vec<thread::JoinHandle<R>> = receivers
        .into_iter()
        .enumerate()
        .map(|(rank, receiver)| {
            let mailbox = Mailbox {
                rank,
                senders: senders.clone(),
                receiver,
            };
            let program = program.clone();
            thread::spawn(move || program(mailbox))
        })
        .collect();
    drop(senders);
    handles
        .into_iter()
        .map(|h| h.join().expect("rank thread panicked"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_rotation_on_real_threads() {
        let results = run_spmd::<u64, u64, _>(4, |mb| {
            let next = (mb.rank() + 1) % mb.num_ranks();
            mb.send(next, mb.rank() as u64 * 100);
            let got = mb.recv_exact(1);
            got[0].1
        });
        assert_eq!(results, vec![300, 0, 100, 200]);
    }

    #[test]
    fn all_to_all_is_deterministic() {
        let results = run_spmd::<u64, Vec<u64>, _>(8, |mb| {
            let p = mb.num_ranks();
            for to in 0..p {
                if to != mb.rank() {
                    mb.send(to, (mb.rank() * 10) as u64);
                }
            }
            mb.recv_exact(p - 1).into_iter().map(|(_, v)| v).collect()
        });
        for (r, got) in results.iter().enumerate() {
            let expect: Vec<u64> = (0..8)
                .filter(|&s| s != r)
                .map(|s| (s * 10) as u64)
                .collect();
            assert_eq!(got, &expect, "rank {r}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        run_spmd::<u64, (), _>(0, |_mb| {});
    }
}
