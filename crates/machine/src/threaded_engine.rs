//! [`ThreadedMachine`]: the real-threads implementation of [`SpmdEngine`].
//!
//! Every virtual rank owns one **persistent** OS thread for the lifetime
//! of the machine (the internal `RankPool`); each superstep or collective
//! dispatches one job per rank to its thread instead of spawning fresh
//! threads, which removes ~100–200 µs of spawn/join overhead per
//! operation from the hot path.  Ranks communicate through
//! [`crate::threaded::Mailbox`] channels, so the communication the
//! modeled [`Machine`](crate::Machine) *charges* is here actually
//! *performed*.  Where the modeled machine reports τ/μ/δ seconds, this
//! engine reports wall-clock seconds; the statistics log carries the same
//! off-rank message/byte counts (they are a property of the program, not
//! the executor), which is what makes the two logs directly comparable in
//! the `threaded_vs_modeled` bench.
//!
//! Rank results are bit-identical to the modeled machine by construction:
//!
//! * the exchange delivers inboxes sorted by sender rank with per-sender
//!   order preserved — the modeled router's order;
//! * collective folds run in rank order on every rank, so floating-point
//!   reductions associate identically;
//! * ranks share no mutable state between synchronization points.
//!
//! Failure semantics come from the mailbox layer: a failing rank poisons
//! its peers and every entry point returns the *root* failure as a typed
//! [`SpmdError`] within bounded time (see [`crate::threaded`]).  An
//! installed [`FaultPlan`] is threaded into every rank's mailbox as a
//! per-(rank, epoch) [`FaultSession`](crate::fault::FaultSession), so
//! this engine honors benign wire faults *and* kills.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use crate::config::MachineConfig;
use crate::engine::SpmdEngine;
use crate::error::SpmdError;
use crate::fault::FaultPlan;
use crate::machine::{ExecMode, Outbox, PhaseCtx};
use crate::metrics::SharedMetrics;
use crate::payload::Payload;
use crate::stats::{PhaseKind, StatsLog, SuperstepStats};
use crate::threaded::{
    make_mailboxes, poison_all, resolve_rank_results, Mailbox, DEFAULT_RECV_TIMEOUT,
};
use crate::trace::{Recorder, SpanEvent, SuperstepEvent, TraceEvent};

/// Per-rank accounting returned from a superstep's rank thread.
struct RankReport {
    compute: Duration,
    sent_msgs: u64,
    sent_bytes: u64,
    recv_msgs: u64,
    recv_bytes: u64,
    /// `(to, msgs, bytes)` tallies recorded on the send side of the
    /// mailbox exchange; populated only when metrics are enabled.
    sent_pairs: Vec<(usize, u64, u64)>,
    /// `(from, msgs, bytes)` tallies recorded independently on the
    /// receive side; populated only when metrics are enabled.  Keeping
    /// the two sides separate is what lets the comm-matrix conservation
    /// test (`sent(i→j) == recv(j←i)`) verify the transport end to end.
    recv_pairs: Vec<(usize, u64, u64)>,
}

/// A dispatched unit of rank work.  Jobs never unwind: the rank program
/// runs under `catch_unwind` *inside* the job and the outcome is written
/// to a result slot, so a worker thread can never die.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// One result slot of an in-flight operation.  Written by exactly one
/// worker, read by the driving thread only after that worker signalled
/// completion, so access is never concurrent.
struct SlotPtr<T>(*mut Option<T>);

// SAFETY: the raw pointer targets a slot on the driving thread's stack
// that stays alive until every job of the operation has completed (the
// dispatcher blocks on the completion channel), and each slot is handed
// to exactly one job.
unsafe impl<T: Send> Send for SlotPtr<T> {}

/// One worker's job hand-off slot.  A mutex + condvar rather than a
/// channel on purpose: condvar waits park the thread immediately, while
/// channel receives spin (with `yield_now`) before parking — and on a
/// host with fewer cores than ranks an idle worker's spin-yields preempt
/// ranks that are still computing, which measurably inflates phases whose
/// heavy half runs *after* the exchange (ranks finish staggered there).
struct WorkerSlot {
    /// `(pending job, shutdown flag)`.
    job: Mutex<(Option<Job>, bool)>,
    cv: Condvar,
}

/// The persistent rank threads: worker `r` executes every job virtual
/// rank `r` is ever given, so "one OS thread per rank" holds across the
/// whole lifetime of the machine instead of per operation.  Dispatching a
/// job costs one slot store + one wakeup (~20 µs for 8 ranks on one
/// core) versus ~180 µs for spawning and joining fresh threads.
///
/// Completion uses a counted condvar notified only by the *last* rank to
/// finish, so the driving thread wakes once per operation; a per-rank
/// completion channel would preempt the workers (painful when ranks
/// outnumber cores) up to `p` times mid-operation.
struct RankPool {
    slots: Vec<Arc<WorkerSlot>>,
    done: Arc<(Mutex<usize>, Condvar)>,
    handles: Vec<thread::JoinHandle<()>>,
}

impl RankPool {
    fn new(p: usize) -> Self {
        let done = Arc::new((Mutex::new(0usize), Condvar::new()));
        let mut slots = Vec::with_capacity(p);
        let mut handles = Vec::with_capacity(p);
        for rank in 0..p {
            let slot = Arc::new(WorkerSlot {
                job: Mutex::new((None, false)),
                cv: Condvar::new(),
            });
            slots.push(Arc::clone(&slot));
            let done = Arc::clone(&done);
            handles.push(
                thread::Builder::new()
                    .name(format!("rank-{rank}"))
                    .spawn(move || loop {
                        let job = {
                            let mut guard = slot.job.lock().expect("job mutex never poisoned");
                            loop {
                                if guard.1 {
                                    return;
                                }
                                if let Some(job) = guard.0.take() {
                                    break job;
                                }
                                guard = slot.cv.wait(guard).expect("job mutex never poisoned");
                            }
                        };
                        job();
                        let mut finished = done.0.lock().expect("completion mutex never poisoned");
                        *finished += 1;
                        if *finished == p {
                            done.1.notify_one();
                        }
                    })
                    .expect("spawn rank worker"),
            );
        }
        Self {
            slots,
            done,
            handles,
        }
    }

    /// Run one job per rank and block until all have completed.  The
    /// borrows captured by the jobs are erased to `'static` for transit;
    /// blocking here is what makes that sound.
    fn run(&self, jobs: Vec<Job>) {
        let p = self.slots.len();
        assert_eq!(jobs.len(), p, "one job per rank");
        for (slot, job) in self.slots.iter().zip(jobs) {
            let mut guard = slot.job.lock().expect("job mutex never poisoned");
            debug_assert!(guard.0.is_none(), "worker still holds a job");
            guard.0 = Some(job);
            slot.cv.notify_one();
        }
        let (lock, cv) = &*self.done;
        let mut finished = lock.lock().expect("completion mutex never poisoned");
        while *finished < p {
            finished = cv.wait(finished).expect("completion mutex never poisoned");
        }
        *finished = 0;
    }
}

impl Drop for RankPool {
    fn drop(&mut self) {
        for slot in &self.slots {
            let mut guard = slot.job.lock().expect("job mutex never poisoned");
            guard.1 = true;
            slot.cv.notify_one();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// An [`SpmdEngine`] that executes every virtual rank on its own OS
/// thread with real message passing.  See the module docs.
pub struct ThreadedMachine<S> {
    cfg: MachineConfig,
    states: Vec<S>,
    stats: StatsLog,
    /// Accumulated wall-clock seconds across operations.
    elapsed_wall_s: f64,
    /// Accumulated per-superstep maximum rank compute wall seconds.
    compute_wall_s: f64,
    timeout: Duration,
    fault_plan: Option<Arc<FaultPlan>>,
    fault_epoch: u64,
    supersteps: u64,
    /// Installed observability sink, if any (see [`crate::trace`]).
    /// Events are emitted from the driving thread after the rank threads
    /// join, so recorders need `Send` but never see concurrent calls.
    recorder: Option<Box<dyn Recorder>>,
    /// Supersteps/collectives emitted to the recorder.
    traced_steps: u64,
    /// Installed metrics registry, if any (see [`crate::metrics`]).
    /// Fed from the driving thread after rank threads join.
    metrics: Option<SharedMetrics>,
    /// Persistent rank worker threads, created on the first operation.
    pool: Option<RankPool>,
}

impl<S: Send> ThreadedMachine<S> {
    /// Build a threaded machine whose rank `r` starts with `states[r]`.
    ///
    /// # Panics
    /// Panics if `states.len() != cfg.ranks`.
    pub fn new(cfg: MachineConfig, states: Vec<S>) -> Self {
        assert_eq!(
            states.len(),
            cfg.ranks,
            "state count {} != configured ranks {}",
            states.len(),
            cfg.ranks
        );
        Self {
            cfg,
            states,
            stats: StatsLog::new(),
            elapsed_wall_s: 0.0,
            compute_wall_s: 0.0,
            timeout: DEFAULT_RECV_TIMEOUT,
            fault_plan: None,
            fault_epoch: 0,
            supersteps: 0,
            recorder: None,
            traced_steps: 0,
            metrics: None,
            pool: None,
        }
    }

    /// Use a custom per-receive deadline (tests use short ones to assert
    /// bounded-time failure).
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Run `f` on every rank — each on its persistent worker thread —
    /// connected by a fresh set of mailboxes carrying this engine's
    /// fault sessions.  Returns per-rank results in rank order plus the
    /// operation's wall time, or the root failure with phase/superstep
    /// context attached (peers are poisoned so the call never hangs).
    fn run_ranks<M, R, F>(
        &mut self,
        phase: PhaseKind,
        f: F,
    ) -> Result<(Vec<R>, Duration), SpmdError>
    where
        M: Send,
        R: Send,
        F: Fn(usize, &mut S, Mailbox<M>) -> R + Sync,
    {
        let step = self.supersteps;
        self.supersteps += 1;
        let epoch = self.fault_epoch;
        let start = Instant::now();
        let p = self.cfg.ranks;
        let mut mailboxes = make_mailboxes::<M>(p, self.timeout);
        if let Some(plan) = &self.fault_plan {
            for (rank, mb) in mailboxes.iter_mut().enumerate() {
                mb.set_fault(Some(plan.session(rank, epoch, phase)));
            }
        }
        if self.pool.is_none() {
            self.pool = Some(RankPool::new(p));
        }
        let pool = self.pool.as_ref().expect("pool just ensured");
        let f = &f;
        let mut outcomes: Vec<Option<Result<R, Box<dyn Any + Send>>>> =
            (0..p).map(|_| None).collect();
        let jobs: Vec<Job> = outcomes
            .iter_mut()
            .zip(self.states.iter_mut())
            .zip(mailboxes)
            .enumerate()
            .map(|(r, ((slot, s), mb))| {
                let senders = mb.sender_clones();
                let slot = SlotPtr(slot as *mut _);
                let job = move || {
                    // move the whole wrapper in (disjoint capture would
                    // otherwise grab the raw pointer field, which is not
                    // `Send`)
                    let slot = slot;
                    let out = catch_unwind(AssertUnwindSafe(|| f(r, s, mb)));
                    if out.is_err() {
                        poison_all(r, &senders);
                    }
                    // SAFETY: see `SlotPtr` — exclusive slot, alive until
                    // `pool.run` below has returned.
                    unsafe { *slot.0 = Some(out) };
                };
                let job: Box<dyn FnOnce() + Send + '_> = Box::new(job);
                // SAFETY: the job borrows `f`, `self.states` and the
                // outcome slots, all of which outlive `pool.run(jobs)`,
                // which blocks until every job has finished executing;
                // jobs cannot unwind (the rank program runs under
                // `catch_unwind` inside the job), so a worker never holds
                // a job beyond that point.  Erasing the lifetime is only
                // for transit through the worker channel.
                unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Job>(job) }
            })
            .collect();
        pool.run(jobs);
        let outcomes: Vec<_> = outcomes
            .into_iter()
            .map(|o| o.expect("every job writes its slot"))
            .collect();
        match resolve_rank_results(outcomes) {
            Ok(results) => Ok((results, start.elapsed())),
            Err(err) => Err(err.in_phase(phase, step, epoch)),
        }
    }

    /// Record a collective with the same modeled message/byte counts the
    /// BSP machine would charge (they describe the algorithm, not the
    /// executor) but wall-clock elapsed time.
    fn push_collective_stats(&mut self, phase: PhaseKind, share_bytes: usize, wall: Duration) {
        let p = self.cfg.ranks;
        let stages = self.cfg.topology.collective_stages(p) as u64;
        let wall_s = wall.as_secs_f64();
        let start = self.elapsed_wall_s;
        self.elapsed_wall_s += wall_s;
        let per_rank_msgs = if p > 1 { stages } else { 0 };
        let per_rank_bytes = ((p - 1) * share_bytes) as u64;
        let total_msgs = if p > 1 { stages * p as u64 } else { 0 };
        let total_bytes = ((p - 1) * share_bytes * p) as u64;
        self.stats.push(SuperstepStats {
            phase,
            max_msgs_sent: per_rank_msgs,
            max_msgs_recv: per_rank_msgs,
            max_bytes_sent: per_rank_bytes,
            max_bytes_recv: per_rank_bytes,
            total_msgs,
            total_bytes,
            max_compute_s: 0.0,
            max_comm_s: wall_s,
            elapsed_s: wall_s,
        });
        if let Some(metrics) = &self.metrics {
            metrics.with(|reg| {
                reg.observe_collective(phase, wall_s, share_bytes as u64, total_msgs, total_bytes);
            });
        }
        self.trace_collective(
            phase,
            start,
            wall_s,
            per_rank_msgs,
            per_rank_bytes,
            total_msgs,
            total_bytes,
        );
    }

    /// Record the stats row and trace events of one (possibly
    /// communication-free) superstep from its per-rank reports and wall
    /// time — shared by [`SpmdEngine::superstep`] and the specialized
    /// [`SpmdEngine::local_step`].
    fn record_superstep(&mut self, phase: PhaseKind, reports: &[RankReport], wall: Duration) {
        let wall_s = wall.as_secs_f64();
        let max_compute_s = reports
            .iter()
            .map(|rep| rep.compute.as_secs_f64())
            .fold(0.0, f64::max);
        let start = self.elapsed_wall_s;
        self.elapsed_wall_s += wall_s;
        self.compute_wall_s += max_compute_s;
        let total_msgs: u64 = reports.iter().map(|r| r.sent_msgs).sum();
        let total_bytes: u64 = reports.iter().map(|r| r.sent_bytes).sum();
        self.stats.push(SuperstepStats {
            phase,
            max_msgs_sent: reports.iter().map(|r| r.sent_msgs).max().unwrap_or(0),
            max_msgs_recv: reports.iter().map(|r| r.recv_msgs).max().unwrap_or(0),
            max_bytes_sent: reports.iter().map(|r| r.sent_bytes).max().unwrap_or(0),
            max_bytes_recv: reports.iter().map(|r| r.recv_bytes).max().unwrap_or(0),
            total_msgs,
            total_bytes,
            max_compute_s,
            max_comm_s: (wall_s - max_compute_s).max(0.0),
            elapsed_s: wall_s,
        });
        if let Some(metrics) = &self.metrics {
            metrics.with(|reg| {
                for (rank, rep) in reports.iter().enumerate() {
                    for &(to, msgs, bytes) in &rep.sent_pairs {
                        reg.comm_mut().record_send(rank, to, msgs, bytes);
                    }
                    for &(from, msgs, bytes) in &rep.recv_pairs {
                        reg.comm_mut().record_recv(rank, from, msgs, bytes);
                    }
                }
                reg.observe_superstep(phase, wall_s, total_msgs, total_bytes);
            });
        }
        if self.recorder.is_some() {
            let step = self.next_trace_step();
            let epoch = self.fault_epoch;
            for (rank, rep) in reports.iter().enumerate() {
                // A rank is busy for the op's full wall time (the driving
                // thread waits for every rank before proceeding): anything
                // not spent computing is communication + idle, mirroring
                // the modeled machine's idle-to-comm accounting.
                let compute_s = rep.compute.as_secs_f64();
                let comm_s = (wall_s - compute_s).max(0.0);
                self.record_event(&TraceEvent::Span(SpanEvent {
                    rank,
                    phase,
                    superstep: step,
                    epoch,
                    start_s: start,
                    compute_s,
                    comm_s,
                    end_s: start + compute_s + comm_s,
                    msgs_sent: rep.sent_msgs,
                    msgs_recv: rep.recv_msgs,
                    bytes_sent: rep.sent_bytes,
                    bytes_recv: rep.recv_bytes,
                }));
            }
            self.record_event(&TraceEvent::Superstep(SuperstepEvent {
                phase,
                superstep: step,
                epoch,
                start_s: start,
                elapsed_s: wall_s,
                max_compute_s,
                max_comm_s: (wall_s - max_compute_s).max(0.0),
                total_msgs,
                total_bytes,
                collective: false,
            }));
        }
    }

    /// Forward one event to the recorder, if any.
    fn record_event(&mut self, event: &TraceEvent) {
        if let Some(rec) = &mut self.recorder {
            rec.record(event);
        }
    }

    /// Allocate the next trace superstep index.
    fn next_trace_step(&mut self) -> u64 {
        let step = self.traced_steps;
        self.traced_steps += 1;
        step
    }

    /// Emit the trace events of a collective: one uniform span per rank
    /// (all ranks participate for the operation's full wall time) plus
    /// the aggregated superstep event.
    #[allow(clippy::too_many_arguments)]
    fn trace_collective(
        &mut self,
        phase: PhaseKind,
        start: f64,
        wall_s: f64,
        per_rank_msgs: u64,
        per_rank_bytes: u64,
        total_msgs: u64,
        total_bytes: u64,
    ) {
        if self.recorder.is_none() {
            return;
        }
        let p = self.cfg.ranks;
        let step = self.next_trace_step();
        let epoch = self.fault_epoch;
        for rank in 0..p {
            self.record_event(&TraceEvent::Span(SpanEvent {
                rank,
                phase,
                superstep: step,
                epoch,
                start_s: start,
                compute_s: 0.0,
                comm_s: wall_s,
                end_s: start + wall_s,
                msgs_sent: per_rank_msgs,
                msgs_recv: per_rank_msgs,
                bytes_sent: per_rank_bytes,
                bytes_recv: per_rank_bytes,
            }));
        }
        self.record_event(&TraceEvent::Superstep(SuperstepEvent {
            phase,
            superstep: step,
            epoch,
            start_s: start,
            elapsed_s: wall_s,
            max_compute_s: 0.0,
            max_comm_s: wall_s,
            total_msgs,
            total_bytes,
            collective: true,
        }));
    }
}

impl<S: Send> SpmdEngine<S> for ThreadedMachine<S> {
    fn build(cfg: MachineConfig, _mode: ExecMode, states: Vec<S>) -> Self {
        // ExecMode is a host-parallelism knob for the modeled machine;
        // here every rank is an OS thread already, so it is ignored.
        ThreadedMachine::new(cfg, states)
    }

    fn num_ranks(&self) -> usize {
        self.cfg.ranks
    }

    fn machine_config(&self) -> &MachineConfig {
        &self.cfg
    }

    fn ranks(&self) -> &[S] {
        &self.states
    }

    fn ranks_mut(&mut self) -> &mut [S] {
        &mut self.states
    }

    fn into_ranks(self) -> Vec<S> {
        self.states
    }

    fn elapsed_s(&self) -> f64 {
        self.elapsed_wall_s
    }

    fn compute_s(&self) -> f64 {
        self.compute_wall_s
    }

    fn stats(&self) -> &StatsLog {
        &self.stats
    }

    fn stats_mut(&mut self) -> &mut StatsLog {
        &mut self.stats
    }

    fn set_fault_plan(&mut self, plan: Option<Arc<FaultPlan>>) {
        self.fault_plan = plan;
    }

    fn fault_plan(&self) -> Option<Arc<FaultPlan>> {
        self.fault_plan.clone()
    }

    fn set_fault_epoch(&mut self, epoch: u64) {
        self.fault_epoch = epoch;
    }

    fn fault_epoch(&self) -> u64 {
        self.fault_epoch
    }

    fn set_recorder(&mut self, recorder: Option<Box<dyn Recorder>>) {
        self.recorder = recorder;
    }

    fn take_recorder(&mut self) -> Option<Box<dyn Recorder>> {
        self.recorder.take()
    }

    fn recorder_mut(&mut self) -> Option<&mut (dyn Recorder + '_)> {
        match self.recorder.as_mut() {
            Some(rec) => Some(rec.as_mut()),
            None => None,
        }
    }

    fn set_metrics(&mut self, metrics: Option<SharedMetrics>) {
        self.metrics = metrics;
    }

    fn metrics(&self) -> Option<SharedMetrics> {
        self.metrics.clone()
    }

    fn superstep<M, F, G>(
        &mut self,
        phase: PhaseKind,
        compute: F,
        deliver: G,
    ) -> Result<(), SpmdError>
    where
        M: Payload,
        F: Fn(usize, &mut S, &mut PhaseCtx, &mut Outbox<M>) + Sync,
        G: Fn(usize, &mut S, &mut PhaseCtx, Vec<(usize, M)>) + Sync,
    {
        let p = self.cfg.ranks;
        let track_pairs = self.metrics.is_some();
        let compute = &compute;
        let deliver = &deliver;
        let (reports, wall) = self.run_ranks::<M, RankReport, _>(phase, move |r, s, mut mb| {
            let t0 = Instant::now();
            let mut ctx = PhaseCtx::default();
            let mut outbox = Outbox::new(p);
            compute(r, s, &mut ctx, &mut outbox);
            let outgoing = outbox.into_msgs();
            let compute_half = t0.elapsed();

            let (mut sent_msgs, mut sent_bytes) = (0u64, 0u64);
            let mut sent_pairs = Vec::new();
            for (to, msg) in &outgoing {
                if *to != r {
                    sent_msgs += 1;
                    sent_bytes += msg.size_bytes() as u64;
                    if track_pairs {
                        sent_pairs.push((*to, 1, msg.size_bytes() as u64));
                    }
                }
            }
            let inbox = mb.exchange(outgoing);
            let (mut recv_msgs, mut recv_bytes) = (0u64, 0u64);
            let mut recv_pairs = Vec::new();
            for (from, msg) in &inbox {
                if *from != r {
                    recv_msgs += 1;
                    recv_bytes += msg.size_bytes() as u64;
                    if track_pairs {
                        recv_pairs.push((*from, 1, msg.size_bytes() as u64));
                    }
                }
            }

            let t1 = Instant::now();
            let mut ctx = PhaseCtx::default();
            deliver(r, s, &mut ctx, inbox);
            let deliver_half = t1.elapsed();
            // No trailing barrier: mailboxes are fresh per operation (no
            // traffic can leak into the next superstep) and the pool's
            // completion wait already synchronizes all ranks before the
            // driving thread proceeds.
            RankReport {
                compute: compute_half + deliver_half,
                sent_msgs,
                sent_bytes,
                recv_msgs,
                recv_bytes,
                sent_pairs,
                recv_pairs,
            }
        })?;
        self.record_superstep(phase, &reports, wall);
        Ok(())
    }

    fn local_step<F>(&mut self, phase: PhaseKind, compute: F) -> Result<(), SpmdError>
    where
        F: Fn(usize, &mut S, &mut PhaseCtx) + Sync,
    {
        // Specialized over the trait default (which routes through
        // `superstep` with an empty outbox): a communication-free step
        // needs no exchange at all, and on hosts with fewer cores than
        // ranks the empty all-to-all handshake is pure scheduling churn.
        // Kill faults are still honored via the mailbox's armed session;
        // the pool's completion wait provides the step-boundary sync.
        let compute = &compute;
        let (reports, wall) = self.run_ranks::<(), RankReport, _>(phase, move |r, s, mb| {
            mb.check_kill();
            let t0 = Instant::now();
            let mut ctx = PhaseCtx::default();
            compute(r, s, &mut ctx);
            RankReport {
                compute: t0.elapsed(),
                sent_msgs: 0,
                sent_bytes: 0,
                recv_msgs: 0,
                recv_bytes: 0,
                sent_pairs: Vec::new(),
                recv_pairs: Vec::new(),
            }
        })?;
        self.record_superstep(phase, &reports, wall);
        Ok(())
    }

    fn allgather<T, F, G>(
        &mut self,
        phase: PhaseKind,
        bytes_per_item: usize,
        extract: F,
        apply: G,
    ) -> Result<(), SpmdError>
    where
        T: Clone + Send,
        F: Fn(usize, &S) -> T + Sync,
        G: Fn(usize, &mut S, &[T]) + Sync,
    {
        let extract = &extract;
        let apply = &apply;
        let (_, wall) = self.run_ranks::<T, (), _>(phase, move |r, s, mut mb| {
            let all = mb.allgather(extract(r, s));
            apply(r, s, &all);
        })?;
        self.push_collective_stats(phase, bytes_per_item, wall);
        Ok(())
    }

    fn allgatherv<T, F, G>(
        &mut self,
        phase: PhaseKind,
        bytes_per_item: usize,
        extract: F,
        apply: G,
    ) -> Result<(), SpmdError>
    where
        T: Clone + Send,
        F: Fn(usize, &S) -> Vec<T> + Sync,
        G: Fn(usize, &mut S, &[T]) + Sync,
    {
        let extract = &extract;
        let apply = &apply;
        let (lens, wall) = self.run_ranks::<T, usize, _>(phase, move |r, s, mut mb| {
            let part = extract(r, s);
            let share = part.len();
            let concat = mb.allgatherv(part);
            apply(r, s, &concat);
            share
        })?;
        let max_share = lens.into_iter().max().unwrap_or(0);
        self.push_collective_stats(phase, max_share * bytes_per_item, wall);
        Ok(())
    }

    fn allreduce<T, F, R, G>(
        &mut self,
        phase: PhaseKind,
        extract: F,
        reduce: R,
        apply: G,
    ) -> Result<(), SpmdError>
    where
        T: Clone + Send,
        F: Fn(usize, &S) -> T + Sync,
        R: Fn(T, T) -> T + Sync,
        G: Fn(usize, &mut S, &T) + Sync,
    {
        let extract = &extract;
        let reduce = &reduce;
        let apply = &apply;
        let (_, wall) = self.run_ranks::<T, (), _>(phase, move |r, s, mut mb| {
            // gather everyone's value, fold in rank order locally: the
            // same association order as the modeled machine, so
            // floating-point results are bit-identical.
            let mut it = mb.allgather(extract(r, s)).into_iter();
            let first = it.next().expect("machine has at least one rank");
            let folded = it.fold(first, reduce);
            apply(r, s, &folded);
        })?;
        self.push_collective_stats(phase, 8, wall);
        Ok(())
    }

    fn allreduce_elementwise<T, F, R, G>(
        &mut self,
        phase: PhaseKind,
        share_bytes: usize,
        extract: F,
        reduce: R,
        apply: G,
    ) -> Result<(), SpmdError>
    where
        T: Clone + Send,
        F: Fn(usize, &S) -> Vec<T> + Sync,
        R: Fn(&T, &T) -> T + Sync,
        G: Fn(usize, &mut S, &[T]) + Sync,
    {
        let extract = &extract;
        let reduce = &reduce;
        let apply = &apply;
        let (_, wall) = self.run_ranks::<Vec<T>, (), _>(phase, move |r, s, mut mb| {
            let mut parts = mb.allgather(extract(r, s)).into_iter();
            let mut acc = parts.next().expect("machine has at least one rank");
            for v in parts {
                assert_eq!(v.len(), acc.len(), "ragged allreduce contributions");
                for (a, b) in acc.iter_mut().zip(&v) {
                    *a = reduce(a, b);
                }
            }
            apply(r, s, &acc);
        })?;
        // Mirror the modeled machine's pipelined-tree accounting.
        let p = self.cfg.ranks;
        let stages = self.cfg.topology.collective_stages(p) as u64;
        let wall_s = wall.as_secs_f64();
        let start = self.elapsed_wall_s;
        self.elapsed_wall_s += wall_s;
        let per_rank_msgs = if p > 1 { stages } else { 0 };
        let per_rank_bytes = stages * share_bytes as u64;
        let total_msgs = if p > 1 { stages * p as u64 } else { 0 };
        let total_bytes = stages * (share_bytes * p) as u64;
        self.stats.push(SuperstepStats {
            phase,
            max_msgs_sent: per_rank_msgs,
            max_msgs_recv: per_rank_msgs,
            max_bytes_sent: per_rank_bytes,
            max_bytes_recv: per_rank_bytes,
            total_msgs,
            total_bytes,
            max_compute_s: 0.0,
            max_comm_s: wall_s,
            elapsed_s: wall_s,
        });
        if let Some(metrics) = &self.metrics {
            metrics.with(|reg| {
                reg.observe_collective(phase, wall_s, share_bytes as u64, total_msgs, total_bytes);
            });
        }
        self.trace_collective(
            phase,
            start,
            wall_s,
            per_rank_msgs,
            per_rank_bytes,
            total_msgs,
            total_bytes,
        );
        Ok(())
    }

    fn barrier(&mut self) -> Result<(), SpmdError> {
        let (_, wall) =
            self.run_ranks::<(), (), _>(PhaseKind::Other, |_r, _s, mut mb| mb.barrier())?;
        self.elapsed_wall_s += wall.as_secs_f64();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Topology;

    fn tiny(p: usize) -> MachineConfig {
        MachineConfig {
            ranks: p,
            tau: 1.0,
            mu: 0.1,
            delta: 0.01,
            topology: Topology::FullyConnected,
        }
    }

    #[test]
    fn superstep_matches_modeled_machine() {
        let run_modeled = || {
            let mut m = crate::Machine::new(tiny(8), ExecMode::Sequential, vec![0u64; 8]);
            drive(&mut m);
            m.into_ranks()
        };
        let run_threaded = || {
            let mut m = ThreadedMachine::new(tiny(8), vec![0u64; 8]);
            drive(&mut m);
            m.into_ranks()
        };
        fn drive<E: SpmdEngine<u64>>(m: &mut E) {
            for step in 0..4u64 {
                m.superstep(
                    PhaseKind::Other,
                    move |r, s, _ctx, ob: &mut Outbox<Vec<u64>>| {
                        ob.send((r + 1) % 8, vec![*s + step]);
                        ob.send((r + 3) % 8, vec![*s * 2 + step]);
                    },
                    |_r, s, _ctx, inbox| {
                        for (from, msg) in inbox {
                            *s = s.wrapping_add(msg[0]).wrapping_mul(from as u64 | 1);
                        }
                    },
                )
                .expect("fault-free superstep");
            }
        }
        assert_eq!(run_modeled(), run_threaded());
    }

    #[test]
    fn superstep_counts_off_rank_traffic_like_modeled() {
        let mut modeled = crate::Machine::new(tiny(4), ExecMode::Sequential, vec![(); 4]);
        let mut threaded = ThreadedMachine::new(tiny(4), vec![(); 4]);
        fn program<E: SpmdEngine<()>>(m: &mut E) {
            m.superstep(
                PhaseKind::Scatter,
                |r, _s, _ctx, ob: &mut Outbox<Vec<f64>>| {
                    ob.send((r + 1) % 4, vec![r as f64; r + 1]);
                    ob.send(r, vec![9.0]); // self-message: free
                },
                |_, _, _, _| {},
            )
            .expect("fault-free superstep");
        }
        program(&mut modeled);
        program(&mut threaded);
        let m = modeled.stats().records()[0];
        let t = threaded.stats().records()[0];
        assert_eq!(m.max_msgs_sent, t.max_msgs_sent);
        assert_eq!(m.max_msgs_recv, t.max_msgs_recv);
        assert_eq!(m.max_bytes_sent, t.max_bytes_sent);
        assert_eq!(m.max_bytes_recv, t.max_bytes_recv);
        assert_eq!(m.total_msgs, t.total_msgs);
        assert_eq!(m.total_bytes, t.total_bytes);
    }

    #[test]
    fn collectives_match_modeled_machine() {
        fn drive<E: SpmdEngine<(f64, Vec<f64>)>>(m: &mut E) -> Vec<(f64, Vec<f64>)> {
            m.allgather(
                PhaseKind::Setup,
                8,
                |r, _s| r as f64 * 0.1,
                |_r, s, all: &[f64]| s.1 = all.to_vec(),
            )
            .expect("allgather");
            m.allgatherv(
                PhaseKind::Setup,
                8,
                |r, s| vec![s.0 + r as f64; r],
                |_r, s, concat: &[f64]| s.1.extend_from_slice(concat),
            )
            .expect("allgatherv");
            m.allreduce(
                PhaseKind::Other,
                |_r, s| s.0,
                |a, b| a + b * 1.0000001,
                |_r, s, &v| s.0 = v,
            )
            .expect("allreduce");
            m.allreduce_elementwise(
                PhaseKind::Other,
                8,
                |r, _s| vec![r as f64, 1.0 / (r as f64 + 1.0)],
                |a, b| a + b,
                |_r, s, acc| s.1.extend_from_slice(acc),
            )
            .expect("allreduce_elementwise");
            m.barrier().expect("barrier");
            m.ranks().to_vec()
        }
        let states = |p: usize| (0..p).map(|r| (r as f64 * 0.31, Vec::new())).collect();
        let mut modeled = crate::Machine::new(tiny(6), ExecMode::Sequential, states(6));
        let mut threaded = ThreadedMachine::new(tiny(6), states(6));
        let a = drive(&mut modeled);
        let b = drive(&mut threaded);
        // bit-identical including float folds
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.0.to_bits(), y.0.to_bits());
            assert_eq!(x.1.len(), y.1.len());
            for (u, v) in x.1.iter().zip(&y.1) {
                assert_eq!(u.to_bits(), v.to_bits());
            }
        }
    }

    #[test]
    fn rank_threads_persist_across_operations() {
        // every operation must land on the same per-rank worker thread —
        // the pool dispatches, it never respawns
        let mut m = ThreadedMachine::new(tiny(4), vec![Vec::<thread::ThreadId>::new(); 4]);
        for _ in 0..3 {
            SpmdEngine::local_step(&mut m, PhaseKind::Other, |_r, s, _ctx| {
                s.push(thread::current().id());
            })
            .expect("fault-free step");
        }
        let ids: Vec<thread::ThreadId> = m.ranks().iter().map(|s| s[0]).collect();
        for (r, s) in m.ranks().iter().enumerate() {
            assert_eq!(s.len(), 3);
            assert!(
                s.iter().all(|id| *id == ids[r]),
                "rank {r} migrated between threads"
            );
        }
        // distinct ranks on distinct threads
        for r in 1..ids.len() {
            assert_ne!(ids[0], ids[r], "ranks share a worker thread");
        }
    }

    #[test]
    fn pool_survives_a_failed_operation() {
        let mut m =
            ThreadedMachine::new(tiny(4), vec![0u64; 4]).with_timeout(Duration::from_secs(10));
        let err = m
            .superstep(
                PhaseKind::Push,
                |r, _s, _ctx, _ob: &mut Outbox<Vec<u64>>| {
                    if r == 1 {
                        panic!("transient failure");
                    }
                },
                |_, _, _, _| {},
            )
            .expect_err("rank 1 must fail the superstep");
        assert_eq!(err.superstep, Some(0));
        // the persistent workers must still serve subsequent operations
        m.superstep(
            PhaseKind::Push,
            |r, s, _ctx, ob: &mut Outbox<Vec<u64>>| {
                ob.send((r + 1) % 4, vec![r as u64]);
                *s += 1;
            },
            |_r, s, _ctx, inbox| {
                for (_, msg) in inbox {
                    *s += msg[0];
                }
            },
        )
        .expect("pool must recover after a failed operation");
        assert_eq!(m.ranks(), &[4, 1, 2, 3]);
    }

    #[test]
    fn panic_in_compute_half_becomes_typed_error() {
        let mut m =
            ThreadedMachine::new(tiny(4), vec![0u64; 4]).with_timeout(Duration::from_secs(10));
        let err = m
            .superstep(
                PhaseKind::Push,
                |r, _s, _ctx, _ob: &mut Outbox<Vec<u64>>| {
                    if r == 2 {
                        panic!("compute exploded on rank 2");
                    }
                },
                |_, _, _, _| {},
            )
            .expect_err("panicking rank must fail the superstep");
        assert_eq!(err.phase, Some(PhaseKind::Push));
        assert_eq!(err.superstep, Some(0));
        match &err.cause {
            crate::error::FailureCause::Panic(msg) => {
                assert!(msg.contains("compute exploded"), "got {msg:?}")
            }
            other => panic!("expected Panic cause, got {other:?}"),
        }
    }

    #[test]
    fn injected_kill_carries_phase_and_epoch() {
        let mut m =
            ThreadedMachine::new(tiny(4), vec![0u64; 4]).with_timeout(Duration::from_secs(10));
        m.set_fault_plan(Some(Arc::new(FaultPlan::new(1).kill(1, 7))));
        m.set_fault_epoch(6);
        m.barrier().expect("epoch 6: no fault armed");
        m.set_fault_epoch(7);
        let err = m.barrier().expect_err("epoch 7: rank 1 must die");
        assert!(err.is_injected_kill());
        assert_eq!(err.rank, Some(1));
        assert_eq!(err.epoch, Some(7));
        // the kill is one-shot: a restarted epoch runs clean
        m.barrier().expect("kill must not re-fire");
    }

    #[test]
    fn modeled_machine_honors_kill_faults_identically() {
        let mut m = crate::Machine::new(tiny(4), ExecMode::Sequential, vec![0u64; 4]);
        SpmdEngine::set_fault_plan(&mut m, Some(Arc::new(FaultPlan::new(1).kill(2, 3))));
        SpmdEngine::set_fault_epoch(&mut m, 3);
        // qualified call: the inherent (panicking) `local_step` would
        // otherwise shadow the trait method
        let err = SpmdEngine::local_step(&mut m, PhaseKind::Push, |_r, _s, _ctx| {})
            .expect_err("kill must fire on the modeled machine too");
        assert!(err.is_injected_kill());
        assert_eq!(err.rank, Some(2));
        assert_eq!(err.phase, Some(PhaseKind::Push));
        SpmdEngine::local_step(&mut m, PhaseKind::Push, |_r, _s, _ctx| {})
            .expect("one-shot: second attempt runs clean");
    }
}
