//! Structured tracing: span events, pluggable recorders, exporters.
//!
//! The paper's entire evaluation is a story about *where time goes* —
//! scatter volume, redistribution overhead, idle time.  [`StatsLog`](crate::StatsLog)
//! (one aggregated record per superstep) is the raw material for the
//! reproduced figures; this module adds the layer underneath it: a
//! stream of **structured events** emitted by both executors and the
//! simulation driver, consumed through a pluggable [`Recorder`].
//!
//! ## Event model
//!
//! | event | emitted by | one per |
//! |---|---|---|
//! | [`SpanEvent`] | both executors | (rank, superstep/collective) |
//! | [`SuperstepEvent`] | both executors | superstep or collective |
//! | [`IterationEvent`] | the PIC driver | completed iteration |
//! | [`RedistributionEvent`] | the PIC driver | redistribution (incl. setup) |
//! | [`FaultEvent`] | driver + recovery | surfaced [`SpmdError`](crate::SpmdError) |
//! | [`CheckpointEvent`] | the recovery loop | snapshot saved / restored |
//! | [`PolicyDecisionEvent`] | the PIC driver | redistribution-policy evaluation |
//! | [`RankLoadEvent`] | the PIC driver | completed iteration (per-rank counts) |
//!
//! On the modeled [`Machine`](crate::Machine) span times are **modeled
//! seconds** under the τ/μ/δ cost model (a span's `compute_s` is
//! `δ · ops`, its `comm_s` is `Σ (τ + bytes·μ)` over its off-rank
//! messages); on the [`ThreadedMachine`](crate::ThreadedMachine) they
//! are measured wall-clock seconds.  Message and byte counts are exact
//! on both — they are a property of the program, not the executor.
//!
//! ## Recorders
//!
//! A [`Recorder`] is installed on an engine with
//! [`SpmdEngine::set_recorder`](crate::SpmdEngine::set_recorder) and
//! receives every event as it happens:
//!
//! * [`MemoryRecorder`] — unbounded in-memory vector (exporter input);
//! * [`RingRecorder`] — bounded ring that keeps the most recent events;
//! * [`JsonLinesRecorder`] — one JSON object per line to any writer;
//! * [`CsvRecorder`] — one flat CSV row per event;
//! * [`MultiRecorder`] — fan-out to several sinks;
//! * [`SharedRecorder`] — clonable handle so the caller can keep access
//!   to a sink after handing the engine its `Box<dyn Recorder>`.
//!
//! ## Exporters
//!
//! * [`chrome_trace`] — Chrome `trace_event` JSON for `chrome://tracing`
//!   / Perfetto (one track per rank);
//! * [`timeline_report`] — flamegraph-style per-rank/per-phase text
//!   bars;
//! * [`MetricsReport`] — per-phase p50/p95/max aggregation.
//!
//! ```
//! use pic_machine::trace::{MemoryRecorder, MetricsReport, SharedRecorder};
//! use pic_machine::{ExecMode, Machine, MachineConfig, PhaseKind, SpmdEngine};
//!
//! let rec = SharedRecorder::new(MemoryRecorder::new());
//! let mut m = Machine::new(MachineConfig::cm5(4), ExecMode::Sequential, vec![0u64; 4]);
//! m.set_recorder(Some(Box::new(rec.clone())));
//! SpmdEngine::local_step(&mut m, PhaseKind::Push, |_r, s, ctx| {
//!     *s += 1;
//!     ctx.charge_ops(10.0);
//! })
//! .unwrap();
//! let events = rec.with(|r| r.events().to_vec());
//! assert_eq!(events.iter().filter(|e| e.span().is_some()).count(), 4); // one per rank
//! let report = MetricsReport::from_events(&events);
//! assert_eq!(report.phases()[0].phase, PhaseKind::Push);
//! ```

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

use crate::stats::PhaseKind;

/// One rank's slice of one superstep or collective.
///
/// Times are modeled seconds on the modeled machine and wall-clock
/// seconds on the threaded one; counts are exact on both.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpanEvent {
    /// The rank this span belongs to.
    pub rank: usize,
    /// Phase the enclosing superstep implements.
    pub phase: PhaseKind,
    /// Engine-wide superstep/collective sequence number.
    pub superstep: u64,
    /// Driver fault epoch (the PIC driver stamps its iteration number).
    pub epoch: u64,
    /// Engine elapsed seconds when the superstep began.
    pub start_s: f64,
    /// Computation seconds this rank spent in the superstep.
    pub compute_s: f64,
    /// Communication (and, after the barrier, idle) seconds.
    pub comm_s: f64,
    /// Engine elapsed seconds when this rank's work ended
    /// (`start_s + compute_s + comm_s`; the barrier may extend the
    /// superstep beyond it for other ranks).
    pub end_s: f64,
    /// Off-rank messages this rank sent.
    pub msgs_sent: u64,
    /// Off-rank messages this rank received.
    pub msgs_recv: u64,
    /// Off-rank bytes this rank sent.
    pub bytes_sent: u64,
    /// Off-rank bytes this rank received.
    pub bytes_recv: u64,
}

/// One whole superstep or collective, aggregated over ranks (the trace
/// twin of [`SuperstepStats`](crate::SuperstepStats), with a start
/// time and sequence attribution added).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SuperstepEvent {
    /// Phase the superstep implements.
    pub phase: PhaseKind,
    /// Engine-wide superstep/collective sequence number.
    pub superstep: u64,
    /// Driver fault epoch at emission time.
    pub epoch: u64,
    /// Engine elapsed seconds when the superstep began.
    pub start_s: f64,
    /// Superstep duration (max over ranks; barrier to barrier).
    pub elapsed_s: f64,
    /// Maximum computation seconds over ranks.
    pub max_compute_s: f64,
    /// Maximum communication seconds over ranks.
    pub max_comm_s: f64,
    /// Total off-rank messages across ranks.
    pub total_msgs: u64,
    /// Total off-rank bytes across ranks.
    pub total_bytes: u64,
    /// True when the superstep was a collective (allgather, allreduce,
    /// barrier) rather than a point-to-point exchange superstep.
    pub collective: bool,
}

/// One completed driver iteration (scatter → solve → gather → push).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationEvent {
    /// Iteration number (1-based).
    pub iter: u64,
    /// Phase time of the iteration (excludes redistribution).
    pub time_s: f64,
    /// Computation component (max over ranks, summed per superstep).
    pub compute_s: f64,
    /// Communication + idle component.
    pub comm_s: f64,
    /// Largest per-rank particle count at the end of the iteration.
    pub max_particles: u64,
    /// Smallest per-rank particle count.
    pub min_particles: u64,
}

/// Why a redistribution ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RedistributionTrigger {
    /// The initial distribution during setup.
    Setup,
    /// The installed [`RedistributionPolicy`] fired.
    ///
    /// [`RedistributionPolicy`]: https://docs.rs/pic-partition
    Policy,
    /// The caller forced it (`redistribute_now`).
    Forced,
}

impl RedistributionTrigger {
    /// Stable label for serialized output.
    pub fn label(self) -> &'static str {
        match self {
            RedistributionTrigger::Setup => "setup",
            RedistributionTrigger::Policy => "policy",
            RedistributionTrigger::Forced => "forced",
        }
    }
}

/// One redistribution decision and its cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RedistributionEvent {
    /// Driver iteration the redistribution ran after (0 for setup).
    pub iter: u64,
    /// What triggered it.
    pub trigger: RedistributionTrigger,
    /// Its cost in engine seconds (modeled or wall).
    pub cost_s: f64,
}

/// A failure surfaced as a typed [`SpmdError`](crate::SpmdError).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// Failing rank, when attributable.
    pub rank: Option<usize>,
    /// Phase the failure occurred in, when known.
    pub phase: Option<PhaseKind>,
    /// Engine superstep index, when known.
    pub superstep: Option<u64>,
    /// Driver fault epoch, when known.
    pub epoch: Option<u64>,
    /// Rendered failure cause.
    pub cause: String,
}

/// What a checkpoint event describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointAction {
    /// A snapshot was encoded and kept.
    Saved,
    /// A snapshot was decoded and the simulation rebuilt from it.
    Restored,
}

impl CheckpointAction {
    /// Stable label for serialized output.
    pub fn label(self) -> &'static str {
        match self {
            CheckpointAction::Saved => "saved",
            CheckpointAction::Restored => "restored",
        }
    }
}

/// A checkpoint being saved or restored by the recovery loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CheckpointEvent {
    /// Iteration boundary the snapshot sits on.
    pub iter: u64,
    /// Encoded snapshot size in bytes.
    pub bytes: u64,
    /// Saved or restored.
    pub action: CheckpointAction,
}

/// One evaluation of the redistribution policy, in the terms of the
/// paper's Stop-At-Rise criterion (Eq. 1): redistribute when the
/// projected loss `(t1 - t0) · (i1 - i0)` reaches the redistribution
/// cost `T_redist`.  Emitted by the driver after every policy query so
/// each redistribution — and each decision *not* to redistribute — is
/// auditable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolicyDecisionEvent {
    /// Driver iteration the decision was made after (`i1`).
    pub iter: u64,
    /// Engine elapsed seconds at decision time.
    pub time_s: f64,
    /// Observed iteration phase time (`t1`).
    pub observed_s: f64,
    /// Baseline iteration time right after the last redistribution
    /// (`t0`; equals `observed_s` on the seeding evaluation).
    pub baseline_s: f64,
    /// Projected cumulative loss `(t1 - t0) · (i1 - i0)`.
    pub projected_loss_s: f64,
    /// The policy's threshold (the SAR policy's `cost_estimate()`).
    pub threshold_s: f64,
    /// Verdict: `true` when the policy asked for a redistribution.
    pub fired: bool,
}

/// Per-rank particle counts at the end of one driver iteration — the
/// raw series behind load-imbalance curves (dashboard and Perfetto
/// counter tracks).  [`IterationEvent`] only carries the min/max.
#[derive(Debug, Clone, PartialEq)]
pub struct RankLoadEvent {
    /// Iteration number (1-based).
    pub iter: u64,
    /// Engine elapsed seconds at emission time.
    pub time_s: f64,
    /// Particle count of each rank, indexed by rank.
    pub counts: Vec<u64>,
}

/// One structured observability event.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// Per-rank slice of a superstep.
    Span(SpanEvent),
    /// Aggregated superstep / collective record.
    Superstep(SuperstepEvent),
    /// Completed driver iteration.
    Iteration(IterationEvent),
    /// Redistribution decision.
    Redistribution(RedistributionEvent),
    /// Surfaced failure.
    Fault(FaultEvent),
    /// Checkpoint saved/restored.
    Checkpoint(CheckpointEvent),
    /// Redistribution-policy evaluation (SAR audit record).
    PolicyDecision(PolicyDecisionEvent),
    /// Per-rank particle counts after an iteration.
    RankLoad(RankLoadEvent),
}

impl TraceEvent {
    /// Stable event-kind label (`"span"`, `"superstep"`, ...).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::Span(_) => "span",
            TraceEvent::Superstep(_) => "superstep",
            TraceEvent::Iteration(_) => "iteration",
            TraceEvent::Redistribution(_) => "redistribution",
            TraceEvent::Fault(_) => "fault",
            TraceEvent::Checkpoint(_) => "checkpoint",
            TraceEvent::PolicyDecision(_) => "policy_decision",
            TraceEvent::RankLoad(_) => "rank_load",
        }
    }

    /// The span payload, when this is a span event.
    pub fn span(&self) -> Option<&SpanEvent> {
        match self {
            TraceEvent::Span(s) => Some(s),
            _ => None,
        }
    }

    /// The superstep payload, when this is a superstep event.
    pub fn superstep(&self) -> Option<&SuperstepEvent> {
        match self {
            TraceEvent::Superstep(s) => Some(s),
            _ => None,
        }
    }

    /// The policy-decision payload, when this is a policy decision.
    pub fn policy_decision(&self) -> Option<&PolicyDecisionEvent> {
        match self {
            TraceEvent::PolicyDecision(d) => Some(d),
            _ => None,
        }
    }

    /// The rank-load payload, when this is a rank-load event.
    pub fn rank_load(&self) -> Option<&RankLoadEvent> {
        match self {
            TraceEvent::RankLoad(l) => Some(l),
            _ => None,
        }
    }

    /// Serialize to one JSON object (no trailing newline).  Hand-written
    /// because the vendored `serde` is a marker-trait stand-in.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(160);
        s.push('{');
        let _ = write!(s, "\"event\":\"{}\"", self.kind());
        match self {
            TraceEvent::Span(e) => {
                let _ = write!(
                    s,
                    ",\"rank\":{},\"phase\":\"{}\",\"superstep\":{},\"epoch\":{},\
                     \"start_s\":{},\"compute_s\":{},\"comm_s\":{},\"end_s\":{},\
                     \"msgs_sent\":{},\"msgs_recv\":{},\"bytes_sent\":{},\"bytes_recv\":{}",
                    e.rank,
                    e.phase.label(),
                    e.superstep,
                    e.epoch,
                    json_f64(e.start_s),
                    json_f64(e.compute_s),
                    json_f64(e.comm_s),
                    json_f64(e.end_s),
                    e.msgs_sent,
                    e.msgs_recv,
                    e.bytes_sent,
                    e.bytes_recv
                );
            }
            TraceEvent::Superstep(e) => {
                let _ = write!(
                    s,
                    ",\"phase\":\"{}\",\"superstep\":{},\"epoch\":{},\"start_s\":{},\
                     \"elapsed_s\":{},\"max_compute_s\":{},\"max_comm_s\":{},\
                     \"total_msgs\":{},\"total_bytes\":{},\"collective\":{}",
                    e.phase.label(),
                    e.superstep,
                    e.epoch,
                    json_f64(e.start_s),
                    json_f64(e.elapsed_s),
                    json_f64(e.max_compute_s),
                    json_f64(e.max_comm_s),
                    e.total_msgs,
                    e.total_bytes,
                    e.collective
                );
            }
            TraceEvent::Iteration(e) => {
                let _ = write!(
                    s,
                    ",\"iter\":{},\"time_s\":{},\"compute_s\":{},\"comm_s\":{},\
                     \"max_particles\":{},\"min_particles\":{}",
                    e.iter,
                    json_f64(e.time_s),
                    json_f64(e.compute_s),
                    json_f64(e.comm_s),
                    e.max_particles,
                    e.min_particles
                );
            }
            TraceEvent::Redistribution(e) => {
                let _ = write!(
                    s,
                    ",\"iter\":{},\"trigger\":\"{}\",\"cost_s\":{}",
                    e.iter,
                    e.trigger.label(),
                    json_f64(e.cost_s)
                );
            }
            TraceEvent::Fault(e) => {
                let _ = write!(
                    s,
                    ",\"rank\":{},\"phase\":{},\"superstep\":{},\"epoch\":{},\"cause\":\"{}\"",
                    json_opt_usize(e.rank),
                    e.phase
                        .map(|p| format!("\"{}\"", p.label()))
                        .unwrap_or_else(|| "null".into()),
                    json_opt_u64(e.superstep),
                    json_opt_u64(e.epoch),
                    json_escape(&e.cause)
                );
            }
            TraceEvent::Checkpoint(e) => {
                let _ = write!(
                    s,
                    ",\"iter\":{},\"bytes\":{},\"action\":\"{}\"",
                    e.iter,
                    e.bytes,
                    e.action.label()
                );
            }
            TraceEvent::PolicyDecision(e) => {
                let _ = write!(
                    s,
                    ",\"iter\":{},\"time_s\":{},\"observed_s\":{},\"baseline_s\":{},\
                     \"projected_loss_s\":{},\"threshold_s\":{},\"fired\":{}",
                    e.iter,
                    json_f64(e.time_s),
                    json_f64(e.observed_s),
                    json_f64(e.baseline_s),
                    json_f64(e.projected_loss_s),
                    json_f64(e.threshold_s),
                    e.fired
                );
            }
            TraceEvent::RankLoad(e) => {
                let _ = write!(
                    s,
                    ",\"iter\":{},\"time_s\":{},\"counts\":[",
                    e.iter,
                    json_f64(e.time_s)
                );
                for (i, c) in e.counts.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    let _ = write!(s, "{c}");
                }
                s.push(']');
            }
        }
        s.push('}');
        s
    }

    /// Header row matching [`TraceEvent::to_csv_row`].
    pub const CSV_HEADER: &'static str = "event,rank,phase,superstep,epoch,iter,start_s,\
         compute_s,comm_s,elapsed_s,msgs_sent,msgs_recv,bytes_sent,bytes_recv,detail";

    /// Serialize to one flat CSV row (columns that do not apply to this
    /// event kind are left empty).
    pub fn to_csv_row(&self) -> String {
        match self {
            TraceEvent::Span(e) => format!(
                "span,{},{},{},{},,{:.9},{:.9},{:.9},{:.9},{},{},{},{},",
                e.rank,
                e.phase.label(),
                e.superstep,
                e.epoch,
                e.start_s,
                e.compute_s,
                e.comm_s,
                e.end_s - e.start_s,
                e.msgs_sent,
                e.msgs_recv,
                e.bytes_sent,
                e.bytes_recv
            ),
            TraceEvent::Superstep(e) => format!(
                "superstep,,{},{},{},,{:.9},{:.9},{:.9},{:.9},{},,{},,{}",
                e.phase.label(),
                e.superstep,
                e.epoch,
                e.start_s,
                e.max_compute_s,
                e.max_comm_s,
                e.elapsed_s,
                e.total_msgs,
                e.total_bytes,
                if e.collective {
                    "collective"
                } else {
                    "exchange"
                }
            ),
            TraceEvent::Iteration(e) => format!(
                "iteration,,,,,{},,{:.9},{:.9},{:.9},,,,,particles {}..{}",
                e.iter, e.compute_s, e.comm_s, e.time_s, e.min_particles, e.max_particles
            ),
            TraceEvent::Redistribution(e) => format!(
                "redistribution,,,,,{},,,,{:.9},,,,,{}",
                e.iter,
                e.cost_s,
                e.trigger.label()
            ),
            TraceEvent::Fault(e) => format!(
                "fault,{},{},{},{},,,,,,,,,,{}",
                e.rank.map(|r| r.to_string()).unwrap_or_default(),
                e.phase.map(|p| p.label()).unwrap_or(""),
                e.superstep.map(|v| v.to_string()).unwrap_or_default(),
                e.epoch.map(|v| v.to_string()).unwrap_or_default(),
                csv_escape(&e.cause)
            ),
            TraceEvent::Checkpoint(e) => format!(
                "checkpoint,,,,,{},,,,,,,{},,{}",
                e.iter,
                e.bytes,
                e.action.label()
            ),
            TraceEvent::PolicyDecision(e) => format!(
                "policy_decision,,,,,{},{:.9},,,,,,,,observed={:.9} baseline={:.9} \
                 projected={:.9} threshold={:.9} fired={}",
                e.iter,
                e.time_s,
                e.observed_s,
                e.baseline_s,
                e.projected_loss_s,
                e.threshold_s,
                e.fired
            ),
            TraceEvent::RankLoad(e) => {
                let counts = e
                    .counts
                    .iter()
                    .map(|c| c.to_string())
                    .collect::<Vec<_>>()
                    .join(" ");
                format!(
                    "rank_load,,,,,{},{:.9},,,,,,,,counts {}",
                    e.iter, e.time_s, counts
                )
            }
        }
    }
}

/// Render an `f64` for JSON (finite guaranteed by construction, but be
/// safe: non-finite values become `null`).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

fn json_opt_usize(v: Option<usize>) -> String {
    v.map(|v| v.to_string()).unwrap_or_else(|| "null".into())
}

fn json_opt_u64(v: Option<u64>) -> String {
    v.map(|v| v.to_string()).unwrap_or_else(|| "null".into())
}

/// Escape a string for embedding inside JSON double quotes.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Make a string safe as a single CSV field (commas/newlines → spaces).
fn csv_escape(s: &str) -> String {
    s.replace([',', '\n', '\r'], " ")
}

/// A sink for [`TraceEvent`]s.
///
/// Recorders are installed on an engine via
/// [`SpmdEngine::set_recorder`](crate::SpmdEngine::set_recorder) and
/// invoked from the engine's driving thread — never from rank threads —
/// so implementations need `Send` but not `Sync`.
pub trait Recorder: Send {
    /// Consume one event.
    fn record(&mut self, event: &TraceEvent);

    /// Flush any buffered output (a no-op for in-memory sinks).
    fn flush(&mut self) {}

    /// Number of event deliveries this recorder has discarded (bounded
    /// sinks evicting, fan-outs summing over their sinks).  Exposed on
    /// the trait so drop counts survive `Box<dyn Recorder>` erasure and
    /// reports can say "totals undercount" instead of silently
    /// truncating.  Defaults to 0 for lossless sinks.
    fn dropped(&self) -> u64 {
        0
    }
}

/// Unbounded in-memory recorder; the usual exporter input.
#[derive(Debug, Default)]
pub struct MemoryRecorder {
    events: Vec<TraceEvent>,
}

impl MemoryRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Events recorded so far, in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Drain the recorded events.
    pub fn take(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events)
    }
}

impl Recorder for MemoryRecorder {
    fn record(&mut self, event: &TraceEvent) {
        self.events.push(event.clone());
    }
}

/// Bounded recorder keeping the most recent `capacity` events (older
/// ones are dropped and counted) — constant memory for long runs.
#[derive(Debug)]
pub struct RingRecorder {
    capacity: usize,
    buf: VecDeque<TraceEvent>,
    dropped: u64,
}

impl RingRecorder {
    /// A ring holding at most `capacity` events.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        Self {
            capacity,
            buf: VecDeque::with_capacity(capacity),
            dropped: 0,
        }
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf.iter()
    }

    /// The retained events as a vector, oldest first.
    pub fn to_vec(&self) -> Vec<TraceEvent> {
        self.buf.iter().cloned().collect()
    }

    /// How many events were evicted to honor the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl Recorder for RingRecorder {
    fn record(&mut self, event: &TraceEvent) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(event.clone());
    }

    fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// Streams one JSON object per line (JSON-lines / `ndjson`) to a writer.
pub struct JsonLinesRecorder<W: Write + Send> {
    w: W,
    written: u64,
}

impl JsonLinesRecorder<BufWriter<File>> {
    /// Create (truncating) `path` and stream JSON lines into it.
    ///
    /// # Errors
    /// Returns the I/O error when the file cannot be created.
    pub fn create<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        Ok(Self::new(BufWriter::new(File::create(path)?)))
    }
}

impl<W: Write + Send> JsonLinesRecorder<W> {
    /// Stream JSON lines into `w`.
    pub fn new(w: W) -> Self {
        Self { w, written: 0 }
    }

    /// Number of events written so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Flush and return the underlying writer.
    pub fn into_inner(mut self) -> W {
        let _ = self.w.flush();
        self.w
    }
}

impl<W: Write + Send> Recorder for JsonLinesRecorder<W> {
    fn record(&mut self, event: &TraceEvent) {
        // Harness policy: observability must never kill the run; a full
        // disk degrades to a truncated trace.
        if writeln!(self.w, "{}", event.to_json()).is_ok() {
            self.written += 1;
        }
    }

    fn flush(&mut self) {
        let _ = self.w.flush();
    }
}

/// Streams one flat CSV row per event (header written up front).
pub struct CsvRecorder<W: Write + Send> {
    w: W,
    written: u64,
}

impl CsvRecorder<BufWriter<File>> {
    /// Create (truncating) `path` and stream CSV rows into it.
    ///
    /// # Errors
    /// Returns the I/O error when the file cannot be created.
    pub fn create<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        Ok(Self::new(BufWriter::new(File::create(path)?)))
    }
}

impl<W: Write + Send> CsvRecorder<W> {
    /// Stream CSV rows into `w`; the header row is written immediately.
    pub fn new(mut w: W) -> Self {
        let _ = writeln!(w, "{}", TraceEvent::CSV_HEADER);
        Self { w, written: 0 }
    }

    /// Number of events written so far (excluding the header).
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Flush and return the underlying writer.
    pub fn into_inner(mut self) -> W {
        let _ = self.w.flush();
        self.w
    }
}

impl<W: Write + Send> Recorder for CsvRecorder<W> {
    fn record(&mut self, event: &TraceEvent) {
        if writeln!(self.w, "{}", event.to_csv_row()).is_ok() {
            self.written += 1;
        }
    }

    fn flush(&mut self) {
        let _ = self.w.flush();
    }
}

/// Fans every event out to several sinks (e.g. a JSON-lines file *and*
/// an in-memory buffer for post-run export).
#[derive(Default)]
pub struct MultiRecorder {
    sinks: Vec<Box<dyn Recorder>>,
}

impl MultiRecorder {
    /// An empty fan-out.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a sink (builder style).
    #[must_use]
    pub fn with(mut self, sink: Box<dyn Recorder>) -> Self {
        self.sinks.push(sink);
        self
    }
}

impl Recorder for MultiRecorder {
    fn record(&mut self, event: &TraceEvent) {
        for s in &mut self.sinks {
            s.record(event);
        }
    }

    fn flush(&mut self) {
        for s in &mut self.sinks {
            s.flush();
        }
    }

    fn dropped(&self) -> u64 {
        // Every sink sees every delivery, so per-sink drop counts are
        // independent and the fan-out total is their sum.  Before this
        // override the default would report 0 even with a saturated
        // ring inside — the accounting gap the trait method closes.
        self.sinks.iter().map(|s| s.dropped()).sum()
    }
}

/// Clonable, thread-safe handle around any recorder: install one clone
/// on the engine, keep another to read the sink back after the run.
pub struct SharedRecorder<R: Recorder>(Arc<Mutex<R>>);

impl<R: Recorder> SharedRecorder<R> {
    /// Wrap `inner` in a shared handle.
    pub fn new(inner: R) -> Self {
        Self(Arc::new(Mutex::new(inner)))
    }

    /// Run `f` against the wrapped recorder.
    ///
    /// # Panics
    /// Panics if a previous user of the lock panicked while holding it.
    pub fn with<T>(&self, f: impl FnOnce(&mut R) -> T) -> T {
        f(&mut self.0.lock().expect("recorder lock poisoned"))
    }
}

impl<R: Recorder> Clone for SharedRecorder<R> {
    fn clone(&self) -> Self {
        Self(Arc::clone(&self.0))
    }
}

impl<R: Recorder> Recorder for SharedRecorder<R> {
    fn record(&mut self, event: &TraceEvent) {
        self.with(|r| r.record(event));
    }

    fn flush(&mut self) {
        self.with(Recorder::flush);
    }

    fn dropped(&self) -> u64 {
        self.with(|r| Recorder::dropped(r))
    }
}

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

/// Export span events as Chrome `trace_event` JSON (the object format:
/// `{"traceEvents": [...], ...}`), loadable in `chrome://tracing` and
/// Perfetto.  Each rank becomes one thread track (`tid` = rank); spans
/// become complete (`"ph":"X"`) events with microsecond timestamps;
/// iteration/redistribution/fault/checkpoint/policy events become
/// instant (`"ph":"i"`) markers on a separate driver track.  Two
/// counter (`"ph":"C"`) tracks render load curves alongside the spans:
/// `exchange bytes` (per-rank bytes sent, one sample per superstep with
/// traffic) and `particles` (per-rank particle counts from
/// [`RankLoadEvent`]s).
pub fn chrome_trace(events: &[TraceEvent]) -> String {
    /// Track id for driver-level (non-rank) events.
    const DRIVER_TID: u64 = 1_000_000;
    let mut out = String::with_capacity(events.len() * 120 + 256);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let mut push = |s: String, first: &mut bool| {
        if !*first {
            out.push(',');
        }
        *first = false;
        out.push_str(&s);
    };
    // Per-rank bytes sent in the superstep currently being scanned; the
    // engines emit a superstep's rank spans immediately before its
    // aggregate SuperstepEvent, so flushing on the aggregate turns the
    // contiguous span run into one counter sample.
    let mut step_bytes: std::collections::BTreeMap<usize, u64> = std::collections::BTreeMap::new();
    for ev in events {
        match ev {
            TraceEvent::Span(e) => {
                *step_bytes.entry(e.rank).or_insert(0) += e.bytes_sent;
                // Idle time (barrier wait) is inside comm_s; the span is
                // rendered busy for its full extent, which matches how
                // the cost model charges it.
                let ts = e.start_s * 1e6;
                let dur = (e.end_s - e.start_s).max(0.0) * 1e6;
                push(
                    format!(
                        "{{\"name\":\"{}\",\"cat\":\"phase\",\"ph\":\"X\",\"pid\":0,\
                         \"tid\":{},\"ts\":{:.3},\"dur\":{:.3},\"args\":{{\
                         \"superstep\":{},\"epoch\":{},\"compute_s\":{},\"comm_s\":{},\
                         \"msgs_sent\":{},\"msgs_recv\":{},\"bytes_sent\":{},\"bytes_recv\":{}}}}}",
                        e.phase.label(),
                        e.rank,
                        ts,
                        dur,
                        e.superstep,
                        e.epoch,
                        json_f64(e.compute_s),
                        json_f64(e.comm_s),
                        e.msgs_sent,
                        e.msgs_recv,
                        e.bytes_sent,
                        e.bytes_recv
                    ),
                    &mut first,
                );
            }
            TraceEvent::Iteration(e) => {
                push(
                    format!(
                        "{{\"name\":\"iteration {}\",\"cat\":\"driver\",\"ph\":\"i\",\"s\":\"g\",\
                         \"pid\":0,\"tid\":{},\"ts\":{:.3},\"args\":{{\"time_s\":{}}}}}",
                        e.iter,
                        DRIVER_TID,
                        e.time_s * 1e6,
                        json_f64(e.time_s)
                    ),
                    &mut first,
                );
            }
            TraceEvent::Redistribution(e) => {
                push(
                    format!(
                        "{{\"name\":\"redistribution ({})\",\"cat\":\"driver\",\"ph\":\"i\",\
                         \"s\":\"g\",\"pid\":0,\"tid\":{},\"ts\":{:.3},\
                         \"args\":{{\"iter\":{},\"cost_s\":{}}}}}",
                        e.trigger.label(),
                        DRIVER_TID,
                        e.cost_s * 1e6,
                        e.iter,
                        json_f64(e.cost_s)
                    ),
                    &mut first,
                );
            }
            TraceEvent::Fault(e) => {
                push(
                    format!(
                        "{{\"name\":\"fault: {}\",\"cat\":\"driver\",\"ph\":\"i\",\"s\":\"g\",\
                         \"pid\":0,\"tid\":{},\"ts\":0,\"args\":{{\"rank\":{}}}}}",
                        json_escape(&e.cause),
                        DRIVER_TID,
                        json_opt_usize(e.rank)
                    ),
                    &mut first,
                );
            }
            TraceEvent::Checkpoint(e) => {
                push(
                    format!(
                        "{{\"name\":\"checkpoint {} (iter {})\",\"cat\":\"driver\",\"ph\":\"i\",\
                         \"s\":\"g\",\"pid\":0,\"tid\":{},\"ts\":0,\"args\":{{\"bytes\":{}}}}}",
                        e.action.label(),
                        e.iter,
                        DRIVER_TID,
                        e.bytes
                    ),
                    &mut first,
                );
            }
            TraceEvent::PolicyDecision(e) => {
                push(
                    format!(
                        "{{\"name\":\"policy {}\",\"cat\":\"driver\",\"ph\":\"i\",\"s\":\"g\",\
                         \"pid\":0,\"tid\":{},\"ts\":{:.3},\"args\":{{\"iter\":{},\
                         \"projected_loss_s\":{},\"threshold_s\":{},\"fired\":{}}}}}",
                        if e.fired { "fired" } else { "held" },
                        DRIVER_TID,
                        e.time_s * 1e6,
                        e.iter,
                        json_f64(e.projected_loss_s),
                        json_f64(e.threshold_s),
                        e.fired
                    ),
                    &mut first,
                );
            }
            TraceEvent::RankLoad(e) => {
                let mut args = String::new();
                for (rank, c) in e.counts.iter().enumerate() {
                    if rank > 0 {
                        args.push(',');
                    }
                    let _ = write!(args, "\"rank {rank}\":{c}");
                }
                push(
                    format!(
                        "{{\"name\":\"particles\",\"cat\":\"load\",\"ph\":\"C\",\"pid\":0,\
                         \"ts\":{:.3},\"args\":{{{args}}}}}",
                        e.time_s * 1e6
                    ),
                    &mut first,
                );
            }
            // Rank spans already cover the aggregate; use it as the
            // flush point for the per-superstep exchange-bytes counter.
            TraceEvent::Superstep(e) => {
                if step_bytes.values().any(|&b| b > 0) {
                    let mut args = String::new();
                    for (i, (rank, bytes)) in step_bytes.iter().enumerate() {
                        if i > 0 {
                            args.push(',');
                        }
                        let _ = write!(args, "\"rank {rank}\":{bytes}");
                    }
                    push(
                        format!(
                            "{{\"name\":\"exchange bytes\",\"cat\":\"load\",\"ph\":\"C\",\
                             \"pid\":0,\"ts\":{:.3},\"args\":{{{args}}}}}",
                            e.start_s * 1e6
                        ),
                        &mut first,
                    );
                }
                step_bytes.clear();
            }
        }
    }
    out.push_str("]}");
    out
}

/// Linear-interpolated percentile of an **unsorted** sample
/// (`q` in `[0, 1]`; `q = 0.5` is the median).  Returns 0 for an empty
/// sample.
pub fn percentile(values: &[f64], q: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN samples"));
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Aggregated distribution of one phase's superstep durations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseMetrics {
    /// The phase.
    pub phase: PhaseKind,
    /// Number of supersteps/collectives of this phase.
    pub count: u64,
    /// Summed duration over them.
    pub total_s: f64,
    /// Median superstep duration.
    pub p50_s: f64,
    /// 95th-percentile superstep duration.
    pub p95_s: f64,
    /// Longest superstep duration.
    pub max_s: f64,
    /// Summed off-rank messages.
    pub total_msgs: u64,
    /// Summed off-rank bytes.
    pub total_bytes: u64,
}

/// Per-phase p50/p95/max aggregation over a recorded event stream.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsReport {
    phases: Vec<PhaseMetrics>,
    dropped: u64,
}

impl MetricsReport {
    /// Aggregate the [`SuperstepEvent`]s in `events` by phase (ordered
    /// by descending total time).  If the events came from a bounded
    /// recorder, prefer [`MetricsReport::from_events_with_dropped`] so
    /// the report can disclose the truncation.
    pub fn from_events(events: &[TraceEvent]) -> Self {
        Self::from_events_with_dropped(events, 0)
    }

    /// Like [`MetricsReport::from_events`], but carrying the source
    /// recorder's [`Recorder::dropped`] count so the rendered report
    /// warns that totals undercount instead of silently truncating.
    pub fn from_events_with_dropped(events: &[TraceEvent], dropped: u64) -> Self {
        let mut phases = Vec::new();
        for phase in PhaseKind::ALL {
            let durations: Vec<f64> = events
                .iter()
                .filter_map(TraceEvent::superstep)
                .filter(|e| e.phase == phase)
                .map(|e| e.elapsed_s)
                .collect();
            if durations.is_empty() {
                continue;
            }
            let (msgs, bytes) = events
                .iter()
                .filter_map(TraceEvent::superstep)
                .filter(|e| e.phase == phase)
                .fold((0u64, 0u64), |(m, b), e| {
                    (m + e.total_msgs, b + e.total_bytes)
                });
            phases.push(PhaseMetrics {
                phase,
                count: durations.len() as u64,
                total_s: durations.iter().sum(),
                p50_s: percentile(&durations, 0.50),
                p95_s: percentile(&durations, 0.95),
                max_s: durations.iter().copied().fold(0.0, f64::max),
                total_msgs: msgs,
                total_bytes: bytes,
            });
        }
        phases.sort_by(|a, b| b.total_s.partial_cmp(&a.total_s).expect("finite totals"));
        Self { phases, dropped }
    }

    /// The per-phase rows, ordered by descending total time.
    pub fn phases(&self) -> &[PhaseMetrics] {
        &self.phases
    }

    /// Events the source recorder dropped before this aggregation.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.dropped > 0 {
            let _ = writeln!(
                out,
                "(warning: {} events dropped by a bounded recorder; totals undercount)",
                self.dropped
            );
        }
        let _ = writeln!(
            out,
            "{:<12} {:>6} {:>12} {:>12} {:>12} {:>12} {:>10} {:>12}",
            "phase", "steps", "total_s", "p50_s", "p95_s", "max_s", "msgs", "bytes"
        );
        for m in &self.phases {
            let _ = writeln!(
                out,
                "{:<12} {:>6} {:>12.6} {:>12.9} {:>12.9} {:>12.9} {:>10} {:>12}",
                m.phase.label(),
                m.count,
                m.total_s,
                m.p50_s,
                m.p95_s,
                m.max_s,
                m.total_msgs,
                m.total_bytes
            );
        }
        out
    }

    /// CSV header matching [`MetricsReport::csv_rows`].
    pub const CSV_HEADER: &'static str = "phase,steps,total_s,p50_s,p95_s,max_s,msgs,bytes";

    /// The rows as CSV (one per phase).
    pub fn csv_rows(&self) -> Vec<String> {
        self.phases
            .iter()
            .map(|m| {
                format!(
                    "{},{},{:.9},{:.9},{:.9},{:.9},{},{}",
                    m.phase.label(),
                    m.count,
                    m.total_s,
                    m.p50_s,
                    m.p95_s,
                    m.max_s,
                    m.total_msgs,
                    m.total_bytes
                )
            })
            .collect()
    }
}

/// Flamegraph-style per-rank timeline: for every rank, one bar per phase
/// sized by that rank's summed busy time (compute + comm from its span
/// events), plus a totals row.  `width` is the bar width in characters
/// of the largest row.  For events read from a bounded recorder, use
/// [`timeline_report_with_dropped`] so the truncation is disclosed.
pub fn timeline_report(events: &[TraceEvent], width: usize) -> String {
    timeline_report_with_dropped(events, width, 0)
}

/// [`timeline_report`] plus the source recorder's [`Recorder::dropped`]
/// count; a nonzero count renders a leading warning line because the
/// bars then undercount the run.
pub fn timeline_report_with_dropped(events: &[TraceEvent], width: usize, dropped: u64) -> String {
    let width = width.max(10);
    let spans: Vec<&SpanEvent> = events.iter().filter_map(TraceEvent::span).collect();
    let mut out = String::new();
    if dropped > 0 {
        let _ = writeln!(
            out,
            "(warning: {dropped} events dropped by a bounded recorder; bars undercount)"
        );
    }
    if spans.is_empty() {
        out.push_str("(no span events recorded)\n");
        return out;
    }
    let ranks = spans.iter().map(|s| s.rank).max().unwrap_or(0) + 1;
    let phases = PhaseKind::ALL;
    // busy[rank][phase] = summed compute + comm
    let mut busy = vec![[0.0f64; PhaseKind::ALL.len()]; ranks];
    for s in &spans {
        let pi = phases
            .iter()
            .position(|p| *p == s.phase)
            .expect("known phase");
        busy[s.rank][pi] += s.compute_s + s.comm_s;
    }
    let max_total: f64 = busy
        .iter()
        .map(|row| row.iter().sum::<f64>())
        .fold(0.0, f64::max);
    let _ = writeln!(
        out,
        "per-rank busy time by phase (s = scatter, f = field solve, g = gather, p = push, r = redistribute/setup, o = other)"
    );
    for (rank, row) in busy.iter().enumerate() {
        let total: f64 = row.iter().sum();
        let _ = write!(out, "rank {rank:>3} {total:>12.6}s |");
        let glyphs = ['s', 'f', 'g', 'p', 'r', 'r', 'o'];
        for (pi, &t) in row.iter().enumerate() {
            let cells = if max_total > 0.0 {
                (t / max_total * width as f64).round() as usize
            } else {
                0
            };
            for _ in 0..cells {
                out.push(glyphs[pi]);
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(rank: usize, phase: PhaseKind, elapsed: f64) -> TraceEvent {
        TraceEvent::Span(SpanEvent {
            rank,
            phase,
            superstep: 0,
            epoch: 0,
            start_s: 0.0,
            compute_s: elapsed / 2.0,
            comm_s: elapsed / 2.0,
            end_s: elapsed,
            msgs_sent: 1,
            msgs_recv: 1,
            bytes_sent: 8,
            bytes_recv: 8,
        })
    }

    fn step(phase: PhaseKind, elapsed: f64) -> TraceEvent {
        TraceEvent::Superstep(SuperstepEvent {
            phase,
            superstep: 0,
            epoch: 0,
            start_s: 0.0,
            elapsed_s: elapsed,
            max_compute_s: elapsed,
            max_comm_s: 0.0,
            total_msgs: 2,
            total_bytes: 16,
            collective: false,
        })
    }

    #[test]
    fn ring_recorder_keeps_most_recent() {
        let mut ring = RingRecorder::new(3);
        for i in 0..5 {
            ring.record(&step(PhaseKind::Push, i as f64));
        }
        assert_eq!(ring.dropped(), 2);
        let kept: Vec<f64> = ring
            .events()
            .filter_map(TraceEvent::superstep)
            .map(|e| e.elapsed_s)
            .collect();
        assert_eq!(kept, vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn json_lines_one_object_per_line() {
        let mut rec = JsonLinesRecorder::new(Vec::new());
        rec.record(&span(0, PhaseKind::Scatter, 1.0));
        rec.record(&step(PhaseKind::Scatter, 1.0));
        rec.record(&TraceEvent::Fault(FaultEvent {
            rank: Some(2),
            phase: None,
            superstep: None,
            epoch: Some(7),
            cause: "panic: \"quoted\"\nwith newline".into(),
        }));
        assert_eq!(rec.written(), 3);
        let text = String::from_utf8(rec.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
        assert!(lines[0].contains("\"event\":\"span\""));
        assert!(lines[2].contains("\\\"quoted\\\""));
        assert!(lines[2].contains("\\n"));
    }

    #[test]
    fn csv_recorder_writes_header_and_rows() {
        let mut rec = CsvRecorder::new(Vec::new());
        rec.record(&span(1, PhaseKind::Gather, 2.0));
        let text = String::from_utf8(rec.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], TraceEvent::CSV_HEADER);
        assert!(lines[1].starts_with("span,1,gather,"));
        // every row has the same number of columns as the header
        assert_eq!(lines[1].matches(',').count(), lines[0].matches(',').count());
    }

    #[test]
    fn csv_column_counts_match_for_all_event_kinds() {
        let events = [
            span(0, PhaseKind::Push, 1.0),
            step(PhaseKind::Push, 1.0),
            TraceEvent::Iteration(IterationEvent {
                iter: 1,
                time_s: 1.0,
                compute_s: 0.5,
                comm_s: 0.5,
                max_particles: 10,
                min_particles: 10,
            }),
            TraceEvent::Redistribution(RedistributionEvent {
                iter: 1,
                trigger: RedistributionTrigger::Policy,
                cost_s: 0.1,
            }),
            TraceEvent::Fault(FaultEvent {
                rank: None,
                phase: Some(PhaseKind::Scatter),
                superstep: Some(3),
                epoch: None,
                cause: "a, b".into(),
            }),
            TraceEvent::Checkpoint(CheckpointEvent {
                iter: 5,
                bytes: 1234,
                action: CheckpointAction::Saved,
            }),
            TraceEvent::PolicyDecision(PolicyDecisionEvent {
                iter: 7,
                time_s: 1.25,
                observed_s: 0.2,
                baseline_s: 0.1,
                projected_loss_s: 0.5,
                threshold_s: 0.4,
                fired: true,
            }),
            TraceEvent::RankLoad(RankLoadEvent {
                iter: 7,
                time_s: 1.25,
                counts: vec![10, 20, 30],
            }),
        ];
        let cols = TraceEvent::CSV_HEADER.matches(',').count();
        for ev in &events {
            assert_eq!(ev.to_csv_row().matches(',').count(), cols, "{}", ev.kind());
        }
    }

    #[test]
    fn policy_and_rank_load_events_serialize() {
        let d = TraceEvent::PolicyDecision(PolicyDecisionEvent {
            iter: 11,
            time_s: 2.0,
            observed_s: 0.3,
            baseline_s: 0.1,
            projected_loss_s: 0.8,
            threshold_s: 0.75,
            fired: true,
        });
        let json = d.to_json();
        assert!(json.contains("\"event\":\"policy_decision\""));
        assert!(json.contains("\"fired\":true"));
        assert!(json.contains("\"threshold_s\":0.75"));
        assert!(d.policy_decision().is_some());
        let l = TraceEvent::RankLoad(RankLoadEvent {
            iter: 11,
            time_s: 2.0,
            counts: vec![5, 6],
        });
        let json = l.to_json();
        assert!(json.contains("\"event\":\"rank_load\""));
        assert!(json.contains("\"counts\":[5,6]"));
        assert_eq!(l.rank_load().unwrap().counts, vec![5, 6]);
        assert!(l.to_csv_row().ends_with("counts 5 6"));
    }

    #[test]
    fn multi_recorder_fans_out() {
        let a = SharedRecorder::new(MemoryRecorder::new());
        let b = SharedRecorder::new(RingRecorder::new(8));
        let mut multi = MultiRecorder::new()
            .with(Box::new(a.clone()))
            .with(Box::new(b.clone()));
        multi.record(&step(PhaseKind::Other, 1.0));
        assert_eq!(a.with(|r| r.events().len()), 1);
        assert_eq!(b.with(|r| r.to_vec().len()), 1);
    }

    #[test]
    fn multi_recorder_surfaces_dropped_counts() {
        let ring = SharedRecorder::new(RingRecorder::new(2));
        let mem = SharedRecorder::new(MemoryRecorder::new());
        let mut multi = MultiRecorder::new()
            .with(Box::new(ring.clone()))
            .with(Box::new(mem.clone()));
        for i in 0..5 {
            multi.record(&step(PhaseKind::Push, i as f64));
        }
        // The ring evicted 3, the memory sink none; the fan-out reports
        // the sum through the trait (previously invisible behind the
        // Box<dyn Recorder> erasure).
        assert_eq!(Recorder::dropped(&multi), 3);
        assert_eq!(ring.with(|r| r.dropped()), 3);
        // And reports disclose the truncation instead of hiding it.
        let events = mem.with(|r| r.events().to_vec());
        let report = MetricsReport::from_events_with_dropped(&events, Recorder::dropped(&multi));
        assert_eq!(report.dropped(), 3);
        assert!(report.render().contains("3 events dropped"));
        let tl = timeline_report_with_dropped(&events, 40, 3);
        assert!(tl.contains("3 events dropped"));
        // The undropped path stays warning-free.
        assert!(!MetricsReport::from_events(&events)
            .render()
            .contains("dropped"));
    }

    #[test]
    fn percentile_interpolates() {
        let v = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 1.0), 4.0);
        assert!((percentile(&v, 0.5) - 2.5).abs() < 1e-12);
        assert!((percentile(&v, 0.95) - 3.85).abs() < 1e-12);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn metrics_aggregate_by_phase() {
        let mut events = Vec::new();
        for i in 0..10 {
            events.push(step(PhaseKind::Scatter, 1.0 + i as f64));
        }
        events.push(step(PhaseKind::Push, 0.5));
        let report = MetricsReport::from_events(&events);
        assert_eq!(report.phases().len(), 2);
        let scatter = report.phases()[0];
        assert_eq!(scatter.phase, PhaseKind::Scatter);
        assert_eq!(scatter.count, 10);
        assert_eq!(scatter.max_s, 10.0);
        assert!((scatter.p50_s - 5.5).abs() < 1e-12);
        assert!((scatter.total_s - 55.0).abs() < 1e-12);
        assert_eq!(scatter.total_msgs, 20);
        let rendered = report.render();
        assert!(rendered.contains("scatter"));
        assert!(rendered.contains("push"));
        assert_eq!(report.csv_rows().len(), 2);
    }

    #[test]
    fn chrome_trace_is_wellformed_and_tracks_ranks() {
        let events = [
            span(0, PhaseKind::Scatter, 1.0),
            span(1, PhaseKind::Scatter, 1.5),
            step(PhaseKind::Scatter, 1.5),
            TraceEvent::Redistribution(RedistributionEvent {
                iter: 3,
                trigger: RedistributionTrigger::Setup,
                cost_s: 0.25,
            }),
        ];
        let json = chrome_trace(&events);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.contains("\"tid\":0"));
        assert!(json.contains("\"tid\":1"));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        // superstep events are not duplicated into the trace
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 2);
        // ...but flush the per-superstep exchange-bytes counter sample
        assert_eq!(json.matches("\"ph\":\"C\"").count(), 1);
        assert!(json.contains("\"name\":\"exchange bytes\""));
        assert!(json.contains("\"rank 0\":8,\"rank 1\":8"));
        // balanced braces/brackets (cheap well-formedness check)
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn chrome_trace_emits_particle_counters_and_policy_instants() {
        let events = [
            TraceEvent::RankLoad(RankLoadEvent {
                iter: 1,
                time_s: 0.5,
                counts: vec![100, 50],
            }),
            TraceEvent::PolicyDecision(PolicyDecisionEvent {
                iter: 1,
                time_s: 0.5,
                observed_s: 0.2,
                baseline_s: 0.1,
                projected_loss_s: 0.1,
                threshold_s: 0.4,
                fired: false,
            }),
        ];
        let json = chrome_trace(&events);
        assert!(json.contains("\"name\":\"particles\""));
        assert!(json.contains("\"rank 0\":100,\"rank 1\":50"));
        assert!(json.contains("\"name\":\"policy held\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn timeline_report_scales_bars() {
        let events = [
            span(0, PhaseKind::Scatter, 4.0),
            span(1, PhaseKind::Scatter, 2.0),
            span(0, PhaseKind::Push, 1.0),
        ];
        let text = timeline_report(&events, 40);
        assert!(text.contains("rank   0"));
        assert!(text.contains("rank   1"));
        let r0_bar = text.lines().nth(1).unwrap().matches('s').count();
        let r1_bar = text.lines().nth(2).unwrap().matches('s').count();
        assert!(r0_bar > r1_bar, "{text}");
        assert!(timeline_report(&[], 40).contains("no span events"));
    }
}
