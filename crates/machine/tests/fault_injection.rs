//! Chaos tests for the fault-injection harness.
//!
//! Two properties anchor the failure model:
//!
//! 1. **Benign faults are invisible.**  Delay, reorder and drop-retry
//!    faults exercise timing, queueing and retransmission, but the
//!    protocol (per-sender FIFO + sender-sorted delivery + count
//!    handshakes) must absorb them: results are bit-identical to a
//!    fault-free run for *any* seed.
//! 2. **Kills are loud and attributed.**  A killed rank must surface as
//!    a typed error naming the rank and epoch, promptly (poison
//!    propagation, not timeout expiry), on every seed.
//!
//! Seeds are fixed for reproducibility; set `CHAOS_SEED=<n>` to probe an
//! extra seed locally or in the CI chaos job.

use std::sync::Arc;
use std::time::{Duration, Instant};

use pic_machine::threaded::{run_spmd, run_spmd_with};
use pic_machine::{FaultNoise, FaultPlan};

const FIXED_SEEDS: [u64; 3] = [0xC0FFEE, 0xBADF00D, 0x5EED];

/// The fixed seeds plus an optional `CHAOS_SEED` from the environment.
fn chaos_seeds() -> Vec<u64> {
    let mut seeds = FIXED_SEEDS.to_vec();
    if let Ok(s) = std::env::var("CHAOS_SEED") {
        seeds.push(s.parse().expect("CHAOS_SEED must be an integer"));
    }
    seeds
}

/// A protocol-heavy SPMD program: point-to-point ring traffic, a full
/// exchange, an allgather and barriers, folded into one digest per rank.
fn protocol_mix(p: usize) -> Result<Vec<u64>, pic_machine::SpmdError> {
    run_spmd::<u64, u64, _>(p, move |mut mb| protocol_mix_rank(p, &mut mb))
}

fn protocol_mix_rank(p: usize, mb: &mut pic_machine::threaded::Mailbox<u64>) -> u64 {
    let r = mb.rank();
    let mut digest = r as u64;
    // ring rotation
    mb.send((r + 1) % p, (r as u64) * 17 + 1);
    for (from, v) in mb.recv_exact(1) {
        digest = digest.wrapping_mul(31).wrapping_add(from as u64 ^ v);
    }
    mb.barrier();
    // irregular exchange: rank r sends r%3 messages to each smaller rank
    let outgoing: Vec<(usize, u64)> = (0..r)
        .flat_map(|to| (0..r % 3).map(move |k| (to, (r * 100 + to * 10 + k) as u64)))
        .collect();
    for (from, v) in mb.exchange(outgoing) {
        digest = digest
            .wrapping_mul(37)
            .wrapping_add(((from as u64) << 8) | (v % 251));
    }
    // allgather folds in rank order on every rank
    for share in mb.allgather_vec(vec![digest, digest ^ 0xA5A5]) {
        for v in share {
            digest = digest.wrapping_mul(41).wrapping_add(v);
        }
    }
    mb.barrier();
    digest
}

fn protocol_mix_with_plan(
    p: usize,
    plan: Arc<FaultPlan>,
) -> Result<Vec<u64>, pic_machine::SpmdError> {
    run_spmd_with::<u64, u64, _>(
        p,
        Duration::from_secs(30),
        Some((plan, 0)),
        move |mut mb| protocol_mix_rank(p, &mut mb),
    )
}

#[test]
fn benign_chaos_is_bit_identical_across_seeds() {
    for p in [2usize, 5, 8] {
        let clean = protocol_mix(p).expect("clean run");
        for seed in chaos_seeds() {
            let plan = Arc::new(FaultPlan::benign(seed));
            let noisy = protocol_mix_with_plan(p, plan)
                .unwrap_or_else(|e| panic!("benign plan seed {seed} failed: {e}"));
            assert_eq!(noisy, clean, "seed {seed} at {p} ranks changed results");
        }
    }
}

#[test]
fn heavy_drop_noise_exhausts_the_retry_path_without_changing_results() {
    let noise = FaultNoise {
        drop_prob: 0.9,
        ..FaultNoise::aggressive()
    };
    let p = 4;
    let clean = protocol_mix(p).expect("clean run");
    for seed in chaos_seeds() {
        let plan = Arc::new(FaultPlan::new(seed).with_noise(noise));
        let noisy = protocol_mix_with_plan(p, plan).expect("drops must be retransmitted");
        assert_eq!(noisy, clean, "seed {seed} changed results");
    }
}

#[test]
fn kill_plans_name_the_rank_promptly_on_every_seed() {
    let p = 6;
    for seed in chaos_seeds() {
        let victim = (seed % p as u64) as usize;
        let plan = Arc::new(
            FaultPlan::new(seed)
                .kill(victim, 0)
                .with_noise(FaultNoise::mild()),
        );
        let started = Instant::now();
        let err = protocol_mix_with_plan(p, plan).expect_err("the kill must fail the run");
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "kill detection leaned on the receive timeout"
        );
        assert!(err.is_injected_kill(), "seed {seed}: {err}");
        assert_eq!(err.rank, Some(victim), "seed {seed}: {err}");
        assert_eq!(err.epoch, Some(0), "seed {seed}: {err}");
    }
}

#[test]
fn killed_plans_rearm_for_repeated_injection() {
    let p = 3;
    let plan = Arc::new(FaultPlan::new(7).kill(1, 0));
    let err = protocol_mix_with_plan(p, Arc::clone(&plan)).expect_err("armed kill");
    assert_eq!(err.rank, Some(1));
    // consumed: the same plan no longer fires
    protocol_mix_with_plan(p, Arc::clone(&plan)).expect("consumed kill must not re-fire");
    plan.rearm();
    let err = protocol_mix_with_plan(p, plan).expect_err("re-armed kill");
    assert_eq!(err.rank, Some(1));
}

#[test]
fn forced_delays_and_reorders_compose_with_kills() {
    // a plan can mix benign specs with a kill: the kill still wins, the
    // benign specs still never corrupt the surviving protocol rounds
    let p = 4;
    let plan = Arc::new(
        FaultPlan::new(11)
            .delay(0, 0, Duration::from_millis(2))
            .kill(3, 0),
    );
    let err = protocol_mix_with_plan(p, plan).expect_err("kill fires");
    assert!(err.is_injected_kill());
    assert_eq!(err.rank, Some(3));
}
