//! Property tests for the virtual machine: conservation of messages,
//! determinism across execution modes, and cost-model sanity under
//! arbitrary communication patterns.

use pic_machine::{ExecMode, Machine, MachineConfig, Outbox, PhaseKind, Topology};
use proptest::prelude::*;

fn cfg(p: usize) -> MachineConfig {
    MachineConfig {
        ranks: p,
        tau: 2.0,
        mu: 0.25,
        delta: 0.125,
        topology: Topology::FullyConnected,
    }
}

/// Run one superstep where rank r sends `pattern[r]` messages to
/// pseudo-random destinations; returns (per-rank received sums, elapsed).
fn run_pattern(p: usize, pattern: &[u8], mode: ExecMode) -> (Vec<u64>, f64) {
    let pattern = pattern.to_vec();
    let mut m = Machine::new(cfg(p), mode, vec![0u64; p]);
    m.superstep(
        PhaseKind::Other,
        move |r, _s, ctx, ob: &mut Outbox<Vec<u64>>| {
            ctx.charge_ops(r as f64);
            for k in 0..pattern[r] {
                let dest = (r + 1 + k as usize * 7) % pattern.len();
                ob.send(dest, vec![r as u64, k as u64]);
            }
        },
        |_r, s, _ctx, inbox| {
            for (from, msg) in inbox {
                *s = s
                    .wrapping_mul(31)
                    .wrapping_add(from as u64)
                    .wrapping_add(msg[1]);
            }
        },
    );
    let states = m.ranks().to_vec();
    (states, m.elapsed_s())
}

proptest! {
    /// Sequential and rayon execution agree bit-for-bit on arbitrary
    /// communication patterns.
    #[test]
    fn exec_modes_agree(
        p in 1usize..12,
        pattern in prop::collection::vec(0u8..6, 1..12),
    ) {
        let mut pattern = pattern;
        pattern.resize(p, 1);
        let (s1, t1) = run_pattern(p, &pattern, ExecMode::Sequential);
        let (s2, t2) = run_pattern(p, &pattern, ExecMode::Rayon);
        prop_assert_eq!(s1, s2);
        prop_assert_eq!(t1.to_bits(), t2.to_bits());
    }

    /// Message and byte totals recorded by stats equal what was sent.
    #[test]
    fn stats_conserve_traffic(
        p in 2usize..10,
        sends in prop::collection::vec((0usize..10, 0usize..10, 0usize..50), 0..40),
    ) {
        let sends2 = sends.clone();
        let mut m = Machine::new(cfg(p), ExecMode::Sequential, vec![(); p]);
        m.superstep(
            PhaseKind::Scatter,
            move |r, _s, _ctx, ob: &mut Outbox<Vec<u8>>| {
                for &(from, to, len) in &sends2 {
                    if from % p == r {
                        ob.send(to % p, vec![0u8; len]);
                    }
                }
            },
            |_, _, _, _| {},
        );
        let rec = m.stats().records()[0];
        let expect_msgs: u64 = sends
            .iter()
            .filter(|&&(f, t, _)| f % p != t % p)
            .count() as u64;
        let expect_bytes: u64 = sends
            .iter()
            .filter(|&&(f, t, _)| f % p != t % p)
            .map(|&(_, _, l)| l as u64)
            .sum();
        prop_assert_eq!(rec.total_msgs, expect_msgs);
        prop_assert_eq!(rec.total_bytes, expect_bytes);
        prop_assert!(rec.max_msgs_sent <= expect_msgs);
        prop_assert!(rec.max_bytes_recv <= expect_bytes);
    }

    /// Elapsed time never decreases over supersteps, and clocks agree
    /// after every barrier.
    #[test]
    fn clocks_are_monotone_and_synced(
        p in 1usize..8,
        steps in prop::collection::vec(prop::collection::vec(0.0f64..50.0, 1..8), 1..6),
    ) {
        let mut m = Machine::new(cfg(p), ExecMode::Sequential, vec![(); p]);
        let mut last = 0.0;
        for ops in steps {
            let ops2 = ops.clone();
            m.local_step(PhaseKind::Push, move |r, _s, ctx| {
                ctx.charge_ops(ops2[r % ops2.len()]);
            });
            let now = m.elapsed_s();
            prop_assert!(now >= last);
            last = now;
            for c in m.clocks() {
                prop_assert!((c.total_s() - now).abs() < 1e-9);
            }
        }
    }

    /// Collective cost grows with the share size and never with fewer
    /// stages than log2(p).
    #[test]
    fn allgather_cost_scales_with_share(p in 2usize..64, small in 1usize..100) {
        let big = small * 10;
        let mut m1 = Machine::new(cfg(p), ExecMode::Sequential, vec![0u64; p]);
        m1.allgather(PhaseKind::Setup, small, |r, _s| r as u64, |_r, _s, _a: &[u64]| {});
        let mut m2 = Machine::new(cfg(p), ExecMode::Sequential, vec![0u64; p]);
        m2.allgather(PhaseKind::Setup, big, |r, _s| r as u64, |_r, _s, _a: &[u64]| {});
        prop_assert!(m2.elapsed_s() > m1.elapsed_s());
        let tau = 2.0;
        let min_cost = (p as f64).log2().floor() * tau;
        prop_assert!(m1.elapsed_s() >= min_cost * 0.99);
    }
}

#[test]
fn threaded_executor_matches_bsp_machine() {
    // the same all-to-all SPMD program on real threads and on the BSP
    // machine must produce identical rank states
    use pic_machine::threaded::run_spmd;
    let p = 6;
    let threaded: Vec<u64> = run_spmd::<u64, u64, _>(p, move |mut mb| {
        let r = mb.rank();
        for to in 0..p {
            if to != r {
                mb.send(to, (r * r) as u64);
            }
        }
        mb.recv_exact(p - 1).into_iter().map(|(_, v)| v).sum()
    })
    .expect("fault-free run");

    let mut m = Machine::new(cfg(p), ExecMode::Sequential, vec![0u64; p]);
    m.superstep(
        PhaseKind::Other,
        move |r, _s, _ctx, ob: &mut Outbox<Vec<u64>>| {
            for to in 0..p {
                if to != r {
                    ob.send(to, vec![(r * r) as u64]);
                }
            }
        },
        |_r, s, _ctx, inbox| {
            *s = inbox.iter().map(|(_, v)| v[0]).sum();
        },
    );
    assert_eq!(threaded, m.ranks());
}
