//! Property tests: the threaded executor's collectives agree with the
//! modeled machine's collectives for random rank counts and payloads.
//!
//! The modeled `Machine` computes collectives directly over its state
//! vector (no real communication), so it is the oracle: any disagreement
//! means the mailbox protocol reordered, dropped or duplicated data, or
//! associated a floating-point fold differently.

use pic_machine::{
    ExecMode, Machine, MachineConfig, Outbox, PhaseKind, SpmdEngine, ThreadedMachine, Topology,
};
use proptest::prelude::*;

fn cfg(p: usize) -> MachineConfig {
    MachineConfig {
        ranks: p,
        tau: 1.0,
        mu: 0.01,
        delta: 0.001,
        topology: Topology::FullyConnected,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// allgatherv concatenates every rank's (random-length) vector in
    /// rank order, identically on both executors.
    #[test]
    fn allgatherv_agrees(
        p in 1usize..9,
        lens in prop::collection::vec(0usize..7, 1..9),
        salt in 0u64..1000,
    ) {
        fn drive<E: SpmdEngine<(Vec<u64>, Vec<u64>)>>(m: &mut E) {
            m.allgatherv(
                PhaseKind::Setup,
                8,
                |_r, s| s.0.clone(),
                |_r, s, concat: &[u64]| s.1 = concat.to_vec(),
            )
            .expect("fault-free allgatherv");
        }
        let states: Vec<(Vec<u64>, Vec<u64>)> = (0..p)
            .map(|r| {
                let n = lens[r % lens.len()];
                ((0..n as u64).map(|k| salt + r as u64 * 31 + k).collect(), Vec::new())
            })
            .collect();
        let mut modeled = Machine::new(cfg(p), ExecMode::Sequential, states.clone());
        let mut threaded = ThreadedMachine::new(cfg(p), states);
        drive(&mut modeled);
        drive(&mut threaded);
        prop_assert_eq!(Machine::ranks(&modeled), SpmdEngine::ranks(&threaded));
    }

    /// allreduce of f64 sums is bit-identical (rank-order fold on both).
    #[test]
    fn allreduce_float_fold_is_bit_identical(
        p in 1usize..9,
        vals in prop::collection::vec(-1.0e6f64..1.0e6, 1..9),
    ) {
        fn drive<E: SpmdEngine<(f64, f64)>>(m: &mut E) {
            m.allreduce(
                PhaseKind::Other,
                |_r, s| s.0,
                |a, b| a + b * 1.000000119,
                |_r, s, &v| s.1 = v,
            )
            .expect("fault-free allreduce");
        }
        let states: Vec<(f64, f64)> =
            (0..p).map(|r| (vals[r % vals.len()] + r as f64 * 0.37, 0.0)).collect();
        let mut modeled = Machine::new(cfg(p), ExecMode::Sequential, states.clone());
        let mut threaded = ThreadedMachine::new(cfg(p), states);
        drive(&mut modeled);
        drive(&mut threaded);
        for (a, b) in Machine::ranks(&modeled).iter().zip(SpmdEngine::ranks(&threaded)) {
            prop_assert_eq!(a.1.to_bits(), b.1.to_bits());
        }
    }

    /// Element-wise allreduce over random-width arrays agrees bitwise.
    #[test]
    fn allreduce_elementwise_agrees(
        p in 1usize..8,
        width in 1usize..20,
        seed in 0u64..1000,
    ) {
        fn drive<E: SpmdEngine<Vec<f64>>>(m: &mut E, width: usize) {
            m.allreduce_elementwise(
                PhaseKind::Other,
                width * 8,
                |_r, s| s.clone(),
                |a, b| a + b,
                |_r, s, acc| {
                    let n = s.len();
                    s.clone_from_slice(&acc[..n]);
                },
            )
            .expect("fault-free allreduce_elementwise");
        }
        let states: Vec<Vec<f64>> = (0..p)
            .map(|r| {
                (0..width)
                    .map(|i| ((seed + r as u64 * 17 + i as u64) as f64).sin())
                    .collect()
            })
            .collect();
        let mut modeled = Machine::new(cfg(p), ExecMode::Sequential, states.clone());
        let mut threaded = ThreadedMachine::new(cfg(p), states);
        drive(&mut modeled, width);
        drive(&mut threaded, width);
        for (a, b) in Machine::ranks(&modeled).iter().zip(SpmdEngine::ranks(&threaded)) {
            prop_assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    /// Random all-to-all superstep traffic: inbox ordering and stats
    /// totals agree between executors.
    #[test]
    fn superstep_traffic_agrees(
        p in 1usize..8,
        sends in prop::collection::vec((0usize..8, 0usize..8, 0usize..6), 0..30),
    ) {
        fn drive<E: SpmdEngine<Vec<u64>>>(m: &mut E, sends: &[(usize, usize, usize)], p: usize) {
            let sends = sends.to_vec();
            m.superstep(
                PhaseKind::Scatter,
                move |r, _s, _ctx, ob: &mut Outbox<Vec<u64>>| {
                    for &(from, to, len) in &sends {
                        if from % p == r {
                            ob.send(to % p, vec![(from + to + len) as u64; len]);
                        }
                    }
                },
                |_r, s, _ctx, inbox| {
                    for (from, msg) in inbox {
                        s.push(from as u64);
                        s.extend_from_slice(&msg);
                    }
                },
            )
            .expect("fault-free superstep");
        }
        let states = vec![Vec::<u64>::new(); p];
        let mut modeled = Machine::new(cfg(p), ExecMode::Sequential, states.clone());
        let mut threaded = ThreadedMachine::new(cfg(p), states);
        drive(&mut modeled, &sends, p);
        drive(&mut threaded, &sends, p);
        prop_assert_eq!(Machine::ranks(&modeled), SpmdEngine::ranks(&threaded));
        let mrec = Machine::stats(&modeled).records()[0];
        let trec = SpmdEngine::stats(&threaded).records()[0];
        prop_assert_eq!(mrec.total_msgs, trec.total_msgs);
        prop_assert_eq!(mrec.total_bytes, trec.total_bytes);
        prop_assert_eq!(mrec.max_msgs_sent, trec.max_msgs_sent);
        prop_assert_eq!(mrec.max_bytes_recv, trec.max_bytes_recv);
    }
}
