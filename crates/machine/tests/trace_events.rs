//! Property tests: the trace event stream agrees with the superstep
//! statistics the machine already reports.
//!
//! The [`StatsLog`](pic_machine::StatsLog) is the oracle: it is computed
//! from the same per-rank counters the span events are built from, but
//! through an independent code path (max/sum folds at the barrier vs.
//! per-rank event emission).  Any disagreement means one of the two
//! aggregations dropped a rank, double-charged a collective, or mixed
//! up supersteps.

use pic_machine::{
    ExecMode, Machine, MachineConfig, MemoryRecorder, PhaseKind, SharedRecorder, SpmdEngine,
    ThreadedMachine, Topology, TraceEvent,
};
use proptest::prelude::*;

fn cfg(p: usize) -> MachineConfig {
    MachineConfig {
        ranks: p,
        tau: 1.0,
        mu: 0.01,
        delta: 0.001,
        topology: Topology::FullyConnected,
    }
}

/// Group span events by superstep id, in emission order.
fn spans_by_step(events: &[TraceEvent]) -> Vec<(u64, Vec<&pic_machine::SpanEvent>)> {
    let mut out: Vec<(u64, Vec<&pic_machine::SpanEvent>)> = Vec::new();
    for ev in events {
        if let TraceEvent::Span(s) = ev {
            match out.last_mut() {
                Some((step, group)) if *step == s.superstep => group.push(s),
                _ => out.push((s.superstep, vec![s])),
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For every modeled superstep: the per-rank spans reproduce the
    /// `SuperstepStats` record bit-for-bit — max compute, max comm,
    /// total messages and total bytes over ranks, and the superstep
    /// event's elapsed time.
    #[test]
    fn modeled_span_totals_equal_superstep_stats(
        p in 1usize..9,
        steps in 1usize..5,
        fanout in 0usize..4,
        ops in 0u64..500,
        salt in 0u64..1000,
    ) {
        let shared = SharedRecorder::new(MemoryRecorder::new());
        let mut m = Machine::new(cfg(p), ExecMode::Sequential, vec![0u64; p]);
        m.set_recorder(Some(Box::new(shared.clone())));
        for step in 0..steps {
            m.superstep(
                PhaseKind::Scatter,
                |r, s, ctx, out: &mut pic_machine::Outbox<Vec<u64>>| {
                    ctx.charge_ops((ops as f64) * (r as f64 + 1.0));
                    for k in 0..fanout {
                        let to = (r + k + step) % p;
                        out.send(to, vec![salt + r as u64; (r + k) % 3 + 1]);
                    }
                    *s += 1;
                },
                |_r, s, _ctx, inbox| {
                    *s += inbox.len() as u64;
                },
            );
        }

        let events = shared.with(|rec| rec.take());
        let grouped = spans_by_step(&events);
        let records = m.stats().records().to_vec();
        prop_assert_eq!(grouped.len(), records.len());
        prop_assert_eq!(grouped.len(), steps);

        let superstep_events: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Superstep(s) => Some(s),
                _ => None,
            })
            .collect();
        prop_assert_eq!(superstep_events.len(), records.len());

        for (((_, spans), rec), agg) in
            grouped.iter().zip(&records).zip(&superstep_events)
        {
            prop_assert_eq!(spans.len(), p);
            let max_compute = spans.iter().map(|s| s.compute_s).fold(0.0, f64::max);
            let max_comm = spans.iter().map(|s| s.comm_s).fold(0.0, f64::max);
            let total_msgs: u64 = spans.iter().map(|s| s.msgs_sent).sum();
            let total_bytes: u64 = spans.iter().map(|s| s.bytes_sent).sum();
            let recv_msgs: u64 = spans.iter().map(|s| s.msgs_recv).sum();
            let recv_bytes: u64 = spans.iter().map(|s| s.bytes_recv).sum();
            prop_assert_eq!(max_compute, rec.max_compute_s);
            prop_assert_eq!(max_comm, rec.max_comm_s);
            prop_assert_eq!(total_msgs, rec.total_msgs);
            prop_assert_eq!(total_bytes, rec.total_bytes);
            // every off-rank send is received exactly once
            prop_assert_eq!(recv_msgs, rec.total_msgs);
            prop_assert_eq!(recv_bytes, rec.total_bytes);
            prop_assert_eq!(agg.max_compute_s, rec.max_compute_s);
            prop_assert_eq!(agg.max_comm_s, rec.max_comm_s);
            prop_assert_eq!(agg.elapsed_s, rec.elapsed_s);
            prop_assert_eq!(agg.total_msgs, rec.total_msgs);
            prop_assert_eq!(agg.total_bytes, rec.total_bytes);
            prop_assert!(!agg.collective);
            // spans fit inside the superstep window
            for s in spans {
                prop_assert_eq!(s.start_s, agg.start_s);
                prop_assert!(s.end_s <= agg.start_s + agg.elapsed_s + 1e-12);
            }
        }
    }

    /// Modeled collectives emit one span per rank with uniform comm
    /// charges matching the stats record, flagged as collectives.
    #[test]
    fn modeled_collective_spans_match_stats(
        p in 1usize..9,
        salt in 0u64..1000,
    ) {
        let shared = SharedRecorder::new(MemoryRecorder::new());
        let states: Vec<(u64, u64)> = (0..p).map(|r| (salt + r as u64, 0)).collect();
        let mut m = Machine::new(cfg(p), ExecMode::Sequential, states);
        SpmdEngine::set_recorder(&mut m, Some(Box::new(shared.clone())));
        m.allgather(
            PhaseKind::Setup,
            8,
            |_r, s: &(u64, u64)| s.0,
            |_r, s, all: &[u64]| s.1 = all.iter().sum(),
        );

        let events = shared.with(|rec| rec.take());
        let spans: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Span(s) => Some(s),
                _ => None,
            })
            .collect();
        prop_assert_eq!(spans.len(), p);
        let rec = m.stats().records()[0];
        for s in &spans {
            // the model charges every rank identically in a collective
            prop_assert_eq!(s.comm_s, rec.max_comm_s);
            prop_assert_eq!(s.compute_s, 0.0);
        }
        let agg = events.iter().find_map(|e| match e {
            TraceEvent::Superstep(s) => Some(s),
            _ => None,
        });
        let agg = agg.expect("collective superstep event");
        prop_assert!(agg.collective);
        prop_assert_eq!(agg.total_msgs, rec.total_msgs);
        prop_assert_eq!(agg.total_bytes, rec.total_bytes);
    }
}

/// The threaded executor emits the same event shapes: one span per rank
/// per superstep (wall-clock times), plus superstep and collective
/// aggregates consistent with its stats log.
#[test]
fn threaded_recorder_captures_spans_and_collectives() {
    let p = 4;
    let shared = SharedRecorder::new(MemoryRecorder::new());
    let mut m = ThreadedMachine::new(cfg(p), vec![0u64; p]);
    m.set_recorder(Some(Box::new(shared.clone())));

    SpmdEngine::superstep(
        &mut m,
        PhaseKind::Push,
        |r, s: &mut u64, _ctx, out: &mut pic_machine::Outbox<Vec<u64>>| {
            out.send((r + 1) % 4, vec![r as u64]);
            *s += 1;
        },
        |_r, s, _ctx, inbox: Vec<(usize, Vec<u64>)>| {
            *s += inbox.len() as u64;
        },
    )
    .expect("fault-free superstep");
    m.allreduce(
        PhaseKind::FieldSolve,
        |_r, s: &u64| *s,
        |a, b| a + b,
        |_r, s, sum: &u64| *s = *sum,
    )
    .expect("fault-free allreduce");

    let events = shared.with(|rec| rec.take());
    let spans: Vec<_> = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Span(s) => Some(s),
            _ => None,
        })
        .collect();
    // one span per rank for the superstep, one per rank for the collective
    assert_eq!(spans.len(), 2 * p);
    for s in &spans {
        assert!(s.end_s >= s.start_s);
        assert!(s.compute_s >= 0.0 && s.comm_s >= 0.0);
    }
    let aggs: Vec<_> = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Superstep(s) => Some(s),
            _ => None,
        })
        .collect();
    assert_eq!(aggs.len(), 2);
    assert!(!aggs[0].collective);
    assert!(aggs[1].collective);
    let stats = m.stats().records().to_vec();
    assert_eq!(aggs[0].total_msgs, stats[0].total_msgs);
    assert_eq!(aggs[0].total_bytes, stats[0].total_bytes);
    // supersteps are numbered consecutively within one executor
    assert_eq!(aggs[0].superstep + 1, aggs[1].superstep);
}

/// `take_recorder` hands the live recorder back (with its sink intact)
/// and leaves the machine silent; re-installing resumes the stream.
#[test]
fn take_and_reinstall_recorder_round_trips() {
    fn drive<E: SpmdEngine<u64>>(m: &mut E) {
        m.allreduce(
            PhaseKind::Other,
            |_r, s: &u64| *s,
            |a, b| a + b,
            |_r, s, sum: &u64| *s = *sum,
        )
        .expect("fault-free allreduce");
    }

    let shared = SharedRecorder::new(MemoryRecorder::new());
    let mut m = ThreadedMachine::new(cfg(3), vec![1u64; 3]);
    m.set_recorder(Some(Box::new(shared.clone())));
    drive(&mut m);
    let n_traced = shared.with(|rec| rec.events().len());
    assert!(n_traced > 0);

    let taken = m.take_recorder();
    assert!(taken.is_some());
    assert!(m.recorder_mut().is_none());
    drive(&mut m); // silent: no recorder installed
    assert_eq!(shared.with(|rec| rec.events().len()), n_traced);

    m.set_recorder(taken);
    drive(&mut m);
    assert!(shared.with(|rec| rec.events().len()) > n_traced);
    // recorder_mut gives direct access to the installed sink
    assert!(m.recorder_mut().is_some());
}
