//! Particle loading distributions.
//!
//! The paper evaluates two cases (Section 6): "uniformly distributed
//! particles on a two-dimensional problem domain" and "irregularly
//! distributed particles that are concentrated in the center of the
//! domain" (Figure 15), chosen "highly irregular in order to study the
//! effect of such distribution", with real applications expected to be
//! intermediate.  Two extra loaders (two-stream and ring) drive the
//! physics examples.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::soa::Particles;
use crate::wrap::wrap_periodic;

/// Initial spatial distribution of the particles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ParticleDistribution {
    /// Uniform over the whole domain (paper case 1).
    Uniform,
    /// Gaussian blob concentrated at the domain centre (paper case 2,
    /// Figure 15), standard deviation `L / 12` per dimension.
    IrregularCenter,
    /// Two counter-streaming uniform populations (drift ±0.2 c added to
    /// the thermal momentum) — the classic two-stream instability setup.
    TwoStream,
    /// A thin ring of radius `L / 4` around the centre.
    Ring,
}

impl ParticleDistribution {
    /// Loaders the paper's evaluation sweeps over.
    pub const PAPER_CASES: [ParticleDistribution; 2] = [
        ParticleDistribution::Uniform,
        ParticleDistribution::IrregularCenter,
    ];

    /// Short label for experiment rows.
    pub fn label(self) -> &'static str {
        match self {
            ParticleDistribution::Uniform => "uniform",
            ParticleDistribution::IrregularCenter => "irregular",
            ParticleDistribution::TwoStream => "two_stream",
            ParticleDistribution::Ring => "ring",
        }
    }

    /// Load `n` electrons over the domain `[0, lx) x [0, ly)` with Maxwellian
    /// thermal momentum spread `thermal_u` (normalized `u = p / m c`),
    /// deterministically from `seed`.
    ///
    /// # Panics
    /// Panics if `n == 0` or the domain is degenerate.
    pub fn load(self, n: usize, lx: f64, ly: f64, thermal_u: f64, seed: u64) -> Particles {
        assert!(n > 0, "need at least one particle");
        assert!(lx > 0.0 && ly > 0.0, "domain must be nonzero");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut p = Particles::electrons();
        p.reserve(n);
        for i in 0..n {
            let (x, y) = match self {
                ParticleDistribution::Uniform => {
                    (rng.random_range(0.0..lx), rng.random_range(0.0..ly))
                }
                ParticleDistribution::IrregularCenter => {
                    let sx = lx / 12.0;
                    let sy = ly / 12.0;
                    let x = lx / 2.0 + gaussian(&mut rng) * sx;
                    let y = ly / 2.0 + gaussian(&mut rng) * sy;
                    (wrap_periodic(x, lx), wrap_periodic(y, ly))
                }
                ParticleDistribution::TwoStream => {
                    (rng.random_range(0.0..lx), rng.random_range(0.0..ly))
                }
                ParticleDistribution::Ring => {
                    let theta = rng.random_range(0.0..std::f64::consts::TAU);
                    let r = lx.min(ly) / 4.0 + gaussian(&mut rng) * lx.min(ly) / 64.0;
                    let x = lx / 2.0 + r * theta.cos();
                    let y = ly / 2.0 + r * theta.sin();
                    (wrap_periodic(x, lx), wrap_periodic(y, ly))
                }
            };
            let mut ux = gaussian(&mut rng) * thermal_u;
            let uy = gaussian(&mut rng) * thermal_u;
            let uz = gaussian(&mut rng) * thermal_u;
            if self == ParticleDistribution::TwoStream {
                ux += if i % 2 == 0 { 0.2 } else { -0.2 };
            }
            p.push(x, y, ux, uy, uz);
        }
        p
    }
}

impl std::fmt::Display for ParticleDistribution {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Standard normal sample via Box–Muller (keeps us independent of
/// distribution crates).
fn gaussian<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.random_range(f64::EPSILON..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loads_exactly_n_in_domain() {
        for dist in [
            ParticleDistribution::Uniform,
            ParticleDistribution::IrregularCenter,
            ParticleDistribution::TwoStream,
            ParticleDistribution::Ring,
        ] {
            let p = dist.load(500, 64.0, 32.0, 0.1, 7);
            assert_eq!(p.len(), 500, "{dist}");
            assert!(p.x.iter().all(|&x| (0.0..64.0).contains(&x)), "{dist}");
            assert!(p.y.iter().all(|&y| (0.0..32.0).contains(&y)), "{dist}");
        }
    }

    #[test]
    fn deterministic_across_calls() {
        let a = ParticleDistribution::Uniform.load(100, 10.0, 10.0, 0.1, 42);
        let b = ParticleDistribution::Uniform.load(100, 10.0, 10.0, 0.1, 42);
        assert_eq!(a, b);
        let c = ParticleDistribution::Uniform.load(100, 10.0, 10.0, 0.1, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn irregular_is_concentrated_at_center() {
        let p = ParticleDistribution::IrregularCenter.load(4000, 64.0, 64.0, 0.1, 1);
        let near =
            p.x.iter()
                .zip(&p.y)
                .filter(|&(&x, &y)| (x - 32.0).abs() < 16.0 && (y - 32.0).abs() < 16.0)
                .count();
        // with sigma = 64/12 ~ 5.3, essentially everything is within 3 sigma
        assert!(near > 3900, "only {near} of 4000 near centre");
    }

    #[test]
    fn uniform_spreads_over_quadrants() {
        let p = ParticleDistribution::Uniform.load(4000, 64.0, 64.0, 0.1, 1);
        let q1 =
            p.x.iter()
                .zip(&p.y)
                .filter(|&(&x, &y)| x < 32.0 && y < 32.0)
                .count();
        assert!((800..1200).contains(&q1), "quadrant count {q1}");
    }

    #[test]
    fn two_stream_has_two_drift_populations() {
        let p = ParticleDistribution::TwoStream.load(1000, 32.0, 32.0, 0.01, 3);
        let fast = p.ux.iter().filter(|&&u| u > 0.1).count();
        let slow = p.ux.iter().filter(|&&u| u < -0.1).count();
        assert!(fast > 400 && slow > 400, "fast {fast}, slow {slow}");
    }

    #[test]
    fn thermal_spread_scales() {
        let cold = ParticleDistribution::Uniform.load(2000, 10.0, 10.0, 0.001, 9);
        let hot = ParticleDistribution::Uniform.load(2000, 10.0, 10.0, 0.1, 9);
        let rms =
            |v: &[f64]| -> f64 { (v.iter().map(|u| u * u).sum::<f64>() / v.len() as f64).sqrt() };
        assert!(rms(&hot.uy) > 50.0 * rms(&cold.uy));
    }

    #[test]
    #[should_panic(expected = "at least one particle")]
    fn zero_particles_rejected() {
        ParticleDistribution::Uniform.load(0, 1.0, 1.0, 0.1, 0);
    }
}
