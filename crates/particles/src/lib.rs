//! # pic-particles — the particle array substrate
//!
//! The particle side of the paper's two irregularly coupled data arrays:
//! structure-of-arrays storage ([`Particles`]), the loading distributions
//! the evaluation uses (uniform and the irregular centre-concentrated
//! case, [`ParticleDistribution`]), cloud-in-cell interpolation weights
//! ([`shape::Cic`], paper Figure 3), and the relativistic Boris pusher
//! ([`push`]) that closes the scatter → solve → gather → **push** loop.
//!
//! ```
//! use pic_particles::{ParticleDistribution, Particles};
//!
//! let p = ParticleDistribution::Uniform.load(1000, 64.0, 32.0, 0.05, 42);
//! assert_eq!(p.len(), 1000);
//! assert!(p.x.iter().all(|&x| (0.0..64.0).contains(&x)));
//! ```

#![warn(missing_docs)]

pub mod init;
pub mod push;
pub mod shape;
pub mod soa;
pub mod wrap;

pub use init::ParticleDistribution;
pub use push::{boris_push, BorisStep};
pub use shape::Cic;
pub use soa::Particles;
pub use wrap::wrap_periodic;
