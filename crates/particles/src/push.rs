//! The push phase: the relativistic Boris pusher.
//!
//! "The force obtained from the gather phase moves particles to their new
//! positions" (paper Section 2).  The de-facto standard integrator for
//! relativistic electromagnetic PIC is the Boris scheme: a half electric
//! kick, a magnetic rotation, and a second half kick, followed by the
//! position update with the relativistic velocity `u / gamma`.

/// Fields acting on one particle for one time step.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BorisStep {
    /// Electric field at the particle.
    pub e: [f64; 3],
    /// Magnetic field at the particle.
    pub b: [f64; 3],
}

/// Advance one particle's normalized momentum `u = p / (m c)` by `dt`
/// under `fields`, with charge-to-mass ratio `qm` (normalized units,
/// `c = 1`).  Returns the new momentum; the caller updates positions with
/// `x += u / gamma * dt`.
#[inline]
pub fn boris_push(u: [f64; 3], fields: &BorisStep, qm: f64, dt: f64) -> [f64; 3] {
    let half = 0.5 * qm * dt;
    // half electric kick
    let um = [
        u[0] + half * fields.e[0],
        u[1] + half * fields.e[1],
        u[2] + half * fields.e[2],
    ];
    // magnetic rotation at the mid-step Lorentz factor
    let gamma_m = (1.0 + um[0] * um[0] + um[1] * um[1] + um[2] * um[2]).sqrt();
    let t = [
        half * fields.b[0] / gamma_m,
        half * fields.b[1] / gamma_m,
        half * fields.b[2] / gamma_m,
    ];
    let t2 = t[0] * t[0] + t[1] * t[1] + t[2] * t[2];
    let s = [
        2.0 * t[0] / (1.0 + t2),
        2.0 * t[1] / (1.0 + t2),
        2.0 * t[2] / (1.0 + t2),
    ];
    let uprime = [
        um[0] + um[1] * t[2] - um[2] * t[1],
        um[1] + um[2] * t[0] - um[0] * t[2],
        um[2] + um[0] * t[1] - um[1] * t[0],
    ];
    let up = [
        um[0] + uprime[1] * s[2] - uprime[2] * s[1],
        um[1] + uprime[2] * s[0] - uprime[0] * s[2],
        um[2] + uprime[0] * s[1] - uprime[1] * s[0],
    ];
    // second half electric kick
    [
        up[0] + half * fields.e[0],
        up[1] + half * fields.e[1],
        up[2] + half * fields.e[2],
    ]
}

/// Lorentz factor of a normalized momentum.
#[inline]
pub fn gamma_of(u: [f64; 3]) -> f64 {
    (1.0 + u[0] * u[0] + u[1] * u[1] + u[2] * u[2]).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_particle_keeps_momentum() {
        let u = [0.3, -0.2, 0.1];
        let got = boris_push(u, &BorisStep::default(), -1.0, 0.1);
        assert_eq!(got, u);
    }

    #[test]
    fn electric_field_accelerates_linearly() {
        // dU/dt = qm * E exactly under Boris with B = 0
        let fields = BorisStep {
            e: [1.0, 0.0, 0.0],
            b: [0.0; 3],
        };
        let u = boris_push([0.0; 3], &fields, -1.0, 0.01);
        assert!((u[0] + 0.01).abs() < 1e-15, "{u:?}");
        assert_eq!(u[1], 0.0);
    }

    #[test]
    fn magnetic_field_preserves_speed() {
        // pure magnetic rotation is norm-preserving to machine precision
        let fields = BorisStep {
            e: [0.0; 3],
            b: [0.0, 0.0, 2.0],
        };
        let mut u: [f64; 3] = [0.4, 0.0, 0.0];
        let norm0 = (u[0] * u[0] + u[1] * u[1] + u[2] * u[2]).sqrt();
        for _ in 0..1000 {
            u = boris_push(u, &fields, -1.0, 0.05);
        }
        let norm1 = (u[0] * u[0] + u[1] * u[1] + u[2] * u[2]).sqrt();
        assert!(
            (norm0 - norm1).abs() < 1e-12,
            "|u| drifted {norm0} -> {norm1}"
        );
    }

    #[test]
    fn magnetic_rotation_is_circular() {
        // in-plane momentum rotates; z stays zero for Bz-only field
        let fields = BorisStep {
            e: [0.0; 3],
            b: [0.0, 0.0, 1.0],
        };
        let mut u = [0.1, 0.0, 0.0];
        let mut seen_negative_x = false;
        for _ in 0..200 {
            u = boris_push(u, &fields, -1.0, 0.1);
            assert_eq!(u[2], 0.0);
            if u[0] < -0.05 {
                seen_negative_x = true;
            }
        }
        assert!(seen_negative_x, "momentum never rotated");
    }

    #[test]
    fn gamma_matches_definition() {
        assert_eq!(gamma_of([0.0; 3]), 1.0);
        assert!((gamma_of([3.0, 0.0, 4.0]) - 26f64.sqrt()).abs() < 1e-15);
    }

    #[test]
    fn relativistic_speed_saturates_below_c() {
        // enormous kick; velocity u/gamma must stay < 1 (= c)
        let fields = BorisStep {
            e: [1e6, 0.0, 0.0],
            b: [0.0; 3],
        };
        let u = boris_push([0.0; 3], &fields, -1.0, 1.0);
        let v = u[0].abs() / gamma_of(u);
        assert!(v < 1.0, "superluminal v = {v}");
        assert!(v > 0.999, "relativistic limit not reached: {v}");
    }

    #[test]
    fn e_cross_b_drift_direction() {
        // E x B drift: E along y, B along z -> drift along x for any charge
        let fields = BorisStep {
            e: [0.0, 0.1, 0.0],
            b: [0.0, 0.0, 1.0],
        };
        let mut u = [0.0; 3];
        let mut x_displacement = 0.0;
        for _ in 0..2000 {
            u = boris_push(u, &fields, -1.0, 0.05);
            x_displacement += u[0] / gamma_of(u) * 0.05;
        }
        // drift velocity E x B / B^2 = (0.1, 0, 0) -> displacement ~ 10
        assert!(
            (x_displacement - 10.0).abs() < 1.0,
            "drift displacement {x_displacement}"
        );
    }
}
