//! Cloud-in-cell (bilinear) interpolation weights.
//!
//! Paper Figure 3: "Using a linear interpolation scheme each particle
//! scatters its contributions to the current mesh grid points at the
//! vertices of the cell in which it lies", and the gather phase uses the
//! same four weights in reverse.  [`Cic`] computes the cell and the four
//! vertex weights once per particle per phase.

/// The cell containing a particle and its four vertex weights.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cic {
    /// Cell x index (lower-left vertex x).
    pub ix: usize,
    /// Cell y index (lower-left vertex y).
    pub iy: usize,
    /// Weights for vertices in order (ix,iy), (ix+1,iy), (ix,iy+1),
    /// (ix+1,iy+1).  Non-negative, sum to 1.
    pub w: [f64; 4],
}

impl Cic {
    /// Compute the cell and weights of a particle at `(x, y)` on a mesh of
    /// `nx x ny` cells of size `dx x dy` with periodic vertices.
    ///
    /// Positions must already be wrapped into `[0, nx*dx) x [0, ny*dy)`.
    ///
    /// # Panics
    /// Panics in debug builds if the position is outside the domain.
    #[inline]
    pub fn new(x: f64, y: f64, dx: f64, dy: f64, nx: usize, ny: usize) -> Self {
        debug_assert!(
            (0.0..nx as f64 * dx).contains(&x) && (0.0..ny as f64 * dy).contains(&y),
            "position ({x},{y}) outside domain"
        );
        let fx = x / dx;
        let fy = y / dy;
        // clamp guards the fx == nx edge case from floating-point roundoff
        let ix = (fx as usize).min(nx - 1);
        let iy = (fy as usize).min(ny - 1);
        let ax = fx - ix as f64;
        let ay = fy - iy as f64;
        Self {
            ix,
            iy,
            w: [
                (1.0 - ax) * (1.0 - ay),
                ax * (1.0 - ay),
                (1.0 - ax) * ay,
                ax * ay,
            ],
        }
    }

    /// The four vertex grid points, wrapped periodically onto an
    /// `nx x ny` vertex grid.
    #[inline]
    pub fn corners(&self, nx: usize, ny: usize) -> [(usize, usize); 4] {
        let xp = (self.ix + 1) % nx;
        let yp = (self.iy + 1) % ny;
        [(self.ix, self.iy), (xp, self.iy), (self.ix, yp), (xp, yp)]
    }

    /// Interpolate a per-vertex quantity to the particle: dot product of
    /// the weights with the four vertex values (in corner order).
    #[inline]
    pub fn interpolate(&self, v: [f64; 4]) -> f64 {
        self.w[0] * v[0] + self.w[1] * v[1] + self.w[2] * v[2] + self.w[3] * v[3]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_sum_to_one_and_are_nonnegative() {
        for &(x, y) in &[(0.0, 0.0), (3.7, 2.2), (7.999, 3.999), (0.5, 3.5)] {
            let c = Cic::new(x, y, 1.0, 1.0, 8, 4);
            let sum: f64 = c.w.iter().sum();
            assert!((sum - 1.0).abs() < 1e-12, "({x},{y})");
            assert!(c.w.iter().all(|&w| w >= 0.0));
        }
    }

    #[test]
    fn particle_at_vertex_gives_unit_weight() {
        let c = Cic::new(3.0, 2.0, 1.0, 1.0, 8, 8);
        assert_eq!(c.ix, 3);
        assert_eq!(c.iy, 2);
        assert_eq!(c.w, [1.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn particle_at_cell_center_gives_quarter_weights() {
        let c = Cic::new(3.5, 2.5, 1.0, 1.0, 8, 8);
        for &w in &c.w {
            assert!((w - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn corners_wrap_periodically() {
        let c = Cic::new(7.5, 3.5, 1.0, 1.0, 8, 4);
        assert_eq!(c.corners(8, 4), [(7, 3), (0, 3), (7, 0), (0, 0)]);
    }

    #[test]
    fn interpolation_reconstructs_linear_fields() {
        // A field linear in x must interpolate exactly.
        let field = |x: f64| 2.0 * x + 1.0;
        let c = Cic::new(2.3, 1.0, 1.0, 1.0, 8, 8);
        let vals = [
            field(c.ix as f64),
            field(c.ix as f64 + 1.0),
            field(c.ix as f64),
            field(c.ix as f64 + 1.0),
        ];
        assert!((c.interpolate(vals) - field(2.3)).abs() < 1e-12);
    }

    #[test]
    fn nonunit_cell_sizes() {
        let c = Cic::new(1.25, 0.75, 0.5, 0.25, 8, 8);
        assert_eq!(c.ix, 2);
        assert_eq!(c.iy, 3);
        assert!((c.w[0] - 0.5).abs() < 1e-12); // ax=0.5, ay=0 -> w0=0.5
    }

    #[test]
    fn roundoff_at_domain_edge_is_clamped() {
        // The largest representable position below the domain edge must
        // land in the last cell even if x/dx rounds up to exactly nx.
        let x = 8.0f64.next_down();
        let c = Cic::new(x, 0.0, 1.0, 1.0, 8, 8);
        assert_eq!(c.ix, 7);
        // and with a cell size whose division is inexact
        let x = (49.0f64 * 0.2).next_down();
        let c = Cic::new(x, 0.0, 0.2, 0.2, 49, 49);
        assert_eq!(c.ix, 48);
    }
}
