//! Structure-of-arrays particle storage.
//!
//! The paper's particle array holds positions and (relativistic) momenta;
//! we store them as parallel `Vec<f64>`s, which is both the
//! cache-friendly layout for the per-phase loops and the natural shape
//! for the sorting/permutation machinery of the redistribution algorithms
//! (sorting permutes indices once, then gathers each attribute array).

use serde::{Deserialize, Serialize};

/// Wire size of one particle: x, y, ux, uy, uz as packed doubles.
/// Redistribution messages are charged this many bytes per particle.
pub const PARTICLE_WIRE_BYTES: usize = 5 * 8;

/// A set of particles of one species (uniform charge and mass).
///
/// `ux, uy, uz` are the relativistic momentum components divided by `m c`
/// (so the Lorentz factor is `sqrt(1 + u^2)`).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Particles {
    /// x positions.
    pub x: Vec<f64>,
    /// y positions.
    pub y: Vec<f64>,
    /// Normalized momentum, x component.
    pub ux: Vec<f64>,
    /// Normalized momentum, y component.
    pub uy: Vec<f64>,
    /// Normalized momentum, z component.
    pub uz: Vec<f64>,
    /// Species charge (same for all particles in the array).
    pub charge: f64,
    /// Species mass.
    pub mass: f64,
}

impl Particles {
    /// An empty array for a species with `charge` and `mass`.
    ///
    /// # Panics
    /// Panics if `mass` is not positive.
    pub fn new(charge: f64, mass: f64) -> Self {
        assert!(mass > 0.0, "mass must be positive");
        Self {
            charge,
            mass,
            ..Self::default()
        }
    }

    /// An empty electron-like species (charge -1, mass 1, normalized).
    pub fn electrons() -> Self {
        Self::new(-1.0, 1.0)
    }

    /// Number of particles.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// True when no particles are stored.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Charge-to-mass ratio.
    pub fn qm(&self) -> f64 {
        self.charge / self.mass
    }

    /// Append one particle.
    pub fn push(&mut self, x: f64, y: f64, ux: f64, uy: f64, uz: f64) {
        self.x.push(x);
        self.y.push(y);
        self.ux.push(ux);
        self.uy.push(uy);
        self.uz.push(uz);
    }

    /// Keep only the first `len` particles (no-op if already shorter).
    pub fn truncate(&mut self, len: usize) {
        self.x.truncate(len);
        self.y.truncate(len);
        self.ux.truncate(len);
        self.uy.truncate(len);
        self.uz.truncate(len);
    }

    /// Reserve capacity for `additional` more particles.
    pub fn reserve(&mut self, additional: usize) {
        self.x.reserve(additional);
        self.y.reserve(additional);
        self.ux.reserve(additional);
        self.uy.reserve(additional);
        self.uz.reserve(additional);
    }

    /// The five phase-space coordinates of particle `i`.
    #[inline]
    pub fn get(&self, i: usize) -> [f64; 5] {
        [self.x[i], self.y[i], self.ux[i], self.uy[i], self.uz[i]]
    }

    /// Append all particles of `other` (must be the same species).
    ///
    /// # Panics
    /// Panics if species parameters differ.
    pub fn append(&mut self, other: &mut Particles) {
        assert_eq!(self.charge, other.charge, "species charge mismatch");
        assert_eq!(self.mass, other.mass, "species mass mismatch");
        self.x.append(&mut other.x);
        self.y.append(&mut other.y);
        self.ux.append(&mut other.ux);
        self.uy.append(&mut other.uy);
        self.uz.append(&mut other.uz);
    }

    /// Remove the particles at `indices` (strictly increasing) and return
    /// them as a new array, preserving the order of survivors and of the
    /// extracted particles.
    ///
    /// # Panics
    /// Panics if `indices` is not strictly increasing or out of range.
    pub fn extract(&mut self, indices: &[usize]) -> Particles {
        let mut out = Particles::new(self.charge, self.mass);
        if indices.is_empty() {
            return out;
        }
        for w in indices.windows(2) {
            assert!(w[0] < w[1], "indices must be strictly increasing");
        }
        assert!(*indices.last().unwrap() < self.len(), "index out of range");
        out.reserve(indices.len());
        let mut take = vec![false; self.len()];
        for &i in indices {
            take[i] = true;
            out.push(self.x[i], self.y[i], self.ux[i], self.uy[i], self.uz[i]);
        }
        let keep = |v: &mut Vec<f64>| {
            let mut k = 0;
            v.retain(|_| {
                let t = !take[k];
                k += 1;
                t
            });
        };
        keep(&mut self.x);
        keep(&mut self.y);
        keep(&mut self.ux);
        keep(&mut self.uy);
        keep(&mut self.uz);
        out
    }

    /// Reorder the array in place so element `i` of the result is the old
    /// element `order[i]`.
    ///
    /// # Panics
    /// Panics if `order` is not a permutation of `0..len`.
    pub fn apply_order(&mut self, order: &[usize]) {
        let mut visited = Vec::new();
        self.apply_order_in_place(order, &mut visited);
    }

    /// [`Self::apply_order`] with a caller-owned `visited` buffer:
    /// applies the permutation by cycle decomposition, moving all five
    /// attribute arrays along each cycle hop — one permutation
    /// application instead of five independent gathers, and zero heap
    /// allocations once `visited` has grown to the particle count.
    ///
    /// # Panics
    /// Panics if `order` is not a permutation of `0..len`.
    pub fn apply_order_in_place(&mut self, order: &[usize], visited: &mut Vec<bool>) {
        assert_eq!(order.len(), self.len(), "order length mismatch");
        let n = order.len();
        visited.clear();
        visited.resize(n, false);
        for &i in order {
            assert!(i < n && !visited[i], "order is not a permutation");
            visited[i] = true;
        }
        for v in visited.iter_mut() {
            *v = false;
        }
        for start in 0..n {
            if visited[start] || order[start] == start {
                visited[start] = true;
                continue;
            }
            // walk the cycle: each position takes the old value of the
            // next position in the chain, the last takes the saved start
            let saved = self.get(start);
            let mut i = start;
            loop {
                visited[i] = true;
                let src = order[i];
                if src == start {
                    self.x[i] = saved[0];
                    self.y[i] = saved[1];
                    self.ux[i] = saved[2];
                    self.uy[i] = saved[3];
                    self.uz[i] = saved[4];
                    break;
                }
                self.x[i] = self.x[src];
                self.y[i] = self.y[src];
                self.ux[i] = self.ux[src];
                self.uy[i] = self.uy[src];
                self.uz[i] = self.uz[src];
                i = src;
            }
        }
    }

    /// Total kinetic energy `sum m (gamma - 1)` in normalized units.
    pub fn kinetic_energy(&self) -> f64 {
        (0..self.len())
            .map(|i| {
                let u2 = self.ux[i].powi(2) + self.uy[i].powi(2) + self.uz[i].powi(2);
                self.mass * ((1.0 + u2).sqrt() - 1.0)
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Particles {
        let mut p = Particles::electrons();
        for i in 0..5 {
            let f = i as f64;
            p.push(f, f * 10.0, f * 0.25, -f * 0.25, 0.0);
        }
        p
    }

    #[test]
    fn push_and_get() {
        let p = sample();
        assert_eq!(p.len(), 5);
        assert_eq!(p.get(3), [3.0, 30.0, 0.75, -0.75, 0.0]);
        assert_eq!(p.qm(), -1.0);
    }

    #[test]
    fn extract_preserves_both_orders() {
        let mut p = sample();
        let out = p.extract(&[1, 3]);
        assert_eq!(out.len(), 2);
        assert_eq!(out.x, vec![1.0, 3.0]);
        assert_eq!(p.x, vec![0.0, 2.0, 4.0]);
        assert_eq!(p.y, vec![0.0, 20.0, 40.0]);
    }

    #[test]
    fn extract_empty_is_noop() {
        let mut p = sample();
        let out = p.extract(&[]);
        assert!(out.is_empty());
        assert_eq!(p.len(), 5);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn extract_unsorted_panics() {
        sample().extract(&[3, 1]);
    }

    #[test]
    fn append_moves_particles() {
        let mut a = sample();
        let mut b = sample();
        a.append(&mut b);
        assert_eq!(a.len(), 10);
        assert!(b.is_empty());
    }

    #[test]
    #[should_panic(expected = "species charge mismatch")]
    fn append_wrong_species_panics() {
        let mut a = Particles::electrons();
        let mut b = Particles::new(1.0, 1836.0);
        a.append(&mut b);
    }

    #[test]
    fn apply_order_permutes_all_attributes() {
        let mut p = sample();
        p.apply_order(&[4, 3, 2, 1, 0]);
        assert_eq!(p.x, vec![4.0, 3.0, 2.0, 1.0, 0.0]);
        assert_eq!(p.uy, vec![-1.0, -0.75, -0.5, -0.25, -0.0]);
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn apply_bad_order_panics() {
        sample().apply_order(&[0, 0, 1, 2, 3]);
    }

    #[test]
    fn cycle_application_matches_gather_oracle() {
        // pseudo-random permutations with fixed points and long cycles
        for seed in [1u64, 7, 42, 1996] {
            let n = 64;
            let mut p = Particles::electrons();
            for i in 0..n {
                let f = i as f64;
                p.push(f, f * 2.0, f * 3.0, f * 4.0, f * 5.0);
            }
            let mut order: Vec<usize> = (0..n).collect();
            let mut s = seed;
            for i in (1..n).rev() {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                order.swap(i, (s % (i as u64 + 1)) as usize);
            }
            let expect: Vec<f64> = order.iter().map(|&i| p.x[i]).collect();
            let mut visited = Vec::new();
            p.apply_order_in_place(&order, &mut visited);
            assert_eq!(p.x, expect, "seed {seed}");
            // every attribute rode the same permutation
            for i in 0..n {
                assert_eq!(p.y[i], p.x[i] * 2.0);
                assert_eq!(p.uz[i], p.x[i] * 5.0);
            }
        }
    }

    #[test]
    fn identity_order_is_untouched() {
        let mut p = sample();
        let before = p.clone();
        let mut visited = Vec::new();
        p.apply_order_in_place(&[0, 1, 2, 3, 4], &mut visited);
        assert_eq!(p, before);
    }

    #[test]
    fn kinetic_energy_zero_at_rest() {
        let mut p = Particles::electrons();
        p.push(1.0, 1.0, 0.0, 0.0, 0.0);
        assert_eq!(p.kinetic_energy(), 0.0);
        p.push(1.0, 1.0, 3.0, 0.0, 4.0); // |u| = 5, gamma = sqrt(26)
        let expect = 26f64.sqrt() - 1.0;
        assert!((p.kinetic_energy() - expect).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "mass must be positive")]
    fn zero_mass_rejected() {
        Particles::new(1.0, 0.0);
    }
}
