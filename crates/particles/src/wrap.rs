//! Periodic boundary handling for particle positions.

/// Wrap `x` into `[0, l)`.
///
/// Handles any finite input, including large negative positions, and
/// guards the `x == l` edge produced by floating-point wrap-around.
#[inline]
pub fn wrap_periodic(x: f64, l: f64) -> f64 {
    debug_assert!(l > 0.0, "domain length must be positive");
    let mut w = x % l;
    if w < 0.0 {
        w += l;
    }
    // x % l can return exactly l after the negative fix-up when x is a
    // tiny negative number; fold it back to 0.
    if w >= l {
        w = 0.0;
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_range_unchanged() {
        assert_eq!(wrap_periodic(3.5, 10.0), 3.5);
        assert_eq!(wrap_periodic(0.0, 10.0), 0.0);
    }

    #[test]
    fn wraps_positive_overflow() {
        assert!((wrap_periodic(13.5, 10.0) - 3.5).abs() < 1e-12);
        assert!((wrap_periodic(107.0, 10.0) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn wraps_negative() {
        assert!((wrap_periodic(-1.0, 10.0) - 9.0).abs() < 1e-12);
        assert!((wrap_periodic(-21.0, 10.0) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn result_always_in_half_open_range() {
        for &x in &[-1e-18, -10.0, 9.999999999, 1e9, -1e9, 0.1] {
            let w = wrap_periodic(x, 10.0);
            assert!((0.0..10.0).contains(&w), "wrap({x}) = {w}");
        }
    }
}
