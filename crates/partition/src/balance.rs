//! Order-maintaining load balance.
//!
//! After the incremental sort, per-rank particle counts can drift from
//! equal.  "An order-maintaining load balance operation moves extra
//! particles to appropriate destinations such that the global order of
//! the concatenated particle array does not change" (paper Section 5.1).
//!
//! Every rank knows all counts (one global concatenation of counts), so
//! each can compute, for each contiguous run of its *sorted* local
//! particles, the destination rank from the run's global positions — no
//! negotiation needed, and the global order is preserved by construction.

use std::ops::Range;

/// Balanced target counts: `total / p` each, with the first `total % p`
/// ranks taking one extra.
pub fn balance_targets(counts: &[usize]) -> Vec<usize> {
    assert!(!counts.is_empty(), "no ranks");
    let p = counts.len();
    let total: usize = counts.iter().sum();
    let base = total / p;
    let extra = total % p;
    (0..p).map(|r| base + usize::from(r < extra)).collect()
}

/// The moves one balance pass performs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BalancePlan {
    /// `moves[src]` lists `(dest, local_range)` pairs: the particles at
    /// `local_range` of `src`'s sorted array go to `dest`.  Ranges with
    /// `dest == src` are omitted; the remaining local particles stay.
    pub moves: Vec<Vec<(usize, Range<usize>)>>,
    /// Target count of every rank after the plan is applied.
    pub targets: Vec<usize>,
}

impl BalancePlan {
    /// Total particles that change ranks under this plan.
    pub fn moved(&self) -> usize {
        self.moves.iter().flatten().map(|(_, r)| r.len()).sum()
    }
}

/// Compute the order-maintaining balance plan from per-rank counts.
pub fn order_maintaining_balance(counts: &[usize]) -> BalancePlan {
    let p = counts.len();
    let targets = balance_targets(counts);
    // global position boundaries of the target layout
    let mut target_start = vec![0usize; p + 1];
    for r in 0..p {
        target_start[r + 1] = target_start[r] + targets[r];
    }
    let mut moves: Vec<Vec<(usize, Range<usize>)>> = vec![Vec::new(); p];
    let mut src_start = 0usize;
    for (src, &cnt) in counts.iter().enumerate() {
        let src_range = src_start..src_start + cnt;
        // overlap [src_range] with each target interval
        for dest in 0..p {
            let lo = src_range.start.max(target_start[dest]);
            let hi = src_range.end.min(target_start[dest + 1]);
            if lo < hi && dest != src {
                moves[src].push((dest, lo - src_start..hi - src_start));
            }
        }
        src_start += cnt;
    }
    BalancePlan { moves, targets }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Apply a plan to per-rank sorted arrays and return the new arrays.
    fn apply(plan: &BalancePlan, ranks: &[Vec<u64>]) -> Vec<Vec<u64>> {
        let p = ranks.len();
        let mut incoming: Vec<Vec<(usize, Vec<u64>)>> = vec![Vec::new(); p];
        let mut keep: Vec<Vec<u64>> = Vec::with_capacity(p);
        for (src, local) in ranks.iter().enumerate() {
            let mut taken = vec![false; local.len()];
            for (dest, range) in &plan.moves[src] {
                incoming[*dest].push((src, local[range.clone()].to_vec()));
                for i in range.clone() {
                    taken[i] = true;
                }
            }
            keep.push(
                local
                    .iter()
                    .zip(&taken)
                    .filter(|&(_, &t)| !t)
                    .map(|(&v, _)| v)
                    .collect(),
            );
        }
        // merge by source rank order around the kept particles: sources
        // below self prepend, sources above append (order maintenance)
        let mut out = Vec::with_capacity(p);
        for (r, kept) in keep.into_iter().enumerate() {
            let mut v = Vec::new();
            incoming[r].sort_by_key(|&(src, _)| src);
            for (src, chunk) in &incoming[r] {
                if *src < r {
                    v.extend_from_slice(chunk);
                }
            }
            v.extend_from_slice(&kept);
            for (src, chunk) in &incoming[r] {
                if *src > r {
                    v.extend_from_slice(chunk);
                }
            }
            out.push(v);
        }
        out
    }

    #[test]
    fn targets_differ_by_at_most_one() {
        let t = balance_targets(&[10, 0, 5, 1]);
        assert_eq!(t.iter().sum::<usize>(), 16);
        assert_eq!(t, vec![4, 4, 4, 4]);
        let t = balance_targets(&[10, 0, 5]);
        assert_eq!(t, vec![5, 5, 5]);
        let t = balance_targets(&[3, 3, 4]);
        assert_eq!(t, vec![4, 3, 3]);
    }

    #[test]
    fn plan_achieves_targets_and_preserves_order() {
        let ranks: Vec<Vec<u64>> = vec![
            (0..12).collect(),  // overloaded
            (12..13).collect(), // nearly empty
            (13..20).collect(),
            vec![], // empty
        ];
        let counts: Vec<usize> = ranks.iter().map(Vec::len).collect();
        let plan = order_maintaining_balance(&counts);
        let after = apply(&plan, &ranks);
        for (r, v) in after.iter().enumerate() {
            assert_eq!(v.len(), plan.targets[r], "rank {r}");
        }
        let flat: Vec<u64> = after.into_iter().flatten().collect();
        let expect: Vec<u64> = (0..20).collect();
        assert_eq!(flat, expect, "global order changed");
    }

    #[test]
    fn balanced_input_moves_nothing() {
        let plan = order_maintaining_balance(&[5, 5, 5, 5]);
        assert_eq!(plan.moved(), 0);
    }

    #[test]
    fn single_rank_needs_no_moves() {
        let plan = order_maintaining_balance(&[42]);
        assert_eq!(plan.moved(), 0);
        assert_eq!(plan.targets, vec![42]);
    }

    #[test]
    fn extreme_imbalance_spreads_everything() {
        let ranks: Vec<Vec<u64>> = vec![(0..16).collect(), vec![], vec![], vec![]];
        let counts: Vec<usize> = ranks.iter().map(Vec::len).collect();
        let plan = order_maintaining_balance(&counts);
        assert_eq!(plan.moved(), 12);
        let after = apply(&plan, &ranks);
        assert!(after.iter().all(|v| v.len() == 4));
        let flat: Vec<u64> = after.into_iter().flatten().collect();
        assert_eq!(flat, (0..16).collect::<Vec<u64>>());
    }

    #[test]
    fn moves_target_contiguous_global_slots() {
        let plan = order_maintaining_balance(&[0, 10, 0]);
        // rank 1 must ship its first 4 to rank 0 and last 3 to rank 2
        assert_eq!(plan.targets, vec![4, 3, 3]);
        assert_eq!(plan.moves[1], vec![(0, 0..4), (2, 7..10)]);
    }
}
