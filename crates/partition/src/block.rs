//! SFC-ordered BLOCK decomposition of the mesh.
//!
//! Paper Figure 10: "Hilbert indexing scheme is applied on 16 processor
//! addresses and 64 cells in a mesh where each sub-block contains 4 cells
//! and is corresponding to a processor."  Ranks are laid along the same
//! curve as cells, so the `r`-th contiguous chunk of the sorted particle
//! array is spatially close to rank `r`'s mesh block — this is the
//! *alignment* half of the paper's contribution.

use pic_field::{factor_near_square, BlockLayout};
use pic_index::IndexScheme;

/// Build the BLOCK layout of an `nx x ny` mesh over `p` ranks, with the
/// block→rank mapping ordered along `scheme` over the block grid.
///
/// Rank `r` owns the `r`-th block along the curve; consecutive ranks own
/// spatially adjacent blocks (exactly adjacent for Hilbert/snake).
///
/// # Panics
/// Panics if `p` does not tile the mesh (more blocks than cells along a
/// dimension after near-square factoring).
pub fn sfc_block_layout(nx: usize, ny: usize, p: usize, scheme: IndexScheme) -> BlockLayout {
    let (a, b) = factor_near_square(p);
    let (pr, pc) = if nx >= ny { (a, b) } else { (b, a) };
    let layout = BlockLayout::new_2d(nx, ny, pr, pc);
    // index the pr x pc block grid along the curve; block (bi, bj) gets
    // rank = its curve position
    let block_indexer = scheme.build(pr, pc);
    let mut block_to_rank = vec![0usize; p];
    for bj in 0..pc {
        for bi in 0..pr {
            block_to_rank[bj * pr + bi] = block_indexer.index(bi, bj) as usize;
        }
    }
    layout.with_block_to_rank(block_to_rank)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hilbert_layout_makes_consecutive_ranks_adjacent() {
        let layout = sfc_block_layout(64, 64, 16, IndexScheme::Hilbert);
        for r in 0..15 {
            let a = layout.local_rect(r);
            let b = layout.local_rect(r + 1);
            // adjacent blocks share an edge: their rectangles, grown by one
            // cell, overlap
            let grown = pic_field::Rect {
                x0: a.x0.saturating_sub(1),
                y0: a.y0.saturating_sub(1),
                w: a.w + 2,
                h: a.h + 2,
            };
            assert!(
                grown.intersect(&b).is_some(),
                "ranks {r} and {} not adjacent: {a:?} vs {b:?}",
                r + 1
            );
        }
    }

    #[test]
    fn every_scheme_produces_a_valid_layout() {
        for scheme in IndexScheme::ALL {
            let layout = sfc_block_layout(128, 64, 32, scheme);
            assert_eq!(layout.num_ranks(), 32, "{scheme}");
            // ownership is a bijection over blocks
            let mut seen = [false; 32];
            for (r, seen_r) in seen.iter_mut().enumerate() {
                let rect = layout.local_rect(r);
                assert_eq!(layout.owner_of(rect.x0, rect.y0), r, "{scheme}");
                assert!(!*seen_r);
                *seen_r = true;
            }
        }
    }

    #[test]
    fn rectangular_mesh_orients_block_grid() {
        let layout = sfc_block_layout(128, 64, 32, IndexScheme::Hilbert);
        assert_eq!((layout.pr(), layout.pc()), (8, 4));
        // paper meshes divide evenly: every block is 16x16
        for r in 0..32 {
            let rect = layout.local_rect(r);
            assert_eq!((rect.w, rect.h), (16, 16));
        }
    }

    #[test]
    fn rank_zero_starts_at_curve_origin() {
        let layout = sfc_block_layout(64, 64, 16, IndexScheme::Hilbert);
        // Hilbert curve starts at block (0,0)
        let rect = layout.local_rect(0);
        assert_eq!((rect.x0, rect.y0), (0, 0));
    }
}
