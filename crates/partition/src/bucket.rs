//! Bucket incremental sorting (paper Figure 12).
//!
//! After the initial full sort, each rank divides its sorted particle
//! array into `L` equal buckets and remembers the `L - 1` key boundaries.
//! On the next redistribution most particles still belong to the same
//! bucket (movement is incremental), so sorting reduces to a cheap
//! classification (binary search over the remembered boundaries) plus
//! small per-bucket sorts — `O(n log(n/L))` comparisons instead of
//! `O(n log n)`, and in practice far fewer because buckets stay almost
//! sorted.  The sorting ablation bench quantifies the win against a full
//! `sort_unstable` and a from-scratch sample sort.

use serde::{Deserialize, Serialize};

use crate::radix::{radix_sort_indices, radix_sorted_order_into, RadixScratch};

/// Stable sorted-order permutation: `order[i]` is the original index of
/// the `i`-th smallest key.  Equal keys keep their original relative
/// order, which keeps redistribution deterministic.
///
/// Runs on the radix path (bit-identical to the historical comparison
/// sort, see [`sorted_order_comparison`]); allocation-sensitive callers
/// should use [`crate::radix::radix_sorted_order_into`] with a reused
/// scratch instead.
pub fn sorted_order(keys: &[u64]) -> Vec<usize> {
    let mut order = Vec::new();
    let mut scratch = RadixScratch::default();
    radix_sorted_order_into(keys, &mut order, &mut scratch);
    order
}

/// The historical comparison-sort path: materialize `(key, index)`
/// tuples and `sort_by_key`.  Kept as the reference oracle for the
/// radix path (debug asserts, proptests, and the key-sort microbench
/// in `hot_path_baseline`); the hot path itself uses
/// [`crate::radix::radix_sorted_order_into`].
pub fn sorted_order_comparison(keys: &[u64]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..keys.len()).collect();
    order.sort_by_key(|&i| (keys[i], i));
    order
}

/// Result of one incremental sort pass.
#[derive(Debug, Clone, PartialEq)]
pub struct IncrementalClassification {
    /// Permutation: `order[i]` is the original index of the `i`-th element
    /// of the sorted result.
    pub order: Vec<usize>,
    /// Number of keys per bucket after classification.
    pub bucket_sizes: Vec<usize>,
    /// Modeled comparison count: `n * ceil(log2 L)` for classification
    /// plus an adaptive `n_b * log2(max(runs_b, 2))` per bucket sort,
    /// where `runs_b` is the number of maximal non-decreasing runs in the
    /// bucket (natural merge sort cost — Rust's stable sort is run-
    /// adaptive, and the paper's incremental win comes precisely from
    /// buckets arriving almost sorted).  The redistribution phase charges
    /// this to the compute clock.
    pub comparisons: f64,
}

/// The remembered bucket boundaries of one rank.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BucketIncrementalSorter {
    l: usize,
    /// `l - 1` exclusive upper bounds of buckets `0..l-1`; empty until the
    /// first [`Self::rebuild`].
    bounds: Vec<u64>,
}

impl BucketIncrementalSorter {
    /// A sorter with `l` buckets (paper uses `L` buckets per processor).
    ///
    /// # Panics
    /// Panics if `l == 0`.
    pub fn new(l: usize) -> Self {
        assert!(l > 0, "need at least one bucket");
        Self {
            l,
            bounds: Vec::new(),
        }
    }

    /// Number of buckets.
    pub fn num_buckets(&self) -> usize {
        self.l
    }

    /// Current internal boundaries (empty before the first rebuild).
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Recompute boundaries from the freshly sorted local keys (paper
    /// Figure 12, `Particle_Redistribution` lines 4–6: boundary `i` is the
    /// key at position `i * span`).
    pub fn rebuild(&mut self, sorted_keys: &[u64]) {
        debug_assert!(sorted_keys.windows(2).all(|w| w[0] <= w[1]));
        self.bounds.clear();
        if sorted_keys.is_empty() {
            return;
        }
        let n = sorted_keys.len();
        for i in 1..self.l {
            self.bounds.push(sorted_keys[(i * n) / self.l]);
        }
    }

    /// Bucket of `key` under the current boundaries.
    #[inline]
    pub fn bucket_of(&self, key: u64) -> usize {
        self.bounds.partition_point(|&b| b <= key)
    }

    /// Sort `keys` incrementally: classify into the remembered buckets,
    /// sort each bucket (stable), and concatenate.
    ///
    /// Correct for *any* input (falls back to one big bucket before the
    /// first rebuild); cheap when the input is close to sorted.
    ///
    /// Allocating convenience wrapper around
    /// [`Self::sort_incremental_into`] for tests and benches; the hot
    /// path reuses caller-owned buffers.
    pub fn sort_incremental(&self, keys: &[u64]) -> IncrementalClassification {
        let mut order = Vec::new();
        let mut bucket_sizes = Vec::new();
        let mut scratch = RadixScratch::default();
        let comparisons =
            self.sort_incremental_into(keys, &mut order, &mut bucket_sizes, &mut scratch);
        IncrementalClassification {
            order,
            bucket_sizes,
            comparisons,
        }
    }

    /// Allocation-free incremental sort into caller-owned buffers:
    /// `order` receives the stable permutation, `bucket_sizes` the
    /// per-bucket key counts, and the modeled comparison count is
    /// returned (see [`IncrementalClassification::comparisons`] for the
    /// cost model — identical to the historical comparison-sort path).
    ///
    /// Classification is a stable counting scatter (histogram of bucket
    /// ids, exclusive prefix sum, ordered placement), and each bucket
    /// slice is then sorted by [`radix_sort_indices`] — no `(key,
    /// index)` tuples, no per-bucket `Vec`s.  Steady-state calls with a
    /// warmed-up scratch perform zero heap allocations.
    pub fn sort_incremental_into(
        &self,
        keys: &[u64],
        order: &mut Vec<usize>,
        bucket_sizes: &mut Vec<usize>,
        scratch: &mut RadixScratch,
    ) -> f64 {
        let n = keys.len();
        let nb = self.bounds.len() + 1;
        bucket_sizes.clear();
        bucket_sizes.resize(nb, 0);
        for &k in keys {
            bucket_sizes[self.bucket_of(k)] += 1;
        }
        // exclusive prefix sum -> write offsets (scratch.counts is free
        // here; the per-bucket sorts below reuse it afterwards)
        scratch.counts.clear();
        scratch.counts.resize(nb, 0);
        let mut off = 0usize;
        for (b, c) in bucket_sizes.iter().enumerate() {
            scratch.counts[b] = off;
            off += c;
        }
        order.clear();
        order.resize(n, 0);
        for (i, &k) in keys.iter().enumerate() {
            let b = self.bucket_of(k);
            order[scratch.counts[b]] = i;
            scratch.counts[b] += 1;
        }
        let classify_cmp = n as f64 * (nb.max(2) as f64).log2().ceil();
        let mut comparisons = classify_cmp;
        let mut start = 0usize;
        for &len in bucket_sizes.iter().take(nb) {
            let bucket = &mut order[start..start + len];
            start += len;
            if len > 1 {
                let runs = count_runs(keys, bucket);
                comparisons += len as f64 * (runs.max(2) as f64).log2();
                radix_sort_indices(keys, bucket, scratch);
            }
        }
        comparisons
    }
}

/// Number of maximal non-decreasing runs of `keys` restricted to `idxs`.
fn count_runs(keys: &[u64], idxs: &[usize]) -> usize {
    if idxs.is_empty() {
        return 0;
    }
    1 + idxs.windows(2).filter(|w| keys[w[0]] > keys[w[1]]).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_sorted_by_order(keys: &[u64], order: &[usize]) -> bool {
        order.windows(2).all(|w| keys[w[0]] <= keys[w[1]])
    }

    #[test]
    fn sorted_order_is_stable() {
        let keys = vec![3, 1, 3, 0, 1];
        let order = sorted_order(&keys);
        assert_eq!(order, vec![3, 1, 4, 0, 2]);
    }

    #[test]
    fn incremental_sort_without_rebuild_still_sorts() {
        let s = BucketIncrementalSorter::new(8);
        let keys = vec![9, 2, 7, 2, 0, 5];
        let r = s.sort_incremental(&keys);
        assert!(is_sorted_by_order(&keys, &r.order));
        assert_eq!(r.order.len(), 6);
    }

    #[test]
    fn rebuild_then_sort_matches_full_sort() {
        let mut s = BucketIncrementalSorter::new(4);
        let mut keys: Vec<u64> = (0..100).map(|i| (i * 37) % 100).collect();
        let order = sorted_order(&keys);
        let sorted: Vec<u64> = order.iter().map(|&i| keys[i]).collect();
        s.rebuild(&sorted);
        assert_eq!(s.bounds().len(), 3);
        // perturb slightly (incremental movement)
        for k in keys.iter_mut().step_by(10) {
            *k = k.saturating_add(1);
        }
        let r = s.sort_incremental(&keys);
        assert!(is_sorted_by_order(&keys, &r.order));
        let full = sorted_order(&keys);
        let by_incr: Vec<u64> = r.order.iter().map(|&i| keys[i]).collect();
        let by_full: Vec<u64> = full.iter().map(|&i| keys[i]).collect();
        assert_eq!(by_incr, by_full);
    }

    #[test]
    fn nearly_sorted_input_costs_fewer_comparisons() {
        // The incremental advantage: buckets arrive almost sorted after
        // small particle movement, so the adaptive cost is far below the
        // cost of the same keys in random order.
        let n = 4096u64;
        let mut nearly: Vec<u64> = (0..n).collect();
        for i in (0..n as usize - 1).step_by(97) {
            nearly.swap(i, i + 1);
        }
        let shuffled: Vec<u64> = (0..n).map(|i| (i * 2654435761) % n).collect();
        let mut s = BucketIncrementalSorter::new(64);
        s.rebuild(&(0..n).collect::<Vec<u64>>());
        let cheap = s.sort_incremental(&nearly);
        let costly = s.sort_incremental(&shuffled);
        assert!(
            cheap.comparisons < 0.7 * costly.comparisons,
            "nearly-sorted {} vs shuffled {}",
            cheap.comparisons,
            costly.comparisons
        );
        // beyond the fixed classification cost, the sort itself is the
        // adaptive part — it must collapse almost entirely
        let classify = 4096.0 * 6.0;
        assert!(
            cheap.comparisons - classify < 0.25 * (costly.comparisons - classify),
            "adaptive sort cost did not collapse: {} vs {}",
            cheap.comparisons - classify,
            costly.comparisons - classify
        );
        assert!(is_sorted_by_order(&nearly, &cheap.order));
        assert!(is_sorted_by_order(&shuffled, &costly.order));
    }

    #[test]
    fn bucket_sizes_sum_to_n() {
        let mut s = BucketIncrementalSorter::new(4);
        s.rebuild(&[0, 1, 2, 3, 4, 5, 6, 7]);
        let r = s.sort_incremental(&[7, 0, 3, 3, 9]);
        assert_eq!(r.bucket_sizes.iter().sum::<usize>(), 5);
        assert_eq!(r.bucket_sizes.len(), 4);
    }

    #[test]
    fn bucket_of_respects_bounds() {
        let mut s = BucketIncrementalSorter::new(4);
        s.rebuild(&[0, 10, 20, 30, 40, 50, 60, 70]);
        // bounds at positions 2, 4, 6 -> keys 20, 40, 60
        assert_eq!(s.bounds(), &[20, 40, 60]);
        assert_eq!(s.bucket_of(0), 0);
        assert_eq!(s.bucket_of(19), 0);
        assert_eq!(s.bucket_of(20), 1);
        assert_eq!(s.bucket_of(65), 3);
    }

    #[test]
    fn empty_input_yields_empty_result() {
        let s = BucketIncrementalSorter::new(4);
        let r = s.sort_incremental(&[]);
        assert!(r.order.is_empty());
    }

    #[test]
    fn rebuild_on_empty_clears_bounds() {
        let mut s = BucketIncrementalSorter::new(4);
        s.rebuild(&[1, 2, 3, 4]);
        assert!(!s.bounds().is_empty());
        s.rebuild(&[]);
        assert!(s.bounds().is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn zero_buckets_rejected() {
        BucketIncrementalSorter::new(0);
    }
}
