//! Particle indexing: a particle inherits its cell's curve index.
//!
//! "Each particle is assigned an index of its global cell number, which is
//! arranged using a Hilbert index-based order" (paper Section 5.1).  The
//! index is the sort key for both the initial distribution and every
//! redistribution; because cells and processor blocks are indexed along
//! the same curve, sorting particles by key simultaneously load balances
//! and aligns them with the mesh.

use pic_index::CellIndexer;
use pic_particles::Particles;

/// The cell containing position `(x, y)` on a mesh of `nx x ny` cells of
/// size `dx x dy`.  Positions must be wrapped into the domain.
#[inline]
pub fn cell_of(x: f64, y: f64, dx: f64, dy: f64, nx: usize, ny: usize) -> (usize, usize) {
    debug_assert!(x >= 0.0 && y >= 0.0, "position must be wrapped first");
    let cx = ((x / dx) as usize).min(nx - 1);
    let cy = ((y / dy) as usize).min(ny - 1);
    (cx, cy)
}

/// Curve index of the particle at `(x, y)`.
#[inline]
pub fn particle_key(indexer: &dyn CellIndexer, x: f64, y: f64, dx: f64, dy: f64) -> u64 {
    let (cx, cy) = cell_of(x, y, dx, dy, indexer.width(), indexer.height());
    indexer.index(cx, cy)
}

/// Keys for a whole particle array (the per-iteration indexing pass of
/// `Particle_Redistribution`, paper Figure 12 line 1).
pub fn assign_keys(p: &Particles, indexer: &dyn CellIndexer, dx: f64, dy: f64) -> Vec<u64> {
    let mut keys = Vec::new();
    assign_keys_into(p, indexer, dx, dy, &mut keys);
    keys
}

/// [`assign_keys`] into a caller-owned buffer — the per-iteration hot
/// path reuses one key vector per rank instead of reallocating.
pub fn assign_keys_into(
    p: &Particles,
    indexer: &dyn CellIndexer,
    dx: f64,
    dy: f64,
    keys: &mut Vec<u64>,
) {
    keys.clear();
    keys.reserve(p.len());
    for i in 0..p.len() {
        keys.push(particle_key(indexer, p.x[i], p.y[i], dx, dy));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pic_index::{HilbertIndexer, IndexScheme};

    #[test]
    fn cell_of_basic_geometry() {
        assert_eq!(cell_of(0.0, 0.0, 1.0, 1.0, 8, 8), (0, 0));
        assert_eq!(cell_of(3.7, 2.1, 1.0, 1.0, 8, 8), (3, 2));
        assert_eq!(cell_of(7.999, 7.999, 1.0, 1.0, 8, 8), (7, 7));
        // non-unit cells
        assert_eq!(cell_of(1.0, 1.5, 0.5, 0.5, 8, 8), (2, 3));
    }

    #[test]
    fn particles_in_same_cell_share_a_key() {
        let ix = HilbertIndexer::new(8, 8);
        let a = particle_key(&ix, 3.2, 2.9, 1.0, 1.0);
        let b = particle_key(&ix, 3.9, 2.1, 1.0, 1.0);
        assert_eq!(a, b);
    }

    #[test]
    fn keys_follow_the_chosen_curve() {
        for scheme in IndexScheme::ALL {
            let ix = scheme.build(8, 4);
            let mut p = Particles::electrons();
            p.push(0.5, 0.5, 0.0, 0.0, 0.0); // cell (0,0)
            p.push(5.5, 3.5, 0.0, 0.0, 0.0); // cell (5,3)
            let keys = assign_keys(&p, ix.as_ref(), 1.0, 1.0);
            assert_eq!(keys[0], ix.index(0, 0), "{scheme}");
            assert_eq!(keys[1], ix.index(5, 3), "{scheme}");
        }
    }

    #[test]
    fn edge_positions_clamp_into_mesh() {
        let ix = HilbertIndexer::new(4, 4);
        // position numerically at the domain edge still keys validly
        let k = particle_key(&ix, 4.0f64.next_down(), 0.0, 1.0, 1.0);
        assert_eq!(k, ix.index(3, 0));
    }
}
