//! # pic-partition — dynamic alignment and distribution of the two arrays
//!
//! The paper's core contribution: keep the particle array and the mesh
//! grid array *independently* load balanced while keeping each rank's
//! particle subdomain spatially compact and aligned with its mesh block.
//!
//! * [`block`] — Hilbert-ordered BLOCK decomposition of the mesh over
//!   processor addresses (paper Figure 10);
//! * [`key`] — particle indexing: each particle inherits the
//!   space-filling-curve index of its cell (paper Section 5.1);
//! * [`sample_sort`] — splitter selection and destination classification
//!   for the initial sample-sort-based distribution;
//! * [`bucket`] — bucket incremental sorting for cheap *re*distribution
//!   (paper Figure 12);
//! * [`balance`] — the order-maintaining load balance that equalizes
//!   particle counts without perturbing the global sorted order;
//! * [`policy`] — when to redistribute: static, periodic(k), or the
//!   dynamic Stop-At-Rise criterion `(t1-t0)*(i1-i0) >= T_redist`
//!   (paper Eq. 1);
//! * [`metrics`] — alignment/overlap diagnostics between particle
//!   subdomains and mesh blocks.
//!
//! Everything here is pure rank-local logic over plain data; the
//! `pic-core` driver wires these pieces into machine supersteps.

#![warn(missing_docs)]

pub mod balance;
pub mod block;
pub mod bucket;
pub mod key;
pub mod metrics;
pub mod policy;
pub mod radix;
pub mod sample_sort;

pub use balance::{balance_targets, order_maintaining_balance, BalancePlan};
pub use block::sfc_block_layout;
pub use bucket::{
    sorted_order, sorted_order_comparison, BucketIncrementalSorter, IncrementalClassification,
};
pub use key::{assign_keys, assign_keys_into, cell_of, particle_key};
pub use metrics::{alignment_report, AlignmentReport};
pub use policy::{DynamicSarPolicy, PeriodicPolicy, StaticPolicy};
pub use policy::{PolicyDecision, PolicyKind, PolicyState, RedistributionPolicy};
pub use radix::{radix_sort_indices, radix_sorted_order_into, RadixScratch};
pub use sample_sort::{
    classify_by_bounds, classify_by_bounds_into, rank_bounds_from_sorted, regular_sample,
    select_splitters,
};
