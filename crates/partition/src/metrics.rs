//! Alignment and overlap diagnostics.
//!
//! Paper Figure 5 frames the communication cost of independent
//! partitioning in terms of how well each rank's particle subdomain
//! overlaps its mesh block: the ghost grid points are exactly the vertex
//! points of occupied cells *outside* the block.  [`alignment_report`]
//! measures that for one rank; the reproduction's experiment logs use it
//! to show Hilbert alignment beating snakelike.

use pic_field::Rect;
use std::collections::HashSet;

use crate::key::cell_of;

/// Alignment diagnostics of one rank's particles against its mesh block.
#[derive(Debug, Clone, PartialEq)]
pub struct AlignmentReport {
    /// Bounding box of the occupied cells (None when no particles).
    pub bbox: Option<Rect>,
    /// Number of distinct cells occupied by particles.
    pub covered_cells: usize,
    /// Occupied cells inside the rank's own mesh block.
    pub inside_cells: usize,
    /// Occupied cells outside the block — each contributes ghost grid
    /// points and hence scatter/gather communication.
    pub ghost_cells: usize,
    /// `inside / covered` (1.0 when perfectly aligned, 0.0 when disjoint
    /// as in paper Figure 5(c)).
    pub overlap_fraction: f64,
}

/// Compute the [`AlignmentReport`] for particles at `(xs, ys)` owned by
/// the rank whose mesh block is `own`, on an `nx x ny` mesh with cells of
/// `dx x dy`.
///
/// # Panics
/// Panics if `xs` and `ys` lengths differ.
pub fn alignment_report(
    xs: &[f64],
    ys: &[f64],
    dx: f64,
    dy: f64,
    nx: usize,
    ny: usize,
    own: &Rect,
) -> AlignmentReport {
    assert_eq!(xs.len(), ys.len(), "coordinate arrays differ in length");
    if xs.is_empty() {
        return AlignmentReport {
            bbox: None,
            covered_cells: 0,
            inside_cells: 0,
            ghost_cells: 0,
            overlap_fraction: 1.0,
        };
    }
    let mut cells = HashSet::new();
    let (mut minx, mut miny) = (usize::MAX, usize::MAX);
    let (mut maxx, mut maxy) = (0usize, 0usize);
    for (&x, &y) in xs.iter().zip(ys) {
        let (cx, cy) = cell_of(x, y, dx, dy, nx, ny);
        cells.insert((cx, cy));
        minx = minx.min(cx);
        miny = miny.min(cy);
        maxx = maxx.max(cx);
        maxy = maxy.max(cy);
    }
    let inside = cells.iter().filter(|&&(x, y)| own.contains(x, y)).count();
    let covered = cells.len();
    AlignmentReport {
        bbox: Some(Rect {
            x0: minx,
            y0: miny,
            w: maxx - minx + 1,
            h: maxy - miny + 1,
        }),
        covered_cells: covered,
        inside_cells: inside,
        ghost_cells: covered - inside,
        overlap_fraction: inside as f64 / covered as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block() -> Rect {
        Rect {
            x0: 0,
            y0: 0,
            w: 4,
            h: 4,
        }
    }

    #[test]
    fn fully_aligned_particles() {
        let xs = vec![0.5, 1.5, 2.5, 3.5];
        let ys = vec![0.5, 1.5, 2.5, 3.5];
        let r = alignment_report(&xs, &ys, 1.0, 1.0, 8, 8, &block());
        assert_eq!(r.covered_cells, 4);
        assert_eq!(r.ghost_cells, 0);
        assert_eq!(r.overlap_fraction, 1.0);
        assert_eq!(
            r.bbox.unwrap(),
            Rect {
                x0: 0,
                y0: 0,
                w: 4,
                h: 4
            }
        );
    }

    #[test]
    fn disjoint_particles_have_zero_overlap() {
        let xs = vec![6.5, 7.5];
        let ys = vec![6.5, 7.5];
        let r = alignment_report(&xs, &ys, 1.0, 1.0, 8, 8, &block());
        assert_eq!(r.overlap_fraction, 0.0);
        assert_eq!(r.ghost_cells, 2);
    }

    #[test]
    fn mixed_occupancy_counts_ghosts() {
        let xs = vec![0.5, 0.6, 5.5]; // two in cell (0,0), one outside
        let ys = vec![0.5, 0.5, 5.5];
        let r = alignment_report(&xs, &ys, 1.0, 1.0, 8, 8, &block());
        assert_eq!(r.covered_cells, 2);
        assert_eq!(r.inside_cells, 1);
        assert_eq!(r.ghost_cells, 1);
        assert!((r.overlap_fraction - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_rank_is_trivially_aligned() {
        let r = alignment_report(&[], &[], 1.0, 1.0, 8, 8, &block());
        assert!(r.bbox.is_none());
        assert_eq!(r.overlap_fraction, 1.0);
    }

    #[test]
    #[should_panic(expected = "differ in length")]
    fn mismatched_arrays_panic() {
        alignment_report(&[1.0], &[], 1.0, 1.0, 8, 8, &block());
    }
}
