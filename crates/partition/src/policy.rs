//! Redistribution decision policies (paper Section 5.2).
//!
//! * **Static** never redistributes (the baseline the paper's Figure 16
//!   shows losing badly);
//! * **Periodic(k)** redistributes every `k` iterations — needs the
//!   "potentially impractical pre-runtime analysis to determine an
//!   optimal periodicity";
//! * **DynamicSar** adapts the Stop-At-Rise heuristic: with `t0` the
//!   iteration time right after the last redistribution at `i0`, trigger
//!   at iteration `i1` with time `t1` when
//!   `(t1 - t0) * (i1 - i0) >= T_redistribution` (paper Eq. 1), using the
//!   previous redistribution's cost as the estimate of the next one.

use serde::{Deserialize, Serialize};

/// Serializable snapshot of a policy's mutable decision state, so a
/// checkpointed simulation resumes with the same redistribution
/// behaviour it would have had uninterrupted.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PolicyState {
    /// The policy keeps no mutable state (static, periodic).
    Stateless,
    /// Stop-At-Rise bookkeeping (see [`DynamicSarPolicy`]).
    DynamicSar {
        /// Iteration of the last redistribution.
        i0: usize,
        /// Post-redistribution baseline iteration time, if observed.
        t0: Option<f64>,
        /// Cost estimate for the next redistribution.
        redist_cost: f64,
    },
}

/// An auditable record of one `should_redistribute` evaluation — what
/// the policy observed, what it compared against, and what it decided.
/// Consumed by the simulation driver, which converts it into a
/// `policy_decision` trace event so every redistribution (and every
/// deliberate *non*-redistribution) can be replayed from the trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolicyDecision {
    /// Iteration the decision was made at.
    pub iter: usize,
    /// The iteration time the policy observed (its input).
    pub observed_s: f64,
    /// The baseline it compared against (`t0` for Stop-At-Rise); equals
    /// `observed_s` on the seeding iteration right after a
    /// redistribution, and NaN for policies without a time baseline.
    pub baseline_s: f64,
    /// Projected loss of *not* redistributing: `rise * (iter - i0)`
    /// (paper Eq. 1 left-hand side). NaN for time-blind policies.
    pub projected_loss_s: f64,
    /// The trigger threshold (`T_redistribution` for Stop-At-Rise).
    /// NaN for time-blind policies.
    pub threshold_s: f64,
    /// Whether the policy decided to redistribute.
    pub fired: bool,
}

/// Decides when the particles should be redistributed.
pub trait RedistributionPolicy: Send {
    /// Called after every iteration with the iteration's execution time;
    /// returns true when a redistribution should run *now*.
    fn should_redistribute(&mut self, iter: usize, iter_time_s: f64) -> bool;

    /// Called after each redistribution completes, with its cost; also
    /// called once after the initial distribution (iteration 0).
    fn notify_redistributed(&mut self, iter: usize, cost_s: f64);

    /// The audit record of the most recent `should_redistribute` call,
    /// if the policy produces one. The default (stateless policies)
    /// returns None; the driver then synthesizes a minimal record.
    fn last_decision(&self) -> Option<PolicyDecision> {
        None
    }

    /// Snapshot the mutable decision state for a checkpoint.
    fn snapshot_state(&self) -> PolicyState {
        PolicyState::Stateless
    }

    /// Restore state captured by [`RedistributionPolicy::snapshot_state`].
    /// A mismatched variant is ignored (the policy keeps its defaults).
    fn restore_state(&mut self, _state: &PolicyState) {}
}

/// Runtime-selectable policy configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PolicyKind {
    /// Never redistribute.
    Static,
    /// Redistribute every `k` iterations.
    Periodic(usize),
    /// Stop-At-Rise dynamic criterion (paper Eq. 1).
    DynamicSar,
}

impl PolicyKind {
    /// Instantiate the policy.
    pub fn build(self) -> Box<dyn RedistributionPolicy> {
        match self {
            PolicyKind::Static => Box::new(StaticPolicy),
            PolicyKind::Periodic(k) => Box::new(PeriodicPolicy::new(k)),
            PolicyKind::DynamicSar => Box::new(DynamicSarPolicy::new()),
        }
    }

    /// Label used in experiment rows.
    pub fn label(self) -> String {
        match self {
            PolicyKind::Static => "static".to_string(),
            PolicyKind::Periodic(k) => format!("periodic({k})"),
            PolicyKind::DynamicSar => "dynamic".to_string(),
        }
    }
}

/// Never redistributes.
#[derive(Debug, Clone, Copy, Default)]
pub struct StaticPolicy;

impl RedistributionPolicy for StaticPolicy {
    fn should_redistribute(&mut self, _iter: usize, _t: f64) -> bool {
        false
    }

    fn notify_redistributed(&mut self, _iter: usize, _cost_s: f64) {}
}

/// Redistributes every `k` iterations.
#[derive(Debug, Clone, Copy)]
pub struct PeriodicPolicy {
    k: usize,
}

impl PeriodicPolicy {
    /// Period `k` must be nonzero.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "period must be nonzero");
        Self { k }
    }
}

impl RedistributionPolicy for PeriodicPolicy {
    fn should_redistribute(&mut self, iter: usize, _t: f64) -> bool {
        iter > 0 && iter.is_multiple_of(self.k)
    }

    fn notify_redistributed(&mut self, _iter: usize, _cost_s: f64) {}
}

/// Stop-At-Rise dynamic policy (paper Eq. 1).
#[derive(Debug, Clone, Copy)]
pub struct DynamicSarPolicy {
    /// Iteration of the last redistribution (`i0`).
    i0: usize,
    /// Execution time of the iteration right after the last
    /// redistribution (`t0`); None until observed.
    t0: Option<f64>,
    /// Cost of the previous redistribution (`T_redistribution`).
    redist_cost: f64,
    /// Audit record of the most recent decision.
    last: Option<PolicyDecision>,
}

impl DynamicSarPolicy {
    /// A fresh policy; the first `notify_redistributed` (from the initial
    /// distribution) seeds the cost estimate.
    pub fn new() -> Self {
        Self {
            i0: 0,
            t0: None,
            redist_cost: f64::INFINITY,
            last: None,
        }
    }

    /// The current redistribution cost estimate.
    pub fn cost_estimate(&self) -> f64 {
        self.redist_cost
    }
}

impl Default for DynamicSarPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl RedistributionPolicy for DynamicSarPolicy {
    fn should_redistribute(&mut self, iter: usize, iter_time_s: f64) -> bool {
        let t0 = match self.t0 {
            // first iteration after a redistribution defines t0
            None => {
                self.t0 = Some(iter_time_s);
                self.last = Some(PolicyDecision {
                    iter,
                    observed_s: iter_time_s,
                    baseline_s: iter_time_s,
                    projected_loss_s: 0.0,
                    threshold_s: self.redist_cost,
                    fired: false,
                });
                return false;
            }
            Some(t0) => t0,
        };
        let rise = iter_time_s - t0;
        let projected_loss_s = rise.max(0.0) * (iter - self.i0) as f64;
        let fired = rise > 0.0 && projected_loss_s >= self.redist_cost;
        self.last = Some(PolicyDecision {
            iter,
            observed_s: iter_time_s,
            baseline_s: t0,
            projected_loss_s,
            threshold_s: self.redist_cost,
            fired,
        });
        fired
    }

    fn last_decision(&self) -> Option<PolicyDecision> {
        self.last
    }

    fn notify_redistributed(&mut self, iter: usize, cost_s: f64) {
        self.i0 = iter;
        self.t0 = None;
        self.redist_cost = cost_s;
    }

    fn snapshot_state(&self) -> PolicyState {
        PolicyState::DynamicSar {
            i0: self.i0,
            t0: self.t0,
            redist_cost: self.redist_cost,
        }
    }

    fn restore_state(&mut self, state: &PolicyState) {
        if let PolicyState::DynamicSar {
            i0,
            t0,
            redist_cost,
        } = *state
        {
            self.i0 = i0;
            self.t0 = t0;
            self.redist_cost = redist_cost;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_never_triggers() {
        let mut p = PolicyKind::Static.build();
        for i in 1..100 {
            assert!(!p.should_redistribute(i, i as f64 * 100.0));
        }
    }

    #[test]
    fn periodic_triggers_on_multiples() {
        let mut p = PolicyKind::Periodic(25).build();
        let fired: Vec<usize> = (1..=100)
            .filter(|&i| p.should_redistribute(i, 1.0))
            .collect();
        assert_eq!(fired, vec![25, 50, 75, 100]);
    }

    #[test]
    fn dynamic_waits_for_rise_to_amortize_cost() {
        let mut p = DynamicSarPolicy::new();
        p.notify_redistributed(0, 10.0); // redistribution costs 10s
                                         // iteration time grows by 0.1s per iteration from t0 = 1.0
        let mut fired_at = None;
        for i in 1..=200 {
            let t = 1.0 + 0.1 * (i - 1) as f64;
            if p.should_redistribute(i, t) {
                fired_at = Some(i);
                break;
            }
        }
        // (t1 - t0) * (i1 - i0) = 0.1 (i-1) * i >= 10 -> i = 11 is the
        // first integer with 0.1*(i-1)*i >= 10 (0.1*10*11 = 11)
        assert_eq!(fired_at, Some(11));
    }

    #[test]
    fn dynamic_never_fires_when_time_is_flat() {
        let mut p = DynamicSarPolicy::new();
        p.notify_redistributed(0, 1.0);
        for i in 1..1000 {
            assert!(!p.should_redistribute(i, 2.0), "fired at {i}");
        }
    }

    #[test]
    fn dynamic_resets_after_redistribution() {
        let mut p = DynamicSarPolicy::new();
        p.notify_redistributed(0, 1.0);
        assert!(!p.should_redistribute(1, 1.0)); // seeds t0
        assert!(p.should_redistribute(2, 3.0)); // rise 2 * span 2 >= 1
        p.notify_redistributed(2, 1.0);
        // t0 must be re-seeded: the first post-redistribution iteration
        // never fires even if slow
        assert!(!p.should_redistribute(3, 100.0));
    }

    #[test]
    fn dynamic_with_infinite_cost_never_fires_before_seed() {
        let mut p = DynamicSarPolicy::new();
        assert!(!p.should_redistribute(1, 5.0));
        assert!(!p.should_redistribute(2, 50.0));
    }

    #[test]
    fn labels() {
        assert_eq!(PolicyKind::Static.label(), "static");
        assert_eq!(PolicyKind::Periodic(25).label(), "periodic(25)");
        assert_eq!(PolicyKind::DynamicSar.label(), "dynamic");
    }

    #[test]
    #[should_panic(expected = "period must be nonzero")]
    fn zero_period_rejected() {
        PeriodicPolicy::new(0);
    }
}
