//! LSD radix (counting) sort specialized for bounded curve keys.
//!
//! Particle keys are cell indices along the space-filling curve, so they
//! are bounded by the number of mesh cells — a handful of significant
//! bytes, never 64 bits.  An LSD counting sort therefore replaces the
//! `O(n log n)` comparison sorts of the redistribution path with a few
//! `O(n)` passes, and it only runs the byte positions where keys in the
//! input actually *differ* (computed from the XOR-fold of the keys), so
//! a nearly-uniform bucket costs one pass or none at all.
//!
//! Stability is load-bearing: equal keys must keep their original
//! relative order so redistribution stays deterministic and the
//! modeled/threaded executors remain bit-identical.  Counting sort is
//! stable by construction, and in debug builds every call is verified
//! against the historical comparison-sort path
//! ([`crate::bucket::sorted_order_comparison`]'s `(key, index)` order),
//! which stays in the tree as the oracle.
//!
//! All entry points take a caller-owned [`RadixScratch`] so steady-state
//! callers (the per-rank sort kernels) perform zero heap allocations
//! once the scratch buffers have grown to the working-set size.

/// Bits per counting-sort digit.
const DIGIT_BITS: u32 = 8;
/// Number of histogram slots per pass.
const RADIX: usize = 1 << DIGIT_BITS;

/// Reusable buffers for [`radix_sort_indices`] /
/// [`radix_sorted_order_into`].  Keep one per rank and the sort kernels
/// allocate nothing in steady state.
#[derive(Debug, Clone, Default)]
pub struct RadixScratch {
    /// Ping-pong permutation buffer (grown to the largest input seen).
    pub idx: Vec<usize>,
    /// Digit histogram (grown to the 256-slot radix on first use).
    pub counts: Vec<usize>,
}

/// Stable-sort `idx` (indices into `keys`) in place by `keys[i]`,
/// preserving the existing order of entries with equal keys.
///
/// Runs one counting pass per byte position where the selected keys
/// differ; an input already in non-decreasing key order returns without
/// sorting at all.  In debug builds the result is checked against the
/// stable comparison-sort oracle.
///
/// # Panics
/// Panics (via indexing) if any entry of `idx` is out of range for
/// `keys`.
pub fn radix_sort_indices(keys: &[u64], idx: &mut [usize], scratch: &mut RadixScratch) {
    #[cfg(debug_assertions)]
    let oracle = {
        let mut o = idx.to_vec();
        // stable comparison sort: ties keep the incoming `idx` order,
        // exactly the tie-break contract the radix path must honor
        o.sort_by_key(|&i| keys[i]);
        o
    };
    radix_sort_indices_impl(keys, idx, scratch);
    #[cfg(debug_assertions)]
    debug_assert_eq!(
        idx,
        oracle.as_slice(),
        "radix order diverged from the comparison oracle"
    );
}

/// Largest `max - min` key range handled by the single-pass counting
/// fast path (histogram of one `usize` per distinct value).  Covers
/// every paper mesh (`nx * ny` cells) in one pass; wider ranges fall
/// back to byte-wise passes.
const COUNTING_MAX_RANGE: u64 = 1 << 16;

fn radix_sort_indices_impl(keys: &[u64], idx: &mut [usize], scratch: &mut RadixScratch) {
    let n = idx.len();
    if n <= 1 {
        return;
    }
    // One prep pass: find the key range and the byte positions worth
    // sorting (where some pair of keys differs), and detect
    // already-sorted input.
    let first = keys[idx[0]];
    let mut diff = 0u64;
    let mut sorted = true;
    let mut prev = first;
    let mut min = first;
    let mut max = first;
    for &i in idx.iter() {
        let k = keys[i];
        diff |= k ^ first;
        if k < prev {
            sorted = false;
        }
        prev = k;
        min = min.min(k);
        max = max.max(k);
    }
    if sorted {
        // non-decreasing keys: the incoming order IS the stable answer
        return;
    }
    if max - min < COUNTING_MAX_RANGE {
        // bounded domain (the PIC case: curve keys < cells): one stable
        // counting pass over `key - min` replaces every byte pass
        counting_sort_indices(keys, idx, scratch, min, (max - min) as usize + 1);
        return;
    }
    let RadixScratch { idx: aux, counts } = scratch;
    aux.clear();
    aux.resize(n, 0);
    counts.clear();
    counts.resize(RADIX, 0);
    let mut in_place = true; // current data lives in `idx` (vs `aux`)
    let mut shift = 0u32;
    let mut remaining = diff;
    while remaining != 0 {
        if remaining & (RADIX as u64 - 1) != 0 {
            {
                let (src, dst): (&[usize], &mut [usize]) = if in_place {
                    (idx, aux.as_mut_slice())
                } else {
                    (aux.as_slice(), idx)
                };
                for c in counts.iter_mut() {
                    *c = 0;
                }
                for &i in src {
                    counts[((keys[i] >> shift) & (RADIX as u64 - 1)) as usize] += 1;
                }
                let mut sum = 0usize;
                for c in counts.iter_mut() {
                    let here = *c;
                    *c = sum;
                    sum += here;
                }
                for &i in src {
                    let d = ((keys[i] >> shift) & (RADIX as u64 - 1)) as usize;
                    dst[counts[d]] = i;
                    counts[d] += 1;
                }
            }
            in_place = !in_place;
        }
        remaining >>= DIGIT_BITS;
        shift += DIGIT_BITS;
    }
    if !in_place {
        idx.copy_from_slice(aux);
    }
}

/// One stable counting pass over a small key range: histogram of
/// `key - min` (range `slots`), exclusive prefix sum, ordered scatter.
fn counting_sort_indices(
    keys: &[u64],
    idx: &mut [usize],
    scratch: &mut RadixScratch,
    min: u64,
    slots: usize,
) {
    let RadixScratch { idx: aux, counts } = scratch;
    aux.clear();
    aux.resize(idx.len(), 0);
    counts.clear();
    counts.resize(slots, 0);
    for &i in idx.iter() {
        counts[(keys[i] - min) as usize] += 1;
    }
    let mut sum = 0usize;
    for c in counts.iter_mut() {
        let here = *c;
        *c = sum;
        sum += here;
    }
    for &i in idx.iter() {
        let d = (keys[i] - min) as usize;
        aux[counts[d]] = i;
        counts[d] += 1;
    }
    idx.copy_from_slice(aux);
}

/// Fill `order` with the stable sorted-order permutation of `keys`:
/// `order[i]` is the original index of the `i`-th smallest key, equal
/// keys in original-index order — bit-for-bit the permutation of the
/// historical `sort_by_key` on `(key, index)` tuples, without
/// materializing the tuples.
pub fn radix_sorted_order_into(keys: &[u64], order: &mut Vec<usize>, scratch: &mut RadixScratch) {
    order.clear();
    order.extend(0..keys.len());
    radix_sort_indices(keys, order, scratch);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oracle(keys: &[u64]) -> Vec<usize> {
        let mut o: Vec<usize> = (0..keys.len()).collect();
        o.sort_by_key(|&i| (keys[i], i));
        o
    }

    fn check(keys: &[u64]) {
        let mut order = Vec::new();
        let mut scratch = RadixScratch::default();
        radix_sorted_order_into(keys, &mut order, &mut scratch);
        assert_eq!(order, oracle(keys), "keys {keys:?}");
    }

    #[test]
    fn empty_and_singleton() {
        check(&[]);
        check(&[42]);
    }

    #[test]
    fn matches_oracle_on_small_patterns() {
        check(&[3, 1, 3, 0, 1]);
        check(&[0, 0, 0, 0]);
        check(&[5, 4, 3, 2, 1, 0]);
        check(&[1, 2, 3, 4, 5]);
        check(&[u64::MAX, 0, u64::MAX, 1]);
        check(&[1 << 40, 1, 1 << 40, 0, 255, 256]);
    }

    #[test]
    fn matches_oracle_on_bounded_key_domain() {
        // the PIC case: keys < cells (here 8192), many duplicates
        let keys: Vec<u64> = (0..10_000u64).map(|i| (i * 2654435761) % 8192).collect();
        check(&keys);
    }

    #[test]
    fn stable_on_all_equal_keys() {
        let keys = vec![7u64; 100];
        let mut order = Vec::new();
        let mut scratch = RadixScratch::default();
        radix_sorted_order_into(&keys, &mut order, &mut scratch);
        assert_eq!(order, (0..100).collect::<Vec<usize>>());
    }

    #[test]
    fn sorts_index_subsets_stably() {
        let keys = vec![9u64, 2, 9, 2, 0, 5, 2];
        let mut idx = vec![6, 0, 2, 3, 1]; // arbitrary subset, with dups of key 2
        let mut scratch = RadixScratch::default();
        radix_sort_indices(&keys, &mut idx, &mut scratch);
        // keys: idx6=2, idx0=9, idx2=9, idx3=2, idx1=2 -> stable by key:
        // 2s keep order (6, 3, 1), then 9s keep order (0, 2)
        assert_eq!(idx, vec![6, 3, 1, 0, 2]);
    }

    #[test]
    fn scratch_reuse_across_growing_inputs() {
        let mut scratch = RadixScratch::default();
        let mut order = Vec::new();
        for n in [3usize, 100, 17, 1000] {
            let keys: Vec<u64> = (0..n as u64).map(|i| (i * 37) % 101).collect();
            radix_sorted_order_into(&keys, &mut order, &mut scratch);
            assert_eq!(order, oracle(&keys), "n = {n}");
        }
    }

    #[test]
    fn offset_domain_uses_counting_path() {
        // small spread around a huge offset: the counting fast path must
        // rebase on min, not on absolute key values
        let base = u64::MAX - 10_000;
        let keys: Vec<u64> = (0..5_000u64).map(|i| base + (i * 7919) % 9_000).collect();
        check(&keys);
    }

    #[test]
    fn range_straddling_counting_threshold() {
        // just below and just above the single-pass cutoff
        let narrow: Vec<u64> = (0..2_000u64).map(|i| (i * 31) % ((1 << 16) - 1)).collect();
        check(&narrow);
        let wide: Vec<u64> = (0..2_000u64)
            .map(|i| (i * 131) % ((1 << 16) + 50))
            .collect();
        check(&wide);
    }

    #[test]
    fn wide_keys_exercise_multiple_passes() {
        let keys: Vec<u64> = (0..500u64)
            .map(|i| (i.wrapping_mul(0x9e3779b97f4a7c15)).rotate_left((i % 64) as u32))
            .collect();
        check(&keys);
    }
}
