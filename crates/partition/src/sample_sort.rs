//! Splitter selection and destination classification.
//!
//! The initial particle distribution is a sample sort (paper Section 5.1:
//! "A sample-based sorting scheme can be used efficiently to perform the
//! distribution"): every rank contributes a regular sample of its sorted
//! keys, splitters are chosen from the gathered sample, and particles are
//! routed to the rank owning their key range.  After the first sort, the
//! *actual* per-rank key bounds (`rank_bounds_from_sorted`) replace the
//! sampled splitters and drive the incremental redistributions.

/// Regular sample of `count` keys from a rank's sorted key array.
///
/// Returns fewer than `count` when the rank holds fewer keys.
pub fn regular_sample(sorted_keys: &[u64], count: usize) -> Vec<u64> {
    if sorted_keys.is_empty() || count == 0 {
        return Vec::new();
    }
    let n = sorted_keys.len();
    let take = count.min(n);
    (0..take).map(|i| sorted_keys[(i * n) / take]).collect()
}

/// Select `p - 1` splitters from the gathered global sample (sorted
/// in-place).  Splitter `i` is the upper key bound (exclusive) of rank `i`.
pub fn select_splitters(sample: &mut [u64], p: usize) -> Vec<u64> {
    assert!(p > 0, "need at least one rank");
    sample.sort_unstable();
    let mut splitters = Vec::with_capacity(p - 1);
    for i in 1..p {
        let pos = (i * sample.len()) / p;
        splitters.push(sample[pos.min(sample.len().saturating_sub(1))]);
    }
    splitters
}

/// Exclusive upper key bound of every rank from the concatenation of all
/// ranks' extreme keys: `last_keys[r]` is rank `r`'s largest key after the
/// previous sort (the paper's `globalBound`, gathered by global
/// concatenation).  The final rank's bound is `u64::MAX`.
pub fn rank_bounds_from_sorted(last_keys: &[u64]) -> Vec<u64> {
    let p = last_keys.len();
    let mut bounds: Vec<u64> = last_keys.iter().map(|&k| k.saturating_add(1)).collect();
    if p > 0 {
        bounds[p - 1] = u64::MAX;
    }
    // bounds must be non-decreasing even if some rank was empty or ranges
    // interleaved slightly; clamp up
    for i in 1..p {
        if bounds[i] < bounds[i - 1] {
            bounds[i] = bounds[i - 1];
        }
    }
    bounds
}

/// Destination rank of every key under exclusive upper `bounds`
/// (`bounds[r]` is the first key *not* owned by rank `r`).
///
/// # Panics
/// Panics if `bounds` is empty.
pub fn classify_by_bounds(keys: &[u64], bounds: &[u64]) -> Vec<usize> {
    let mut dests = Vec::new();
    classify_by_bounds_into(keys, bounds, &mut dests);
    dests
}

/// [`classify_by_bounds`] into a caller-owned buffer — the hot path
/// reuses one destination vector per rank.
///
/// # Panics
/// Panics if `bounds` is empty.
pub fn classify_by_bounds_into(keys: &[u64], bounds: &[u64], dests: &mut Vec<usize>) {
    assert!(!bounds.is_empty(), "no rank bounds");
    let last = bounds.len() - 1;
    dests.clear();
    dests.reserve(keys.len());
    for &k in keys {
        dests.push(bounds[..last].partition_point(|&b| b <= k).min(last));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitters_divide_a_uniform_sample() {
        let mut sample: Vec<u64> = (0..100).collect();
        let s = select_splitters(&mut sample, 4);
        assert_eq!(s, vec![25, 50, 75]);
    }

    #[test]
    fn splitters_for_single_rank_are_empty() {
        let mut sample = vec![5, 1, 9];
        assert!(select_splitters(&mut sample, 1).is_empty());
    }

    #[test]
    fn bounds_from_last_keys_are_exclusive() {
        // ranks ended the previous sort with max keys 9, 19, 40
        let bounds = rank_bounds_from_sorted(&[9, 19, 40]);
        assert_eq!(bounds, vec![10, 20, u64::MAX]);
    }

    #[test]
    fn bounds_are_monotone_even_with_odd_inputs() {
        let bounds = rank_bounds_from_sorted(&[30, 10, 40]);
        assert_eq!(bounds, vec![31, 31, u64::MAX]);
    }

    #[test]
    fn classification_respects_bounds() {
        let bounds = vec![10, 20, u64::MAX];
        let dests = classify_by_bounds(&[0, 9, 10, 15, 19, 20, 1000], &bounds);
        assert_eq!(dests, vec![0, 0, 1, 1, 1, 2, 2]);
    }

    #[test]
    fn classification_covers_u64_max() {
        let bounds = vec![10, u64::MAX];
        let dests = classify_by_bounds(&[u64::MAX], &bounds);
        assert_eq!(dests, vec![1]);
    }

    #[test]
    fn regular_sample_spans_the_array() {
        let keys: Vec<u64> = (0..1000).map(|i| i * 2).collect();
        let s = regular_sample(&keys, 10);
        assert_eq!(s.len(), 10);
        assert_eq!(s[0], 0);
        assert!(s.windows(2).all(|w| w[0] <= w[1]));
        assert!(*s.last().unwrap() >= 1600, "{s:?}");
    }

    #[test]
    fn regular_sample_handles_small_arrays() {
        assert_eq!(regular_sample(&[], 5), Vec::<u64>::new());
        assert_eq!(regular_sample(&[7], 5), vec![7]);
        let s = regular_sample(&[1, 2, 3], 5);
        assert_eq!(s, vec![1, 2, 3]);
    }

    #[test]
    fn roundtrip_sample_sort_reference() {
        // end-to-end sanity on one "machine": sample, split, classify;
        // every key must land on a rank whose bound range contains it.
        let keys: Vec<u64> = (0..500).map(|i| (i * 7919) % 1000).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        let mut sample = regular_sample(&sorted, 32);
        let splitters = select_splitters(&mut sample, 4);
        let mut bounds = splitters.clone();
        bounds.push(u64::MAX);
        let dests = classify_by_bounds(&keys, &bounds);
        for (k, d) in keys.iter().zip(&dests) {
            if *d > 0 {
                assert!(*k >= bounds[d - 1], "key {k} below rank {d}");
            }
            assert!(*k < bounds[*d], "key {k} above rank {d}");
        }
    }
}
