//! Property tests for the distribution machinery: classification,
//! balancing and incremental sorting must hold for arbitrary inputs, not
//! just the shapes the paper's workloads produce.

use pic_partition::{
    balance_targets, classify_by_bounds, order_maintaining_balance, radix_sort_indices,
    radix_sorted_order_into, rank_bounds_from_sorted, regular_sample, select_splitters,
    sorted_order, sorted_order_comparison, BucketIncrementalSorter, RadixScratch,
};
use proptest::prelude::*;

/// The comparison-sort permutation the radix path must reproduce
/// bit-for-bit: stable order by key, ties by original index.
fn oracle_order(keys: &[u64]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..keys.len()).collect();
    order.sort_by_key(|&i| (keys[i], i));
    order
}

proptest! {
    /// Radix sort produces the exact permutation of the historical
    /// comparison sort for arbitrary keys — the property the bit-identical
    /// cross-validation suite rests on.
    #[test]
    fn radix_matches_comparison_oracle(
        keys in prop::collection::vec(any::<u64>(), 0..400),
    ) {
        let mut order: Vec<usize> = Vec::new();
        let mut scratch = RadixScratch::default();
        radix_sorted_order_into(&keys, &mut order, &mut scratch);
        prop_assert_eq!(&order, &oracle_order(&keys));
        prop_assert_eq!(order, sorted_order_comparison(&keys));
    }

    /// Narrow-domain keys (the bounded Hilbert-key case that takes the
    /// single-pass counting path) also match the oracle exactly.
    #[test]
    fn radix_matches_oracle_on_narrow_domain(
        keys in prop::collection::vec(0u64..8192, 0..400),
        base in any::<u64>(),
    ) {
        let shifted: Vec<u64> = keys
            .iter()
            .map(|&k| base.saturating_sub(8192).saturating_add(k))
            .collect();
        prop_assert_eq!(sorted_order(&shifted), oracle_order(&shifted));
    }

    /// All-equal keys: the output must be the identity permutation
    /// (stability leaves ties in original index order).
    #[test]
    fn radix_is_identity_on_equal_keys(
        key in any::<u64>(),
        n in 0usize..300,
    ) {
        let keys = vec![key; n];
        let expect: Vec<usize> = (0..n).collect();
        prop_assert_eq!(sorted_order(&keys), expect);
    }

    /// Already-sorted keys hit the early-exit path and still return the
    /// oracle permutation.
    #[test]
    fn radix_handles_presorted_keys(
        mut keys in prop::collection::vec(any::<u64>(), 0..400),
    ) {
        keys.sort_unstable();
        prop_assert_eq!(sorted_order(&keys), oracle_order(&keys));
    }

    /// Sorting an index subset (the per-bucket call shape) is stable and
    /// agrees with the comparison sort restricted to those indices.
    #[test]
    fn radix_sorts_index_subsets(
        keys in prop::collection::vec(any::<u64>(), 1..200),
        picks in prop::collection::vec(any::<usize>(), 0..100),
    ) {
        let mut idx: Vec<usize> = picks.iter().map(|p| p % keys.len()).collect();
        let mut expect = idx.clone();
        expect.sort_by_key(|&i| keys[i]); // stable: preserves idx order on ties
        let mut scratch = RadixScratch::default();
        radix_sort_indices(&keys, &mut idx, &mut scratch);
        prop_assert_eq!(idx, expect);
    }

    /// Every key classifies into a rank whose bound range contains it.
    #[test]
    fn classification_is_consistent_with_bounds(
        keys in prop::collection::vec(any::<u64>(), 0..200),
        mut raw_bounds in prop::collection::vec(any::<u64>(), 1..16),
    ) {
        raw_bounds.sort_unstable();
        let last = raw_bounds.len() - 1;
        raw_bounds[last] = u64::MAX;
        let dests = classify_by_bounds(&keys, &raw_bounds);
        for (k, d) in keys.iter().zip(&dests) {
            prop_assert!(*d < raw_bounds.len());
            prop_assert!(*k < raw_bounds[*d] || *d == last);
            if *d > 0 {
                prop_assert!(*k >= raw_bounds[*d - 1]);
            }
        }
    }

    /// Targets always sum to the total and differ by at most one.
    #[test]
    fn balance_targets_invariants(counts in prop::collection::vec(0usize..5000, 1..64)) {
        let t = balance_targets(&counts);
        prop_assert_eq!(t.iter().sum::<usize>(), counts.iter().sum::<usize>());
        let min = *t.iter().min().unwrap();
        let max = *t.iter().max().unwrap();
        prop_assert!(max - min <= 1);
    }

    /// The balance plan moves exactly the surplus and its ranges are
    /// within each source's local array.
    #[test]
    fn balance_plan_is_well_formed(counts in prop::collection::vec(0usize..2000, 1..32)) {
        let plan = order_maintaining_balance(&counts);
        for (src, moves) in plan.moves.iter().enumerate() {
            let mut moved_here = 0;
            for (dest, range) in moves {
                prop_assert!(*dest != src);
                prop_assert!(range.end <= counts[src]);
                prop_assert!(range.start < range.end);
                moved_here += range.len();
            }
            // a source keeps at least max(0, target) of its own... the
            // amount moved never exceeds what it had
            prop_assert!(moved_here <= counts[src]);
        }
        // conservation: sum of incoming = sum of outgoing
        let outgoing: usize = plan.moved();
        let incoming: usize = plan
            .moves
            .iter()
            .flatten()
            .map(|(_, r)| r.len())
            .sum();
        prop_assert_eq!(outgoing, incoming);
    }

    /// Applying the balance plan to synthetic sorted rank arrays always
    /// yields the target counts with the global order intact.
    #[test]
    fn balance_plan_preserves_global_order(counts in prop::collection::vec(0usize..300, 1..16)) {
        // global array 0..total split by counts
        let total: usize = counts.iter().sum();
        let mut ranks: Vec<Vec<u64>> = Vec::new();
        let mut next = 0u64;
        for &c in &counts {
            ranks.push((next..next + c as u64).collect());
            next += c as u64;
        }
        let plan = order_maintaining_balance(&counts);
        // apply
        let p = counts.len();
        let mut incoming: Vec<Vec<(usize, Vec<u64>)>> = vec![Vec::new(); p];
        let mut kept: Vec<Vec<u64>> = Vec::new();
        for (src, local) in ranks.iter().enumerate() {
            let mut take = vec![false; local.len()];
            for (dest, range) in &plan.moves[src] {
                incoming[*dest].push((src, local[range.clone()].to_vec()));
                for i in range.clone() { take[i] = true; }
            }
            kept.push(local.iter().zip(&take).filter(|&(_, &t)| !t).map(|(&v, _)| v).collect());
        }
        let mut flat = Vec::with_capacity(total);
        for r in 0..p {
            incoming[r].sort_by_key(|&(s, _)| s);
            let mut v: Vec<u64> = Vec::new();
            for (s, chunk) in &incoming[r] { if *s < r { v.extend(chunk); } }
            v.extend(&kept[r]);
            for (s, chunk) in &incoming[r] { if *s > r { v.extend(chunk); } }
            prop_assert_eq!(v.len(), plan.targets[r], "rank {} count", r);
            flat.extend(v);
        }
        let expect: Vec<u64> = (0..total as u64).collect();
        prop_assert_eq!(flat, expect);
    }

    /// The incremental sorter sorts arbitrary keys under arbitrary
    /// (valid) boundary states, and its permutation is stable.
    #[test]
    fn incremental_sort_always_sorts(
        keys in prop::collection::vec(any::<u64>(), 0..300),
        prior in prop::collection::vec(any::<u64>(), 0..300),
        l in 1usize..32,
    ) {
        let mut sorter = BucketIncrementalSorter::new(l);
        let mut sorted_prior = prior.clone();
        sorted_prior.sort_unstable();
        sorter.rebuild(&sorted_prior);
        let result = sorter.sort_incremental(&keys);
        prop_assert_eq!(result.order.len(), keys.len());
        // sorted and stable: equal keys in original index order
        for w in result.order.windows(2) {
            let (a, b) = (w[0], w[1]);
            prop_assert!(
                keys[a] < keys[b] || (keys[a] == keys[b] && a < b),
                "not stably sorted"
            );
        }
        // matches the reference stable sort
        prop_assert_eq!(result.order, sorted_order(&keys));
    }

    /// Rank bounds from last keys are monotone and end at u64::MAX.
    #[test]
    fn rank_bounds_are_monotone(last_keys in prop::collection::vec(any::<u64>(), 1..64)) {
        let bounds = rank_bounds_from_sorted(&last_keys);
        prop_assert_eq!(bounds.len(), last_keys.len());
        prop_assert!(bounds.windows(2).all(|w| w[0] <= w[1]));
        prop_assert_eq!(*bounds.last().unwrap(), u64::MAX);
    }

    /// Splitters are non-decreasing and drawn from the sample.
    #[test]
    fn splitters_are_ordered_members(
        mut sample in prop::collection::vec(any::<u64>(), 1..500),
        p in 1usize..32,
    ) {
        let original = sample.clone();
        let splitters = select_splitters(&mut sample, p);
        prop_assert_eq!(splitters.len(), p - 1);
        prop_assert!(splitters.windows(2).all(|w| w[0] <= w[1]));
        for s in &splitters {
            prop_assert!(original.contains(s));
        }
    }

    /// Regular samples are sorted subsets of a sorted array.
    #[test]
    fn regular_sample_is_sorted_subset(
        mut keys in prop::collection::vec(any::<u64>(), 0..400),
        count in 0usize..64,
    ) {
        keys.sort_unstable();
        let sample = regular_sample(&keys, count);
        prop_assert!(sample.len() <= count.min(keys.len().max(1)));
        prop_assert!(sample.windows(2).all(|w| w[0] <= w[1]));
        for s in &sample {
            prop_assert!(keys.binary_search(s).is_ok());
        }
    }
}
