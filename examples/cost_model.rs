//! Cost model vs machine: do the Section-4 closed-form bounds actually
//! bound the simulated phase times?
//!
//! Evaluates the paper's `T_scatter`, `T_fields`, `T_gather`, `T_push`
//! formulas for the evaluation configurations and compares them against
//! the per-phase times charged by the virtual machine.
//!
//! ```text
//! cargo run --release --example cost_model
//! ```

use pic1996::prelude::*;
use pic_core::ideal_bounds;
use pic_particles::ParticleDistribution;

fn main() {
    println!(
        "{:<28} {:>10} {:>10} {:>10} {:>10}",
        "configuration", "phase", "bound", "simulated", "ratio"
    );
    for (nx, ny, n, p) in [
        (128usize, 64usize, 32_768usize, 32usize),
        (256, 128, 65_536, 32),
        (256, 128, 65_536, 64),
    ] {
        let cfg = SimConfig {
            nx,
            ny,
            particles: n,
            distribution: ParticleDistribution::Uniform,
            machine: MachineConfig::cm5(p),
            policy: pic_partition::PolicyKind::Static,
            ..SimConfig::paper_default()
        };
        let bounds = ideal_bounds(&cfg.machine, n, nx * ny, 28);
        let mut sim = ParallelPicSim::new(cfg);
        let report = sim.run(20);
        let iters = 20.0;
        let b = report.breakdown;
        let label = format!("{nx}x{ny} n={n} p={p}");
        for (phase, bound, simulated) in [
            ("scatter", bounds.scatter_s, b.scatter_s / iters),
            ("fields", bounds.fields_s, b.field_solve_s / iters),
            ("gather", bounds.gather_s, b.gather_s / iters),
            ("push", bounds.push_s, b.push_s / iters),
        ] {
            println!(
                "{:<28} {:>10} {:>10.4} {:>10.4} {:>10.2}",
                label,
                phase,
                bound,
                simulated,
                simulated / bound
            );
        }
        println!(
            "{:<28} {:>10} {:>10.4} {:>10.4}",
            "",
            "TOTAL",
            bounds.total_s(),
            (b.scatter_s + b.field_solve_s + b.gather_s + b.push_s) / iters
        );
        println!();
    }
    println!("ratios near 1 mean the Section-4 model tracks the machine; slight");
    println!("excess is expected because the machine charges both the sending and");
    println!("receiving end of every message while the paper's bound counts one.");
}
