//! 3-D partitioning demo: the paper's "generalizes to n dimensions"
//! remark, made concrete.
//!
//! A 3-D particle cloud is keyed along the 3-D Hilbert curve and along a
//! 3-D snakelike ordering, split into equal contiguous chunks (one per
//! rank), and each chunk's spatial compactness is measured — bounding-box
//! surface area is the 3-D analogue of the subdomain perimeter that
//! bounds scatter/gather communication.
//!
//! ```text
//! cargo run --release --example hilbert3d_partition
//! ```

use pic1996::index::{
    hilbert3d_range_stats, snake3d_coords, snake3d_index, snake3d_range_stats, Hilbert3d,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let order = 4; // 16^3 cube
    let parts = 32;
    println!("contiguous index ranges of a 16^3 mesh split into {parts} ranks:\n");
    println!(
        "{:<12} {:>12} {:>12} {:>14}",
        "ordering", "bbox volume", "aspect", "bbox surface"
    );
    let h = hilbert3d_range_stats(order, parts);
    let s = snake3d_range_stats(order, parts);
    for (name, st) in [("hilbert3d", h), ("snake3d", s)] {
        println!(
            "{:<12} {:>12.1} {:>12.2} {:>14.1}",
            name, st.mean_volume, st.mean_aspect, st.mean_surface
        );
    }
    println!(
        "\nhilbert surface is {:.1}% of snake surface -> proportionally less\nghost-cell communication per rank\n",
        100.0 * h.mean_surface / s.mean_surface
    );

    // particle-level check: key a Gaussian 3-D cloud both ways, split
    // equally, and measure mean per-rank bounding-box surface
    let side = 1u64 << order;
    let n = 32_768;
    let mut rng = StdRng::seed_from_u64(1996);
    let mut gauss = || -> f64 {
        let u1: f64 = rng.random_range(f64::EPSILON..1.0);
        let u2: f64 = rng.random_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    };
    let cells: Vec<(u64, u64, u64)> = (0..n)
        .map(|_| {
            let clamp = |v: f64| -> u64 { (v.clamp(0.0, side as f64 - 1.0)) as u64 };
            (
                clamp(side as f64 / 2.0 + gauss() * side as f64 / 8.0),
                clamp(side as f64 / 2.0 + gauss() * side as f64 / 8.0),
                clamp(side as f64 / 2.0 + gauss() * side as f64 / 8.0),
            )
        })
        .collect();
    let hcurve = Hilbert3d::new(order);

    let mean_surface = |keys: &mut Vec<(u64, usize)>| -> f64 {
        keys.sort_unstable();
        let mut total = 0.0;
        for p in 0..parts {
            let lo = keys.len() * p / parts;
            let hi = keys.len() * (p + 1) / parts;
            let (mut min, mut max) = ([u64::MAX; 3], [0u64; 3]);
            for &(_, i) in &keys[lo..hi] {
                let (x, y, z) = cells[i];
                for (c, v) in [x, y, z].into_iter().enumerate() {
                    min[c] = min[c].min(v);
                    max[c] = max[c].max(v);
                }
            }
            let e: Vec<f64> = (0..3).map(|c| (max[c] - min[c] + 1) as f64).collect();
            total += 2.0 * (e[0] * e[1] + e[1] * e[2] + e[0] * e[2]);
        }
        total / parts as f64
    };

    let mut hkeys: Vec<(u64, usize)> = cells
        .iter()
        .enumerate()
        .map(|(i, &(x, y, z))| (hcurve.index(x, y, z), i))
        .collect();
    let mut skeys: Vec<(u64, usize)> = cells
        .iter()
        .enumerate()
        .map(|(i, &(x, y, z))| (snake3d_index(side, x, y, z), i))
        .collect();
    let hs = mean_surface(&mut hkeys);
    let ss = mean_surface(&mut skeys);
    println!("irregular 3-D cloud ({n} particles), equal split over {parts} ranks:");
    println!("  hilbert3d mean subdomain bbox surface: {hs:.1}");
    println!("  snake3d   mean subdomain bbox surface: {ss:.1}");
    println!("  -> hilbert subdomains are {:.1}x more compact", ss / hs);

    // sanity print of the curve itself
    let (x, y, z) = snake3d_coords(side, 17);
    println!("\n(snake3d index 17 sits at cell ({x},{y},{z}) of the {side}^3 cube)");
}
