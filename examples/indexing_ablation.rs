//! Indexing ablation: why Hilbert?
//!
//! Compares all four indexing schemes on (a) pure locality metrics of the
//! curve itself and (b) the communication they produce in an actual
//! simulation.  Reproduces the reasoning of paper Section 6.3: snakelike
//! subdomains are thin rectangles with big perimeters; Hilbert subdomains
//! are compact along both dimensions.
//!
//! ```text
//! cargo run --release --example indexing_ablation
//! ```

use pic1996::prelude::*;
use pic_index::{neighbor_jump_stats, range_bbox_stats};
use pic_particles::ParticleDistribution;
use pic_partition::PolicyKind as _PolicyAlias; // demonstrate re-export equivalence

fn main() {
    let (nx, ny, parts) = (64, 64, 16);
    println!("curve locality on a {nx}x{ny} mesh split into {parts} ranges:\n");
    println!(
        "{:<10} {:>12} {:>10} {:>12} {:>12} {:>10}",
        "scheme", "mean jump", "max jump", "bbox aspect", "perimeter", "fill"
    );
    for scheme in IndexScheme::ALL {
        let ix = scheme.build(nx, ny);
        let jumps = neighbor_jump_stats(ix.as_ref());
        let ranges = range_bbox_stats(ix.as_ref(), parts);
        println!(
            "{:<10} {:>12.1} {:>10} {:>12.2} {:>12.1} {:>10.2}",
            scheme.label(),
            jumps.mean,
            jumps.max,
            ranges.mean_aspect,
            ranges.mean_perimeter,
            ranges.mean_fill
        );
    }

    println!("\nsimulated overhead (200 iterations, irregular, 16 ranks):\n");
    println!(
        "{:<10} {:>12} {:>14} {:>16}",
        "scheme", "total (s)", "overhead (s)", "peak scatter B"
    );
    for scheme in IndexScheme::ALL {
        let cfg = SimConfig {
            nx: 64,
            ny: 64,
            particles: 16_384,
            distribution: ParticleDistribution::IrregularCenter,
            machine: MachineConfig::cm5(16),
            scheme,
            policy: _PolicyAlias::Periodic(25),
            thermal_u: 0.7,
            ..SimConfig::paper_default()
        };
        let mut sim = ParallelPicSim::new(cfg);
        let report = sim.run(200);
        let peak = report
            .iterations
            .iter()
            .map(|r| r.scatter_max_bytes_sent)
            .max()
            .unwrap_or(0);
        println!(
            "{:<10} {:>12.2} {:>14.2} {:>16}",
            scheme.label(),
            report.total_s,
            report.overhead_s,
            peak
        );
    }
    println!("\n(expect hilbert < morton < snake < rowmajor in overhead)");
}
