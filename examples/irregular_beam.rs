//! Irregular beam: the paper's hard case, comparing redistribution
//! policies head to head.
//!
//! Particles start concentrated in the domain centre (paper Figure 15)
//! and expand thermally.  Under the direct Lagrangian method each rank's
//! particle subdomain smears across the mesh, so scatter/gather
//! communication keeps rising unless the particles are redistributed.
//! This example runs the same 200-iteration simulation under static,
//! periodic and dynamic policies and prints the trade-off table.
//!
//! ```text
//! cargo run --release --example irregular_beam
//! ```

use pic1996::prelude::*;
use pic_particles::ParticleDistribution;

fn main() {
    let base = SimConfig {
        nx: 64,
        ny: 64,
        particles: 16_384,
        distribution: ParticleDistribution::IrregularCenter,
        machine: MachineConfig::cm5(16),
        thermal_u: 0.7,
        ..SimConfig::paper_default()
    };
    println!(
        "irregular beam: {} particles, {}x{} mesh, {} ranks, 200 iterations\n",
        base.particles, base.nx, base.ny, base.machine.ranks
    );

    println!(
        "{:<16} {:>10} {:>10} {:>10} {:>8} {:>12}",
        "policy", "total (s)", "exec (s)", "redist (s)", "#redist", "final align"
    );

    let policies = [
        PolicyKind::Static,
        PolicyKind::Periodic(50),
        PolicyKind::Periodic(25),
        PolicyKind::Periodic(10),
        PolicyKind::Periodic(5),
        PolicyKind::DynamicSar,
    ];
    let mut best: Option<(String, f64)> = None;
    for policy in policies {
        let mut cfg = base.clone();
        cfg.policy = policy;
        let mut sim = ParallelPicSim::new(cfg);
        let report = sim.run(200);
        let align = sim
            .alignment()
            .iter()
            .map(|r| r.overlap_fraction)
            .sum::<f64>()
            / sim.machine().num_ranks() as f64;
        println!(
            "{:<16} {:>10.2} {:>10.2} {:>10.2} {:>8} {:>12.2}",
            policy.label(),
            report.total_s,
            report.total_s - report.redistribute_total_s,
            report.redistribute_total_s,
            report.redistributions,
            align
        );
        let better = match &best {
            Some((_, t)) => report.total_s < *t,
            None => true,
        };
        if better {
            best = Some((policy.label(), report.total_s));
        }
    }
    let (name, t) = best.unwrap();
    println!("\nwinner: {name} at {t:.2} modeled seconds");
    println!("(the paper's point: dynamic needs no tuning yet lands near the best period)");
}
