//! Langmuir (plasma) oscillation under the electrostatic PIC variant —
//! a quantitative physics validation of the whole deposit/solve/push
//! chain: a cold electron plasma displaced sinusoidally must ring at the
//! plasma frequency `omega_p = sqrt(n0 q^2 / m)`.
//!
//! ```text
//! cargo run --release --example plasma_oscillation
//! ```

use pic1996::prelude::*;
use pic_core::ElectrostaticPicSim;
use pic_particles::ParticleDistribution;
use pic_partition::PolicyKind;

fn main() {
    let cfg = SimConfig {
        nx: 64,
        ny: 8,
        particles: 64 * 8 * 16,
        distribution: ParticleDistribution::Uniform,
        machine: MachineConfig::cm5(1),
        policy: PolicyKind::Static,
        thermal_u: 0.0,
        particle_charge: 0.05,
        dt: 0.25,
        seed: 3,
        ..SimConfig::paper_default()
    };
    let mut sim = ElectrostaticPicSim::new(cfg);

    // quiet start: lattice positions, sinusoidal velocity perturbation
    let (lx, ly) = (64.0, 8.0);
    let (nxp, nyp) = (256, 32);
    {
        let p = sim.particles_mut();
        p.x.clear();
        p.y.clear();
        p.ux.clear();
        p.uy.clear();
        p.uz.clear();
        for j in 0..nyp {
            for i in 0..nxp {
                let x = (i as f64 + 0.5) * lx / nxp as f64;
                let y = (j as f64 + 0.5) * ly / nyp as f64;
                let ux = 0.02 * (std::f64::consts::TAU * x / lx).sin();
                p.push(x, y, ux, 0.0, 0.0);
            }
        }
    }

    let omega_p = sim.plasma_frequency();
    let period = std::f64::consts::TAU / omega_p;
    println!("plasma frequency omega_p = {omega_p:.4}  (period {period:.1} time units)");
    println!("\n{:>8} {:>14} {:>14}", "t", "kinetic", "field");

    let dt = 0.25;
    let steps = (2.0 * period / dt) as usize;
    let mut kinetic = Vec::with_capacity(steps);
    for s in 0..steps {
        sim.step();
        let e = sim.energy();
        kinetic.push(e.kinetic);
        if s % (steps / 16).max(1) == 0 {
            println!(
                "{:>8.2} {:>14.6e} {:>14.6e}",
                (s + 1) as f64 * dt,
                e.kinetic,
                e.field
            );
        }
    }

    // measure the oscillation period from kinetic-energy minima
    // (K ~ cos^2 -> minima at every half period of the field oscillation)
    let mut minima = Vec::new();
    for i in 1..kinetic.len() - 1 {
        if kinetic[i] < kinetic[i - 1] && kinetic[i] <= kinetic[i + 1] {
            minima.push((i + 1) as f64 * dt);
        }
    }
    if minima.len() >= 2 {
        let measured_period = 2.0 * (minima[1] - minima[0]);
        println!(
            "\nmeasured period {measured_period:.2} vs theory {period:.2} ({:+.1}% error)",
            100.0 * (measured_period / period - 1.0)
        );
    } else {
        println!("\nno oscillation detected — check the perturbation amplitude");
    }
}
