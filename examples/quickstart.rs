//! Quickstart: run the paper's headline configuration for 100 iterations
//! and print what the dynamic alignment machinery is doing.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use pic1996::prelude::*;

fn main() {
    // The setup behind the paper's Figures 17-19: a 128x64 mesh, 32768
    // particles concentrated in the domain centre, 32 processors,
    // Hilbert indexing and the dynamic (Stop-At-Rise) policy.
    let cfg = SimConfig::paper_default();
    println!(
        "mesh {}x{}, {} particles ({}), {} ranks, {} indexing, policy {}",
        cfg.nx,
        cfg.ny,
        cfg.particles,
        cfg.distribution,
        cfg.machine.ranks,
        cfg.scheme,
        cfg.policy.label(),
    );

    let mut sim = ParallelPicSim::new(cfg);
    println!(
        "initial distribution done; per-rank particle counts: {:?} (min..max)",
        {
            let c = sim.particle_counts();
            (c.iter().min().copied(), c.iter().max().copied())
        }
    );

    println!(
        "\n{:>5} {:>12} {:>14} {:>14} {:>8}",
        "iter", "time (ms)", "scatter B sent", "scatter msgs", "redist"
    );
    let mut report_rows = Vec::new();
    for _ in 0..100 {
        let rec = sim.step();
        report_rows.push(rec);
        if rec.iter.is_multiple_of(10) || rec.redistributed {
            println!(
                "{:>5} {:>12.3} {:>14} {:>14} {:>8}",
                rec.iter,
                rec.time_s * 1e3,
                rec.scatter_max_bytes_sent,
                rec.scatter_max_msgs_sent,
                if rec.redistributed { "yes" } else { "" }
            );
        }
    }

    let total: f64 = report_rows
        .iter()
        .map(|r| r.time_s + r.redistribute_s)
        .sum();
    let redists = report_rows.iter().filter(|r| r.redistributed).count();
    let energy = sim.energy();
    println!("\nmodeled total: {total:.2} s on the CM-5 cost model");
    println!("redistributions: {redists}");
    println!(
        "energy: kinetic {:.3}, field {:.5}, particles {}",
        energy.kinetic,
        energy.field,
        sim.total_particles()
    );

    // alignment quality: how much of each rank's particle subdomain
    // overlaps its own mesh block
    let overlap: f64 = sim
        .alignment()
        .iter()
        .map(|r| r.overlap_fraction)
        .sum::<f64>()
        / sim.machine().num_ranks() as f64;
    println!("mean particle/mesh overlap after 100 iterations: {overlap:.2}");
}
