//! Two-stream instability: the classic kinetic plasma benchmark, run on
//! the parallel machine.
//!
//! Two counter-streaming electron beams are linearly unstable; the
//! electrostatic field energy must grow by orders of magnitude out of the
//! noise floor and then saturate.  This exercises the full physics stack
//! (deposit → Maxwell → interpolate → Boris) rather than the
//! communication machinery.
//!
//! ```text
//! cargo run --release --example two_stream
//! ```

use pic1996::prelude::*;
use pic_particles::ParticleDistribution;

fn main() {
    let cfg = SimConfig {
        nx: 64,
        ny: 16,
        particles: 65_536,
        distribution: ParticleDistribution::TwoStream,
        machine: MachineConfig::cm5(8),
        // strong coupling so the instability grows quickly
        particle_charge: 0.05,
        thermal_u: 0.01,
        dt: 0.25,
        ..SimConfig::paper_default()
    };
    println!(
        "two-stream: {} particles on a {}x{} mesh, {} ranks",
        cfg.particles, cfg.nx, cfg.ny, cfg.machine.ranks
    );

    let mut sim = ParallelPicSim::new(cfg);
    let e0 = sim.energy();
    println!(
        "initial: kinetic {:.4}, field {:.3e}",
        e0.kinetic,
        e0.field.max(1e-300)
    );

    println!("\n{:>6} {:>14} {:>14}", "iter", "field energy", "kinetic");
    let mut peak_field: f64 = 0.0;
    for block in 0..20 {
        for _ in 0..10 {
            sim.step();
        }
        let e = sim.energy();
        peak_field = peak_field.max(e.field);
        println!(
            "{:>6} {:>14.6e} {:>14.4}",
            (block + 1) * 10,
            e.field,
            e.kinetic
        );
    }

    let e1 = sim.energy();
    println!(
        "\nfield energy grew {:.1e}x over the run (instability {})",
        peak_field / e0.field.max(1e-30),
        if peak_field > 100.0 * e0.field.max(1e-30) {
            "CONFIRMED"
        } else {
            "weak - increase coupling"
        }
    );
    println!(
        "total energy drift: {:.2}% (finite-difference heating is expected)",
        100.0 * ((e1.kinetic + e1.field) - (e0.kinetic + e0.field)) / (e0.kinetic + e0.field)
    );
}
