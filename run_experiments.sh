#!/bin/bash
# Regenerate every table and figure of the IPPS'96 evaluation.
# Full scale takes ~25 minutes on one core; pass --quick to smoke-test.
set -e
cd "$(dirname "$0")"
ARGS="$@"
for bin in table1_strategies fig16_static_vs_periodic fig17_iteration_time \
           fig18_scatter_data fig19_scatter_messages fig20_dynamic_policy \
           table2_time table3_efficiency fig21_overhead_uniform fig22_overhead_irregular \
           baseline_replicated ablation_machine ablation_dedup; do
    echo "=== $bin ==="
    cargo run --release -q -p pic-bench --bin "$bin" -- $ARGS
    echo
done
