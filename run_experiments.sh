#!/bin/bash
# Regenerate the tables and figures of the IPPS'96 evaluation.
#
# Usage:
#   ./run_experiments.sh                 # every artifact, full scale (~25 min)
#   ./run_experiments.sh --quick         # 10x fewer iterations (~3 min)
#   ./run_experiments.sh --iters 500     # explicit iteration count
#   ./run_experiments.sh --only fig20    # only binaries matching the substring
#   ./run_experiments.sh --only fig20 --quick   # filters and flags combine
#
# Each binary prints its table/series and rewrites results/<name>.csv, so a
# stale CSV is refreshed by re-running just its binary (see EXPERIMENTS.md
# for the binary -> figure -> CSV matrix).
set -e
cd "$(dirname "$0")"

ONLY=""
ARGS=()
while [ $# -gt 0 ]; do
    case "$1" in
        --only)
            [ $# -ge 2 ] || { echo "--only needs a pattern" >&2; exit 2; }
            ONLY="$2"; shift 2 ;;
        *)
            ARGS+=("$1"); shift ;;
    esac
done

BINS="table1_strategies fig16_static_vs_periodic fig17_iteration_time \
      fig18_scatter_data fig19_scatter_messages fig20_dynamic_policy \
      table2_time table3_efficiency fig21_overhead_uniform fig22_overhead_irregular \
      baseline_replicated ablation_machine ablation_dedup observability_overhead \
      observability_dashboard hot_path_baseline"

ran=0
for bin in $BINS; do
    if [ -n "$ONLY" ] && [[ "$bin" != *"$ONLY"* ]]; then continue; fi
    echo "=== $bin ==="
    cargo run --release -q -p pic-bench --bin "$bin" -- "${ARGS[@]}"
    echo
    ran=$((ran + 1))
done

if [ "$ran" -eq 0 ]; then
    echo "no binary matches --only '$ONLY'; available:" >&2
    echo "$BINS" | tr -s ' \\' '\n' | sed '/^$/d' >&2
    exit 2
fi
