//! `picsim` — command-line driver for the parallel PIC simulation.
//!
//! Runs a configurable simulation on the virtual machine and prints the
//! per-iteration trace and run summary (optionally as CSV), so the
//! system can be explored without writing Rust:
//!
//! ```text
//! cargo run --release --bin picsim -- \
//!     --nx 128 --ny 64 --particles 32768 --ranks 32 \
//!     --distribution irregular --scheme hilbert --policy dynamic \
//!     --iters 200 --csv trace.csv
//! ```

use std::fs::File;
use std::io::Write as _;

use pic1996::prelude::*;
use pic_particles::ParticleDistribution;

struct Args {
    nx: usize,
    ny: usize,
    particles: usize,
    ranks: usize,
    iters: usize,
    distribution: ParticleDistribution,
    scheme: IndexScheme,
    policy: PolicyKind,
    thermal_u: f64,
    seed: u64,
    csv: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: picsim [--nx N] [--ny N] [--particles N] [--ranks P] [--iters N]\n\
         \x20             [--distribution uniform|irregular|two_stream|ring]\n\
         \x20             [--scheme hilbert|snake|rowmajor|morton]\n\
         \x20             [--policy static|dynamic|periodic:K]\n\
         \x20             [--thermal U] [--seed S] [--csv FILE]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        nx: 128,
        ny: 64,
        particles: 32_768,
        ranks: 32,
        iters: 200,
        distribution: ParticleDistribution::IrregularCenter,
        scheme: IndexScheme::Hilbert,
        policy: PolicyKind::DynamicSar,
        thermal_u: 0.5,
        seed: 1996,
        csv: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].as_str();
        let value = argv.get(i + 1).cloned().unwrap_or_else(|| usage());
        match flag {
            "--nx" => args.nx = value.parse().unwrap_or_else(|_| usage()),
            "--ny" => args.ny = value.parse().unwrap_or_else(|_| usage()),
            "--particles" => args.particles = value.parse().unwrap_or_else(|_| usage()),
            "--ranks" => args.ranks = value.parse().unwrap_or_else(|_| usage()),
            "--iters" => args.iters = value.parse().unwrap_or_else(|_| usage()),
            "--thermal" => args.thermal_u = value.parse().unwrap_or_else(|_| usage()),
            "--seed" => args.seed = value.parse().unwrap_or_else(|_| usage()),
            "--csv" => args.csv = Some(value.clone()),
            "--distribution" => {
                args.distribution = match value.as_str() {
                    "uniform" => ParticleDistribution::Uniform,
                    "irregular" => ParticleDistribution::IrregularCenter,
                    "two_stream" => ParticleDistribution::TwoStream,
                    "ring" => ParticleDistribution::Ring,
                    _ => usage(),
                }
            }
            "--scheme" => {
                args.scheme = match value.as_str() {
                    "hilbert" => IndexScheme::Hilbert,
                    "snake" => IndexScheme::Snake,
                    "rowmajor" => IndexScheme::RowMajor,
                    "morton" => IndexScheme::Morton,
                    _ => usage(),
                }
            }
            "--policy" => {
                args.policy = match value.as_str() {
                    "static" => PolicyKind::Static,
                    "dynamic" => PolicyKind::DynamicSar,
                    other => match other.strip_prefix("periodic:") {
                        Some(k) => PolicyKind::Periodic(k.parse().unwrap_or_else(|_| usage())),
                        None => usage(),
                    },
                }
            }
            _ => usage(),
        }
        i += 2;
    }
    // reject values the simulation would panic on, with a readable error
    if args.ranks == 0 {
        eprintln!("picsim: --ranks must be at least 1");
        std::process::exit(2);
    }
    if let PolicyKind::Periodic(0) = args.policy {
        eprintln!("picsim: --policy periodic:K needs K >= 1");
        std::process::exit(2);
    }
    if args.particles < args.ranks {
        eprintln!(
            "picsim: need at least as many particles ({}) as ranks ({})",
            args.particles, args.ranks
        );
        std::process::exit(2);
    }
    args
}

fn main() {
    let a = parse_args();
    let cfg = SimConfig {
        nx: a.nx,
        ny: a.ny,
        particles: a.particles,
        distribution: a.distribution,
        scheme: a.scheme,
        policy: a.policy,
        machine: MachineConfig::cm5(a.ranks),
        thermal_u: a.thermal_u,
        seed: a.seed,
        ..SimConfig::paper_default()
    };
    println!(
        "picsim: {}x{} mesh, {} particles ({}), {} ranks, {} indexing, {} policy, {} iterations",
        cfg.nx,
        cfg.ny,
        cfg.particles,
        cfg.distribution,
        cfg.machine.ranks,
        cfg.scheme,
        cfg.policy.label(),
        a.iters
    );

    let wall = std::time::Instant::now();
    let mut sim = ParallelPicSim::new(cfg);
    let report = sim.run(a.iters);
    let wall = wall.elapsed();

    if let Some(path) = &a.csv {
        let mut f = File::create(path).expect("create csv file");
        writeln!(
            f,
            "iter,time_s,compute_s,comm_s,scatter_bytes_sent,scatter_msgs_sent,redistributed,redistribute_s"
        )
        .unwrap();
        for r in &report.iterations {
            writeln!(
                f,
                "{},{:.6},{:.6},{:.6},{},{},{},{:.6}",
                r.iter,
                r.time_s,
                r.compute_s,
                r.comm_s,
                r.scatter_max_bytes_sent,
                r.scatter_max_msgs_sent,
                u8::from(r.redistributed),
                r.redistribute_s
            )
            .unwrap();
        }
        println!("per-iteration trace written to {path}");
    }

    let e = sim.energy();
    println!("\nmodeled total     : {:.2} s", report.total_s);
    println!("  computation     : {:.2} s", report.compute_s);
    println!("  overhead        : {:.2} s", report.overhead_s);
    println!(
        "  redistributions : {} (cost {:.2} s)",
        report.redistributions, report.redistribute_total_s
    );
    println!(
        "phase split       : scatter {:.2} / fields {:.2} / gather {:.2} / push {:.2} s",
        report.breakdown.scatter_s,
        report.breakdown.field_solve_s,
        report.breakdown.gather_s,
        report.breakdown.push_s
    );
    println!(
        "energy            : kinetic {:.3}, field {:.3} ({} particles)",
        e.kinetic,
        e.field,
        sim.total_particles()
    );
    println!("host wall clock   : {wall:.2?}");
}
