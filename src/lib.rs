//! # pic1996 — umbrella crate
//!
//! Re-exports the whole reproduction stack of Liao, Ou & Ranka,
//! *Dynamic Alignment and Distribution of Irregularly Coupled Data Arrays
//! for Scalable Parallelization of Particle-in-Cell Problems* (IPPS 1996),
//! so that examples and downstream users can depend on a single crate.
//!
//! See the individual crates for the substance:
//!
//! * [`index`] — space-filling-curve cell indexing (Hilbert vs snakelike);
//! * [`machine`] — the virtual distributed-memory machine and cost model;
//! * [`field`] — mesh grids, BLOCK layouts, halo exchange, Maxwell solver;
//! * [`particles`] — SoA particles, loading, interpolation, Boris push;
//! * [`partition`] — particle distribution/redistribution and policies;
//! * [`core`] — the parallel PIC driver tying everything together.

#![warn(missing_docs)]

pub use pic_core as core;
pub use pic_field as field;
pub use pic_index as index;
pub use pic_machine as machine;
pub use pic_particles as particles;
pub use pic_partition as partition;

/// Compiles and runs every Rust snippet in the README as a doctest, so
/// the documented examples cannot drift from the real API.
#[doc = include_str!("../README.md")]
#[cfg(doctest)]
pub struct ReadmeDoctests;

/// Convenient glob-import of the most used types across the stack.
pub mod prelude {
    pub use pic_core::{ParallelPicSim, PhaseBreakdown, SequentialPicSim, SimConfig, SimReport};
    pub use pic_field::{BlockLayout, Grid2};
    pub use pic_index::{CellIndexer, HilbertIndexer, IndexScheme, SnakeIndexer};
    pub use pic_machine::{MachineConfig, Topology};
    pub use pic_particles::{ParticleDistribution, Particles};
    pub use pic_partition::{PolicyKind, RedistributionPolicy};
}
