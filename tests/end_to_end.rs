//! Workspace-level integration: the umbrella crate's public API drives a
//! full simulation and the cross-crate data flows hold together.

use pic1996::prelude::*;
use pic1996::{core::ideal_bounds, index::neighbor_jump_stats};
use pic_particles::ParticleDistribution;

#[test]
fn prelude_supports_the_quickstart_flow() {
    let mut cfg = SimConfig::small_test();
    cfg.policy = PolicyKind::DynamicSar;
    let mut sim = ParallelPicSim::new(cfg);
    let report = sim.run(10);
    assert_eq!(report.iterations.len(), 10);
    assert_eq!(sim.total_particles(), 512);
    assert!(sim.energy().kinetic > 0.0);
}

#[test]
fn indexer_layout_and_sim_agree_on_geometry() {
    let cfg = SimConfig::small_test();
    let sim = ParallelPicSim::new(cfg.clone());
    let layout = sim.layout();
    assert_eq!(layout.nx(), cfg.nx);
    assert_eq!(layout.num_ranks(), cfg.machine.ranks);
    // every rank's block matches its state's rect
    for (r, st) in sim.machine().ranks().iter().enumerate() {
        assert_eq!(st.rect, layout.local_rect(r));
    }
}

#[test]
fn analytic_bounds_are_positive_for_paper_configs() {
    for p in [32, 64, 128] {
        let b = ideal_bounds(&MachineConfig::cm5(p), 32_768, 128 * 64, 28);
        assert!(b.scatter_s > 0.0 && b.total_s() > b.push_s);
    }
}

#[test]
fn hilbert_beats_snake_on_curve_locality_for_paper_meshes() {
    for (nx, ny) in [(128, 64), (256, 128), (512, 256)] {
        let h = neighbor_jump_stats(&HilbertIndexer::new(nx, ny));
        let s = neighbor_jump_stats(&SnakeIndexer::new(nx, ny));
        assert!(h.mean < s.mean, "{nx}x{ny}");
    }
}

#[test]
fn sequential_reference_agrees_with_machine_on_tiny_case() {
    let cfg = SimConfig::small_test();
    let mut seq = SequentialPicSim::new(cfg.clone());
    let mut par = ParallelPicSim::new(cfg);
    seq.run(3);
    par.run(3);
    let ek_seq = seq.energy().kinetic;
    let ek_par = par.energy().kinetic;
    assert!((ek_seq - ek_par).abs() < 1e-6 * ek_seq);
}

#[test]
fn all_distributions_run_end_to_end() {
    for dist in [
        ParticleDistribution::Uniform,
        ParticleDistribution::IrregularCenter,
        ParticleDistribution::TwoStream,
        ParticleDistribution::Ring,
    ] {
        let mut cfg = SimConfig::small_test();
        cfg.distribution = dist;
        let mut sim = ParallelPicSim::new(cfg);
        let report = sim.run(3);
        assert_eq!(report.iterations.len(), 3, "{dist}");
        assert_eq!(sim.total_particles(), 512, "{dist}");
    }
}

#[test]
fn modeled_time_is_reproducible_across_runs() {
    let run = || {
        let mut sim = ParallelPicSim::new(SimConfig::small_test());
        sim.run(5).total_s
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "modeled time must be bit-for-bit deterministic");
}
