//! Workspace-level scaling assertions: the claims the paper's evaluation
//! rests on must hold as machine size grows.

use pic1996::prelude::*;
use pic_core::ReplicatedGridPicSim;
use pic_particles::ParticleDistribution;

fn cfg(p: usize) -> SimConfig {
    SimConfig {
        nx: 64,
        ny: 32,
        particles: 8192,
        distribution: ParticleDistribution::IrregularCenter,
        machine: MachineConfig::cm5(p),
        policy: PolicyKind::DynamicSar,
        ..SimConfig::paper_default()
    }
}

#[test]
fn distributed_scheme_speeds_up_with_more_processors() {
    let time = |p: usize| {
        let mut sim = ParallelPicSim::new(cfg(p));
        sim.run(20).total_s
    };
    let t8 = time(8);
    let t32 = time(32);
    // quadrupling processors must give a solid (if sub-linear) speedup
    assert!(
        t32 < t8 / 2.0,
        "poor scaling: p=8 -> {t8:.2}s, p=32 -> {t32:.2}s"
    );
}

#[test]
fn replicated_baseline_stops_scaling_where_distributed_continues() {
    let pair = |p: usize| {
        let mut rep = ReplicatedGridPicSim::new(cfg(p));
        let (rep_t, _) = rep.run(20);
        let mut dist = ParallelPicSim::new(cfg(p));
        let dist_t = dist.run(20).total_s;
        (rep_t, dist_t)
    };
    let (rep8, dist8) = pair(8);
    let (rep32, dist32) = pair(32);
    let rep_speedup = rep8 / rep32;
    let dist_speedup = dist8 / dist32;
    assert!(
        dist_speedup > rep_speedup,
        "distributed speedup {dist_speedup:.2} not above replicated {rep_speedup:.2}"
    );
    // and the replicated scheme's communication share must be larger
    let _ = (dist8, rep8);
}

#[test]
fn efficiency_is_stable_at_fixed_grain() {
    // paper Table 3 claim: same particles-per-processor => similar
    // efficiency.  Modeled T_seq is linear in work, so compare total/p.
    let per_proc_time = |p: usize, n: usize| {
        let mut c = cfg(p);
        c.particles = n;
        let mut sim = ParallelPicSim::new(c);
        sim.run(20).total_s * p as f64 / n as f64
    };
    let a = per_proc_time(8, 8192); // 1024 per rank
    let b = per_proc_time(16, 16_384); // 1024 per rank
    let ratio = a / b;
    assert!(
        (0.8..1.25).contains(&ratio),
        "fixed-grain cost drifted: {a:.3e} vs {b:.3e}"
    );
}

#[test]
fn message_count_bound_is_respected() {
    // the scatter phase can never exceed p-1 messages per rank
    let mut sim = ParallelPicSim::new(cfg(16));
    for _ in 0..30 {
        let rec = sim.step();
        assert!(rec.scatter_max_msgs_sent <= 15);
        assert!(rec.scatter_max_msgs_recv <= 15);
    }
}
