//! Offline stand-in for `criterion`.
//!
//! Keeps the workspace's `cargo bench` targets building and running
//! without network access.  The statistics are deliberately simple: each
//! benchmark is timed for `sample_size` samples after a short warm-up and
//! the median sample is reported.  No plots, no saved baselines — just
//! enough to compare kernels on one machine in one run.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall time per sample; iteration counts auto-scale to this.
const TARGET_SAMPLE: Duration = Duration::from_millis(20);

/// The benchmark harness root.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("group {name}");
        BenchmarkGroup {
            sample_size: self.default_sample_size,
        }
    }

    /// Run a stand-alone benchmark.
    pub fn bench_function<N: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        name: N,
        f: F,
    ) -> &mut Self {
        run_one(name.as_ref(), self.default_sample_size, f);
        self
    }

    /// Compatibility hook (CLI args are ignored offline).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Compatibility hook.
    pub fn final_summary(&self) {}
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup {
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<N: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        name: N,
        f: F,
    ) -> &mut Self {
        run_one(name.as_ref(), self.sample_size, f);
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, samples: usize, mut f: F) {
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    // calibration: find an iteration count filling the target sample time
    loop {
        b.elapsed = Duration::ZERO;
        f(&mut b);
        if b.elapsed >= TARGET_SAMPLE || b.iters >= 1 << 30 {
            break;
        }
        let grow = if b.elapsed.is_zero() {
            64
        } else {
            (TARGET_SAMPLE.as_nanos() / b.elapsed.as_nanos().max(1) + 1) as u64
        };
        b.iters = (b.iters * grow.clamp(2, 64)).min(1 << 30);
    }
    let mut per_iter: Vec<f64> = (0..samples)
        .map(|_| {
            b.elapsed = Duration::ZERO;
            f(&mut b);
            b.elapsed.as_secs_f64() / b.iters as f64
        })
        .collect();
    per_iter.sort_by(f64::total_cmp);
    let median = per_iter[per_iter.len() / 2];
    println!(
        "  {name:<44} {:>12}  ({} iters/sample)",
        fmt_s(median),
        b.iters
    );
}

fn fmt_s(s: f64) -> String {
    if s < 1e-6 {
        format!("{:.1} ns", s * 1e9)
    } else if s < 1e-3 {
        format!("{:.2} µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{s:.3} s")
    }
}

/// Times the closure handed to [`Bencher::iter`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, running it enough times for a stable sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declare the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
