//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use — the [`proptest!`] macro, range/tuple/`vec`/`select`
//! strategies, `prop_map`/`prop_filter`, `any::<T>()` and the
//! `prop_assert*` macros — on top of the vendored deterministic `rand`
//! shim.  Differences from the real crate:
//!
//! - **no shrinking**: a failing case reports its generated inputs and the
//!   case seed, but is not minimized;
//! - **fixed deterministic seeds**: case `i` of every test draws from seed
//!   `BASE_SEED + i`, so failures reproduce exactly across runs;
//! - assertions panic immediately instead of returning `TestCaseError`.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Base seed for case generation (case `i` uses `BASE_SEED + i`).
pub const BASE_SEED: u64 = 0x5eed_1996_0000_0000;

/// Number of generation attempts a `prop_filter` may reject before the
/// test aborts as over-constrained.
pub const MAX_FILTER_REJECTS: usize = 10_000;

/// The RNG handed to strategies during generation.
pub struct TestRng(StdRng);

impl TestRng {
    /// Deterministic generator for one test case.
    pub fn for_case(case: u64) -> Self {
        TestRng(StdRng::seed_from_u64(BASE_SEED.wrapping_add(case)))
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// Uniform range draw (delegates to the rand shim).
    pub fn range<T, R: rand::SampleRange<T>>(&mut self, r: R) -> T {
        self.0.random_range(r)
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Discard generated values failing `pred`, regenerating (bounded by
    /// [`MAX_FILTER_REJECTS`]).
    fn prop_filter<P: Fn(&Self::Value) -> bool>(
        self,
        whence: impl Into<String>,
        pred: P,
    ) -> Filter<Self, P>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            pred,
            whence: whence.into(),
        }
    }

    /// Box the strategy (API-compatibility helper).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Owned trait object form of a strategy.
pub struct BoxedStrategy<V>(Box<dyn Strategy<Value = V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, P> {
    inner: S,
    pred: P,
    whence: String,
}

impl<S: Strategy, P: Fn(&S::Value) -> bool> Strategy for Filter<S, P> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..MAX_FILTER_REJECTS {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter `{}` rejected {} candidates; strategy over-constrained",
            self.whence, MAX_FILTER_REJECTS
        );
    }
}

/// Always produces a clone of the given value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.range(self.clone())
                }
            }
        )*
    };
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty as $u:ty),*) => {
        $(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range");
                    let span = (self.end as i128 - self.start as i128) as $u;
                    let off = rng.range((0 as $u)..span);
                    (self.start as i128 + off as i128) as $t
                }
            }
        )*
    };
}

signed_range_strategy!(i8 as u8, i16 as u16, i32 as u32, i64 as u64, isize as usize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.range(self.clone())
    }
}

impl Strategy for core::ops::Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        rng.range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
tuple_strategy!(A, B, C, D, E, F, G, H, I);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

/// Types with a canonical "anything" strategy (`any::<T>()`).
pub trait Arbitrary {
    /// Strategy type returned by [`any`].
    type Strategy: Strategy<Value = Self>;
    /// The canonical full-domain strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Full-domain strategy for primitives.
pub struct FullDomain<T>(core::marker::PhantomData<T>);

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {
        $(
            impl Strategy for FullDomain<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
            impl Arbitrary for $t {
                type Strategy = FullDomain<$t>;
                fn arbitrary() -> Self::Strategy {
                    FullDomain(core::marker::PhantomData)
                }
            }
        )*
    };
}

arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for FullDomain<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = FullDomain<bool>;
    fn arbitrary() -> Self::Strategy {
        FullDomain(core::marker::PhantomData)
    }
}

/// The canonical strategy for `T` — `any::<u64>()` etc.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases generated per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Strategy namespace mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};

        /// Strategy for `Vec<T>` with a size drawn from `size`.
        pub struct VecStrategy<S> {
            elem: S,
            size: core::ops::Range<usize>,
        }

        /// `vec(element_strategy, size_range)` — random-length vectors.
        pub fn vec<S: Strategy>(elem: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { elem, size }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = if self.size.start + 1 >= self.size.end {
                    self.size.start
                } else {
                    rng.range(self.size.clone())
                };
                (0..n).map(|_| self.elem.generate(rng)).collect()
            }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use crate::{Strategy, TestRng};

        /// Uniformly picks one of the given values.
        pub struct Select<T: Clone>(Vec<T>);

        /// `select(options)` — uniform choice among `options`.
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select over empty set");
            Select(options)
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn generate(&self, rng: &mut TestRng) -> T {
                let i = rng.range(0..self.0.len());
                self.0[i].clone()
            }
        }
    }
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

/// Assert a condition inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Skip the current case when its inputs don't satisfy a precondition.
///
/// The real crate rejects-and-regenerates; this shim simply returns from
/// the case body (the case still counts toward `config.cases`).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return;
        }
    };
}

/// Assert equality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Define property tests.  Mirrors proptest's surface:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]
///
///     #[test]
///     fn my_property(x in 0u64..100, v in prop::collection::vec(0u8..4, 1..9)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: the config expression is bound
/// at repetition depth zero here, so it can be expanded inside the
/// per-function repetition.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = ($config:expr);
        $(
            $(#[$meta:meta])+
            fn $name:ident( $($p:pat_param in $s:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config = $config;
                for case in 0..config.cases as u64 {
                    let mut rng = $crate::TestRng::for_case(case);
                    let values = ( $( $crate::Strategy::generate(&$s, &mut rng), )+ );
                    let result = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| {
                            let ( $($p,)+ ) = values;
                            $body
                        }),
                    );
                    if let Err(payload) = result {
                        eprintln!(
                            "proptest case {case} of {} failed (seed base {:#x})",
                            config.cases,
                            $crate::BASE_SEED
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vec_generate_in_bounds() {
        let mut rng = crate::TestRng::for_case(0);
        for _ in 0..200 {
            let x = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&x));
            let v = prop::collection::vec(0u8..4, 1..6).generate(&mut rng);
            assert!(!v.is_empty() && v.len() < 6);
            assert!(v.iter().all(|&b| b < 4));
        }
    }

    #[test]
    fn map_filter_select_compose() {
        let strat = (0u32..10, prop::sample::select(vec![2u32, 4, 6]))
            .prop_map(|(a, b)| a * b)
            .prop_filter("nonzero", |&v| v > 0);
        let mut rng = crate::TestRng::for_case(1);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!(v > 0 && v % 2 == 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn the_macro_itself_works(x in 1u64..50, mut v in prop::collection::vec(0u8..3, 0..5)) {
            v.push(0);
            prop_assert!((1..50).contains(&x));
            prop_assert_ne!(v.len(), 0);
            prop_assert_eq!(v[v.len() - 1], 0);
        }
    }
}
