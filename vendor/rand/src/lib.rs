//! Offline stand-in for `rand` 0.9.
//!
//! Provides the slice of the `rand` API this workspace uses — `StdRng`,
//! `SeedableRng::seed_from_u64` and `Rng::random_range` — backed by
//! xoshiro256++ seeded through SplitMix64.  The stream differs from the
//! real `rand` crate's `StdRng` (which is ChaCha12); nothing in the
//! workspace depends on a particular stream, only on determinism: the same
//! seed must yield the same particles on every platform and executor.

#![warn(missing_docs)]

/// Types that can seed themselves from a `u64`.
pub trait SeedableRng: Sized {
    /// Build a generator deterministically from `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Sample a value uniformly from a half-open range.  Implemented for the
/// scalar types the workspace draws.
pub trait SampleRange<T> {
    /// Draw one value in the range using `rng`.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// The raw generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// High-level drawing methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from a half-open range, e.g. `rng.random_range(0.0..lx)`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Uniform draw over a type's full/unit domain: `f64` in `[0, 1)`,
    /// integers over their whole range.
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_bits(self.next_u64())
    }
}

impl<R: RngCore> Rng for R {}

/// Types drawable from 64 uniform bits (the shim's `Standard` distribution).
pub trait Standard {
    /// Map 64 uniform bits onto the type's standard distribution.
    fn from_bits(bits: u64) -> Self;
}

impl Standard for f64 {
    fn from_bits(bits: u64) -> Self {
        // 53 mantissa bits -> [0, 1)
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn from_bits(bits: u64) -> Self {
        bits
    }
}

impl Standard for bool {
    fn from_bits(bits: u64) -> Self {
        bits & 1 == 1
    }
}

macro_rules! impl_float_range {
    ($t:ty) => {
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range");
                let unit = (rng.next_u64() >> 11) as $t * (1.0 / (1u64 << 53) as $t);
                let v = self.start + (self.end - self.start) * unit;
                // guard the half-open contract against rounding
                if v >= self.end {
                    self.start
                } else {
                    v
                }
            }
        }
    };
}

impl_float_range!(f64);
impl_float_range!(f32);

macro_rules! impl_int_range {
    ($($t:ty),*) => {
        $(
            impl SampleRange<$t> for core::ops::Range<$t> {
                fn sample(self, rng: &mut dyn RngCore) -> $t {
                    assert!(self.start < self.end, "empty range");
                    let span = (self.end as u128 - self.start as u128) as u64;
                    // Lemire-style unbiased rejection sampling
                    let mut x = rng.next_u64();
                    let mut m = (x as u128) * (span as u128);
                    let mut lo = m as u64;
                    if lo < span {
                        let t = span.wrapping_neg() % span;
                        while lo < t {
                            x = rng.next_u64();
                            m = (x as u128) * (span as u128);
                            lo = m as u64;
                        }
                    }
                    self.start + ((m >> 64) as u64) as $t
                }
            }
            impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                fn sample(self, rng: &mut dyn RngCore) -> $t {
                    let (s, e) = (*self.start(), *self.end());
                    if s == e {
                        return s;
                    }
                    // delegate to the half-open form when possible
                    if e < <$t>::MAX {
                        (s..e + 1).sample(rng)
                    } else {
                        rng.next_u64() as $t
                    }
                }
            }
        )*
    };
}

impl_int_range!(u8, u16, u32, u64, usize);

/// Generators shipped with the shim.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (offline stand-in for rand's
    /// `StdRng`; different stream, same determinism guarantees).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0u64..1_000_000).to_le_bytes(),
                b.random_range(0u64..1_000_000).to_le_bytes()
            );
        }
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.random_range(2.0f64..3.5);
            assert!((2.0..3.5).contains(&v), "{v}");
        }
    }

    #[test]
    fn int_ranges_cover_and_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = rng.random_range(0usize..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.random_range(0u64..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.random_range(0u64..u64::MAX)).collect();
        assert_ne!(va, vb);
    }
}
