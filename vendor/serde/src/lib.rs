//! Offline stand-in for `serde`.
//!
//! The workspace builds with no network access, so the real crate is
//! unavailable; this shim keeps the standard `Serialize`/`Deserialize`
//! derive surface compiling.  The traits are deliberately empty markers —
//! nothing in the simulation serializes at runtime (reports are written as
//! hand-formatted CSV/console output) — but the derives emit real impls so
//! `T: Serialize` bounds remain satisfiable if a later PR adds an encoder.

#![warn(missing_docs)]

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Marker for types that could be serialized (no-op offline stand-in).
pub trait Serialize {}

/// Marker for types that could be deserialized (no-op offline stand-in).
pub trait Deserialize {}

macro_rules! impl_markers {
    ($($t:ty),* $(,)?) => {
        $(impl Serialize for $t {}
          impl Deserialize for $t {})*
    };
}

impl_markers!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, char, String);

impl<T: Serialize> Serialize for Vec<T> {}
impl<T: Deserialize> Deserialize for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<T: Deserialize> Deserialize for Option<T> {}
impl<T: Serialize, const N: usize> Serialize for [T; N] {}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {}
impl<A: Serialize, B: Serialize> Serialize for (A, B) {}
impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {}
impl Serialize for &str {}
