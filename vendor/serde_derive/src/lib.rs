//! Offline stand-in for `serde_derive`.
//!
//! The workspace builds without network access, so the real proc-macro
//! crate (and its `syn`/`quote` dependency tree) is unavailable.  The
//! simulation never serializes anything at runtime — the derives exist so
//! config and report types keep the standard serde surface.  This macro
//! therefore parses just enough of the item to emit a real (empty-bodied)
//! trait impl, keeping `T: Serialize` bounds satisfiable.

#![warn(missing_docs)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Extract `(name, generic parameter idents)` from a struct/enum definition.
fn parse_item(input: TokenStream) -> Option<(String, Vec<String>)> {
    let mut iter = input.into_iter().peekable();
    // skip attributes and visibility until the `struct`/`enum` keyword
    while let Some(tt) = iter.next() {
        match tt {
            TokenTree::Ident(id) if id.to_string() == "struct" || id.to_string() == "enum" => break,
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // consume the following [...] group
                if let Some(TokenTree::Group(_)) = iter.peek() {
                    iter.next();
                }
            }
            _ => {}
        }
    }
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return None,
    };
    // collect top-level generic parameter names from `<...>`, if present
    let mut generics = Vec::new();
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            iter.next();
            let mut depth = 1usize;
            let mut expect_param = true;
            for tt in iter.by_ref() {
                match tt {
                    TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                    TokenTree::Punct(p) if p.as_char() == '>' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => expect_param = true,
                    TokenTree::Punct(p) if p.as_char() == ':' && depth == 1 => expect_param = false,
                    // lifetimes (`'a`) are not type parameters: the `'`
                    // punct arrives first, so drop the marker before the
                    // ident is seen
                    TokenTree::Punct(p) if p.as_char() == '\'' && depth == 1 => {
                        expect_param = false;
                    }
                    TokenTree::Ident(id) if expect_param && depth == 1 => {
                        let s = id.to_string();
                        if s != "const" && s != "lifetime" {
                            generics.push(s);
                        }
                        expect_param = false;
                    }
                    _ => {}
                }
            }
        }
    }
    Some((name, generics))
}

fn impl_for(trait_name: &str, input: TokenStream) -> TokenStream {
    let Some((name, generics)) = parse_item(input) else {
        return TokenStream::new();
    };
    let code = if generics.is_empty() {
        format!("impl ::serde::{trait_name} for {name} {{}}")
    } else {
        let params = generics.join(", ");
        let bounds = generics
            .iter()
            .map(|g| format!("{g}: ::serde::{trait_name}"))
            .collect::<Vec<_>>()
            .join(", ");
        format!("impl<{params}> ::serde::{trait_name} for {name}<{params}> where {bounds} {{}}")
    };
    code.parse().unwrap_or_default()
}

/// No-op `Serialize` derive: emits `impl serde::Serialize for T {}`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    impl_for("Serialize", input)
}

/// No-op `Deserialize` derive: emits `impl serde::Deserialize for T {}`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    impl_for("Deserialize", input)
}

/// Skip the bracketed group following a `#` (attribute), if any — helper
/// used while scanning for the item keyword.
#[allow(dead_code)]
fn skip_group(tt: &TokenTree) -> bool {
    matches!(tt, TokenTree::Group(g) if g.delimiter() == Delimiter::Bracket)
}
